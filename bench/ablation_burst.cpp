// Ablation: FCB burst support on/off — the %burst_support directive's
// effect on transfer time (§3.2.2: bursts "can greatly reduce the number
// of clock cycles" for array-based transactions).
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

std::uint64_t run_transfer(bool burst, unsigned n) {
  std::string text = std::string("%device_name ab\n%bus_type fcb\n") +
                     "%bus_width 32\n%burst_support " +
                     (burst ? "true" : "false") +
                     "\nvoid sink(char n, int*:n xs);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  runtime::VirtualPlatform vp(std::move(*spec), {});
  std::vector<std::uint64_t> xs(n, 1);
  (void)vp.call("sink", {{n}, xs});
  return vp.call("sink", {{n}, xs}).bus_cycles;
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation",
                      "%burst_support on/off over the FCB (quad/double "
                      "macro ladder vs single-word macros)");
  TextTable t;
  t.set_header({"array words", "singles only", "burst ladder", "saved"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right});
  for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
    const std::uint64_t off = run_transfer(false, n);
    const std::uint64_t on = run_transfer(true, n);
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.0f%%",
                  (1.0 - static_cast<double>(on) / off) * 100);
    t.add_row({std::to_string(n), std::to_string(off), std::to_string(on),
               pct});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
