// Figure 9.3: "FPGA Resources Consumed By Each Implementation" — the
// §9.3.2 area comparison, regenerated from the structural resource
// estimator, followed by the paper-vs-measured claim table.
#include <string>

#include "bench_common.hpp"
#include "devices/evaluation.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  using namespace splice::devices;
  bench::print_header("Figure 9.3",
                      "FPGA resources consumed by each implementation "
                      "(Virtex-4-class slices; LUT/FF detail below)");

  double slices[5][4] = {};
  TextTable t;
  t.set_header({"Implementation", "Scenario 1", "Scenario 2", "Scenario 3",
                "Scenario 4", "LUTs", "FFs"});
  t.set_alignment({TextTable::Align::Left, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right});
  int impl_idx = 0;
  for (Impl impl : kAllImpls) {
    std::vector<std::string> row{std::string(impl_name(impl))};
    resources::ResourceReport last{};
    int sc_idx = 0;
    for (const auto& sc : scenarios()) {
      last = implementation_resources(impl, sc);
      slices[impl_idx][sc_idx] = last.slices();
      row.push_back(std::to_string(last.slices()));
      ++sc_idx;
    }
    row.push_back(std::to_string(last.luts));
    row.push_back(std::to_string(last.ffs));
    t.add_row(std::move(row));
    ++impl_idx;
  }
  std::printf("%s", t.render().c_str());
  std::printf("(LUT/FF columns show the scenario-4 sizing; Splice variants "
              "use implicit\n transfers so their hardware is "
              "scenario-independent.)\n\n");

  auto avg_ratio = [&](int a, int b) {
    double s = 0;
    for (int j = 0; j < 4; ++j) s += slices[a][j] / slices[b][j];
    return s / 4;
  };
  std::printf("Paper claim (§9.3.2)                                | paper    | measured\n");
  std::printf("----------------------------------------------------+----------+---------\n");
  std::printf("Splice PLB smaller than naive hand-coded PLB        | ~23%%     | %4.1f%%\n",
              (1 - avg_ratio(1, 0)) * 100);
  std::printf("Splice FCB smaller than naive PLB                   | ~28%%     | %4.1f%%\n",
              (1 - avg_ratio(3, 0)) * 100);
  std::printf("Splice FCB larger than optimized hand-coded FCB     | ~2%%      | %+4.1f%%\n",
              (avg_ratio(3, 4) - 1) * 100);
  std::printf("DMA interface larger than simple Splice PLB         | 57-69%%   | %4.1f%%\n",
              (avg_ratio(2, 1) - 1) * 100);
  return 0;
}
