// Shared helpers for the figure-reproduction harnesses.
#pragma once

#include <cstdio>
#include <string>

#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"

namespace splice::bench {

/// Dump the kernel instrumentation counters for a finished run.
inline void print_sim_stats(const rtl::Simulator& sim) {
  std::printf("%s\n", rtl::render_stats(sim).c_str());
}

/// First recorded cycle at which `signal` is nonzero; SIZE_MAX if never.
inline std::size_t first_high(const rtl::Trace& trace,
                              const std::string& signal) {
  const auto& hist = trace.history(signal);
  for (std::size_t c = 0; c < hist.size(); ++c) {
    if (hist[c] != 0) return c;
  }
  return SIZE_MAX;
}

inline void print_header(const char* figure, const char* title) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("================================================================\n\n");
}

}  // namespace splice::bench
