// Figure 4.6: "The PLB Write Protocol" — native pin-level waveform of the
// write transactions feeding a generated device.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.6", "The PLB write protocol (simulated)");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nvoid f(int a, int b);\n",
      diags);
  ir::validate(*spec, diags);
  runtime::VirtualPlatform vp(std::move(*spec), {});

  rtl::Trace trace(vp.sim());
  for (const char* sig : {"PLB_RST", "PLB_WR_REQ", "PLB_WR_CE", "PLB_BE",
                          "PLB_WR_DATA", "PLB_WR_ACK"}) {
    trace.watch(sig);
  }
  (void)vp.call("f", {{0xAAAA}, {0x5555}});

  const std::size_t start = bench::first_high(trace, "PLB_WR_REQ");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded()).c_str());
  std::printf(
      "WR_REQ strobes with data on WR_DATA; WR_CE/BE stay steady until the\n"
      "user logic responds via WR_ACK, then lower for the turnaround\n"
      "(§4.3.1).  Two back-to-back single-word writes are shown.\n");
  return 0;
}
