// Microbenchmarks (google-benchmark): tool-side throughput — parsing,
// validation, HDL + driver generation, simulator stepping, and a full
// end-to-end driver call on the simulated SoC.
#include <benchmark/benchmark.h>

#include <string>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

void attach_kernel_counters(benchmark::State& state,
                            const rtl::Simulator& sim) {
  const auto& st = sim.stats();
  const double settles = static_cast<double>(st.settles ? st.settles : 1);
  state.counters["evals/settle"] =
      static_cast<double>(st.evals) / settles;
  state.counters["iters/settle"] =
      static_cast<double>(st.settle_iterations) / settles;
  state.counters["fallback_passes"] = static_cast<double>(st.fallback_passes);
}

void BM_ParseTimerSpec(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto spec = frontend::parse_spec(text, diags);
    benchmark::DoNotOptimize(spec);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseTimerSpec);

void BM_ValidateTimerSpec(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  DiagnosticEngine diags;
  auto parsed = frontend::parse_spec(text, diags);
  for (auto _ : state) {
    ir::DeviceSpec spec = *parsed;
    DiagnosticEngine d;
    benchmark::DoNotOptimize(ir::validate(spec, d));
  }
}
BENCHMARK(BM_ValidateTimerSpec);

void BM_GenerateTimerArtifacts(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  Engine engine;
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto artifacts = engine.generate(text, diags);
    benchmark::DoNotOptimize(artifacts);
  }
}
BENCHMARK(BM_GenerateTimerArtifacts);

void BM_SimulatorSteps(benchmark::State& state) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  for (auto _ : state) {
    vp.sim().step(100);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
  attach_kernel_counters(state, vp.sim());
}
BENCHMARK(BM_SimulatorSteps);

void BM_EndToEndDriverCall(benchmark::State& state) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  for (auto _ : state) {
    auto r = vp.call("get_clock");
    benchmark::DoNotOptimize(r);
  }
  attach_kernel_counters(state, vp.sim());
}
BENCHMARK(BM_EndToEndDriverCall);

// -- settle-heavy workloads: the case the event kernel was built for --------

// One link of a deep combinational chain: out = in + 1.  When `declared`
// the link registers its sensitivity; otherwise it lands in the fallback
// partition and every settle re-runs the whole chain per iteration.
class ChainLink : public rtl::Module {
 public:
  ChainLink(rtl::Simulator& sim, rtl::Signal& in, const std::string& out,
            bool declared)
      : rtl::Module("link_" + out), in_(in), out_(sim.signal(out, 32)) {
    if (declared) watch(in_);
  }
  void eval_comb() override { out_.drive(in_.get() + 1); }
  rtl::Signal& in_;
  rtl::Signal& out_;
};

// A register feeding the chain head so each cycle perturbs only the root.
class ChainDriver : public rtl::Module {
 public:
  explicit ChainDriver(rtl::Simulator& sim)
      : rtl::Module("chain_driver"), head_(sim.signal("head", 32)) {
    watch_none();
  }
  void clock_edge() override { head_.set(head_.get() + 1); }
  rtl::Signal& head_;
};

/// Arg 0: chain depth.  Arg 1: 1 = sensitivity-declared (event-driven
/// propagation), 0 = undeclared (legacy full-pass fix point over the
/// fallback partition).
void BM_SettleCombChain(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const bool declared = state.range(1) != 0;
  rtl::Simulator sim;
  auto& driver = sim.add<ChainDriver>(sim);
  rtl::Signal* prev = &driver.head_;
  for (std::size_t i = 0; i < depth; ++i) {
    auto& link = sim.add<ChainLink>(sim, *prev, "n" + std::to_string(i),
                                    declared);
    prev = &link.out_;
  }
  for (auto _ : state) {
    sim.step(10);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10);
  attach_kernel_counters(state, sim);
}
BENCHMARK(BM_SettleCombChain)
    ->ArgNames({"depth", "declared"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

/// Many ICOB stubs behind one arbiter: the fanout case.  Each driver call
/// touches one stub, but the legacy kernel re-evaluates the arbiter mux
/// and every adapter for all of them on every settle iteration.
void BM_SettleArbiterFanout(benchmark::State& state) {
  const auto instances = state.range(0);
  const std::string text =
      "%device_name fanout\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int crunch(int x):" + std::to_string(instances) + ";\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap behaviors;
  behaviors.set("crunch", [](const elab::CallContext& ctx) {
    return elab::CalcResult(2, {ctx.scalar(0) + 1});
  });
  runtime::VirtualPlatform vp(*spec, std::move(behaviors));
  vp.sim().set_settle_mode(state.range(1) != 0
                               ? rtl::Simulator::SettleMode::kEventDriven
                               : rtl::Simulator::SettleMode::kFullPass);
  std::uint32_t inst = 0;
  for (auto _ : state) {
    auto r = vp.call("crunch", {{42}}, inst);
    benchmark::DoNotOptimize(r);
    inst = (inst + 1) % static_cast<std::uint32_t>(instances);
  }
  attach_kernel_counters(state, vp.sim());
}
BENCHMARK(BM_SettleArbiterFanout)
    ->ArgNames({"instances", "event"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1});

}  // namespace

BENCHMARK_MAIN();
