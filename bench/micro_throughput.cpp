// Microbenchmarks (google-benchmark): tool-side throughput — parsing,
// validation, HDL + driver generation, simulator stepping, and a full
// end-to-end driver call on the simulated SoC.
#include <benchmark/benchmark.h>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

void BM_ParseTimerSpec(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto spec = frontend::parse_spec(text, diags);
    benchmark::DoNotOptimize(spec);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_ParseTimerSpec);

void BM_ValidateTimerSpec(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  DiagnosticEngine diags;
  auto parsed = frontend::parse_spec(text, diags);
  for (auto _ : state) {
    ir::DeviceSpec spec = *parsed;
    DiagnosticEngine d;
    benchmark::DoNotOptimize(ir::validate(spec, d));
  }
}
BENCHMARK(BM_ValidateTimerSpec);

void BM_GenerateTimerArtifacts(benchmark::State& state) {
  const std::string text = devices::timer_spec_text();
  Engine engine;
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto artifacts = engine.generate(text, diags);
    benchmark::DoNotOptimize(artifacts);
  }
}
BENCHMARK(BM_GenerateTimerArtifacts);

void BM_SimulatorSteps(benchmark::State& state) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  for (auto _ : state) {
    vp.sim().step(100);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100);
}
BENCHMARK(BM_SimulatorSteps);

void BM_EndToEndDriverCall(benchmark::State& state) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  for (auto _ : state) {
    auto r = vp.call("get_clock");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EndToEndDriverCall);

}  // namespace

BENCHMARK_MAIN();
