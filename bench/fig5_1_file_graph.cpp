// Figure 5.1 / 5.2: the interconnections between generated HDL files and
// the layout of a typical user-logic stub, reported for the chapter-8
// timer device.
#include "bench_common.hpp"
#include "codegen/stub_model.hpp"
#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 5.1 / 5.2",
                      "Generated file graph and user-logic stub layout "
                      "(hw_timer device)");

  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  if (!artifacts) {
    std::fprintf(stderr, "%s", diags.render().c_str());
    return 1;
  }

  std::printf("Target System Bus\n");
  std::printf("      |\n");
  std::printf("  [Generated Bus Interface]   %s\n",
              artifacts->hardware[0].filename.c_str());
  std::printf("      |  (SIS)\n");
  std::printf("  [Generated Bus Arbiter]     user_%s.vhd\n",
              artifacts->spec.target.device_name.c_str());
  for (const auto& fn : artifacts->spec.functions) {
    std::printf("      |-- [User-Defined Hardware Function]  func_%s.vhd "
                "(FUNC_ID %u)\n",
                fn.name.c_str(), fn.func_id);
  }

  std::printf("\nFigure 5.2 — stub layout (ICOB + SMB) per function:\n\n");
  TextTable t;
  t.set_header({"Function", "SMB states", "Registers", "Comparators",
                "State sequence"});
  for (const auto& fn : artifacts->spec.functions) {
    const codegen::StubModel m =
        codegen::build_stub_model(fn, artifacts->spec.target);
    std::string seq;
    for (const auto& st : m.states) {
      if (!seq.empty()) seq += " -> ";
      seq += st.name;
    }
    t.add_row({fn.name, std::to_string(m.states.size()),
               std::to_string(m.registers.size()),
               std::to_string(m.comparators.size()), seq});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
