// Figures 6.1 / 6.2: the generated driver code for a simple hardware
// function and for one with multiple hardware instances — regenerated
// verbatim from the C emitter.
#include "bench_common.hpp"
#include "core/splice.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figures 6.1 / 6.2",
                      "Splice-based driver code (generated)");

  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(R"(
    %device_name sample_dev
    %bus_type plb
    %bus_width 32
    %base_address 0x80000000
    float sample_function(int*:2 x, int y);
    float multi_function(int*:2 x, int y):4;
  )", diags);
  if (!artifacts) {
    std::fprintf(stderr, "%s", diags.render().c_str());
    return 1;
  }
  std::printf("%s\n", artifacts->find("sample_dev_driver.c")->content.c_str());
  std::printf("--- driver header ---\n%s\n",
              artifacts->find("sample_dev_driver.h")->content.c_str());
  return 0;
}
