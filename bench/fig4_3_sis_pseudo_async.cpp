// Figure 4.3: "The SIS Pseudo Asynchronous Transmission Protocol" — the
// timing diagram regenerated as an ASCII waveform from live simulation of
// a generated device behind the PLB adapter.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.3",
                      "SIS pseudo asynchronous transmission protocol "
                      "(simulated waveform)");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int a, int b);\n",
      diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap behaviors;
  behaviors.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{2, {ctx.scalar(0) + ctx.scalar(1)}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), behaviors);

  rtl::Trace trace(vp.sim());
  for (const char* sig :
       {"SIS_RST", "SIS_DATA_IN", "SIS_DATA_IN_VALID", "SIS_IO_ENABLE",
        "SIS_FUNC_ID", "SIS_DATA_OUT", "SIS_DATA_OUT_VALID", "SIS_IO_DONE",
        "SIS_CALC_DONE"}) {
    trace.watch(sig);
  }

  auto r = vp.call("f", {{0xBEEF}, {0x11}});
  std::printf("call f(0xBEEF, 0x11) -> 0x%llX in %llu bus cycles\n\n",
              static_cast<unsigned long long>(r.outputs.at(0)),
              static_cast<unsigned long long>(r.bus_cycles));

  const std::size_t start = bench::first_high(trace, "SIS_IO_ENABLE");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded())
                  .c_str());
  std::printf(
      "Each write: IO_ENABLE strobes for one cycle with DATA_IN_VALID held\n"
      "until the function pulses IO_DONE; the read is answered with\n"
      "DATA_OUT + DATA_OUT_VALID + IO_DONE raised together (§4.2.1).\n");
  std::printf("Protocol checker violations: %zu\n",
              vp.checker().violations().size());
  return vp.checker().clean() ? 0 : 1;
}
