// Figure 4.4: "The SIS Strictly Synchronous Transmission Protocol" — the
// APB variant: single-cycle writes, CALC_DONE polling through the reserved
// function id 0, then the delayed read.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.4",
                      "SIS strictly synchronous transmission protocol "
                      "(simulated waveform, APB)");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type apb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int a, int b);\n",
      diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap behaviors;
  behaviors.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{6, {ctx.scalar(0) + ctx.scalar(1)}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), behaviors);

  rtl::Trace trace(vp.sim());
  for (const char* sig :
       {"SIS_DATA_IN", "SIS_DATA_IN_VALID", "SIS_IO_ENABLE", "SIS_FUNC_ID",
        "SIS_DATA_OUT", "SIS_CALC_DONE"}) {
    trace.watch(sig);
  }

  auto r = vp.call("f", {{0xBEEF}, {0x11}});
  std::printf("call f(0xBEEF, 0x11) -> 0x%llX in %llu bus cycles "
              "(%llu CALC_DONE polls)\n\n",
              static_cast<unsigned long long>(r.outputs.at(0)),
              static_cast<unsigned long long>(r.bus_cycles),
              static_cast<unsigned long long>(vp.cpu().polls_performed()));

  const std::size_t start = bench::first_high(trace, "SIS_IO_ENABLE");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded())
                  .c_str());
  std::printf(
      "Writes complete in the cycle they are enacted (no IO_DONE pacing);\n"
      "the driver polls the CALC_DONE status register through FUNC_ID 0\n"
      "before issuing the delayed read (§4.2.2).\n");
  std::printf("Protocol checker violations: %zu\n",
              vp.checker().violations().size());
  return vp.checker().clean() ? 0 : 1;
}
