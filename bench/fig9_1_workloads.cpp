// Figure 9.1: "Input Parameters Required for Each Scenario".
#include "bench_common.hpp"
#include "devices/interpolator.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 9.1",
                      "Input parameters required for each scenario");
  TextTable t;
  t.set_header({"Scenario", "Set 1", "Set 2", "Set 3", "Total"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right});
  for (const auto& sc : devices::scenarios()) {
    t.add_row({std::to_string(sc.id), std::to_string(sc.set1),
               std::to_string(sc.set2), std::to_string(sc.set3),
               std::to_string(sc.total())});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Note: the thesis prints a total of 16 for scenario 3, although its\n"
      "own set sizes (8 + 3 + 6) sum to 17; we reproduce the set sizes.\n");
  return 0;
}
