// Figure 4.5: "The PLB Read Protocol" — native pin-level waveform of read
// transactions (request strobe, held chip-enables, acknowledge).
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.5", "The PLB read protocol (simulated)");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int a);\n",
      diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap behaviors;
  behaviors.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{4, {ctx.scalar(0) ^ 0xFFFF}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), behaviors);

  rtl::Trace trace(vp.sim());
  for (const char* sig : {"PLB_RST", "PLB_RD_REQ", "PLB_RD_CE", "PLB_BE",
                          "PLB_RD_DATA", "PLB_RD_ACK"}) {
    trace.watch(sig);
  }
  auto r = vp.call("f", {{0x1234}});
  std::printf("read-back result: 0x%llX\n\n",
              static_cast<unsigned long long>(r.outputs.at(0)));

  const std::size_t start = bench::first_high(trace, "PLB_RD_REQ");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded()).c_str());
  std::printf(
      "RD_REQ strobes for a single cycle; RD_CE and BE hold until the\n"
      "peripheral answers with RD_DATA + RD_ACK (a delayed read while the\n"
      "calculation finishes, §4.3.1).\n");
  return 0;
}
