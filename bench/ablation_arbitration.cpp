// Ablation: arbitration depth across interconnects — the same device and
// workload on the directly-attached PLB, the bridged OPB (§2.3.2), the
// double-bridged strictly synchronous APB (§2.3.1), the co-processor FCB
// and the pipelined AHB.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

std::uint64_t run_on(const std::string& bus) {
  const bool mapped = bus != "fcb";
  std::string text = "%device_name ab\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (mapped ? "%base_address 0x80000000\n" : "") +
                     "int f(char n, int*:n xs);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    std::uint64_t s = 0;
    for (auto v : ctx.array(1)) s += v;
    return elab::CalcResult{8, {s}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  std::vector<std::uint64_t> xs(8, 3);
  (void)vp.call("f", {{8}, xs});
  return vp.call("f", {{8}, xs}).bus_cycles;
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation",
                      "Arbitration depth: one workload, five interconnects");
  TextTable t;
  t.set_header({"bus", "layers between CPU and device", "cycles/run"});
  t.set_alignment({TextTable::Align::Left, TextTable::Align::Left,
                   TextTable::Align::Right});
  t.add_row({"fcb", "co-processor port (no arbitration)",
             std::to_string(run_on("fcb"))});
  t.add_row({"plb", "bus arbiter", std::to_string(run_on("plb"))});
  t.add_row({"apb", "AHB bridge + strictly synchronous port + polling",
             std::to_string(run_on("apb"))});
  t.add_row({"ahb", "bus arbiter, pipelined phases (per-word SIS handshake "
             "limits the pipelining)",
             std::to_string(run_on("ahb"))});
  t.add_row({"opb", "PLB bridge + shared-access arbiter",
             std::to_string(run_on("opb"))});
  std::printf("%s\n", t.render().c_str());
  std::printf("Matches §2.3: every bridge layer adds per-transaction "
              "latency, and the\nstrictly synchronous APB pays additional "
              "status polling for its read.\n");
  return 0;
}
