// Figures 7.1 / 7.2 / 7.3: the extension-API surface — standard hardware
// macros, required software macros, and the splice_params structures
// (reported from the live registry and template engine).
#include "adapters/registry.hpp"
#include "bench_common.hpp"
#include "codegen/template.hpp"
#include "devices/timer.hpp"
#include "support/text_table.hpp"

#include <algorithm>

int main() {
  using namespace splice;
  bench::print_header("Figures 7.1 / 7.2 / 7.3", "The Splice extension API");

  std::printf("Figure 7.1 — standard hardware template macros:\n");
  auto names = codegen::make_standard_engine().macro_names();
  std::sort(names.begin(), names.end());
  for (const auto& n : names) std::printf("  %%%s%%\n", n.c_str());

  std::printf("\nFigure 7.2 — software macros every bus library defines "
              "(from the generated PLB splice_lib.h):\n");
  const auto* plb = adapters::AdapterRegistry::instance().find("plb");
  auto spec = devices::make_timer_spec();
  const std::string lib = plb->macro_library(spec);
  for (const char* macro :
       {"SET_ADDRESS", "WRITE_SINGLE", "WRITE_DOUBLE", "WRITE_QUAD",
        "READ_SINGLE", "READ_DOUBLE", "READ_QUAD", "WAIT_FOR_RESULTS"}) {
    std::printf("  %-18s %s\n", macro,
                lib.find(std::string("#define ") + macro) != std::string::npos
                    ? "defined"
                    : "MISSING");
  }

  std::printf("\nFigure 7.3 — splice_params for the hw_timer device:\n");
  std::printf("  mod_name        = %s\n", spec.target.device_name.c_str());
  std::printf("  bus_type        = %s\n", spec.target.bus_type.c_str());
  std::printf("  base_addr       = 0x%llX\n",
              static_cast<unsigned long long>(*spec.target.base_address));
  std::printf("  data_width      = %u\n", spec.target.bus_width);
  std::printf("  func_id_width   = %u\n", spec.func_id_width());
  std::printf("  dma_support_f   = %s\n",
              spec.target.dma_support ? "true" : "false");
  std::printf("  nmbr_funcs      = %zu\n", spec.functions.size());
  std::printf("  total_instances = %u\n\n", spec.total_instances());

  TextTable t;
  t.set_header({"func_name", "func_id", "instances", "inputs", "has_output",
                "output bits"});
  for (const auto& fn : spec.functions) {
    t.add_row({fn.name, std::to_string(fn.func_id),
               std::to_string(fn.instances), std::to_string(fn.inputs.size()),
               fn.has_output() ? "true" : "false",
               fn.has_output() ? std::to_string(fn.output.type.bits) : "-"});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nRegistered interface libraries (§7.2 naming rule):\n");
  for (const auto& bus : adapters::AdapterRegistry::instance().names()) {
    std::printf("  %s\n", adapters::library_filename(bus).c_str());
  }
  return 0;
}
