// Generation-pipeline throughput harness: compiles a 6-spec x 2-HDL corpus
// through the batch path (outer fan-out over specs, inner fan-out over
// modules, one shared pool) and reports specs/second for a jobs sweep, with
// the artifact cache disabled, cold and warm.  Results are written as JSON
// (BENCH_gen.json by default, or argv[1]) so runs can be diffed in review.
//
// Custom main rather than google-benchmark: the quantity of interest is
// end-to-end batch wall-clock under different scheduler/cache settings, and
// the JSON report needs the whole sweep in one process.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/splice.hpp"
#include "support/telemetry.hpp"

namespace {

namespace fs = std::filesystem;

using namespace splice;

// Same corpus as tests/test_hdl_golden.cpp, both HDL flavours.
const char* kSpecs[] = {
    "%device_name t1\n%bus_type plb\n%bus_width 32\n"
    "%base_address 0x80000000\n%user_type llong, unsigned long long, 64\n"
    "void set(llong v);\nllong get();\n",
    "%device_name t2\n%bus_type fcb\n%bus_width 32\n%burst_support true\n"
    "int sum(char n, int*:n xs);\nvoid fill(char*:16+ data);\n",
    "%device_name t3\n%bus_type plb\n%bus_width 32\n"
    "%base_address 0x80000000\n%dma_support true\n"
    "void burst(int*:32^ block);\n",
    "%device_name t4\n%bus_type apb\n%bus_width 32\n"
    "%base_address 0x80000000\nint work(int x):5;\nnowait kick(int v);\n",
    "%device_name t5\n%bus_type ahb\n%bus_width 32\n"
    "%base_address 0x80000000\n%irq_support true\n"
    "int scale(int k, int*:4& xs);\n",
    "%device_name t6\n%bus_type opb\n%bus_width 32\n"
    "%base_address 0x80000000\nint a();\nint b();\nint c();\nint d();\n",
};

std::vector<std::string> build_corpus() {
  std::vector<std::string> corpus;
  for (const char* s : kSpecs) {
    corpus.emplace_back(s);
    corpus.emplace_back(std::string(s) + "%target_hdl verilog\n");
  }
  return corpus;
}

enum class CacheMode { Off, Cold, Warm };

const char* mode_name(CacheMode m) {
  switch (m) {
    case CacheMode::Off:
      return "off";
    case CacheMode::Cold:
      return "cold";
    case CacheMode::Warm:
      return "warm";
  }
  return "?";
}

struct Sample {
  unsigned jobs = 1;
  CacheMode mode = CacheMode::Off;
  double ms = 0;            // best-of-repetitions batch wall-clock
  double specs_per_s = 0;
  /// Median of the timed repetitions: robust to one lucky (or unlucky)
  /// run, which is what regression diffs should compare.
  double median_ms = 0;
  double median_specs_per_s = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Per-phase CPU-side wall time (us summed over all jobs) of the best
  /// repetition, from the telemetry registry's snapshot diff.
  std::map<std::string, std::uint64_t> phase_us;
};

/// One timed batch compile of the whole corpus, mirroring the CLI: a shared
/// pool drives both the per-spec and the per-module fan-out.
double run_batch(const std::vector<std::string>& corpus, unsigned jobs,
                 ArtifactCache* cache,
                 support::telemetry::MetricsRegistry* metrics) {
  support::JobPool pool(jobs > 1 ? jobs - 1 : 0);
  EngineOptions opt;
  opt.jobs = jobs;
  opt.pool = jobs > 1 ? &pool : nullptr;
  opt.metrics = metrics;
  const Engine engine(adapters::AdapterRegistry::instance(), opt);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<int> ok(corpus.size(), 0);
  support::parallel_for(opt.pool, corpus.size(), [&](std::size_t i) {
    DiagnosticEngine diags;
    auto out = engine.generate_cached(corpus[i], diags, cache);
    ok[i] = out.has_value() ? 1 : 0;
  });
  const auto t1 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (!ok[i]) {
      std::fprintf(stderr, "corpus spec %zu failed to compile\n", i);
      std::exit(1);
    }
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Fold a snapshot diff into the per-phase map BENCH_gen.json reports:
/// each engine phase's summed wall time plus the cache's I/O buckets.
std::map<std::string, std::uint64_t> phase_times(
    const support::telemetry::MetricsSnapshot& delta) {
  std::map<std::string, std::uint64_t> out;
  const std::pair<const char*, const char*> kPhases[] = {
      {"parse", "gen.parse_us"},        {"validate", "gen.validate_us"},
      {"codegen", "gen.codegen_us"},    {"drivergen", "gen.drivergen_us"},
      {"merge", "gen.merge_us"},        {"cache_load", "cache.open_us"},
      {"cache_store", "cache.rename_us"}};
  for (const auto& [key, histogram] : kPhases) {
    const auto it = delta.histograms.find(histogram);
    out[key] = it == delta.histograms.end() ? 0 : it->second.sum;
  }
  return out;
}

Sample measure(const std::vector<std::string>& corpus, unsigned jobs,
               CacheMode mode, const fs::path& cache_root, int reps) {
  Sample s;
  s.jobs = jobs;
  s.mode = mode;
  s.ms = 1e300;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  support::telemetry::MetricsRegistry metrics;
  for (int rep = 0; rep < reps; ++rep) {
    const fs::path dir =
        cache_root / ("c_" + std::to_string(jobs) + "_" +
                      std::string(mode_name(mode)) + "_" +
                      std::to_string(mode == CacheMode::Warm ? 0 : rep));
    std::optional<ArtifactCache> cache;
    if (mode != CacheMode::Off) {
      cache.emplace(dir.string(), &metrics);
      if (mode == CacheMode::Warm && rep == 0) {
        // Populate once; the timed runs below then hit every entry.
        run_batch(corpus, jobs, &*cache, nullptr);
      }
    }
    // Snapshot-diff around the timed batch: the best repetition's phase
    // breakdown lands in the report alongside its wall-clock.
    const auto before = metrics.snapshot();
    const double ms =
        run_batch(corpus, jobs, cache ? &*cache : nullptr, &metrics);
    times.push_back(ms);
    if (ms < s.ms) {
      s.ms = ms;
      s.phase_us = phase_times(metrics.snapshot().diff_since(before));
    }
    if (cache) {
      s.hits = cache->stats().hits;
      s.misses = cache->stats().misses;
    }
    if (mode == CacheMode::Cold) fs::remove_all(dir);
  }
  s.specs_per_s = 1000.0 * static_cast<double>(corpus.size()) / s.ms;
  // Median of the sorted repetition times (mean of the middle pair for an
  // even count).
  std::sort(times.begin(), times.end());
  const std::size_t n = times.size();
  s.median_ms = n % 2 == 1 ? times[n / 2]
                           : (times[n / 2 - 1] + times[n / 2]) / 2.0;
  s.median_specs_per_s =
      1000.0 * static_cast<double>(corpus.size()) / s.median_ms;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  // --smoke: one cell (jobs=1, cache off, 3 reps) for the check.sh
  // perf-regression gate; everything else identical to the full sweep so
  // the phase_us numbers stay comparable with the checked-in recording.
  bool smoke = false;
  std::string json_path = "BENCH_gen.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  const std::vector<std::string> corpus = build_corpus();
  const fs::path cache_root =
      fs::temp_directory_path() / "splice_gen_throughput_cache";
  fs::remove_all(cache_root);
  fs::create_directories(cache_root);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("gen_throughput: %zu specs, hardware_concurrency=%u\n\n",
              corpus.size(), hw);
  if (hw <= 1) {
    std::printf(
        "warning: hardware_concurrency=%u — the --jobs sweep cannot show "
        "parallel speedup on this machine; expect a flat (or slightly "
        "regressing, from pool overhead) jobs axis\n\n",
        hw);
  }
  std::printf("%6s  %6s  %10s  %10s  %10s  %10s  %6s  %6s\n", "jobs",
              "cache", "batch-ms", "specs/s", "med-ms", "med-sp/s", "hits",
              "miss");

  const std::vector<unsigned> jobs_axis =
      smoke ? std::vector<unsigned>{1u} : std::vector<unsigned>{1u, 2u, 4u, 8u};
  const std::vector<CacheMode> mode_axis =
      smoke ? std::vector<CacheMode>{CacheMode::Off}
            : std::vector<CacheMode>{CacheMode::Off, CacheMode::Cold,
                                     CacheMode::Warm};
  const int reps = smoke ? 3 : 5;
  std::vector<Sample> samples;
  for (const unsigned jobs : jobs_axis) {
    for (const CacheMode mode : mode_axis) {
      const Sample s = measure(corpus, jobs, mode, cache_root, reps);
      std::printf("%6u  %6s  %10.2f  %10.1f  %10.2f  %10.1f  %6llu  %6llu\n",
                  s.jobs, mode_name(s.mode), s.ms, s.specs_per_s, s.median_ms,
                  s.median_specs_per_s,
                  static_cast<unsigned long long>(s.hits),
                  static_cast<unsigned long long>(s.misses));
      samples.push_back(s);
    }
  }
  fs::remove_all(cache_root);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"gen_throughput\",\n");
  std::fprintf(f, "  \"corpus_specs\": %zu,\n", corpus.size());
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  if (hw <= 1) {
    std::fprintf(f,
                 "  \"note\": \"recorded on a single-CPU machine: the jobs "
                 "sweep is expected to be flat and jobs >= 4 may regress "
                 "from pool overhead\",\n");
  }
  std::fprintf(f,
               "  \"timing\": \"best and median of %d repetitions per "
               "cell\",\n",
               reps);
  std::fprintf(f, "  \"samples\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"jobs\": %u, \"cache\": \"%s\", \"batch_ms\": %.3f, "
                 "\"specs_per_s\": %.1f, \"median_batch_ms\": %.3f, "
                 "\"median_specs_per_s\": %.1f, \"hits\": %llu, "
                 "\"misses\": %llu, \"phase_us\": {",
                 s.jobs, mode_name(s.mode), s.ms, s.specs_per_s, s.median_ms,
                 s.median_specs_per_s,
                 static_cast<unsigned long long>(s.hits),
                 static_cast<unsigned long long>(s.misses));
    bool first = true;
    for (const auto& [phase, us] : s.phase_us) {
      std::fprintf(f, "%s\"%s\": %llu", first ? "" : ", ", phase.c_str(),
                   static_cast<unsigned long long>(us));
      first = false;
    }
    std::fprintf(f, "}}%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
