// Interpreter-vs-compiled backend comparison harness: idle stepping
// (BM_SimulatorSteps), end-to-end driver calls (BM_EndToEndDriverCall, a
// calculation-window workload plus transfer-bound companions), the fig9
// interpolator scenarios, and a 12-spec fuzz-corpus replay.  Results are
// written as JSON (BENCH_sim.json by default, or argv[1]) so runs can be
// diffed in review.
//
// Custom main rather than google-benchmark: every workload must run the
// *same* platform twice (once per backend) and the JSON report wants the
// paired speedups in one process.  `--smoke` shrinks every loop to a
// fraction of a second for tools/check.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "devices/interpolator.hpp"
#include "devices/timer.hpp"
#include "rtl/observe/platform_observer.hpp"
#include "runtime/platform.hpp"
#include "testing/conformance.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using Clock = std::chrono::steady_clock;
using Backend = rtl::Simulator::Backend;

int g_reps = 5;
double g_scale = 1.0;

/// Best-of-reps wall time of fn() in nanoseconds, divided by `items`.
template <typename Fn>
double best_of(std::uint64_t items, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < g_reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double dt =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    best = std::min(best, dt / static_cast<double>(items));
  }
  return best;
}

std::uint64_t scaled(std::uint64_t n) {
  const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * g_scale);
  return s == 0 ? 1 : s;
}

struct Row {
  std::string name;
  std::string detail;
  std::string unit;
  double interp = 0;
  double compiled = 0;
  /// Decoded bus-activity shape of one call (workloads that report it):
  /// completed transfers and wait-state cycles per call.  Cycle-exact and
  /// backend-independent, so review can tell a timing regression (same
  /// transactions, slower wall clock) from a workload change.
  bool has_bus_shape = false;
  std::uint64_t transactions = 0;
  std::uint64_t stall_cycles = 0;

  [[nodiscard]] double speedup() const {
    return compiled > 0 ? interp / compiled : 0;
  }
};

drivergen::CallArgs scenario_args(const devices::Scenario& sc) {
  const devices::ScenarioInputs in = devices::make_inputs(sc);
  return {{static_cast<std::uint64_t>(in.set1.size())}, in.set1,
          {static_cast<std::uint64_t>(in.set2.size())}, in.set2,
          {static_cast<std::uint64_t>(in.set3.size())}, in.set3};
}

/// Idle stepping on the enabled timer platform: the quiescent-cycle rate
/// the clock-gating + settle fast paths were built for.
double run_steps(Backend be) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  vp.sim().set_backend(be);
  vp.call("enable");
  const std::uint64_t cycles = scaled(200'000);
  vp.sim().step(1000);  // warm: compile + settle once
  return best_of(cycles, [&] { vp.sim().step(cycles); });
}

/// Transfer-bound companion: the cheapest real driver call (timer
/// get_clock — one register read, no calculation window).
double run_call_min(Backend be) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  vp.sim().set_backend(be);
  vp.call("enable");
  const std::uint64_t calls = scaled(20'000);
  for (int i = 0; i < 100; ++i) vp.call("get_clock");
  return best_of(calls, [&] {
    for (std::uint64_t i = 0; i < calls; ++i) vp.call("get_clock");
  });
}

/// The headline end-to-end call: the fig9 interpolator data transfer with
/// a representative device calculation window (256 cycles — a DSP-class
/// latency), so the measurement covers argument transfer, busy-wait
/// quiescence, and result readback in realistic proportion.
double run_call_calc(Backend be, unsigned calc_cycles) {
  elab::BehaviorMap behaviors;
  behaviors.set("interp", [calc_cycles](const elab::CallContext& ctx) {
    const std::uint32_t result =
        devices::interpolate(ctx.array(1), ctx.array(3), ctx.array(5));
    return elab::CalcResult{calc_cycles, {result}};
  });
  runtime::VirtualPlatform vp(devices::make_interpolator_spec("plb", false,
                                                              false),
                              std::move(behaviors));
  vp.sim().set_backend(be);
  const drivergen::CallArgs args = scenario_args(devices::scenarios()[0]);
  const std::uint64_t calls = scaled(2'000);
  for (int i = 0; i < 20; ++i) vp.call("interp", args);
  return best_of(calls, [&] {
    for (std::uint64_t i = 0; i < calls; ++i) vp.call("interp", args);
  });
}

/// One fig9 scenario exactly as published (paper-default calc latency).
double run_fig9(Backend be, const devices::Scenario& sc) {
  runtime::VirtualPlatform vp(
      devices::make_interpolator_spec("plb", false, false),
      devices::make_interpolator_behaviors());
  vp.sim().set_backend(be);
  const drivergen::CallArgs args = scenario_args(sc);
  const std::uint64_t calls = scaled(1'000);
  for (int i = 0; i < 20; ++i) vp.call("interp", args);
  return best_of(calls, [&] {
    for (std::uint64_t i = 0; i < calls; ++i) vp.call("interp", args);
  });
}

/// One instrumented (non-timed) fig9 call with the transaction decoders
/// attached: fills in the per-call bus shape for the row.  Runs outside
/// the measured loops so observability costs never touch the timings.
void fill_fig9_bus_shape(const devices::Scenario& sc, Row& row) {
  runtime::VirtualPlatform vp(
      devices::make_interpolator_spec("plb", false, false),
      devices::make_interpolator_behaviors());
  rtl::observe::PlatformObserver observer(vp);
  observer.begin_call("interp", 0);
  vp.call("interp", scenario_args(sc));
  observer.end_call();
  row.has_bus_shape = true;
  row.transactions = observer.transactions();
  row.stall_cycles = observer.stall_cycles();
}

/// Fuzz-corpus replay: 12 generated feature-mix specs through the full
/// conformance path (platform build + driver replay, no HDL diff) — the
/// fuzzer's specs/second multiplier.
double run_corpus(Backend be) {
  std::vector<testing::SpecModel> corpus;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    corpus.push_back(testing::generate_spec(seed));
  }
  testing::OracleOptions opt;
  opt.backend = be == Backend::kCompiled ? testing::OracleBackend::kCompiled
                                         : testing::OracleBackend::kInterp;
  opt.check_equivalence = false;
  const double ns = best_of(1, [&] {
    for (const auto& model : corpus) {
      const auto r = testing::run_conformance(model, opt);
      if (!r.ok()) {
        std::fprintf(stderr, "corpus replay failed: %s\n",
                     r.failures.empty() ? "spec rejected"
                                        : r.failures.front().c_str());
        std::exit(1);
      }
    }
  });
  return ns / 1e6;  // ms per 12-spec batch
}

Row measure(const std::string& name, const std::string& detail,
            const std::string& unit, double (*fn)(Backend)) {
  Row row{name, detail, unit};
  row.interp = fn(Backend::kInterp);
  row.compiled = fn(Backend::kCompiled);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  if (smoke) {
    g_reps = 1;
    g_scale = 0.02;
  }

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("sim_backend: interp vs compiled, best of %d, "
              "hardware_concurrency=%u%s\n\n",
              g_reps, hw, smoke ? " (smoke)" : "");
  if (hw <= 1) {
    std::printf("warning: hardware_concurrency=%u — single-CPU container, "
                "absolute numbers are conservative\n\n", hw);
  }

  std::vector<Row> rows;
  rows.push_back(measure("BM_SimulatorSteps", "timer platform, idle stepping",
                         "ns/cycle", run_steps));
  rows.push_back(measure(
      "BM_EndToEndDriverCall",
      "fig9 interpolator transfer + 256-cycle device calculation window",
      "ns/call", [](Backend be) { return run_call_calc(be, 256); }));
  rows.push_back(measure("driver_call_min",
                         "timer get_clock — transfer-bound, no calc window",
                         "ns/call", run_call_min));
  const auto& scenarios = devices::scenarios();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const devices::Scenario& sc = scenarios[i];
    rows.push_back(Row{"fig9_scenario_" + std::to_string(i),
                       "interpolator, paper-default calc latency", "ns/call",
                       run_fig9(Backend::kInterp, sc),
                       run_fig9(Backend::kCompiled, sc)});
    fill_fig9_bus_shape(sc, rows.back());
  }
  rows.push_back(measure(
      "fuzz_corpus_12",
      "12 generated specs, conformance replay (one-shot: platform build "
      "and program compile amortize over very few calls)",
      "ms/batch", run_corpus));

  std::printf("%-24s %12s %12s %9s  %s\n", "workload", "interp", "compiled",
              "speedup", "unit");
  for (const Row& r : rows) {
    std::printf("%-24s %12.1f %12.1f %8.2fx  %s", r.name.c_str(), r.interp,
                r.compiled, r.speedup(), r.unit.c_str());
    if (r.has_bus_shape) {
      std::printf("  (%llu txns, %llu stall cycles/call)",
                  static_cast<unsigned long long>(r.transactions),
                  static_cast<unsigned long long>(r.stall_cycles));
    }
    std::printf("\n");
  }

  if (smoke) {
    std::printf("\nsmoke run: not writing %s\n", json_path.c_str());
    return 0;
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_backend\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"timing\": \"best of %d repetitions\",\n", g_reps);
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"detail\": \"%s\", \"unit\": "
                 "\"%s\", \"interp\": %.1f, \"compiled\": %.1f, "
                 "\"speedup\": %.2f",
                 r.name.c_str(), r.detail.c_str(), r.unit.c_str(), r.interp,
                 r.compiled, r.speedup());
    if (r.has_bus_shape) {
      std::fprintf(f, ", \"transactions\": %llu, \"stall_cycles\": %llu",
                   static_cast<unsigned long long>(r.transactions),
                   static_cast<unsigned long long>(r.stall_cycles));
    }
    std::fprintf(f, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
