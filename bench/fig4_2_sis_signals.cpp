// Figure 4.2: "Listing of the Functionality of Each SIS Signal".
#include "bench_common.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.2", "The Splice Interface Standard signals");
  TextTable t;
  t.set_header({"Signal Name", "Type", "Purpose"});
  t.add_row({"CLK", "Broadcast",
             "Global clock signal used to coordinate all bus transactions"});
  t.add_row({"RST", "Broadcast",
             "Reset signal: terminate current operations, return the user "
             "logic to a known state"});
  t.add_row({"DATA_IN", "Broadcast",
             "Input data from the processor for use by the user logic"});
  t.add_row({"DATA_IN_VALID", "Broadcast",
             "Signals that input data is valid and waiting to be stored"});
  t.add_row({"IO_ENABLE", "Broadcast",
             "Signals the arrival of a new data request (read or write)"});
  t.add_row({"FUNC_ID", "Broadcast",
             "Targets a specific user-logic function in the system"});
  t.add_row({"DATA_OUT", "Per-Function",
             "Output data from the user logic in response to a request"});
  t.add_row({"DATA_OUT_VALID", "Per-Function",
             "Signals that output data is valid and waiting to be read"});
  t.add_row({"IO_DONE", "Per-Function",
             "Signals that the previous load/store operation completed"});
  t.add_row({"CALC_DONE", "Per-Function",
             "Signals that this function's calculations have completed"});
  std::printf("%s", t.render().c_str());
  return 0;
}
