// Ablation: PIO vs DMA transfer cost as a function of block length —
// locating the crossover the thesis cites ("does not benefit transactions
// of four or fewer data values", §9.2.1) and the setup/teardown overhead.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

std::uint64_t run_transfer(bool dma, unsigned n) {
  std::string text = std::string("%device_name ab\n%bus_type plb\n") +
                     "%bus_width 32\n%base_address 0x80000000\n" +
                     (dma ? "%dma_support true\n" : "") +
                     "void sink(char n, int*:n xs" + (dma ? "^" : "") +
                     " );\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  runtime::VirtualPlatform vp(std::move(*spec), {});
  std::vector<std::uint64_t> xs(n, 0xA5);
  // Warm run then measured run.
  (void)vp.call("sink", {{n}, xs});
  return vp.call("sink", {{n}, xs}).bus_cycles;
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation", "DMA vs PIO crossover (PLB)");

  TextTable t;
  t.set_header({"block words", "PIO cycles", "DMA cycles", "winner"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Left});
  unsigned crossover = 0;
  for (unsigned n : {1u, 2u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    const std::uint64_t pio = run_transfer(false, n);
    const std::uint64_t dma = run_transfer(true, n);
    if (crossover == 0 && dma < pio) crossover = n;
    t.add_row({std::to_string(n), std::to_string(pio), std::to_string(dma),
               dma < pio ? "DMA" : "PIO"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Crossover at ~%u words (paper: no benefit for <= 4 values; "
              "the §9.2.1 setup/teardown\ncost of four bus transactions "
              "plus the engine's memory fetches must amortize).\n",
              crossover);
  return 0;
}
