// Ablation: data packing on/off — §3.1.3 claims a 75% transmission-time
// reduction for four 8-bit characters per 32-bit word.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

std::uint64_t run_transfer(bool packed, unsigned n) {
  std::string text = std::string("%device_name ab\n%bus_type plb\n") +
                     "%bus_width 32\n%base_address 0x80000000\n" +
                     "void sink(char*:" + std::to_string(n) +
                     (packed ? "+" : "") + " xs);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  runtime::VirtualPlatform vp(std::move(*spec), {});
  std::vector<std::uint64_t> xs(n, 0x5A);
  (void)vp.call("sink", {xs});
  return vp.call("sink", {xs}).bus_cycles;
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation",
                      "'+' data packing on/off (chars over a 32-bit PLB)");
  TextTable t;
  t.set_header({"chars", "unpacked cycles", "packed cycles", "reduction"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right});
  for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
    const std::uint64_t off = run_transfer(false, n);
    const std::uint64_t on = run_transfer(true, n);
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.0f%%",
                  (1.0 - static_cast<double>(on) / off) * 100);
    t.add_row({std::to_string(n), std::to_string(off), std::to_string(on),
               pct});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("The transfer phase approaches the §3.1.3 claim (75%% fewer "
              "bus words for 8-bit\ndata on a 32-bit interface); the fixed "
              "call overhead dilutes the end-to-end ratio\nfor short "
              "arrays.\n");
  return 0;
}
