// Figure 4.7: "Adapting Between the PLB and SIS Read Protocols" — both
// signal sets in one waveform, lined up so the §4.3.2 correspondences
// (RD_REQ<->IO_ENABLE, RD_CE<->FUNC_ID, RD_ACK<->DATA_OUT_VALID/IO_DONE)
// are directly visible.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.7",
                      "Adapting between the PLB and SIS read protocols");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int a);\n",
      diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap behaviors;
  behaviors.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{3, {ctx.scalar(0) + 1}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), behaviors);

  rtl::Trace trace(vp.sim());
  // Native side above, SIS side below — rows correspond (§4.3.2).
  for (const char* sig :
       {"PLB_RD_REQ", "PLB_RD_CE", "PLB_RD_DATA", "PLB_RD_ACK",
        "SIS_IO_ENABLE", "SIS_FUNC_ID", "SIS_DATA_OUT", "SIS_DATA_OUT_VALID",
        "SIS_IO_DONE"}) {
    trace.watch(sig);
  }
  (void)vp.call("f", {{0x41}});

  const std::size_t start = bench::first_high(trace, "PLB_RD_REQ");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded()).c_str());
  std::printf(
      "Rows correspond top-to-bottom: RD_REQ plays the role of IO_ENABLE,\n"
      "the one-hot RD_CE becomes the binary FUNC_ID, and the function's\n"
      "DATA_OUT_VALID/IO_DONE pulse is returned as RD_ACK (§4.3.2).\n");
  return 0;
}
