// Ablation: the §3.1.6 multiple-instance extension — the thesis motivates
// it with multi-threaded software where each thread drives its own copy of
// the hardware function.  We model that dispatch pattern: all jobs' inputs
// are written round-robin across the N instances first (each thread
// "launches" its work), then the results are collected.  With one instance
// the second job's write stalls on the pseudo asynchronous bus until the
// first calculation drains; with enough copies the 60-cycle calculations
// fully overlap.
#include "bench_common.hpp"
#include "drivergen/program.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;
using drivergen::DriverOp;
using drivergen::OpCode;

ir::DeviceSpec make_spec(unsigned instances) {
  std::string text = "%device_name ab\n%bus_type plb\n%bus_width 32\n"
                     "%base_address 0x80000000\n"
                     "int crunch(int x):" + std::to_string(instances) + ";\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  return std::move(*spec);
}

std::uint64_t run_jobs(unsigned instances, unsigned jobs) {
  elab::BehaviorMap b;
  b.set("crunch", [](const elab::CallContext& ctx) {
    return elab::CalcResult{60, {ctx.scalar(0) * 2}};
  });
  runtime::VirtualPlatform vp(make_spec(instances), b);
  const std::uint32_t base_fid = vp.spec().functions[0].func_id;

  // Process jobs in rounds of N: dispatch one input to every instance,
  // then collect that round's results.  A blocking instance can only hold
  // one call at a time, so N bounds the achievable overlap.
  drivergen::DriverProgram program;
  program.function_name = "crunch";
  for (unsigned round = 0; round * instances < jobs; ++round) {
    const unsigned in_round =
        std::min(instances, jobs - round * instances);
    for (unsigned k = 0; k < in_round; ++k) {
      const std::uint32_t fid = base_fid + k;
      program.ops.push_back(DriverOp{OpCode::SetAddress, fid, {}, 0});
      program.ops.push_back(
          DriverOp{OpCode::WriteSingle, fid, {round * instances + k + 1}, 0});
    }
    for (unsigned k = 0; k < in_round; ++k) {
      const std::uint32_t fid = base_fid + k;
      program.ops.push_back(DriverOp{OpCode::ReadSingle, fid, {}, 1});
      program.total_read_words += 1;
    }
  }
  vp.cpu().run(std::move(program));

  const std::uint64_t start = vp.sim().cycle();
  vp.sim().step_until([&] { return vp.cpu().done(); }, 1'000'000);
  return vp.sim().cycle() - start;
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation",
                      "Multiple hardware instances (§3.1.6): 8 jobs with a "
                      "60-cycle calculation each, dispatch-then-collect");
  TextTable t;
  t.set_header({"instances", "total cycles", "speedup vs 1"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right});
  const std::uint64_t base = run_jobs(1, 8);
  for (unsigned n : {1u, 2u, 4u, 8u}) {
    const std::uint64_t c = run_jobs(n, 8);
    char speedup[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  static_cast<double>(base) / c);
    t.add_row({std::to_string(n), std::to_string(c), speedup});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("All copies calculate concurrently while the shared bus "
              "serializes only the\nI/O (§5.3: \"all other functions in "
              "the system can still perform calculations\").\n");
  return 0;
}
