// Figure 4.8: "Adapting Between the PLB and SIS Write Protocols" — the
// write-side counterpart of Figure 4.7.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  bench::print_header("Figure 4.8",
                      "Adapting between the PLB and SIS write protocols");

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wavedev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nvoid f(int a, int b);\n",
      diags);
  ir::validate(*spec, diags);
  runtime::VirtualPlatform vp(std::move(*spec), {});

  rtl::Trace trace(vp.sim());
  for (const char* sig :
       {"PLB_WR_REQ", "PLB_WR_CE", "PLB_BE", "PLB_WR_DATA", "PLB_WR_ACK",
        "SIS_IO_ENABLE", "SIS_FUNC_ID", "SIS_DATA_IN", "SIS_DATA_IN_VALID",
        "SIS_IO_DONE"}) {
    trace.watch(sig);
  }
  (void)vp.call("f", {{0xC0DE}, {0xF00D}});

  const std::size_t start = bench::first_high(trace, "PLB_WR_REQ");
  std::printf("%s\n",
              trace.render_ascii(start > 1 ? start - 1 : 0,
                                 trace.cycles_recorded()).c_str());
  std::printf(
      "WR_REQ maps to IO_ENABLE, WR_CE != 0 gates DATA_IN_VALID, WR_DATA\n"
      "passes through as DATA_IN, and the stub's IO_DONE pulse returns as\n"
      "WR_ACK (§4.3.2).\n");
  return 0;
}
