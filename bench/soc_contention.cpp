// SoC contention/saturation rows alongside the fig9 table: the same
// two-device workload pushed through the scenario matrix — one master vs
// two contending masters, flat root-bus topology vs a device behind the
// PLB<->OPB bridge, and nowait completion by status polling vs the
// interrupt fabric.  Every workload runs on both simulation backends
// (paired interp/compiled timings, like sim_backend.cpp) and each row
// also records its cycle-exact per-round bus time, so review can separate
// a timing regression from a workload change.  Results append the
// "soc_contention" object to BENCH_sim.json (or argv[1]); `--smoke`
// shrinks the loops for tools/check.sh.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/soc.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace splice;
using Clock = std::chrono::steady_clock;
using Backend = rtl::Simulator::Backend;

int g_reps = 5;
double g_scale = 1.0;

template <typename Fn>
double best_of(std::uint64_t items, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < g_reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const double dt =
        std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    best = std::min(best, dt / static_cast<double>(items));
  }
  return best;
}

std::uint64_t scaled(std::uint64_t n) {
  const auto s = static_cast<std::uint64_t>(static_cast<double>(n) * g_scale);
  return s == 0 ? 1 : s;
}

struct Row {
  std::string name;
  std::string detail;
  double interp = 0;    ///< ns per round, interpreter backend
  double compiled = 0;  ///< ns per round, compiled backend
  /// Simulated bus cycles one round consumes — deterministic and
  /// backend-independent (the lockstep tests assert as much).
  std::uint64_t cycles = 0;

  [[nodiscard]] double speedup() const {
    return compiled > 0 ? interp / compiled : 0;
  }
};

ir::DeviceSpec make_spec(const std::string& name, const std::string& body) {
  std::string text = "%device_name " + name +
                     "\n%bus_type plb\n%bus_width 32\n"
                     "%base_address 0x80000000\n\n" + body + "\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  if (!spec.has_value() || !ir::validate(*spec, diags)) {
    std::fprintf(stderr, "bench spec rejected:\n%s", diags.render().c_str());
    std::exit(1);
  }
  return std::move(*spec);
}

runtime::SocDevice make_device(const std::string& name,
                               const std::string& body, unsigned segment,
                               unsigned calc_cycles) {
  runtime::SocDevice dev;
  dev.spec = make_spec(name, body);
  dev.segment = segment;
  for (const ir::FunctionDecl& fn : dev.spec.functions) {
    dev.behaviors.set(fn.name, [calc_cycles](const elab::CallContext& ctx) {
      return elab::CalcResult{calc_cycles, {ctx.scalar(0) * 2}};
    });
  }
  return dev;
}

/// The contention workload: two devices, one round = one `int f(int)` call
/// to each.  With one master the calls run back to back; with two masters
/// both are queued first and drained concurrently through the round-robin
/// mux, so the round's cost shows what arbitration saves (wall clock) and
/// charges (contended grant cycles).
double run_two_device_round(Backend be, unsigned masters, bool bridged,
                            std::uint64_t* cycles_out) {
  runtime::SocConfig config;
  config.devices.push_back(make_device("alpha", "int f(int x);", 0, 4));
  config.devices.push_back(
      make_device("beta", "int g(int x);", bridged ? 1 : 0, 4));
  config.masters = masters;

  runtime::SocPlatform soc(config);
  soc.sim().set_backend(be);

  auto round = [&] {
    if (masters == 1) {
      soc.call(0, "f", {{7}});
      soc.call(1, "g", {{9}});
    } else {
      soc.start_call(0, "f", {{7}}, 0, 0);
      soc.start_call(1, "g", {{9}}, 0, 1);
      soc.drain();
    }
  };

  round();  // warm: compile + settle once
  if (cycles_out != nullptr) {
    const std::uint64_t c0 = soc.sim().cycle();
    round();
    *cycles_out = soc.sim().cycle() - c0;
  }
  const std::uint64_t rounds = scaled(2'000);
  return best_of(rounds, [&] {
    for (std::uint64_t i = 0; i < rounds; ++i) round();
  });
}

/// The nowait-completion workload: one round = launch a 40-cycle nowait
/// calculation, then wait for completion — spinning on the status register
/// (polled) or sleeping until the interrupt fabric wakes the CPU (irq).
double run_nowait_round(Backend be, bool irq, std::uint64_t* cycles_out) {
  runtime::SocConfig config;
  config.devices.push_back(make_device("worker", "nowait f(int x);", 0, 40));
  config.irq = irq;

  runtime::SocPlatform soc(config);
  soc.sim().set_backend(be);

  auto round = [&] {
    soc.call(0, "f", {{7}});
    soc.wait_completion(0, "f", 0, irq);
  };

  round();
  if (cycles_out != nullptr) {
    const std::uint64_t c0 = soc.sim().cycle();
    round();
    *cycles_out = soc.sim().cycle() - c0;
  }
  const std::uint64_t rounds = scaled(2'000);
  return best_of(rounds, [&] {
    for (std::uint64_t i = 0; i < rounds; ++i) round();
  });
}

Row measure(const std::string& name, const std::string& detail,
            unsigned masters, bool bridged) {
  Row row{name, detail};
  row.interp = run_two_device_round(Backend::kInterp, masters, bridged,
                                    &row.cycles);
  row.compiled =
      run_two_device_round(Backend::kCompiled, masters, bridged, nullptr);
  return row;
}

Row measure_nowait(const std::string& name, const std::string& detail,
                   bool irq) {
  Row row{name, detail};
  row.interp = run_nowait_round(Backend::kInterp, irq, &row.cycles);
  row.compiled = run_nowait_round(Backend::kCompiled, irq, nullptr);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_sim.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  if (smoke) {
    g_reps = 1;
    g_scale = 0.02;
  }

  std::printf("soc_contention: SoC scenario matrix, best of %d%s\n\n",
              g_reps, smoke ? " (smoke)" : "");

  std::vector<Row> rows;
  rows.push_back(measure(
      "soc_flat_1master",
      "two root-bus devices, one master, calls back to back", 1, false));
  rows.push_back(measure(
      "soc_flat_2masters",
      "two root-bus devices, two contending masters through the mux", 2,
      false));
  rows.push_back(measure(
      "soc_bridged_1master",
      "second device behind the PLB<->OPB bridge, one master", 1, true));
  rows.push_back(measure(
      "soc_bridged_2masters",
      "second device behind the bridge, two contending masters", 2, true));
  rows.push_back(measure_nowait(
      "soc_nowait_polled",
      "40-cycle nowait calculation, status-register polling", false));
  rows.push_back(measure_nowait(
      "soc_nowait_irq",
      "40-cycle nowait calculation, interrupt-driven completion", true));

  std::printf("%-24s %12s %12s %9s %12s\n", "workload", "interp(ns)",
              "compiled(ns)", "speedup", "cycles/round");
  for (const Row& r : rows) {
    std::printf("%-24s %12.1f %12.1f %8.2fx %12llu\n", r.name.c_str(),
                r.interp, r.compiled, r.speedup(),
                static_cast<unsigned long long>(r.cycles));
  }

  if (smoke) {
    std::printf("\nsmoke run: not writing %s\n", json_path.c_str());
    return 0;
  }

  // Append alongside sim_backend's object: BENCH_sim.json accumulates one
  // JSON object per bench line (concatenated objects, newline-separated).
  std::FILE* f = std::fopen(json_path.c_str(), "a");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"soc_contention\",\n");
  std::fprintf(f, "  \"timing\": \"best of %d repetitions\",\n", g_reps);
  std::fprintf(f, "  \"workloads\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"detail\": \"%s\", \"unit\": "
                 "\"ns/round\", \"interp\": %.1f, \"compiled\": %.1f, "
                 "\"speedup\": %.2f, \"cycles_per_round\": %llu}%s\n",
                 r.name.c_str(), r.detail.c_str(), r.interp, r.compiled,
                 r.speedup(), static_cast<unsigned long long>(r.cycles),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nappended to %s\n", json_path.c_str());
  return 0;
}
