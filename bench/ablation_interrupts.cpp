// Ablation: CALC_DONE polling vs interrupt-driven completion (%irq_support,
// thesis §10.2) on the strictly synchronous APB, swept over calculation
// length — polling costs bus reads proportional to the calculation time,
// the interrupt path pays a fixed ISR entry.
#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

struct RunStats {
  std::uint64_t cycles;
  std::uint64_t polls;
  std::uint64_t irqs;
};

RunStats run(bool irq, unsigned calc_cycles) {
  std::string text = std::string("%device_name ab\n%bus_type apb\n") +
                     "%bus_width 32\n%base_address 0x80000000\n" +
                     (irq ? "%irq_support true\n" : "") +
                     "int f(int x);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ir::validate(*spec, diags);
  elab::BehaviorMap b;
  b.set("f", [calc_cycles](const elab::CallContext& ctx) {
    return elab::CalcResult{calc_cycles, {ctx.scalar(0)}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  (void)vp.call("f", {{1}});
  auto r = vp.call("f", {{1}});
  return {r.bus_cycles, vp.cpu().polls_performed(),
          vp.cpu().interrupts_taken()};
}

}  // namespace

int main() {
  using namespace splice;
  bench::print_header("Ablation",
                      "%irq_support (§10.2): polling vs interrupt-driven "
                      "completion on the APB");
  TextTable t;
  t.set_header({"calc cycles", "poll cycles/run", "poll reads (2 runs)",
                "irq cycles/run", "irq reads (2 runs)"});
  t.set_alignment({TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right});
  for (unsigned calc : {10u, 50u, 100u, 250u, 500u}) {
    const RunStats poll = run(false, calc);
    const RunStats irq = run(true, calc);
    t.add_row({std::to_string(calc), std::to_string(poll.cycles),
               std::to_string(poll.polls), std::to_string(irq.cycles),
               std::to_string(irq.polls)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Polling issues one status read per loop iteration for the whole\n"
      "calculation; the interrupt path leaves the bus idle (one status\n"
      "read per run) at the price of a fixed ISR entry of %u cycles —\n"
      "slightly worse single-call latency, far less bus traffic and a\n"
      "CPU free to do other work.\n",
      bus::timing::kIsrEntryCycles);
  return 0;
}
