// Figure 9.2: "Clock Cycles Per Run By Each Implementation" — the
// headline evaluation of thesis §9.3.1, regenerated on the cycle-accurate
// simulated SoC, followed by a paper-vs-measured comparison of every
// quantitative claim in that subsection.
#include <string>

#include "bench_common.hpp"
#include "devices/evaluation.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  using namespace splice::devices;
  bench::print_header("Figure 9.2",
                      "Clock cycles per run by each implementation");

  double cycles[5][4] = {};
  TextTable t;
  t.set_header({"Implementation", "Scenario 1", "Scenario 2", "Scenario 3",
                "Scenario 4"});
  t.set_alignment({TextTable::Align::Left, TextTable::Align::Right,
                   TextTable::Align::Right, TextTable::Align::Right,
                   TextTable::Align::Right});
  int impl_idx = 0;
  bool all_correct = true;
  for (Impl impl : kAllImpls) {
    std::vector<std::string> row{std::string(impl_name(impl))};
    int sc_idx = 0;
    for (const auto& sc : scenarios()) {
      const ScenarioRun run = run_scenario(impl, sc);
      all_correct = all_correct && run.correct();
      cycles[impl_idx][sc_idx] = static_cast<double>(run.bus_cycles);
      row.push_back(std::to_string(run.bus_cycles));
      ++sc_idx;
    }
    t.add_row(std::move(row));
    ++impl_idx;
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("Data integrity: %s\n\n",
              all_correct ? "every run returned the correct result"
                          : "MISMATCH DETECTED");

  auto avg_ratio = [&](int a, int b) {
    double s = 0;
    for (int j = 0; j < 4; ++j) s += cycles[a][j] / cycles[b][j];
    return s / 4;
  };
  // Implementation indices follow kAllImpls:
  // 0 naive PLB, 1 splice PLB, 2 splice PLB DMA, 3 splice FCB, 4 opt FCB.
  std::printf("Paper claim (§9.3.1)                                | paper  | measured\n");
  std::printf("----------------------------------------------------+--------+---------\n");
  std::printf("Splice PLB faster than naive hand-coded PLB         | ~25%%   | %4.1f%%\n",
              (1 - avg_ratio(1, 0)) * 100);
  std::printf("Splice FCB faster than naive PLB                    | ~43%%   | %4.1f%%\n",
              (1 - avg_ratio(3, 0)) * 100);
  std::printf("Splice FCB slower than optimized hand-coded FCB     | ~13%%   | %4.1f%%\n",
              (avg_ratio(3, 4) - 1) * 100);
  std::printf("PLB DMA vs non-DMA (largest scenario)               | 1-4%%   | %4.1f%%\n",
              (1 - cycles[2][3] / cycles[1][3]) * 100);
  std::printf("DMA does not benefit <= 4 values (scenario 1 delta) | slower | %+4.1f%%\n",
              (cycles[2][0] / cycles[1][0] - 1) * 100);
  return all_correct ? 0 : 1;
}
