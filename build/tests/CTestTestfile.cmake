# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_adapters[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_bus_models[1]_include.cmake")
include("/root/repo/build/tests/test_byref[1]_include.cmake")
include("/root/repo/build/tests/test_c_emitter[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_driver_program[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_evaluation[1]_include.cmake")
include("/root/repo/build/tests/test_generated_c[1]_include.cmake")
include("/root/repo/build/tests/test_hdl_sanity[1]_include.cmake")
include("/root/repo/build/tests/test_icob_features[1]_include.cmake")
include("/root/repo/build/tests/test_interrupts[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser_decls[1]_include.cmake")
include("/root/repo/build/tests/test_parser_directives[1]_include.cmake")
include("/root/repo/build/tests/test_platform_properties[1]_include.cmake")
include("/root/repo/build/tests/test_resources[1]_include.cmake")
include("/root/repo/build/tests/test_rtl[1]_include.cmake")
include("/root/repo/build/tests/test_sis_checker[1]_include.cmake")
include("/root/repo/build/tests/test_smoke_end_to_end[1]_include.cmake")
include("/root/repo/build/tests/test_status_register[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_timer[1]_include.cmake")
include("/root/repo/build/tests/test_validate[1]_include.cmake")
include("/root/repo/build/tests/test_wordcodec[1]_include.cmake")
