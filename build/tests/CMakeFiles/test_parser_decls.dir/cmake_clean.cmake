file(REMOVE_RECURSE
  "CMakeFiles/test_parser_decls.dir/test_parser_decls.cpp.o"
  "CMakeFiles/test_parser_decls.dir/test_parser_decls.cpp.o.d"
  "test_parser_decls"
  "test_parser_decls.pdb"
  "test_parser_decls[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_decls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
