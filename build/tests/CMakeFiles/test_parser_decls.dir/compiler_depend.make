# Empty compiler generated dependencies file for test_parser_decls.
# This may be replaced when dependencies are built.
