# Empty compiler generated dependencies file for test_adapters.
# This may be replaced when dependencies are built.
