file(REMOVE_RECURSE
  "CMakeFiles/test_adapters.dir/test_adapters.cpp.o"
  "CMakeFiles/test_adapters.dir/test_adapters.cpp.o.d"
  "test_adapters"
  "test_adapters.pdb"
  "test_adapters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
