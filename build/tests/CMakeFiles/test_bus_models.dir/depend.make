# Empty dependencies file for test_bus_models.
# This may be replaced when dependencies are built.
