file(REMOVE_RECURSE
  "CMakeFiles/test_bus_models.dir/test_bus_models.cpp.o"
  "CMakeFiles/test_bus_models.dir/test_bus_models.cpp.o.d"
  "test_bus_models"
  "test_bus_models.pdb"
  "test_bus_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
