# Empty dependencies file for test_status_register.
# This may be replaced when dependencies are built.
