file(REMOVE_RECURSE
  "CMakeFiles/test_status_register.dir/test_status_register.cpp.o"
  "CMakeFiles/test_status_register.dir/test_status_register.cpp.o.d"
  "test_status_register"
  "test_status_register.pdb"
  "test_status_register[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_register.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
