file(REMOVE_RECURSE
  "CMakeFiles/test_byref.dir/test_byref.cpp.o"
  "CMakeFiles/test_byref.dir/test_byref.cpp.o.d"
  "test_byref"
  "test_byref.pdb"
  "test_byref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
