# Empty compiler generated dependencies file for test_byref.
# This may be replaced when dependencies are built.
