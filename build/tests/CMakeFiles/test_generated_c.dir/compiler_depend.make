# Empty compiler generated dependencies file for test_generated_c.
# This may be replaced when dependencies are built.
