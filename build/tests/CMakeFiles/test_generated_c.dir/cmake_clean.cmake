file(REMOVE_RECURSE
  "CMakeFiles/test_generated_c.dir/test_generated_c.cpp.o"
  "CMakeFiles/test_generated_c.dir/test_generated_c.cpp.o.d"
  "test_generated_c"
  "test_generated_c.pdb"
  "test_generated_c[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generated_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
