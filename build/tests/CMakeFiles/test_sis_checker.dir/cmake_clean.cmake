file(REMOVE_RECURSE
  "CMakeFiles/test_sis_checker.dir/test_sis_checker.cpp.o"
  "CMakeFiles/test_sis_checker.dir/test_sis_checker.cpp.o.d"
  "test_sis_checker"
  "test_sis_checker.pdb"
  "test_sis_checker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sis_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
