# Empty compiler generated dependencies file for test_sis_checker.
# This may be replaced when dependencies are built.
