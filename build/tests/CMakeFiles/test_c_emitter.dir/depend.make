# Empty dependencies file for test_c_emitter.
# This may be replaced when dependencies are built.
