file(REMOVE_RECURSE
  "CMakeFiles/test_c_emitter.dir/test_c_emitter.cpp.o"
  "CMakeFiles/test_c_emitter.dir/test_c_emitter.cpp.o.d"
  "test_c_emitter"
  "test_c_emitter.pdb"
  "test_c_emitter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c_emitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
