file(REMOVE_RECURSE
  "CMakeFiles/test_platform_properties.dir/test_platform_properties.cpp.o"
  "CMakeFiles/test_platform_properties.dir/test_platform_properties.cpp.o.d"
  "test_platform_properties"
  "test_platform_properties.pdb"
  "test_platform_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_platform_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
