# Empty dependencies file for test_platform_properties.
# This may be replaced when dependencies are built.
