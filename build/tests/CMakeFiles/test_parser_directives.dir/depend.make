# Empty dependencies file for test_parser_directives.
# This may be replaced when dependencies are built.
