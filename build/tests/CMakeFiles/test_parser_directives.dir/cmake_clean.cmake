file(REMOVE_RECURSE
  "CMakeFiles/test_parser_directives.dir/test_parser_directives.cpp.o"
  "CMakeFiles/test_parser_directives.dir/test_parser_directives.cpp.o.d"
  "test_parser_directives"
  "test_parser_directives.pdb"
  "test_parser_directives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_directives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
