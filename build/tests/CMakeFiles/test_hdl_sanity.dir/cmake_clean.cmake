file(REMOVE_RECURSE
  "CMakeFiles/test_hdl_sanity.dir/test_hdl_sanity.cpp.o"
  "CMakeFiles/test_hdl_sanity.dir/test_hdl_sanity.cpp.o.d"
  "test_hdl_sanity"
  "test_hdl_sanity.pdb"
  "test_hdl_sanity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hdl_sanity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
