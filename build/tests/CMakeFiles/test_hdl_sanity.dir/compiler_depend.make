# Empty compiler generated dependencies file for test_hdl_sanity.
# This may be replaced when dependencies are built.
