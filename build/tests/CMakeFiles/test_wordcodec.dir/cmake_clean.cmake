file(REMOVE_RECURSE
  "CMakeFiles/test_wordcodec.dir/test_wordcodec.cpp.o"
  "CMakeFiles/test_wordcodec.dir/test_wordcodec.cpp.o.d"
  "test_wordcodec"
  "test_wordcodec.pdb"
  "test_wordcodec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wordcodec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
