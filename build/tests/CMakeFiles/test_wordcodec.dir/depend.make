# Empty dependencies file for test_wordcodec.
# This may be replaced when dependencies are built.
