# Empty dependencies file for test_driver_program.
# This may be replaced when dependencies are built.
