file(REMOVE_RECURSE
  "CMakeFiles/test_driver_program.dir/test_driver_program.cpp.o"
  "CMakeFiles/test_driver_program.dir/test_driver_program.cpp.o.d"
  "test_driver_program"
  "test_driver_program.pdb"
  "test_driver_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
