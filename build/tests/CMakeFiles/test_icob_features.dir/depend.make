# Empty dependencies file for test_icob_features.
# This may be replaced when dependencies are built.
