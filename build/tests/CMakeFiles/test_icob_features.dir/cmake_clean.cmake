file(REMOVE_RECURSE
  "CMakeFiles/test_icob_features.dir/test_icob_features.cpp.o"
  "CMakeFiles/test_icob_features.dir/test_icob_features.cpp.o.d"
  "test_icob_features"
  "test_icob_features.pdb"
  "test_icob_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icob_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
