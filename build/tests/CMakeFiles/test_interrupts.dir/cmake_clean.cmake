file(REMOVE_RECURSE
  "CMakeFiles/test_interrupts.dir/test_interrupts.cpp.o"
  "CMakeFiles/test_interrupts.dir/test_interrupts.cpp.o.d"
  "test_interrupts"
  "test_interrupts.pdb"
  "test_interrupts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interrupts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
