
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_validate.cpp" "tests/CMakeFiles/test_validate.dir/test_validate.cpp.o" "gcc" "tests/CMakeFiles/test_validate.dir/test_validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/splice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/splice_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/resources/CMakeFiles/splice_resources.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/splice_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/splice_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/drivergen/CMakeFiles/splice_drivergen.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/splice_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/splice_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/splice_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/sis/CMakeFiles/splice_sis.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/splice_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
