file(REMOVE_RECURSE
  "CMakeFiles/splice.dir/splice_cli.cpp.o"
  "CMakeFiles/splice.dir/splice_cli.cpp.o.d"
  "splice"
  "splice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
