# Empty compiler generated dependencies file for splice.
# This may be replaced when dependencies are built.
