file(REMOVE_RECURSE
  "CMakeFiles/example_multi_instance.dir/multi_instance.cpp.o"
  "CMakeFiles/example_multi_instance.dir/multi_instance.cpp.o.d"
  "example_multi_instance"
  "example_multi_instance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_instance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
