# Empty compiler generated dependencies file for example_multi_instance.
# This may be replaced when dependencies are built.
