# Empty compiler generated dependencies file for example_scan_eagle.
# This may be replaced when dependencies are built.
