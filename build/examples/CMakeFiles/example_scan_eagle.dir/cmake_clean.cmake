file(REMOVE_RECURSE
  "CMakeFiles/example_scan_eagle.dir/scan_eagle.cpp.o"
  "CMakeFiles/example_scan_eagle.dir/scan_eagle.cpp.o.d"
  "example_scan_eagle"
  "example_scan_eagle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_scan_eagle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
