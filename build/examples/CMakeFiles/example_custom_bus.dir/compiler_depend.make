# Empty compiler generated dependencies file for example_custom_bus.
# This may be replaced when dependencies are built.
