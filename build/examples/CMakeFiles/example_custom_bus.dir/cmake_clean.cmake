file(REMOVE_RECURSE
  "CMakeFiles/example_custom_bus.dir/custom_bus.cpp.o"
  "CMakeFiles/example_custom_bus.dir/custom_bus.cpp.o.d"
  "example_custom_bus"
  "example_custom_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_custom_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
