file(REMOVE_RECURSE
  "CMakeFiles/example_hw_timer.dir/hw_timer.cpp.o"
  "CMakeFiles/example_hw_timer.dir/hw_timer.cpp.o.d"
  "example_hw_timer"
  "example_hw_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hw_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
