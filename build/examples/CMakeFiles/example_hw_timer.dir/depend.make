# Empty dependencies file for example_hw_timer.
# This may be replaced when dependencies are built.
