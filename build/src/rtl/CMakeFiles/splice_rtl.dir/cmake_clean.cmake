file(REMOVE_RECURSE
  "CMakeFiles/splice_rtl.dir/signal.cpp.o"
  "CMakeFiles/splice_rtl.dir/signal.cpp.o.d"
  "CMakeFiles/splice_rtl.dir/simulator.cpp.o"
  "CMakeFiles/splice_rtl.dir/simulator.cpp.o.d"
  "CMakeFiles/splice_rtl.dir/trace.cpp.o"
  "CMakeFiles/splice_rtl.dir/trace.cpp.o.d"
  "CMakeFiles/splice_rtl.dir/vcd.cpp.o"
  "CMakeFiles/splice_rtl.dir/vcd.cpp.o.d"
  "libsplice_rtl.a"
  "libsplice_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
