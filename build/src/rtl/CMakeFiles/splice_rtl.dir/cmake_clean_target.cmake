file(REMOVE_RECURSE
  "libsplice_rtl.a"
)
