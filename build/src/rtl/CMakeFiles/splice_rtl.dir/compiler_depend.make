# Empty compiler generated dependencies file for splice_rtl.
# This may be replaced when dependencies are built.
