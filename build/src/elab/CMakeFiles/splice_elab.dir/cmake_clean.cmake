file(REMOVE_RECURSE
  "CMakeFiles/splice_elab.dir/ahb_adapter.cpp.o"
  "CMakeFiles/splice_elab.dir/ahb_adapter.cpp.o.d"
  "CMakeFiles/splice_elab.dir/apb_adapter.cpp.o"
  "CMakeFiles/splice_elab.dir/apb_adapter.cpp.o.d"
  "CMakeFiles/splice_elab.dir/arbiter.cpp.o"
  "CMakeFiles/splice_elab.dir/arbiter.cpp.o.d"
  "CMakeFiles/splice_elab.dir/device.cpp.o"
  "CMakeFiles/splice_elab.dir/device.cpp.o.d"
  "CMakeFiles/splice_elab.dir/fcb_adapter.cpp.o"
  "CMakeFiles/splice_elab.dir/fcb_adapter.cpp.o.d"
  "CMakeFiles/splice_elab.dir/icob.cpp.o"
  "CMakeFiles/splice_elab.dir/icob.cpp.o.d"
  "CMakeFiles/splice_elab.dir/plb_adapter.cpp.o"
  "CMakeFiles/splice_elab.dir/plb_adapter.cpp.o.d"
  "libsplice_elab.a"
  "libsplice_elab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_elab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
