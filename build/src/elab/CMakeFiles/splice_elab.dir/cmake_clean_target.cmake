file(REMOVE_RECURSE
  "libsplice_elab.a"
)
