# Empty compiler generated dependencies file for splice_elab.
# This may be replaced when dependencies are built.
