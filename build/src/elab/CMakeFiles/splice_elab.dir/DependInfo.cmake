
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elab/ahb_adapter.cpp" "src/elab/CMakeFiles/splice_elab.dir/ahb_adapter.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/ahb_adapter.cpp.o.d"
  "/root/repo/src/elab/apb_adapter.cpp" "src/elab/CMakeFiles/splice_elab.dir/apb_adapter.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/apb_adapter.cpp.o.d"
  "/root/repo/src/elab/arbiter.cpp" "src/elab/CMakeFiles/splice_elab.dir/arbiter.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/arbiter.cpp.o.d"
  "/root/repo/src/elab/device.cpp" "src/elab/CMakeFiles/splice_elab.dir/device.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/device.cpp.o.d"
  "/root/repo/src/elab/fcb_adapter.cpp" "src/elab/CMakeFiles/splice_elab.dir/fcb_adapter.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/fcb_adapter.cpp.o.d"
  "/root/repo/src/elab/icob.cpp" "src/elab/CMakeFiles/splice_elab.dir/icob.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/icob.cpp.o.d"
  "/root/repo/src/elab/plb_adapter.cpp" "src/elab/CMakeFiles/splice_elab.dir/plb_adapter.cpp.o" "gcc" "src/elab/CMakeFiles/splice_elab.dir/plb_adapter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/drivergen/CMakeFiles/splice_drivergen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sis/CMakeFiles/splice_sis.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/splice_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
