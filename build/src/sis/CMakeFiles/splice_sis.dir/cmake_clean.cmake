file(REMOVE_RECURSE
  "CMakeFiles/splice_sis.dir/checker.cpp.o"
  "CMakeFiles/splice_sis.dir/checker.cpp.o.d"
  "CMakeFiles/splice_sis.dir/sis.cpp.o"
  "CMakeFiles/splice_sis.dir/sis.cpp.o.d"
  "libsplice_sis.a"
  "libsplice_sis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_sis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
