file(REMOVE_RECURSE
  "libsplice_sis.a"
)
