
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sis/checker.cpp" "src/sis/CMakeFiles/splice_sis.dir/checker.cpp.o" "gcc" "src/sis/CMakeFiles/splice_sis.dir/checker.cpp.o.d"
  "/root/repo/src/sis/sis.cpp" "src/sis/CMakeFiles/splice_sis.dir/sis.cpp.o" "gcc" "src/sis/CMakeFiles/splice_sis.dir/sis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
