# Empty dependencies file for splice_sis.
# This may be replaced when dependencies are built.
