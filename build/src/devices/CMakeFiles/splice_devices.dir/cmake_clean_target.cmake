file(REMOVE_RECURSE
  "libsplice_devices.a"
)
