# Empty compiler generated dependencies file for splice_devices.
# This may be replaced when dependencies are built.
