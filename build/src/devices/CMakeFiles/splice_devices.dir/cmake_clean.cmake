file(REMOVE_RECURSE
  "CMakeFiles/splice_devices.dir/baselines.cpp.o"
  "CMakeFiles/splice_devices.dir/baselines.cpp.o.d"
  "CMakeFiles/splice_devices.dir/evaluation.cpp.o"
  "CMakeFiles/splice_devices.dir/evaluation.cpp.o.d"
  "CMakeFiles/splice_devices.dir/interpolator.cpp.o"
  "CMakeFiles/splice_devices.dir/interpolator.cpp.o.d"
  "CMakeFiles/splice_devices.dir/timer.cpp.o"
  "CMakeFiles/splice_devices.dir/timer.cpp.o.d"
  "libsplice_devices.a"
  "libsplice_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
