file(REMOVE_RECURSE
  "CMakeFiles/splice_core.dir/splice.cpp.o"
  "CMakeFiles/splice_core.dir/splice.cpp.o.d"
  "libsplice_core.a"
  "libsplice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
