# Empty dependencies file for splice_drivergen.
# This may be replaced when dependencies are built.
