file(REMOVE_RECURSE
  "CMakeFiles/splice_drivergen.dir/c_emitter.cpp.o"
  "CMakeFiles/splice_drivergen.dir/c_emitter.cpp.o.d"
  "CMakeFiles/splice_drivergen.dir/maclib.cpp.o"
  "CMakeFiles/splice_drivergen.dir/maclib.cpp.o.d"
  "CMakeFiles/splice_drivergen.dir/program.cpp.o"
  "CMakeFiles/splice_drivergen.dir/program.cpp.o.d"
  "CMakeFiles/splice_drivergen.dir/wordcodec.cpp.o"
  "CMakeFiles/splice_drivergen.dir/wordcodec.cpp.o.d"
  "libsplice_drivergen.a"
  "libsplice_drivergen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_drivergen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
