file(REMOVE_RECURSE
  "libsplice_drivergen.a"
)
