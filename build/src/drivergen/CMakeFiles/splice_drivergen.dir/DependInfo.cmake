
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/drivergen/c_emitter.cpp" "src/drivergen/CMakeFiles/splice_drivergen.dir/c_emitter.cpp.o" "gcc" "src/drivergen/CMakeFiles/splice_drivergen.dir/c_emitter.cpp.o.d"
  "/root/repo/src/drivergen/maclib.cpp" "src/drivergen/CMakeFiles/splice_drivergen.dir/maclib.cpp.o" "gcc" "src/drivergen/CMakeFiles/splice_drivergen.dir/maclib.cpp.o.d"
  "/root/repo/src/drivergen/program.cpp" "src/drivergen/CMakeFiles/splice_drivergen.dir/program.cpp.o" "gcc" "src/drivergen/CMakeFiles/splice_drivergen.dir/program.cpp.o.d"
  "/root/repo/src/drivergen/wordcodec.cpp" "src/drivergen/CMakeFiles/splice_drivergen.dir/wordcodec.cpp.o" "gcc" "src/drivergen/CMakeFiles/splice_drivergen.dir/wordcodec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sis/CMakeFiles/splice_sis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
