# Empty dependencies file for splice_frontend.
# This may be replaced when dependencies are built.
