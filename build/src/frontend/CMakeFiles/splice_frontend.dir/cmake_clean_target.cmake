file(REMOVE_RECURSE
  "libsplice_frontend.a"
)
