file(REMOVE_RECURSE
  "CMakeFiles/splice_frontend.dir/lexer.cpp.o"
  "CMakeFiles/splice_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/splice_frontend.dir/parser.cpp.o"
  "CMakeFiles/splice_frontend.dir/parser.cpp.o.d"
  "libsplice_frontend.a"
  "libsplice_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
