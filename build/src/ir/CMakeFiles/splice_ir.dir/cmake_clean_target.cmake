file(REMOVE_RECURSE
  "libsplice_ir.a"
)
