# Empty compiler generated dependencies file for splice_ir.
# This may be replaced when dependencies are built.
