file(REMOVE_RECURSE
  "CMakeFiles/splice_ir.dir/device.cpp.o"
  "CMakeFiles/splice_ir.dir/device.cpp.o.d"
  "CMakeFiles/splice_ir.dir/types.cpp.o"
  "CMakeFiles/splice_ir.dir/types.cpp.o.d"
  "CMakeFiles/splice_ir.dir/validate.cpp.o"
  "CMakeFiles/splice_ir.dir/validate.cpp.o.d"
  "libsplice_ir.a"
  "libsplice_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
