# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("frontend")
subdirs("rtl")
subdirs("sis")
subdirs("bus")
subdirs("elab")
subdirs("codegen")
subdirs("drivergen")
subdirs("adapters")
subdirs("runtime")
subdirs("resources")
subdirs("devices")
subdirs("core")
