# Empty dependencies file for splice_bus.
# This may be replaced when dependencies are built.
