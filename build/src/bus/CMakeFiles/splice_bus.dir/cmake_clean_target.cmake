file(REMOVE_RECURSE
  "libsplice_bus.a"
)
