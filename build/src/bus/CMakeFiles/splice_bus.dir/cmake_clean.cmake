file(REMOVE_RECURSE
  "CMakeFiles/splice_bus.dir/ahb.cpp.o"
  "CMakeFiles/splice_bus.dir/ahb.cpp.o.d"
  "CMakeFiles/splice_bus.dir/apb.cpp.o"
  "CMakeFiles/splice_bus.dir/apb.cpp.o.d"
  "CMakeFiles/splice_bus.dir/fcb.cpp.o"
  "CMakeFiles/splice_bus.dir/fcb.cpp.o.d"
  "CMakeFiles/splice_bus.dir/master_port.cpp.o"
  "CMakeFiles/splice_bus.dir/master_port.cpp.o.d"
  "CMakeFiles/splice_bus.dir/opb.cpp.o"
  "CMakeFiles/splice_bus.dir/opb.cpp.o.d"
  "CMakeFiles/splice_bus.dir/plb.cpp.o"
  "CMakeFiles/splice_bus.dir/plb.cpp.o.d"
  "libsplice_bus.a"
  "libsplice_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
