
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bus/ahb.cpp" "src/bus/CMakeFiles/splice_bus.dir/ahb.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/ahb.cpp.o.d"
  "/root/repo/src/bus/apb.cpp" "src/bus/CMakeFiles/splice_bus.dir/apb.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/apb.cpp.o.d"
  "/root/repo/src/bus/fcb.cpp" "src/bus/CMakeFiles/splice_bus.dir/fcb.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/fcb.cpp.o.d"
  "/root/repo/src/bus/master_port.cpp" "src/bus/CMakeFiles/splice_bus.dir/master_port.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/master_port.cpp.o.d"
  "/root/repo/src/bus/opb.cpp" "src/bus/CMakeFiles/splice_bus.dir/opb.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/opb.cpp.o.d"
  "/root/repo/src/bus/plb.cpp" "src/bus/CMakeFiles/splice_bus.dir/plb.cpp.o" "gcc" "src/bus/CMakeFiles/splice_bus.dir/plb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/sis/CMakeFiles/splice_sis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
