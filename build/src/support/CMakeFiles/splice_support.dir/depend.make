# Empty dependencies file for splice_support.
# This may be replaced when dependencies are built.
