file(REMOVE_RECURSE
  "CMakeFiles/splice_support.dir/diagnostics.cpp.o"
  "CMakeFiles/splice_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/splice_support.dir/strings.cpp.o"
  "CMakeFiles/splice_support.dir/strings.cpp.o.d"
  "CMakeFiles/splice_support.dir/text_table.cpp.o"
  "CMakeFiles/splice_support.dir/text_table.cpp.o.d"
  "libsplice_support.a"
  "libsplice_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
