file(REMOVE_RECURSE
  "libsplice_support.a"
)
