file(REMOVE_RECURSE
  "CMakeFiles/splice_adapters.dir/adapter.cpp.o"
  "CMakeFiles/splice_adapters.dir/adapter.cpp.o.d"
  "CMakeFiles/splice_adapters.dir/builtin_ahb.cpp.o"
  "CMakeFiles/splice_adapters.dir/builtin_ahb.cpp.o.d"
  "CMakeFiles/splice_adapters.dir/builtin_apb.cpp.o"
  "CMakeFiles/splice_adapters.dir/builtin_apb.cpp.o.d"
  "CMakeFiles/splice_adapters.dir/builtin_fcb.cpp.o"
  "CMakeFiles/splice_adapters.dir/builtin_fcb.cpp.o.d"
  "CMakeFiles/splice_adapters.dir/builtin_plb.cpp.o"
  "CMakeFiles/splice_adapters.dir/builtin_plb.cpp.o.d"
  "CMakeFiles/splice_adapters.dir/registry.cpp.o"
  "CMakeFiles/splice_adapters.dir/registry.cpp.o.d"
  "libsplice_adapters.a"
  "libsplice_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
