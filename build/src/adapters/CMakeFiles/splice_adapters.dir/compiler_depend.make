# Empty compiler generated dependencies file for splice_adapters.
# This may be replaced when dependencies are built.
