
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapters/adapter.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/adapter.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/adapter.cpp.o.d"
  "/root/repo/src/adapters/builtin_ahb.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_ahb.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_ahb.cpp.o.d"
  "/root/repo/src/adapters/builtin_apb.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_apb.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_apb.cpp.o.d"
  "/root/repo/src/adapters/builtin_fcb.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_fcb.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_fcb.cpp.o.d"
  "/root/repo/src/adapters/builtin_plb.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_plb.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/builtin_plb.cpp.o.d"
  "/root/repo/src/adapters/registry.cpp" "src/adapters/CMakeFiles/splice_adapters.dir/registry.cpp.o" "gcc" "src/adapters/CMakeFiles/splice_adapters.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/splice_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/drivergen/CMakeFiles/splice_drivergen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sis/CMakeFiles/splice_sis.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/splice_rtl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
