file(REMOVE_RECURSE
  "libsplice_adapters.a"
)
