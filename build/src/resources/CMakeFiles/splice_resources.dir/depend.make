# Empty dependencies file for splice_resources.
# This may be replaced when dependencies are built.
