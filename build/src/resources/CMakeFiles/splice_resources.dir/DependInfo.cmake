
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resources/model.cpp" "src/resources/CMakeFiles/splice_resources.dir/model.cpp.o" "gcc" "src/resources/CMakeFiles/splice_resources.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/splice_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
