file(REMOVE_RECURSE
  "CMakeFiles/splice_resources.dir/model.cpp.o"
  "CMakeFiles/splice_resources.dir/model.cpp.o.d"
  "libsplice_resources.a"
  "libsplice_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
