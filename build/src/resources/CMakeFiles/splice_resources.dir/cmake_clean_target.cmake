file(REMOVE_RECURSE
  "libsplice_resources.a"
)
