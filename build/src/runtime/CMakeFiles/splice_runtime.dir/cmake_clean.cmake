file(REMOVE_RECURSE
  "CMakeFiles/splice_runtime.dir/cpu.cpp.o"
  "CMakeFiles/splice_runtime.dir/cpu.cpp.o.d"
  "CMakeFiles/splice_runtime.dir/platform.cpp.o"
  "CMakeFiles/splice_runtime.dir/platform.cpp.o.d"
  "libsplice_runtime.a"
  "libsplice_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
