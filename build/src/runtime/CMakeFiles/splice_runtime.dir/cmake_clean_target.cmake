file(REMOVE_RECURSE
  "libsplice_runtime.a"
)
