# Empty compiler generated dependencies file for splice_runtime.
# This may be replaced when dependencies are built.
