
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/hwgen.cpp" "src/codegen/CMakeFiles/splice_codegen.dir/hwgen.cpp.o" "gcc" "src/codegen/CMakeFiles/splice_codegen.dir/hwgen.cpp.o.d"
  "/root/repo/src/codegen/stub_model.cpp" "src/codegen/CMakeFiles/splice_codegen.dir/stub_model.cpp.o" "gcc" "src/codegen/CMakeFiles/splice_codegen.dir/stub_model.cpp.o.d"
  "/root/repo/src/codegen/template.cpp" "src/codegen/CMakeFiles/splice_codegen.dir/template.cpp.o" "gcc" "src/codegen/CMakeFiles/splice_codegen.dir/template.cpp.o.d"
  "/root/repo/src/codegen/verilog.cpp" "src/codegen/CMakeFiles/splice_codegen.dir/verilog.cpp.o" "gcc" "src/codegen/CMakeFiles/splice_codegen.dir/verilog.cpp.o.d"
  "/root/repo/src/codegen/vhdl.cpp" "src/codegen/CMakeFiles/splice_codegen.dir/vhdl.cpp.o" "gcc" "src/codegen/CMakeFiles/splice_codegen.dir/vhdl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/splice_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splice_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
