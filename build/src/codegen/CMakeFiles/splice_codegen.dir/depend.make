# Empty dependencies file for splice_codegen.
# This may be replaced when dependencies are built.
