file(REMOVE_RECURSE
  "libsplice_codegen.a"
)
