file(REMOVE_RECURSE
  "CMakeFiles/splice_codegen.dir/hwgen.cpp.o"
  "CMakeFiles/splice_codegen.dir/hwgen.cpp.o.d"
  "CMakeFiles/splice_codegen.dir/stub_model.cpp.o"
  "CMakeFiles/splice_codegen.dir/stub_model.cpp.o.d"
  "CMakeFiles/splice_codegen.dir/template.cpp.o"
  "CMakeFiles/splice_codegen.dir/template.cpp.o.d"
  "CMakeFiles/splice_codegen.dir/verilog.cpp.o"
  "CMakeFiles/splice_codegen.dir/verilog.cpp.o.d"
  "CMakeFiles/splice_codegen.dir/vhdl.cpp.o"
  "CMakeFiles/splice_codegen.dir/vhdl.cpp.o.d"
  "libsplice_codegen.a"
  "libsplice_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splice_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
