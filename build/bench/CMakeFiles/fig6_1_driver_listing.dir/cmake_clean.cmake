file(REMOVE_RECURSE
  "CMakeFiles/fig6_1_driver_listing.dir/fig6_1_driver_listing.cpp.o"
  "CMakeFiles/fig6_1_driver_listing.dir/fig6_1_driver_listing.cpp.o.d"
  "fig6_1_driver_listing"
  "fig6_1_driver_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_driver_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
