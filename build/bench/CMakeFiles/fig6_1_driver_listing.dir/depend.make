# Empty dependencies file for fig6_1_driver_listing.
# This may be replaced when dependencies are built.
