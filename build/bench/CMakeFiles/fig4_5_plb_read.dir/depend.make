# Empty dependencies file for fig4_5_plb_read.
# This may be replaced when dependencies are built.
