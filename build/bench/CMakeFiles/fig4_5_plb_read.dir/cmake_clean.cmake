file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_plb_read.dir/fig4_5_plb_read.cpp.o"
  "CMakeFiles/fig4_5_plb_read.dir/fig4_5_plb_read.cpp.o.d"
  "fig4_5_plb_read"
  "fig4_5_plb_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_plb_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
