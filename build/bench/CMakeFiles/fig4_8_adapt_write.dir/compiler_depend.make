# Empty compiler generated dependencies file for fig4_8_adapt_write.
# This may be replaced when dependencies are built.
