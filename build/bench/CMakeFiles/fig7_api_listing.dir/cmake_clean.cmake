file(REMOVE_RECURSE
  "CMakeFiles/fig7_api_listing.dir/fig7_api_listing.cpp.o"
  "CMakeFiles/fig7_api_listing.dir/fig7_api_listing.cpp.o.d"
  "fig7_api_listing"
  "fig7_api_listing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_api_listing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
