# Empty compiler generated dependencies file for fig7_api_listing.
# This may be replaced when dependencies are built.
