file(REMOVE_RECURSE
  "CMakeFiles/fig4_2_sis_signals.dir/fig4_2_sis_signals.cpp.o"
  "CMakeFiles/fig4_2_sis_signals.dir/fig4_2_sis_signals.cpp.o.d"
  "fig4_2_sis_signals"
  "fig4_2_sis_signals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_2_sis_signals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
