# Empty dependencies file for fig4_2_sis_signals.
# This may be replaced when dependencies are built.
