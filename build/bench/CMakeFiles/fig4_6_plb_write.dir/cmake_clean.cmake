file(REMOVE_RECURSE
  "CMakeFiles/fig4_6_plb_write.dir/fig4_6_plb_write.cpp.o"
  "CMakeFiles/fig4_6_plb_write.dir/fig4_6_plb_write.cpp.o.d"
  "fig4_6_plb_write"
  "fig4_6_plb_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_6_plb_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
