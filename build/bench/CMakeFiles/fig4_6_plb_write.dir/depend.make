# Empty dependencies file for fig4_6_plb_write.
# This may be replaced when dependencies are built.
