file(REMOVE_RECURSE
  "CMakeFiles/fig9_3_resources.dir/fig9_3_resources.cpp.o"
  "CMakeFiles/fig9_3_resources.dir/fig9_3_resources.cpp.o.d"
  "fig9_3_resources"
  "fig9_3_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_3_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
