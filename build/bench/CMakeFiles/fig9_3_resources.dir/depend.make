# Empty dependencies file for fig9_3_resources.
# This may be replaced when dependencies are built.
