file(REMOVE_RECURSE
  "CMakeFiles/fig9_1_workloads.dir/fig9_1_workloads.cpp.o"
  "CMakeFiles/fig9_1_workloads.dir/fig9_1_workloads.cpp.o.d"
  "fig9_1_workloads"
  "fig9_1_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_1_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
