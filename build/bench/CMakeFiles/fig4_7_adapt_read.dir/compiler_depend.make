# Empty compiler generated dependencies file for fig4_7_adapt_read.
# This may be replaced when dependencies are built.
