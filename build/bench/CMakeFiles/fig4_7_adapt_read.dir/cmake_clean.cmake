file(REMOVE_RECURSE
  "CMakeFiles/fig4_7_adapt_read.dir/fig4_7_adapt_read.cpp.o"
  "CMakeFiles/fig4_7_adapt_read.dir/fig4_7_adapt_read.cpp.o.d"
  "fig4_7_adapt_read"
  "fig4_7_adapt_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_7_adapt_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
