# Empty compiler generated dependencies file for fig4_4_sis_strict_sync.
# This may be replaced when dependencies are built.
