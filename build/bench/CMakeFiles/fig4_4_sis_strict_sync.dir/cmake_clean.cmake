file(REMOVE_RECURSE
  "CMakeFiles/fig4_4_sis_strict_sync.dir/fig4_4_sis_strict_sync.cpp.o"
  "CMakeFiles/fig4_4_sis_strict_sync.dir/fig4_4_sis_strict_sync.cpp.o.d"
  "fig4_4_sis_strict_sync"
  "fig4_4_sis_strict_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_4_sis_strict_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
