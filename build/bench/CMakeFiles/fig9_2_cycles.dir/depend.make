# Empty dependencies file for fig9_2_cycles.
# This may be replaced when dependencies are built.
