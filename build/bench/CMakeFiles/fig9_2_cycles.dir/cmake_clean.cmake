file(REMOVE_RECURSE
  "CMakeFiles/fig9_2_cycles.dir/fig9_2_cycles.cpp.o"
  "CMakeFiles/fig9_2_cycles.dir/fig9_2_cycles.cpp.o.d"
  "fig9_2_cycles"
  "fig9_2_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_2_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
