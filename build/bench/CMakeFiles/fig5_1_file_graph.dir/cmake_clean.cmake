file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_file_graph.dir/fig5_1_file_graph.cpp.o"
  "CMakeFiles/fig5_1_file_graph.dir/fig5_1_file_graph.cpp.o.d"
  "fig5_1_file_graph"
  "fig5_1_file_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_file_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
