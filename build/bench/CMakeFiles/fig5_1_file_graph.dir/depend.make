# Empty dependencies file for fig5_1_file_graph.
# This may be replaced when dependencies are built.
