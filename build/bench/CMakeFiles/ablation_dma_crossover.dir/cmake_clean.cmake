file(REMOVE_RECURSE
  "CMakeFiles/ablation_dma_crossover.dir/ablation_dma_crossover.cpp.o"
  "CMakeFiles/ablation_dma_crossover.dir/ablation_dma_crossover.cpp.o.d"
  "ablation_dma_crossover"
  "ablation_dma_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dma_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
