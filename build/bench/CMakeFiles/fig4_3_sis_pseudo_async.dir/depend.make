# Empty dependencies file for fig4_3_sis_pseudo_async.
# This may be replaced when dependencies are built.
