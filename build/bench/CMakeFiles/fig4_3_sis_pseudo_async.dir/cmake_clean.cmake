file(REMOVE_RECURSE
  "CMakeFiles/fig4_3_sis_pseudo_async.dir/fig4_3_sis_pseudo_async.cpp.o"
  "CMakeFiles/fig4_3_sis_pseudo_async.dir/fig4_3_sis_pseudo_async.cpp.o.d"
  "fig4_3_sis_pseudo_async"
  "fig4_3_sis_pseudo_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_3_sis_pseudo_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
