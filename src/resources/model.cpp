#include "resources/model.hpp"

#include <algorithm>

#include "codegen/hdl_builder.hpp"
#include "support/bits.hpp"
#include "support/diagnostics.hpp"

namespace splice::resources {

namespace {

/// The estimators read widths off well-known ports of the generated AST;
/// a missing port means the module is not a Splice-generated one.
unsigned port_width(const codegen::ast::Module& m, const std::string& name) {
  const codegen::ast::Port* p = m.find_port(name);
  if (p == nullptr) {
    throw SpliceError("module '" + m.name + "' has no '" + name +
                      "' port to estimate from");
  }
  return p->width;
}

}  // namespace

unsigned ResourceReport::slices() const {
  const unsigned by_lut = (luts + 1) / 2;
  const unsigned by_ff = (ffs + 1) / 2;
  const unsigned packed = std::max(by_lut, by_ff);
  return static_cast<unsigned>(packed / 0.7);
}

ResourceReport mux_cost(unsigned inputs, unsigned width) {
  if (inputs <= 1) return {0, 0};
  // A LUT4 implements a 2:1 mux per bit; a tree over n inputs needs n-1
  // of them per bit, plus selector decode.
  const unsigned per_bit = inputs - 1;
  return {per_bit * width + bits::bits_for_count(inputs), 0};
}

ResourceReport comparator_cost(unsigned width) {
  // XOR-reduce tree: ~width/2 LUT4s plus the final AND.
  return {width / 2 + 1, 0};
}

ResourceReport counter_cost(unsigned width) {
  // Register bits plus increment/load logic.
  return {width, width};
}

ResourceReport register_cost(unsigned width) { return {width / 4, width}; }

ResourceReport fsm_cost(unsigned states) {
  const unsigned state_bits = bits::bits_for_count(std::max(2u, states));
  // Next-state and per-state output decode: ~2 LUTs per state.
  return {2 * states + state_bits, state_bits};
}

ResourceReport encoder_cost(unsigned slots) {
  return {slots + bits::bits_for_count(std::max(2u, slots)), 0};
}

ResourceReport estimate_stub(const codegen::ast::Module& m) {
  ResourceReport r;
  const unsigned states =
      m.fsm ? static_cast<unsigned>(m.fsm->states.size()) : 0;
  r += fsm_cost(states);
  // Tracking/accumulation registers are the stub's user_driven signal
  // declarations; each carries increment/load logic.
  for (const auto& decl : m.signals) {
    if (!decl.user_driven) continue;
    for (std::size_t i = 0; i < decl.names.size(); ++i) {
      r += counter_cost(decl.width);
    }
  }
  for (const auto& cmp : m.comparators) r += comparator_cost(cmp.width);
  // Per-state I/O handling (FUNC_ID match, IO_DONE/valid gating): the
  // FUNC_ID comparator plus a handful of control LUTs per state.
  r += comparator_cost(port_width(m, "FUNC_ID"));
  r.luts += 4 * states;
  // DATA_OUT drive register.
  r += register_cost(port_width(m, "DATA_OUT"));
  r.ffs += 3;  // IO_DONE, DATA_OUT_VALID, CALC_DONE
  return r;
}

ResourceReport estimate_arbiter(const codegen::ast::Module& m) {
  ResourceReport r;
  const unsigned legs = static_cast<unsigned>(m.instances.size());
  const unsigned data_width = port_width(m, "DATA_OUT");
  r += mux_cost(legs, data_width);  // DATA_OUT mux
  r += mux_cost(legs, 1);           // DATA_OUT_VALID mux
  r += mux_cost(legs, 1);           // IO_DONE mux
  r.luts += port_width(m, "CALC_DONE_VEC");  // CALC_DONE wiring
  return r;
}

namespace {

/// Fixed native-interface adapter costs, calibrated against the relative
/// interconnect complexity the thesis describes: the memory-mapped PLB
/// needs address decode and full handshaking; the opcode-driven FCB skips
/// the decode; the APB is the simplest; the pipelined AHB is the largest.
ResourceReport adapter_base(const std::string& bus, unsigned bus_width) {
  const unsigned w = bus_width;
  if (bus == "plb") return {3 * w + 40, 2 * w + 16};
  if (bus == "opb") return {3 * w + 56, 2 * w + 24};  // + bridge interface
  if (bus == "fcb") return {2 * w + 52, w + 44};
  if (bus == "apb") return {w + 16, w / 2 + 8};
  if (bus == "ahb") return {3 * w + 64, 3 * w + 24};
  throw SpliceError("no resource model for bus '" + bus + "'");
}

/// The §9.3.2 observation: enabling DMA inflates the interface by address
/// counters, length registers, alignment, and bus-mastering control.
ResourceReport dma_engine_cost(const ir::DeviceSpec& spec) {
  const unsigned w = spec.target.bus_width;
  ResourceReport r;
  r += counter_cost(32);       // source address counter
  r += counter_cost(32);       // destination address counter
  r += counter_cost(16);       // length countdown
  r += register_cost(32 * 2);  // control/status registers
  r += register_cost(w * 2);   // staging buffer (double word)
  r += fsm_cost(9);            // setup / stream / teardown engine
  r.luts += w + 40;            // bus-mastering handshake + alignment
  return r;
}

}  // namespace

ResourceReport estimate_interface(const ir::DeviceSpec& spec) {
  ResourceReport r = adapter_base(spec.target.bus_type,
                                  spec.target.bus_width);
  const unsigned slots = spec.total_instances() + 1;
  r += encoder_cost(slots);  // one-hot CE decode / address match
  r += register_cost(slots); // CALC_DONE status register read port
  if (spec.target.dma_support) r += dma_engine_cost(spec);
  return r;
}

ResourceReport estimate_splice_device(const ir::DeviceSpec& spec) {
  const codegen::ast::Dialect dialect = spec.target.hdl == ir::Hdl::Vhdl
                                            ? codegen::ast::Dialect::Vhdl
                                            : codegen::ast::Dialect::Verilog;
  ResourceReport r = estimate_interface(spec);
  r += estimate_arbiter(codegen::build_arbiter_ast(spec, dialect));
  for (const auto& fn : spec.functions) {
    const codegen::ast::Module stub =
        codegen::build_stub_ast(fn, spec, dialect);
    const ResourceReport one = estimate_stub(stub);
    for (std::uint32_t i = 0; i < fn.instances; ++i) r += one;
  }
  return r;
}

}  // namespace splice::resources
