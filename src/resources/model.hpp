// Structural FPGA resource estimation (the substitute for the thesis'
// Xilinx ISE synthesis reports behind Figure 9.3).  Costs are counted from
// the same HDL AST the emitters print, using Virtex-4-class packing
// assumptions: a slice holds two 4-input LUTs and two flip-flops.
// Absolute numbers are estimates; the figure's *relative* comparisons (who
// is bigger, the DMA blow-up) come from structure.
#pragma once

#include <string>

#include "codegen/hdl_ast.hpp"
#include "ir/device.hpp"

namespace splice::resources {

struct ResourceReport {
  unsigned luts = 0;
  unsigned ffs = 0;

  /// Virtex-4 packing: 2 LUTs + 2 FFs per slice; logic rarely packs
  /// perfectly, so apply the customary 0.7 packing efficiency.
  [[nodiscard]] unsigned slices() const;

  ResourceReport& operator+=(const ResourceReport& o) {
    luts += o.luts;
    ffs += o.ffs;
    return *this;
  }
  friend ResourceReport operator+(ResourceReport a, const ResourceReport& b) {
    a += b;
    return a;
  }
};

// --- component cost functions ----------------------------------------------

/// An n-input multiplexer of `width` bits (LUT4 trees: one LUT covers two
/// inputs per bit, plus selector decode).
[[nodiscard]] ResourceReport mux_cost(unsigned inputs, unsigned width);
/// An equality comparator of `width` bits.
[[nodiscard]] ResourceReport comparator_cost(unsigned width);
/// A loadable counter / register of `width` bits with increment logic.
[[nodiscard]] ResourceReport counter_cost(unsigned width);
/// A plain register of `width` bits.
[[nodiscard]] ResourceReport register_cost(unsigned width);
/// FSM with `states` states: state register + next-state/output decode.
[[nodiscard]] ResourceReport fsm_cost(unsigned states);
/// One-hot to binary encoder over `slots` inputs.
[[nodiscard]] ResourceReport encoder_cost(unsigned slots);

// --- generated-hardware estimates -------------------------------------------

/// One user-logic stub (per instance), counted from its generated AST:
/// SMB states, tracking registers (user_driven signal decls), implied
/// comparators, and the handshake machinery around DATA_OUT.
[[nodiscard]] ResourceReport estimate_stub(const codegen::ast::Module& m);
/// The arbitration unit of §5.2, counted from its generated AST: one mux
/// leg per instantiation plus the CALC_DONE_VEC wiring.
[[nodiscard]] ResourceReport estimate_arbiter(const codegen::ast::Module& m);
/// The native interface adapter for the spec's bus, including the DMA
/// engine when %dma_support is on (§9.3.2: the engine dominates).
[[nodiscard]] ResourceReport estimate_interface(const ir::DeviceSpec& spec);
/// Whole generated interface stack: interface + arbiter + every stub
/// instance (excludes the user's calculation logic, which the thesis holds
/// constant across implementations).
[[nodiscard]] ResourceReport estimate_splice_device(
    const ir::DeviceSpec& spec);

}  // namespace splice::resources
