#include "drivergen/wordcodec.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace splice::drivergen {

std::vector<std::uint64_t> encode_elements(
    const ir::IoParam& p, const std::vector<std::uint64_t>& elements,
    unsigned bus_width) {
  std::vector<std::uint64_t> words;
  const unsigned tb = p.type.bits;

  if (tb > bus_width) {
    // Split: MSW first.
    const std::uint64_t wpe = p.words_per_element(bus_width);
    for (std::uint64_t e : elements) {
      for (std::uint64_t w = 0; w < wpe; ++w) {
        const unsigned shift = static_cast<unsigned>(wpe - 1 - w) * bus_width;
        words.push_back((e >> shift) & bits::low_mask(bus_width));
      }
    }
  } else if (p.packed && tb < bus_width) {
    const std::uint64_t lanes = p.elements_per_word(bus_width);
    for (std::size_t i = 0; i < elements.size(); i += lanes) {
      std::uint64_t word = 0;
      for (std::uint64_t j = 0; j < lanes && i + j < elements.size(); ++j) {
        word |= (elements[i + j] & bits::low_mask(tb)) << (j * tb);
      }
      words.push_back(word);
    }
  } else {
    for (std::uint64_t e : elements) {
      words.push_back(e & bits::low_mask(std::min(tb, 64u)));
    }
  }
  return words;
}

std::vector<std::uint64_t> decode_words(const ir::IoParam& p,
                                        const std::vector<std::uint64_t>& words,
                                        std::uint64_t expected_elements,
                                        unsigned bus_width) {
  std::vector<std::uint64_t> elements;
  const unsigned tb = p.type.bits;

  if (tb > bus_width) {
    const std::uint64_t wpe = p.words_per_element(bus_width);
    std::uint64_t acc = 0;
    std::uint64_t in_acc = 0;
    for (std::uint64_t w : words) {
      acc = (acc << bus_width) | w;
      if (++in_acc >= wpe) {
        elements.push_back(acc & bits::low_mask(std::min(tb, 64u)));
        acc = 0;
        in_acc = 0;
        if (elements.size() >= expected_elements) break;
      }
    }
  } else if (p.packed && tb < bus_width) {
    const std::uint64_t lanes = p.elements_per_word(bus_width);
    for (std::uint64_t w : words) {
      for (std::uint64_t j = 0; j < lanes; ++j) {
        if (elements.size() >= expected_elements) break;
        elements.push_back((w >> (j * tb)) & bits::low_mask(tb));
      }
    }
  } else {
    for (std::uint64_t w : words) {
      if (elements.size() >= expected_elements) break;
      elements.push_back(w & bits::low_mask(std::min(tb, 64u)));
    }
  }
  elements.resize(expected_elements, 0);
  return elements;
}

std::uint64_t word_count(const ir::IoParam& p,
                         std::uint64_t expected_elements,
                         unsigned bus_width) {
  return p.words_for(expected_elements, bus_width);
}

}  // namespace splice::drivergen
