// Per-bus transaction macro libraries: the splice_lib.h each generated
// driver includes (thesis §6.1, Figure 7.2).  Every supported bus defines
// the eight required macros; DMA-capable buses add WRITE_DMA / READ_DMA.
// A Linux-targeted variant maps the device range with mmap instead of
// using raw physical pointers (thesis future work §10.2, implemented).
#pragma once

#include <string>

#include "ir/device.hpp"

namespace splice::drivergen {

enum class DriverOs { BareMetal, Linux };

/// Emit splice_lib.h for the device's bus target.  Throws SpliceError for
/// an unknown bus name.
[[nodiscard]] std::string emit_macro_library(
    const ir::DeviceSpec& spec, DriverOs os = DriverOs::BareMetal);

}  // namespace splice::drivergen
