#include "drivergen/program.hpp"

#include "drivergen/wordcodec.hpp"
#include "support/diagnostics.hpp"

namespace splice::drivergen {

std::string_view opcode_name(OpCode op) {
  switch (op) {
    case OpCode::SetAddress: return "SET_ADDRESS";
    case OpCode::WriteSingle: return "WRITE_SINGLE";
    case OpCode::WriteDouble: return "WRITE_DOUBLE";
    case OpCode::WriteQuad: return "WRITE_QUAD";
    case OpCode::WriteDma: return "WRITE_DMA";
    case OpCode::ReadSingle: return "READ_SINGLE";
    case OpCode::ReadDouble: return "READ_DOUBLE";
    case OpCode::ReadQuad: return "READ_QUAD";
    case OpCode::ReadDma: return "READ_DMA";
    case OpCode::WaitForResults: return "WAIT_FOR_RESULTS";
    case OpCode::PollStatus: return "POLL_STATUS";
    case OpCode::WaitIrq: return "WAIT_IRQ";
  }
  return "?";
}

std::size_t DriverProgram::write_word_count() const {
  std::size_t n = 0;
  for (const auto& op : ops) n += op.data.size();
  return n;
}

DriverBuilder::DriverBuilder(const ir::DeviceSpec& spec,
                             const ir::FunctionDecl& fn)
    : spec_(spec), fn_(fn) {}

std::uint64_t DriverBuilder::param_elements(std::size_t idx,
                                            const CallArgs& args) const {
  const ir::IoParam& p = fn_.inputs[idx];
  switch (p.count_kind) {
    case ir::CountKind::Scalar:
      return 1;
    case ir::CountKind::Explicit:
      return p.explicit_count;
    case ir::CountKind::Implicit:
      for (std::size_t j = 0; j < idx; ++j) {
        if (fn_.inputs[j].name == p.index_var) return args.at(j).at(0);
      }
      throw SpliceError("implicit index '" + p.index_var + "' not resolvable");
  }
  return 1;
}

std::uint64_t DriverBuilder::output_elements(const CallArgs& args) const {
  if (!fn_.has_output()) return 0;
  const ir::IoParam& out = fn_.output;
  switch (out.count_kind) {
    case ir::CountKind::Scalar:
      return 1;
    case ir::CountKind::Explicit:
      return out.explicit_count;
    case ir::CountKind::Implicit:
      for (std::size_t j = 0; j < fn_.inputs.size(); ++j) {
        if (fn_.inputs[j].name == out.index_var) return args.at(j).at(0);
      }
      throw SpliceError("implicit output index '" + out.index_var +
                        "' not resolvable");
  }
  return 1;
}

void DriverBuilder::emit_writes(DriverProgram& program, const ir::IoParam& p,
                                std::vector<std::uint64_t> words) const {
  if (p.dma) {
    // One WRITE_DMA macro moves the whole block (§6.1.2).
    DriverOp op;
    op.op = OpCode::WriteDma;
    op.fid = program.fid;
    op.data = std::move(words);
    program.ops.push_back(std::move(op));
    return;
  }
  // The §6.1.1 macro ladder: prefer QUAD, then DOUBLE, then SINGLE.  When
  // %burst_support is off every word is its own macro call, exactly like
  // the "four sequential single-word store operations" fallback.
  const bool burst = spec_.target.burst_support;
  std::size_t i = 0;
  while (i < words.size()) {
    std::size_t n = 1;
    OpCode code = OpCode::WriteSingle;
    if (burst && words.size() - i >= 4) {
      n = 4;
      code = OpCode::WriteQuad;
    } else if (burst && words.size() - i >= 2) {
      n = 2;
      code = OpCode::WriteDouble;
    }
    DriverOp op;
    op.op = code;
    op.fid = program.fid;
    op.data.assign(words.begin() + static_cast<long>(i),
                   words.begin() + static_cast<long>(i + n));
    program.ops.push_back(std::move(op));
    i += n;
  }
}

DriverProgram DriverBuilder::build_call(const CallArgs& args,
                                        std::uint32_t instance) const {
  if (args.size() != fn_.inputs.size()) {
    throw SpliceError("'" + fn_.name + "' expects " +
                      std::to_string(fn_.inputs.size()) + " arguments, got " +
                      std::to_string(args.size()));
  }
  if (instance >= fn_.instances) {
    throw SpliceError("'" + fn_.name + "' instance index out of range");
  }
  const unsigned bw = spec_.target.bus_width;

  DriverProgram program;
  program.function_name = fn_.name;
  // Multi-instance drivers target SAMPLE_FUNCTION_ID + inst_index (§6.1.2).
  program.fid = fn_.func_id + instance;
  program.ops.push_back(DriverOp{OpCode::SetAddress, program.fid, {}, 0});

  // Inputs are transferred in the precise declaration order (§3.3).
  for (std::size_t i = 0; i < fn_.inputs.size(); ++i) {
    const ir::IoParam& p = fn_.inputs[i];
    const std::uint64_t elems = param_elements(i, args);
    if (args[i].size() != elems) {
      throw SpliceError("'" + fn_.name + "' parameter '" + p.name +
                        "' expects " + std::to_string(elems) +
                        " elements, got " + std::to_string(args[i].size()));
    }
    if (elems == 0) continue;
    emit_writes(program, p, encode_elements(p, args[i], bw));
  }

  if (fn_.blocking()) {
    program.ops.push_back(
        DriverOp{OpCode::WaitForResults, program.fid, {}, 0});

    auto emit_reads = [&](unsigned read_words, bool dma) {
      program.total_read_words += read_words;
      if (dma) {
        program.ops.push_back(
            DriverOp{OpCode::ReadDma, program.fid, {}, read_words});
        return;
      }
      const bool burst = spec_.target.burst_support;
      unsigned remaining = read_words;
      while (remaining > 0) {
        unsigned n = 1;
        OpCode code = OpCode::ReadSingle;
        if (burst && remaining >= 4) {
          n = 4;
          code = OpCode::ReadQuad;
        } else if (burst && remaining >= 2) {
          n = 2;
          code = OpCode::ReadDouble;
        }
        program.ops.push_back(DriverOp{code, program.fid, {}, n});
        remaining -= n;
      }
    };

    // §10.2 '&' by-reference read-backs come first, in declaration order.
    for (std::size_t idx : fn_.by_ref_params()) {
      const ir::IoParam& p = fn_.inputs[idx];
      const std::uint64_t elems = param_elements(idx, args);
      const unsigned words =
          static_cast<unsigned>(word_count(p, elems, bw));
      if (words > 0) emit_reads(words, p.dma);
    }

    // Blocking void declarations read the pseudo output word (§5.3.1);
    // value returns read the full output stream.
    unsigned read_words = 1;
    if (fn_.has_output()) {
      read_words = static_cast<unsigned>(
          word_count(fn_.output, output_elements(args), bw));
      if (read_words == 0) read_words = 1;
    }
    emit_reads(read_words, fn_.has_output() && fn_.output.dma);
  }
  return program;
}

DriverProgram DriverBuilder::build_completion_wait(std::uint32_t instance,
                                                   bool irq) const {
  if (fn_.blocking()) {
    throw SpliceError("'" + fn_.name +
                      "' is blocking; completion waits apply to nowait "
                      "declarations only");
  }
  if (instance >= fn_.instances) {
    throw SpliceError("'" + fn_.name + "' instance index out of range");
  }
  DriverProgram program;
  program.function_name = fn_.name;
  program.fid = fn_.func_id + instance;
  program.ops.push_back(DriverOp{OpCode::SetAddress, program.fid, {}, 0});
  program.ops.push_back(
      DriverOp{irq ? OpCode::WaitIrq : OpCode::PollStatus, program.fid,
               {}, 0});
  // Acknowledge the latched CALC_DONE bit: one status-register write with
  // the completion's bit as the clear mask.
  program.ops.push_back(DriverOp{OpCode::WriteSingle,
                                 std::uint32_t{sis::kStatusFuncId},
                                 {std::uint64_t{1} << program.fid},
                                 0});
  return program;
}

CallOutputs DriverBuilder::decode_call(
    const std::vector<std::uint64_t>& words, const CallArgs& args) const {
  CallOutputs out;
  const unsigned bw = spec_.target.bus_width;
  std::size_t pos = 0;
  for (std::size_t idx : fn_.by_ref_params()) {
    const ir::IoParam& p = fn_.inputs[idx];
    const std::uint64_t elems = param_elements(idx, args);
    const std::size_t nwords =
        static_cast<std::size_t>(word_count(p, elems, bw));
    std::vector<std::uint64_t> slice(
        words.begin() + static_cast<long>(std::min(pos, words.size())),
        words.begin() + static_cast<long>(std::min(pos + nwords,
                                                   words.size())));
    out.byref.push_back(decode_words(p, slice, elems, bw));
    pos += nwords;
  }
  if (fn_.has_output()) {
    std::vector<std::uint64_t> slice(
        words.begin() + static_cast<long>(std::min(pos, words.size())),
        words.end());
    out.outputs = decode_words(fn_.output, slice, output_elements(args), bw);
  }
  return out;
}

std::vector<std::uint64_t> DriverBuilder::decode_output(
    const std::vector<std::uint64_t>& words, const CallArgs& args) const {
  if (!fn_.has_output()) return {};
  return decode_call(words, args).outputs;
}

}  // namespace splice::drivergen
