// Software-side encoding of parameter element values into bus words and
// back — the driver's half of the packing (§3.1.3) and splitting (§3.1.4)
// conventions.  The hardware half lives in the ICOB; round-trip agreement
// between the two is covered by property tests.
//
// Conventions (shared with elab::IcobStub):
//   * split transfers send the most-significant word first (Figure 8.4);
//   * packed transfers fill low-order lanes first; trailing lanes of the
//     final word are padding the hardware ignores (§5.3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/device.hpp"

namespace splice::drivergen {

/// Words the driver must write to transfer `elements` of parameter `p`
/// over a `bus_width`-bit interface.
[[nodiscard]] std::vector<std::uint64_t> encode_elements(
    const ir::IoParam& p, const std::vector<std::uint64_t>& elements,
    unsigned bus_width);

/// Reassemble `expected_elements` element values of parameter `p` from the
/// word stream a read-back produced.
[[nodiscard]] std::vector<std::uint64_t> decode_words(
    const ir::IoParam& p, const std::vector<std::uint64_t>& words,
    std::uint64_t expected_elements, unsigned bus_width);

/// Number of bus words `expected_elements` elements of `p` occupy.
[[nodiscard]] std::uint64_t word_count(const ir::IoParam& p,
                                       std::uint64_t expected_elements,
                                       unsigned bus_width);

}  // namespace splice::drivergen
