// ANSI-C driver source emitter (thesis chapter 6).  Produces the
// <device>_driver.h / <device>_driver.c pair of Figure 8.7, structured
// like the Figure 6.1 / 6.2 listings: one function per interface
// declaration, built exclusively from the Figure 7.2 transaction macros so
// the same driver text retargets by swapping splice_lib.h.
#pragma once

#include <string>

#include "ir/device.hpp"

namespace splice::drivergen {

struct DriverSources {
  std::string header_filename;  ///< e.g. "hw_timer_driver.h"
  std::string header;
  std::string source_filename;  ///< e.g. "hw_timer_driver.c"
  std::string source;
};

/// Emit the driver pair for a validated device spec.
[[nodiscard]] DriverSources emit_driver_sources(const ir::DeviceSpec& spec);

/// The C spelling of a declaration's return type / parameter list, shared
/// by header and source emission (and asserted by tests).
[[nodiscard]] std::string c_prototype(const ir::DeviceSpec& spec,
                                      const ir::FunctionDecl& fn);

}  // namespace splice::drivergen
