// The executable form of a generated software driver.  The C emitter
// (c_emitter.hpp) renders drivers as ANSI-C text; this module renders the
// *same* transaction sequence as a DriverProgram the runtime's CPU master
// executes against a simulated bus — so the generated drivers' behaviour
// (and cycle cost) is measured, not inferred.
//
// Op granularity mirrors the thesis macros (Figure 7.2): one op == one
// driver macro invocation, which is what a CPU-side instruction gap is
// charged against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/device.hpp"
#include "sis/sis.hpp"

namespace splice::drivergen {

enum class OpCode : std::uint8_t {
  SetAddress,      ///< SET_ADDRESS(func_id)
  WriteSingle,     ///< WRITE_SINGLE
  WriteDouble,     ///< WRITE_DOUBLE (burst)
  WriteQuad,       ///< WRITE_QUAD (burst)
  WriteDma,        ///< WRITE_DMA (§3.1.5)
  ReadSingle,      ///< READ_SINGLE
  ReadDouble,      ///< READ_DOUBLE
  ReadQuad,        ///< READ_QUAD
  ReadDma,         ///< READ_DMA
  WaitForResults,  ///< WAIT_FOR_RESULTS (polls on strictly sync buses)
  PollStatus,      ///< POLL_STATUS: spin on CALC_DONE for a nowait call
  WaitIrq,         ///< WAIT_IRQ: sleep until the device interrupt (§10.2)
};

[[nodiscard]] std::string_view opcode_name(OpCode op);

struct DriverOp {
  OpCode op;
  std::uint32_t fid = 0;
  std::vector<std::uint64_t> data;  ///< write payload (bus words)
  unsigned read_words = 0;          ///< words expected by a read op
  /// Bus address of the device's CALC_DONE status register.  0 for a
  /// single-device platform; the device's window base on a multi-device
  /// SoC.  Wait/poll ops read it and test bit (fid - status_addr).
  std::uint32_t status_addr = 0;
};

struct DriverProgram {
  std::string function_name;
  std::uint32_t fid = 0;
  std::vector<DriverOp> ops;
  unsigned total_read_words = 0;

  [[nodiscard]] std::size_t write_word_count() const;
};

/// Per-parameter argument values (element granularity, declaration order).
using CallArgs = std::vector<std::vector<std::uint64_t>>;

/// Everything a blocking call returns: the '&' by-reference parameters'
/// updated values (§10.2, in by_ref_params order) and the return value.
struct CallOutputs {
  std::vector<std::vector<std::uint64_t>> byref;
  std::vector<std::uint64_t> outputs;
};

/// Builds call programs for one interface declaration, honouring the
/// target directives: %burst_support groups words into quad/double/single
/// macro ladders (§6.1.1), '^' parameters go through the DMA macros, and
/// WAIT_FOR_RESULTS is emitted for every blocking declaration (a no-op on
/// pseudo asynchronous buses, a CALC_DONE poll on strictly synchronous
/// ones).
class DriverBuilder {
 public:
  DriverBuilder(const ir::DeviceSpec& spec, const ir::FunctionDecl& fn);

  /// Assemble the transaction sequence for one call.  `args` must have one
  /// entry per input parameter with the exact element counts the
  /// declaration implies (implicit counts are read from the index
  /// argument's value).  Throws SpliceError on arity mismatch.
  [[nodiscard]] DriverProgram build_call(const CallArgs& args,
                                         std::uint32_t instance = 0) const;

  /// Completion wait for a nowait call issued earlier: WAIT_IRQ (sleep on
  /// the device interrupt, §10.2) or POLL_STATUS (spin on CALC_DONE),
  /// followed by the status write acknowledging the latched completion
  /// bit.  Throws SpliceError for blocking declarations.
  [[nodiscard]] DriverProgram build_completion_wait(
      std::uint32_t instance = 0, bool irq = false) const;

  /// Turn the words a call's reads produced back into output elements.
  [[nodiscard]] std::vector<std::uint64_t> decode_output(
      const std::vector<std::uint64_t>& words, const CallArgs& args) const;

  /// Full decode: by-reference read-backs (§10.2) plus the return value.
  [[nodiscard]] CallOutputs decode_call(
      const std::vector<std::uint64_t>& words, const CallArgs& args) const;

  /// Expected output element count for this call (implicit counts resolve
  /// against `args`).
  [[nodiscard]] std::uint64_t output_elements(const CallArgs& args) const;

 private:
  [[nodiscard]] std::uint64_t param_elements(std::size_t idx,
                                             const CallArgs& args) const;
  void emit_writes(DriverProgram& program, const ir::IoParam& p,
                   std::vector<std::uint64_t> words) const;

  const ir::DeviceSpec& spec_;
  const ir::FunctionDecl& fn_;
};

}  // namespace splice::drivergen
