#include "drivergen/c_emitter.hpp"

#include "support/strings.hpp"

namespace splice::drivergen {

namespace {

std::string type_spelling(const ir::CType& t) {
  // User types keep their %user_type name; the generated header typedefs
  // them to the underlying spelling so existing prototypes keep compiling.
  return t.name;
}

std::string param_decl(const ir::IoParam& p) {
  std::string s = type_spelling(p.type);
  if (p.is_pointer) s += "*";
  s += " " + p.name;
  return s;
}

std::string return_spelling(const ir::FunctionDecl& fn) {
  switch (fn.return_kind) {
    case ir::ReturnKind::Nowait:
    case ir::ReturnKind::Void:
      return "void";
    case ir::ReturnKind::Value: {
      std::string s = type_spelling(fn.output.type);
      if (fn.output.is_pointer || fn.output.is_array()) s += "*";
      return s;
    }
  }
  return "void";
}

std::string macro_id(const ir::FunctionDecl& fn) {
  return str::to_upper(fn.name) + "_ID";
}

std::string element_count_expr(const ir::IoParam& p) {
  switch (p.count_kind) {
    case ir::CountKind::Scalar: return "1";
    case ir::CountKind::Explicit: return std::to_string(p.explicit_count);
    case ir::CountKind::Implicit: return p.index_var;
  }
  return "1";
}

/// Words-per-element of a split transfer on the target bus.
unsigned words_per_element(const ir::IoParam& p, unsigned bus_width) {
  return static_cast<unsigned>(p.words_per_element(bus_width));
}

void emit_param_writes(str::Appender& os, const ir::DeviceSpec& spec,
                       const ir::IoParam& p) {
  const unsigned bw = spec.target.bus_width;
  const std::string count = element_count_expr(p);

  os << "    /* Transfer " << (p.is_array() ? count + " value(s) of " : "")
     << "'" << p.name << "' */\n";

  if (p.dma) {
    os << "    WRITE_DMA(func_addr, " << p.name << ", (" << count << ") * "
       << words_per_element(p, bw) << ");\n";
    return;
  }

  const bool scalar = !p.is_array();
  const std::string ref = scalar ? ("&" + p.name) : p.name;

  if (p.type.bits > bw) {
    // Split transfer (§3.1.4): the driver walks the value word-by-word,
    // most significant word first, via a byte-wise pointer.
    os << "    {\n"
       << "        const unsigned int* _w = (const unsigned int*)(" << ref
       << ");\n"
       << "        int _i;\n"
       << "        for (_i = 0; _i < (" << count << ") * "
       << words_per_element(p, bw) << "; _i += 1) {\n"
       << "            WRITE_SINGLE(func_addr, &_w[_i]);\n"
       << "        }\n"
       << "    }\n";
    return;
  }

  if (p.packed && p.type.bits < bw) {
    // Packed transfer (§3.1.3): a byte-wise incrementing pointer feeds
    // full bus words, several elements per transmission cycle (§6.1.1).
    const unsigned lanes = bw / p.type.bits;
    os << "    {\n"
       << "        const unsigned int* _w = (const unsigned int*)(" << ref
       << ");\n"
       << "        int _i;\n"
       << "        for (_i = 0; _i < ((" << count << ") + " << (lanes - 1)
       << ") / " << lanes << "; _i += 1) {\n"
       << "            WRITE_SINGLE(func_addr, &_w[_i]);\n"
       << "        }\n"
       << "    }\n";
    return;
  }

  if (scalar) {
    os << "    WRITE_SINGLE(func_addr, " << ref << ");\n";
    return;
  }

  if (spec.target.burst_support) {
    // The §6.1.1 macro ladder: quad, then double, then single.
    os << "    {\n"
       << "        int _i = 0;\n"
       << "        for (; _i + 4 <= (" << count << "); _i += 4) {\n"
       << "            WRITE_QUAD(func_addr, &" << p.name << "[_i]);\n"
       << "        }\n"
       << "        for (; _i + 2 <= (" << count << "); _i += 2) {\n"
       << "            WRITE_DOUBLE(func_addr, &" << p.name << "[_i]);\n"
       << "        }\n"
       << "        for (; _i < (" << count << "); _i += 1) {\n"
       << "            WRITE_SINGLE(func_addr, &" << p.name << "[_i]);\n"
       << "        }\n"
       << "    }\n";
  } else {
    os << "    {\n"
       << "        int _i;\n"
       << "        for (_i = 0; _i < (" << count << "); _i += 1) {\n"
       << "            WRITE_SINGLE(func_addr, &" << p.name << "[_i]);\n"
       << "        }\n"
       << "    }\n";
  }
}

void emit_output_reads(str::Appender& os, const ir::DeviceSpec& spec,
                       const ir::FunctionDecl& fn) {
  if (fn.return_kind == ir::ReturnKind::Void) {
    os << "    /* Blocking call: read the pseudo output word to"
          " synchronize (§5.3.1) */\n"
       << "    {\n"
       << "        unsigned int _sync;\n"
       << "        READ_SINGLE(func_addr, &_sync);\n"
       << "    }\n";
    return;
  }
  const ir::IoParam& out = fn.output;
  const unsigned bw = spec.target.bus_width;
  const std::string count = element_count_expr(out);

  if (!out.is_array() && out.type.bits <= bw) {
    os << "    /* Grab Result from Hardware */\n"
       << "    READ_SINGLE(func_addr, &result);\n"
       << "    return result;\n";
    return;
  }
  if (!out.is_array()) {
    // Split scalar result (e.g. a 64-bit value over a 32-bit bus).
    os << "    /* Grab the split result, most significant word first */\n"
       << "    {\n"
       << "        unsigned int* _w = (unsigned int*)(&result);\n"
       << "        int _i;\n"
       << "        for (_i = 0; _i < " << words_per_element(out, bw)
       << "; _i += 1) {\n"
       << "            READ_SINGLE(func_addr, &_w[_i]);\n"
       << "        }\n"
       << "    }\n"
       << "    return result;\n";
    return;
  }
  // Multi-value output: the driver allocates storage and hands back a
  // pointer the caller must free (§6.1.1's memory-leak caveat).
  os << "    /* Multi-value output: caller owns (and must free) the"
        " buffer */\n"
     << "    result = (" << type_spelling(out.type) << "*)malloc((" << count
     << ") * sizeof(" << type_spelling(out.type) << "));\n";
  if (out.dma) {
    os << "    READ_DMA(func_addr, result, (" << count << ") * "
       << words_per_element(out, bw) << ");\n";
  } else {
    os << "    {\n"
       << "        unsigned int* _w = (unsigned int*)result;\n"
       << "        int _i;\n"
       << "        for (_i = 0; _i < (" << count << ") * "
       << words_per_element(out, bw) << "; _i += 1) {\n"
       << "            READ_SINGLE(func_addr, &_w[_i]);\n"
       << "        }\n"
       << "    }\n";
  }
  os << "    return result;\n";
}

}  // namespace

std::string c_prototype(const ir::DeviceSpec& spec,
                        const ir::FunctionDecl& fn) {
  (void)spec;
  str::Appender os;
  os << return_spelling(fn) << " " << fn.name << "(";
  bool first = true;
  for (const auto& p : fn.inputs) {
    if (!first) os << ", ";
    os << param_decl(p);
    first = false;
  }
  if (fn.instances > 1) {
    // §6.1.2: multi-instance drivers take an extra instance selector.
    if (!first) os << ", ";
    os << "int inst_index";
    first = false;
  }
  if (first) os << "void";
  os << ")";
  return std::move(os).str();
}

DriverSources emit_driver_sources(const ir::DeviceSpec& spec) {
  DriverSources out;
  const std::string dev = spec.target.device_name;
  out.header_filename = dev + "_driver.h";
  out.source_filename = dev + "_driver.c";
  const std::string guard = str::to_upper(dev) + "_DRIVER_H";

  // ---- header -------------------------------------------------------------
  {
    str::Appender os;
    os << "/* Generated by Splice for device '" << dev << "' (bus: "
       << spec.target.bus_type << ") */\n"
       << "#ifndef " << guard << "\n#define " << guard << "\n\n";
    for (const auto& t : spec.types.user_types()) {
      os << "typedef " << t.c_spelling << " " << t.name << "; /* "
         << t.bits << " bits */\n";
    }
    os << "\n";
    for (const auto& fn : spec.functions) {
      os << c_prototype(spec, fn) << ";\n";
    }
    os << "\n#endif /* " << guard << " */\n";
    out.header = std::move(os).str();
  }

  // ---- source -------------------------------------------------------------
  {
    str::Appender os;
    os << "/* Generated by Splice for device '" << dev << "' (bus: "
       << spec.target.bus_type << ") */\n"
       << "#include <stdlib.h>\n"
       << "#include \"splice_lib.h\"\n"
       << "#include \"" << out.header_filename << "\"\n\n";

    for (const auto& fn : spec.functions) {
      os << "/* ID Used to Target " << fn.name << " */\n"
         << "#define " << macro_id(fn) << " " << fn.func_id << "\n\n";

      os << c_prototype(spec, fn) << "\n{\n";
      if (fn.has_output()) {
        os << "    " << type_spelling(fn.output.type)
           << (fn.output.is_array() ? "* result = 0;\n" : " result;\n");
      }
      os << "    unsigned long func_addr;\n\n";
      os << "    /* Determine the Address of the Function"
         << (fn.instances > 1 ? " Instance" : "") << " */\n"
         << "    func_addr = SET_ADDRESS(" << macro_id(fn)
         << (fn.instances > 1 ? " + inst_index" : "") << ");\n\n";

      for (const auto& p : fn.inputs) emit_param_writes(os, spec, p);

      if (fn.blocking()) {
        os << "\n    /* Wait for Calculations to Complete */\n"
           << "    WAIT_FOR_RESULTS(func_addr);\n\n";
        for (std::size_t idx : fn.by_ref_params()) {
          const ir::IoParam& p = fn.inputs[idx];
          const std::string count = element_count_expr(p);
          os << "    /* '&' by reference: read the updated '" << p.name
             << "' values back (§10.2) */\n";
          if (p.dma) {
            os << "    READ_DMA(func_addr, " << p.name << ", (" << count
               << ") * " << words_per_element(p, spec.target.bus_width)
               << ");\n";
          } else {
            const unsigned bw = spec.target.bus_width;
            std::string nwords;
            if (p.packed && p.type.bits < bw) {
              const unsigned lanes = bw / p.type.bits;
              nwords = "((" + count + ") + " + std::to_string(lanes - 1) +
                       ") / " + std::to_string(lanes);
            } else {
              nwords = "(" + count + ") * " +
                       std::to_string(words_per_element(p, bw));
            }
            os << "    {\n"
               << "        unsigned int* _w = (unsigned int*)" << p.name
               << ";\n"
               << "        int _i;\n"
               << "        for (_i = 0; _i < " << nwords
               << "; _i += 1) {\n"
               << "            READ_SINGLE(func_addr, &_w[_i]);\n"
               << "        }\n"
               << "    }\n";
          }
        }
        emit_output_reads(os, spec, fn);
      } else {
        os << "    /* nowait: control returns immediately (§3.1.7) */\n";
      }
      os << "}\n\n";
    }
    out.source = std::move(os).str();
  }
  return out;
}

}  // namespace splice::drivergen
