// The software-facing side of every bus model.  The CPU master (runtime
// library) drives one of these; the bus module turns each request into the
// native pin-level protocol over subsequent clock cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/simulator.hpp"

namespace splice::bus {

/// Transfer widths of the thesis driver macros (Figure 7.2):
/// WRITE_SINGLE / WRITE_DOUBLE / WRITE_QUAD and the READ_* family.
enum class Beats : unsigned { Single = 1, Double = 2, Quad = 4 };

class MasterPort {
 public:
  virtual ~MasterPort() = default;

  /// True while a previously issued request is still on the wire.
  [[nodiscard]] virtual bool busy() const = 0;

  /// Issue a write of `beats.size()` bus words to function slot `fid`.
  /// Buses without native bursts serialize internally (one full
  /// transaction per word, as the §6.1.1 macro fallback prescribes).
  virtual void write(std::uint32_t fid, std::vector<std::uint64_t> beats) = 0;

  /// Issue a read of `beats` bus words from function slot `fid`.
  virtual void read(std::uint32_t fid, unsigned beats) = 0;

  /// Data captured by the most recent completed read.
  [[nodiscard]] virtual const std::vector<std::uint64_t>& read_data()
      const = 0;

  /// Longest native burst in bus words (1 when the bus has none).
  [[nodiscard]] virtual unsigned max_burst_beats() const { return 1; }

  /// CPU-side gap (in bus cycles) the driver pays between transactions on
  /// this bus — memory-mapped stores cost more than co-processor opcodes.
  [[nodiscard]] virtual unsigned cpu_gap_cycles() const;

  /// DMA support (thesis §3.1.5): transfer a block without CPU pacing.
  [[nodiscard]] virtual bool supports_dma() const { return false; }
  virtual void dma_write(std::uint32_t fid, std::vector<std::uint64_t> words);
  virtual void dma_read(std::uint32_t fid, unsigned words);

  /// Completion hand-off for the compiled backend's gated scheduler: the
  /// CPU master sleeps while busy() holds, so the bus must request a clock
  /// edge for it on the cycle the operation train drains.  The bus module
  /// runs before the CPU in module order, making the wake same-cycle exact
  /// against the interpreter's poll.  No-op when nothing registered (e.g.
  /// benchmark harnesses driving the port directly).
  void set_completion_waiter(rtl::Module& waiter) { waiter_ = &waiter; }

 protected:
  /// Bus implementations call this at the end of any clock edge on which
  /// busy() is false (spurious calls while the waiter is awake are safe).
  void wake_waiter() {
    if (waiter_ != nullptr) waiter_->request_clock_edge();
  }

 private:
  rtl::Module* waiter_ = nullptr;
};

}  // namespace splice::bus
