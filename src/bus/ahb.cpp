#include "bus/ahb.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace splice::bus {

AhbPins AhbPins::create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return AhbPins{
      data_width,
      sim.signal(name("RST"), 1),
      sim.signal(name("HTRANS"), 2),
      sim.signal(name("HWRITE"), 1),
      sim.signal(name("HADDR"), func_id_width),
      sim.signal(name("HBURST"), 5),
      sim.signal(name("HWDATA"), data_width),
      sim.signal(name("HRDATA"), data_width),
      sim.signal(name("HREADY"), 1),
  };
}

AhbBus::AhbBus(rtl::Simulator& sim, const std::string& prefix,
               unsigned data_width, unsigned func_id_width)
    : rtl::Module(prefix + "bus"),
      pins_(AhbPins::create(sim, prefix, data_width, func_id_width)) {
  pins_.hready.set(true);  // idle bus is ready
  watch_none();  // clocked-only: the master FSM drives pins on the edge
  // Enqueues assert busy and reset must preempt; HREADY wakes a stalled
  // transfer out of its event-gated sleep (see clock_edge).
  watch_clocked_all(pins_.rst, pins_.hready);
}

bool AhbBus::busy() const { return state_ != St::Idle || !queue_.empty(); }

void AhbBus::write(std::uint32_t fid, std::vector<std::uint64_t> beats) {
  std::size_t i = 0;
  while (i < beats.size()) {
    unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(beats.size() - i, timing::kAhbMaxBurstBeats));
    Burst b;
    b.is_read = false;
    b.fid = fid;
    b.beats.assign(beats.begin() + static_cast<long>(i),
                   beats.begin() + static_cast<long>(i + n));
    b.beat_count = n;
    queue_.push_back(std::move(b));
    i += n;
  }
  set_clock_busy(true);
}

void AhbBus::read(std::uint32_t fid, unsigned beats) {
  if (!busy()) read_data_.clear();
  unsigned remaining = beats;
  while (remaining > 0) {
    unsigned n = std::min(remaining, timing::kAhbMaxBurstBeats);
    Burst b;
    b.is_read = true;
    b.fid = fid;
    b.beat_count = n;
    queue_.push_back(std::move(b));
    remaining -= n;
  }
  set_clock_busy(true);
}

void AhbBus::enqueue_stream(bool is_read, std::uint32_t fid,
                            const std::vector<std::uint64_t>* words,
                            unsigned beat_total) {
  unsigned issued = 0;
  while (issued < beat_total) {
    unsigned n = std::min(beat_total - issued, timing::kAhbMaxBurstBeats);
    Burst b;
    b.is_read = is_read;
    b.fid = fid;
    b.dma_stream = true;
    b.beat_count = n;
    if (words != nullptr) {
      b.beats.assign(words->begin() + issued, words->begin() + issued + n);
    }
    queue_.push_back(std::move(b));
    issued += n;
  }
}

// The §9.2.1 DMA shape carries over from the PLB engine: a fixed number of
// engine register transactions bracket the stream.  The stream itself rides
// the native chained bursts, so the per-word cost is the memory prefetch
// amortized over a full-length burst instead of one handshake per word.
void AhbBus::dma_write(std::uint32_t fid, std::vector<std::uint64_t> words) {
  if (!dma_enabled_) {
    throw SpliceError("AHB DMA engine not enabled for this configuration");
  }
  for (unsigned i = 0; i < timing::kDmaSetupWrites; ++i) {
    queue_.push_back(Burst{.engine = true, .engine_cycles = 1});
  }
  enqueue_stream(false, fid, &words, static_cast<unsigned>(words.size()));
  for (unsigned i = 0; i < timing::kDmaTeardownReads; ++i) {
    queue_.push_back(Burst{.engine = true, .engine_cycles = 1});
  }
  set_clock_busy(true);
}

void AhbBus::dma_read(std::uint32_t fid, unsigned words) {
  if (!dma_enabled_) {
    throw SpliceError("AHB DMA engine not enabled for this configuration");
  }
  if (!busy()) read_data_.clear();
  for (unsigned i = 0; i < timing::kDmaSetupWrites; ++i) {
    queue_.push_back(Burst{.engine = true, .engine_cycles = 1});
  }
  enqueue_stream(true, fid, nullptr, words);
  for (unsigned i = 0; i < timing::kDmaTeardownReads; ++i) {
    queue_.push_back(Burst{.engine = true, .engine_cycles = 1});
  }
  set_clock_busy(true);
}

void AhbBus::clock_edge() {
  edge_impl();
  const bool b = busy();
  // The edge an operation train drains, hand completion to a CPU master
  // sleeping on busy() (it runs after us this same cycle).
  if (!b) wake_waiter();
  // A transfer with HREADY low is completely frozen — every pin is held,
  // nothing counts down — so sleep until the watched line changes.  All
  // other states (arbitration, engine accesses, ready transfers) advance
  // every cycle, as does reset.
  const bool stall = state_ == St::Transfer && !pins_.hready.high();
  set_clock_busy((b && !stall) || pins_.rst.high());
}

void AhbBus::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  switch (state_) {
    case St::Idle:
      if (!queue_.empty()) {
        current_ = std::move(queue_.front());
        queue_.pop_front();
        addr_issued_ = 0;
        data_done_ = 0;
        data_phase_open_ = false;
        addr_pending_ = false;
        if (current_.engine) {
          // Engine register access: holds the bus, never reaches the
          // peripheral pins.
          countdown_ = timing::kAhbArbitrationCycles + current_.engine_cycles;
          state_ = St::Engine;
          break;
        }
        // Engine-paced stream chunks prefetch a burst's worth from system
        // memory before the first address phase goes out.
        countdown_ = timing::kAhbArbitrationCycles +
                     (current_.dma_stream ? timing::kDmaStreamFetchCycles : 0);
        state_ = countdown_ == 0 ? St::Transfer : St::Arb;
      }
      break;

    case St::Arb:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) state_ = St::Transfer;
      break;

    case St::Engine:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) state_ = St::Idle;
      break;

    case St::Transfer: {
      // Address and data phases pipeline per the AHB rules: at every edge
      // where HREADY is high, the open data phase (if any) completes, the
      // pending address phase is accepted by the slave (its data phase
      // opens and HWDATA takes *its* payload), and the next address phase
      // goes onto HADDR/HTRANS.
      const bool ready = pins_.hready.high();
      if (ready) {
        if (data_phase_open_) {
          if (current_.is_read) read_data_.push_back(pins_.hrdata.get());
          ++data_done_;
          data_phase_open_ = false;
        }
        if (addr_pending_) {
          data_phase_open_ = true;
          if (!current_.is_read) pins_.hwdata.set(current_.beats[pending_beat_]);
          addr_pending_ = false;
        }
        if (addr_issued_ < current_.beat_count) {
          pins_.htrans.set(addr_issued_ == 0 ? kHtransNonseq : kHtransSeq);
          pins_.haddr.set(static_cast<std::uint64_t>(current_.fid));
          pins_.hwrite.set(!current_.is_read);
          pins_.hburst.set(
              static_cast<std::uint64_t>(current_.beat_count - addr_issued_));
          addr_pending_ = true;
          pending_beat_ = addr_issued_;
          ++addr_issued_;
        } else {
          pins_.htrans.set(kHtransIdle);
        }
        if (data_done_ >= current_.beat_count && !addr_pending_ &&
            !data_phase_open_) {
          pins_.htrans.set(kHtransIdle);
          pins_.hwrite.set(false);
          ++bursts_;
          state_ = St::Idle;
        }
      }
      break;
    }
  }
}

void AhbBus::reset() {
  queue_.clear();
  state_ = St::Idle;
  addr_issued_ = 0;
  data_done_ = 0;
  data_phase_open_ = false;
  addr_pending_ = false;
  countdown_ = 0;
  read_data_.clear();
  pins_.htrans.set(kHtransIdle);
  pins_.hwrite.set(false);
  pins_.haddr.set(std::uint64_t{0});
  pins_.hwdata.set(std::uint64_t{0});
}

}  // namespace splice::bus
