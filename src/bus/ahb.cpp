#include "bus/ahb.hpp"

#include <algorithm>

namespace splice::bus {

AhbPins AhbPins::create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return AhbPins{
      data_width,
      sim.signal(name("RST"), 1),
      sim.signal(name("HTRANS"), 2),
      sim.signal(name("HWRITE"), 1),
      sim.signal(name("HADDR"), func_id_width),
      sim.signal(name("HBURST"), 5),
      sim.signal(name("HWDATA"), data_width),
      sim.signal(name("HRDATA"), data_width),
      sim.signal(name("HREADY"), 1),
  };
}

AhbBus::AhbBus(rtl::Simulator& sim, const std::string& prefix,
               unsigned data_width, unsigned func_id_width)
    : rtl::Module(prefix + "bus"),
      pins_(AhbPins::create(sim, prefix, data_width, func_id_width)) {
  pins_.hready.set(true);  // idle bus is ready
  watch_none();  // clocked-only: the master FSM drives pins on the edge
}

bool AhbBus::busy() const { return state_ != St::Idle || !queue_.empty(); }

void AhbBus::write(std::uint32_t fid, std::vector<std::uint64_t> beats) {
  std::size_t i = 0;
  while (i < beats.size()) {
    unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(beats.size() - i, timing::kAhbMaxBurstBeats));
    Burst b;
    b.is_read = false;
    b.fid = fid;
    b.beats.assign(beats.begin() + static_cast<long>(i),
                   beats.begin() + static_cast<long>(i + n));
    b.beat_count = n;
    queue_.push_back(std::move(b));
    i += n;
  }
}

void AhbBus::read(std::uint32_t fid, unsigned beats) {
  if (!busy()) read_data_.clear();
  unsigned remaining = beats;
  while (remaining > 0) {
    unsigned n = std::min(remaining, timing::kAhbMaxBurstBeats);
    Burst b;
    b.is_read = true;
    b.fid = fid;
    b.beat_count = n;
    queue_.push_back(std::move(b));
    remaining -= n;
  }
}

void AhbBus::clock_edge() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  switch (state_) {
    case St::Idle:
      if (!queue_.empty()) {
        current_ = std::move(queue_.front());
        queue_.pop_front();
        addr_issued_ = 0;
        data_done_ = 0;
        data_phase_open_ = false;
        addr_pending_ = false;
        countdown_ = timing::kAhbArbitrationCycles;
        state_ = countdown_ == 0 ? St::Transfer : St::Arb;
      }
      break;

    case St::Arb:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) state_ = St::Transfer;
      break;

    case St::Transfer: {
      // Address and data phases pipeline per the AHB rules: at every edge
      // where HREADY is high, the open data phase (if any) completes, the
      // pending address phase is accepted by the slave (its data phase
      // opens and HWDATA takes *its* payload), and the next address phase
      // goes onto HADDR/HTRANS.
      const bool ready = pins_.hready.high();
      if (ready) {
        if (data_phase_open_) {
          if (current_.is_read) read_data_.push_back(pins_.hrdata.get());
          ++data_done_;
          data_phase_open_ = false;
        }
        if (addr_pending_) {
          data_phase_open_ = true;
          if (!current_.is_read) pins_.hwdata.set(current_.beats[pending_beat_]);
          addr_pending_ = false;
        }
        if (addr_issued_ < current_.beat_count) {
          pins_.htrans.set(addr_issued_ == 0 ? kHtransNonseq : kHtransSeq);
          pins_.haddr.set(static_cast<std::uint64_t>(current_.fid));
          pins_.hwrite.set(!current_.is_read);
          pins_.hburst.set(
              static_cast<std::uint64_t>(current_.beat_count - addr_issued_));
          addr_pending_ = true;
          pending_beat_ = addr_issued_;
          ++addr_issued_;
        } else {
          pins_.htrans.set(kHtransIdle);
        }
        if (data_done_ >= current_.beat_count && !addr_pending_ &&
            !data_phase_open_) {
          pins_.htrans.set(kHtransIdle);
          pins_.hwrite.set(false);
          ++bursts_;
          state_ = St::Idle;
        }
      }
      break;
    }
  }
}

void AhbBus::reset() {
  queue_.clear();
  state_ = St::Idle;
  addr_issued_ = 0;
  data_done_ = 0;
  data_phase_open_ = false;
  addr_pending_ = false;
  countdown_ = 0;
  read_data_.clear();
  pins_.htrans.set(kHtransIdle);
  pins_.hwrite.set(false);
  pins_.haddr.set(std::uint64_t{0});
  pins_.hwdata.set(std::uint64_t{0});
}

}  // namespace splice::bus
