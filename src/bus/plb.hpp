// IBM CoreConnect Processor Local Bus model (thesis §2.3.2, §4.3.1).
//
// Pin-level protocol follows Figures 4.5/4.6: the master decodes the target
// address into a one-hot chip-enable (RD_CE / WR_CE), raises the byte
// enables, strobes RD_REQ / WR_REQ for one cycle, and holds CE/BE (and
// write data) steady until the slave acknowledges with RD_ACK / WR_ACK.
// A turnaround cycle lowers the lines before the next transaction.
//
// The optional DMA engine models the §9.2.1 cost structure: register setup
// and completion-status transactions bracket a CPU-free word stream.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/master_port.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

/// The slave-facing pins of a memory-mapped CoreConnect-style bus.
struct PlbPins {
  unsigned data_width;
  unsigned slots;  ///< one-hot CE width == function slots on this device

  rtl::Signal& rst;
  rtl::Signal& rd_req;   ///< read request strobe (1 cycle)
  rtl::Signal& wr_req;   ///< write request strobe (1 cycle)
  rtl::Signal& rd_ce;    ///< one-hot read chip enable, held until RD_ACK
  rtl::Signal& wr_ce;    ///< one-hot write chip enable, held until WR_ACK
  rtl::Signal& be;       ///< byte enables ("1111" on a 32-bit PLB, §4.3.1)
  rtl::Signal& wr_data;  ///< DATA_IN toward the slave
  rtl::Signal& rd_data;  ///< DATA_OUT from the slave (slave-driven)
  rtl::Signal& wr_ack;   ///< slave write acknowledge (slave-driven)
  rtl::Signal& rd_ack;   ///< slave read acknowledge (slave-driven)

  static PlbPins create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned slots);
};

/// Per-bus latency configuration (lets the OPB model reuse this engine with
/// its bridge penalty, §2.3.2).
struct MemMappedBusConfig {
  unsigned arbitration_cycles = timing::kPlbArbitrationCycles;
  unsigned turnaround_cycles = timing::kPlbTurnaroundCycles;
  /// Extra cycles added before the request reaches the slave and after the
  /// acknowledge returns (bridge crossings; 0 for the native PLB).
  unsigned bridge_cycles = 0;
  unsigned cpu_gap_cycles = timing::kCpuGapCycles;
  /// Memory-fetch latency the DMA engine pays per streamed word.
  unsigned dma_stream_fetch_cycles = timing::kDmaStreamFetchCycles;
};

class PlbBus : public rtl::Module, public MasterPort {
 public:
  PlbBus(rtl::Simulator& sim, const std::string& prefix, unsigned data_width,
         unsigned slots, MemMappedBusConfig config = {});

  [[nodiscard]] PlbPins& pins() { return pins_; }
  [[nodiscard]] const PlbPins& pins() const { return pins_; }

  /// Attach an additional address window (a further slave select region on
  /// the shared bus).  Operations targeting a *global* function id in
  /// [base, base + slots) drive the new window's pins with the local
  /// one-hot chip enable `1 << (fid - base)`; the original constructor pins
  /// remain window 0 with base 0.  Returns the window's global base.
  std::uint32_t add_window(const std::string& prefix, unsigned slots);
  [[nodiscard]] std::size_t window_count() const { return windows_.size(); }
  [[nodiscard]] PlbPins& window(std::size_t idx) { return windows_[idx].pins; }
  [[nodiscard]] std::uint32_t window_base(std::size_t idx) const {
    return windows_[idx].base;
  }
  /// One past the largest decodable global function id.
  [[nodiscard]] std::uint32_t fid_limit() const { return fid_limit_; }

  // -- MasterPort -----------------------------------------------------------
  [[nodiscard]] bool busy() const override;
  void write(std::uint32_t fid, std::vector<std::uint64_t> beats) override;
  void read(std::uint32_t fid, unsigned beats) override;
  [[nodiscard]] const std::vector<std::uint64_t>& read_data() const override {
    return read_data_;
  }
  [[nodiscard]] unsigned cpu_gap_cycles() const override {
    return config_.cpu_gap_cycles;
  }

  /// Attach the §9.2.1 DMA engine.  Streamed words keep bus ownership (no
  /// re-arbitration between beats) and need no CPU pacing.
  void enable_dma() { dma_enabled_ = true; }
  [[nodiscard]] bool supports_dma() const override { return dma_enabled_; }
  void dma_write(std::uint32_t fid, std::vector<std::uint64_t> words) override;
  void dma_read(std::uint32_t fid, unsigned words) override;

  // -- Module ---------------------------------------------------------------
  void clock_edge() override;
  void reset() override;

  /// Completed word-level transactions (reads + writes, incl. DMA traffic).
  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }

 private:
  enum class OpKind : std::uint8_t {
    DeviceWrite,
    DeviceRead,
    EngineWrite,  ///< DMA setup register write (not on the device pins)
    EngineRead,   ///< DMA completion-status read
    StreamWrite,  ///< DMA-streamed word to the device (no re-arbitration)
    StreamRead,   ///< DMA-streamed word from the device
  };
  struct WordOp {
    OpKind kind;
    std::uint32_t fid = 0;
    std::uint64_t data = 0;
  };
  enum class St : std::uint8_t { Idle, Arb, Request, WaitAck, Turnaround };

  struct Window {
    PlbPins pins;
    std::uint32_t base;
  };

  void edge_impl();
  void begin_next_op();
  [[nodiscard]] Window& window_for(std::uint32_t fid);
  [[nodiscard]] static bool is_engine(OpKind k) {
    return k == OpKind::EngineWrite || k == OpKind::EngineRead;
  }
  [[nodiscard]] static bool is_read(OpKind k) {
    return k == OpKind::DeviceRead || k == OpKind::EngineRead ||
           k == OpKind::StreamRead;
  }
  [[nodiscard]] static bool is_stream(OpKind k) {
    return k == OpKind::StreamWrite || k == OpKind::StreamRead;
  }

  rtl::Simulator& sim_;
  PlbPins pins_;
  MemMappedBusConfig config_;
  bool dma_enabled_ = false;
  /// Address windows; windows_[0] aliases pins_ (same signals, base 0).
  std::deque<Window> windows_;
  std::uint32_t fid_limit_ = 0;
  /// Pins of the window the in-flight operation targets.
  PlbPins* cur_pins_ = nullptr;

  std::deque<WordOp> queue_;
  St state_ = St::Idle;
  WordOp current_{};
  unsigned countdown_ = 0;
  /// A request strobe was driven this edge; the next edge must run to lower
  /// it (strobes are single-cycle) before the WaitAck state may sleep.
  bool strobed_ = false;
  bool dma_read_active_ = false;  ///< current read_data_ belongs to a DMA read
  std::vector<std::uint64_t> read_data_;
  std::uint64_t transactions_ = 0;
};

}  // namespace splice::bus
