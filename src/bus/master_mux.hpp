// Multi-master front end for a single bus: N MasterPort channels feed one
// downstream port through a round-robin grant stage, modelling several bus
// masters (CPU cores, DMA engines) contending for the same segment.  Each
// channel holds at most one in-flight operation; a channel whose request
// loses arbitration simply waits, and the cycles it spends waiting are
// accumulated as contention.
//
// Clocked-only module (no combinational process): identical behaviour on
// both simulation backends.  The grant stage adds one bus cycle between a
// channel's request and the downstream issue — the arbitration register a
// real shared-bus attachment pays.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bus/master_port.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

class BusMasterMux : public rtl::Module {
 public:
  BusMasterMux(MasterPort& inner, unsigned ports);

  /// The master-facing side of channel `idx` (give one to each CPU).
  [[nodiscard]] MasterPort& port(unsigned idx);

  /// Operations granted to channel `idx` so far.
  [[nodiscard]] std::uint64_t grants(unsigned idx) const;
  /// Total cycles requests spent queued behind another master's grant.
  [[nodiscard]] std::uint64_t contended_cycles() const { return contended_; }

  void clock_edge() override;
  void reset() override;

 private:
  enum class Op : std::uint8_t { None, Write, Read, DmaWrite, DmaRead };

  struct Channel : MasterPort {
    BusMasterMux* mux = nullptr;

    Op pending = Op::None;  ///< queued request awaiting grant
    Op in_flight = Op::None;
    bool active = false;    ///< owns the downstream port right now
    std::uint32_t fid = 0;
    std::vector<std::uint64_t> payload;
    unsigned beats = 0;
    std::vector<std::uint64_t> captured;
    std::uint64_t granted = 0;

    [[nodiscard]] bool busy() const override {
      return pending != Op::None || active;
    }
    void write(std::uint32_t f, std::vector<std::uint64_t> b) override;
    void read(std::uint32_t f, unsigned b) override;
    [[nodiscard]] const std::vector<std::uint64_t>& read_data()
        const override {
      return captured;
    }
    [[nodiscard]] unsigned max_burst_beats() const override;
    [[nodiscard]] unsigned cpu_gap_cycles() const override;
    [[nodiscard]] bool supports_dma() const override;
    void dma_write(std::uint32_t f, std::vector<std::uint64_t> w) override;
    void dma_read(std::uint32_t f, unsigned w) override;

    /// Called by the mux when the downstream operation drains.
    void finish(const MasterPort& inner);

   private:
    void enqueue(Op op, std::uint32_t f, std::vector<std::uint64_t> d,
                 unsigned b);
  };

  void issue(Channel& ch);

  MasterPort& inner_;
  std::deque<Channel> channels_;  // stable addresses: ports are handed out
  int owner_ = -1;
  unsigned next_ = 0;  ///< round-robin pointer
  std::uint64_t contended_ = 0;
};

}  // namespace splice::bus
