// AMBA High-speed Bus model (thesis §2.3.1; adapter support is the first
// item of the §10.2 future-work list — implemented here).
//
// The AHB pipelines address and data phases: while beat N's data is on
// HWDATA/HRDATA, beat N+1's address is already on HADDR.  Slaves insert
// wait states by holding HREADY low.  Chained bursts of up to 16 beats
// amortize the arbitration cost (§2.3.1: "chained transactions of up to 16
// cycles are permitted").
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/master_port.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

/// HTRANS encodings (subset).
inline constexpr std::uint64_t kHtransIdle = 0;
inline constexpr std::uint64_t kHtransNonseq = 2;
inline constexpr std::uint64_t kHtransSeq = 3;

struct AhbPins {
  unsigned data_width;

  rtl::Signal& rst;
  rtl::Signal& htrans;  ///< 2 bits: IDLE / NONSEQ / SEQ
  rtl::Signal& hwrite;
  rtl::Signal& haddr;   ///< function identifier (word address)
  rtl::Signal& hburst;  ///< beats remaining in the burst (model signal)
  rtl::Signal& hwdata;
  rtl::Signal& hrdata;  ///< slave-driven
  rtl::Signal& hready;  ///< slave-driven; low inserts a wait state

  static AhbPins create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width);
};

class AhbBus : public rtl::Module, public MasterPort {
 public:
  AhbBus(rtl::Simulator& sim, const std::string& prefix, unsigned data_width,
         unsigned func_id_width);

  [[nodiscard]] AhbPins& pins() { return pins_; }

  // -- MasterPort -----------------------------------------------------------
  [[nodiscard]] bool busy() const override;
  void write(std::uint32_t fid, std::vector<std::uint64_t> beats) override;
  void read(std::uint32_t fid, unsigned beats) override;
  [[nodiscard]] const std::vector<std::uint64_t>& read_data() const override {
    return read_data_;
  }
  [[nodiscard]] unsigned max_burst_beats() const override {
    return timing::kAhbMaxBurstBeats;
  }

  /// §10.2 / §2.3.1: an AHB DMA engine is simply another bus master that
  /// chains full-length bursts.  Enabled when the spec asks for
  /// %dma_support (the builtin AHB adapter advertises it).
  void enable_dma() { dma_enabled_ = true; }
  [[nodiscard]] bool supports_dma() const override { return dma_enabled_; }
  void dma_write(std::uint32_t fid, std::vector<std::uint64_t> words) override;
  void dma_read(std::uint32_t fid, unsigned words) override;

  // -- Module ---------------------------------------------------------------
  void clock_edge() override;
  void reset() override;

  [[nodiscard]] std::uint64_t bursts() const { return bursts_; }

 private:
  struct Burst {
    bool is_read = false;
    std::uint32_t fid = 0;
    std::vector<std::uint64_t> beats;
    unsigned beat_count = 0;
    /// DMA engine register access: occupies the bus for `engine_cycles`
    /// but never reaches the peripheral (the engine sits on its own
    /// configuration port, like the PLB engine's EngineWrite/EngineRead).
    bool engine = false;
    unsigned engine_cycles = 0;
    /// Engine-paced stream chunk: pays the memory prefetch latency up
    /// front instead of CPU gaps between beats.
    bool dma_stream = false;
  };
  enum class St : std::uint8_t { Idle, Arb, Transfer, Engine };

  void edge_impl();
  void enqueue_stream(bool is_read, std::uint32_t fid,
                      const std::vector<std::uint64_t>* words,
                      unsigned beat_total);

  AhbPins pins_;
  std::deque<Burst> queue_;
  St state_ = St::Idle;
  Burst current_{};
  unsigned addr_issued_ = 0;   ///< beats whose address phase is out
  unsigned data_done_ = 0;     ///< beats whose data phase completed
  bool data_phase_open_ = false;
  bool addr_pending_ = false;  ///< presented address not yet accepted
  unsigned pending_beat_ = 0;
  unsigned countdown_ = 0;
  std::vector<std::uint64_t> read_data_;
  std::uint64_t bursts_ = 0;
  bool dma_enabled_ = false;
};

}  // namespace splice::bus
