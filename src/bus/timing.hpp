// Calibration constants for the bus protocol models.  Each value is tied to
// a statement in the thesis or the referenced bus specifications; together
// they reproduce the *shape* of the chapter-9 measurements (who wins, by
// roughly what factor, where the DMA crossover falls) without claiming the
// authors' absolute testbed numbers.
#pragma once

namespace splice::bus::timing {

// ---------------------------------------------------------------------------
// System clocking (§9.3): PPC-405 at 300 MHz, PLB/FCB interconnects at
// 100 MHz => 3 CPU cycles per bus cycle.  All counts below are *bus* cycles
// unless suffixed _cpu.
// ---------------------------------------------------------------------------
inline constexpr unsigned kCpuClockRatio = 3;

// CPU-side driver overhead between consecutive bus transactions: address
// computation, pointer increment, loop bookkeeping of the generated driver
// loops (Figure 6.1).  ~6 PPC instructions => 2 bus cycles.
inline constexpr unsigned kCpuGapCycles = 2;

// One iteration of the WAIT_FOR_RESULTS polling loop (§6.1.1): load, mask,
// compare, branch => ~12 CPU cycles of loop body besides the bus read.
inline constexpr unsigned kPollLoopGapCycles = 4;

// ---------------------------------------------------------------------------
// PLB (§2.3.2, Figures 4.5/4.6): memory-mapped, arbitrated, pseudo
// asynchronous.
// ---------------------------------------------------------------------------
inline constexpr unsigned kPlbArbitrationCycles = 1;  // request -> grant
inline constexpr unsigned kPlbTurnaroundCycles = 1;   // CE/BE lowering

// ---------------------------------------------------------------------------
// OPB (§2.3.2): bridged off the PLB through a shared-access arbiter; every
// transaction pays the bridge crossing twice ("intrinsic latency penalties
// associated with the OPB").
// ---------------------------------------------------------------------------
inline constexpr unsigned kOpbBridgeCycles = 3;  // per direction

// PLB->OPB bridge module (the ML-403 hierarchy of §2.2): cycles a
// forwarded request may sit unacknowledged on the sub-segment before the
// bridge gives up and error-completes the upstream transaction with an
// all-ones word.  Generous — a healthy slave answers within tens of
// cycles; only an unmapped or wedged slave ever reaches it.
inline constexpr unsigned kBridgeTimeoutCycles = 4096;

// ---------------------------------------------------------------------------
// FCB (§2.3.2): co-processor interconnect, not memory mapped, accessed via
// dedicated opcodes — no address decode, no bus arbitration, native double
// and quad word bursts.
// ---------------------------------------------------------------------------
inline constexpr unsigned kFcbIssueCycles = 1;  // opcode issue to bus
// CPU gap between FCB operations: no address computation, but the APU
// opcodes still need their operands staged into registers.
inline constexpr unsigned kFcbCpuGapCycles = 2;
// Cycles the CPU needs to feed the next burst beat into the APU operand
// registers (load + move per word).
inline constexpr unsigned kFcbBeatFeedCycles = 2;

// ---------------------------------------------------------------------------
// APB (§2.3.1): strictly synchronous, bridged off the AHB; fixed
// setup+access phases, transfers may never stall.
// ---------------------------------------------------------------------------
inline constexpr unsigned kApbBridgeCycles = 2;  // AHB-side crossing
inline constexpr unsigned kApbSetupCycles = 1;   // PSEL before PENABLE

// ---------------------------------------------------------------------------
// AHB (§2.3.1, thesis future work §10.2): pipelined address/data phases,
// chained bursts of up to 16 beats.
// ---------------------------------------------------------------------------
inline constexpr unsigned kAhbArbitrationCycles = 1;
inline constexpr unsigned kAhbMaxBurstBeats = 16;

// ---------------------------------------------------------------------------
// PLB DMA engine (§9.2.1): "the DMA circuitry requires a minimum of four
// bus transactions to setup and take down" — modelled as three setup
// register writes plus one completion-status read.  The stream itself moves
// one word per handshake at the slave's pace, with no CPU involvement.
// ---------------------------------------------------------------------------
inline constexpr unsigned kDmaSetupWrites = 3;
inline constexpr unsigned kDmaTeardownReads = 1;
// Cycles the engine spends fetching each streamed word from system memory
// before it can be presented on the peripheral side (DRAM access through
// the same shared PLB).
inline constexpr unsigned kDmaStreamFetchCycles = 3;

// Interrupt-driven completion (thesis §10.2, implemented extension):
// exception entry, handler prologue and the identifying status read add a
// fixed cost per taken interrupt (~30 CPU cycles => 10 bus cycles).
inline constexpr unsigned kIsrEntryCycles = 10;

// Constant calculation latency of the linear interpolator (§9.2: "the
// amount of calculation done in each implementation is constant").
inline constexpr unsigned kInterpolatorCalcCycles = 24;

}  // namespace splice::bus::timing
