#include "bus/master_mux.hpp"

#include "support/diagnostics.hpp"

namespace splice::bus {

BusMasterMux::BusMasterMux(MasterPort& inner, unsigned ports)
    : rtl::Module("master_mux"), inner_(inner) {
  if (ports == 0) throw SpliceError("bus master mux needs at least one port");
  watch_none();
  clocked_none();  // woken by channel requests and downstream completion
  for (unsigned i = 0; i < ports; ++i) {
    channels_.emplace_back();
    channels_.back().mux = this;
  }
  // The downstream bus wakes the mux the cycle an operation train drains;
  // the mux then wakes the granted channel's own waiter (the CPU master).
  inner_.set_completion_waiter(*this);
}

MasterPort& BusMasterMux::port(unsigned idx) { return channels_.at(idx); }

std::uint64_t BusMasterMux::grants(unsigned idx) const {
  return channels_.at(idx).granted;
}

void BusMasterMux::Channel::enqueue(Op op, std::uint32_t f,
                                    std::vector<std::uint64_t> d,
                                    unsigned b) {
  if (busy()) throw SpliceError("bus master mux channel is busy");
  pending = op;
  fid = f;
  payload = std::move(d);
  beats = b;
  mux->request_clock_edge();
  mux->set_clock_busy(true);
}

void BusMasterMux::Channel::write(std::uint32_t f,
                                  std::vector<std::uint64_t> b) {
  enqueue(Op::Write, f, std::move(b), 0);
}

void BusMasterMux::Channel::read(std::uint32_t f, unsigned b) {
  enqueue(Op::Read, f, {}, b);
}

void BusMasterMux::Channel::dma_write(std::uint32_t f,
                                      std::vector<std::uint64_t> w) {
  enqueue(Op::DmaWrite, f, std::move(w), 0);
}

void BusMasterMux::Channel::dma_read(std::uint32_t f, unsigned w) {
  enqueue(Op::DmaRead, f, {}, w);
}

unsigned BusMasterMux::Channel::max_burst_beats() const {
  return mux->inner_.max_burst_beats();
}

unsigned BusMasterMux::Channel::cpu_gap_cycles() const {
  return mux->inner_.cpu_gap_cycles();
}

bool BusMasterMux::Channel::supports_dma() const {
  return mux->inner_.supports_dma();
}

void BusMasterMux::Channel::finish(const MasterPort& inner) {
  if (in_flight == Op::Read || in_flight == Op::DmaRead) {
    captured = inner.read_data();
  }
  in_flight = Op::None;
  active = false;
  wake_waiter();
}

void BusMasterMux::issue(Channel& ch) {
  switch (ch.pending) {
    case Op::Write:
      inner_.write(ch.fid, std::move(ch.payload));
      break;
    case Op::Read:
      inner_.read(ch.fid, ch.beats);
      break;
    case Op::DmaWrite:
      inner_.dma_write(ch.fid, std::move(ch.payload));
      break;
    case Op::DmaRead:
      inner_.dma_read(ch.fid, ch.beats);
      break;
    case Op::None:
      return;
  }
  ch.in_flight = ch.pending;
  ch.pending = Op::None;
  ch.payload.clear();
  ch.active = true;
  ++ch.granted;
}

void BusMasterMux::clock_edge() {
  // Hand a drained operation back to its channel first so the grant below
  // can go back-to-back on the same edge.
  if (owner_ >= 0 && !inner_.busy()) {
    channels_[static_cast<std::size_t>(owner_)].finish(inner_);
    owner_ = -1;
  }
  if (owner_ < 0) {
    const unsigned n = static_cast<unsigned>(channels_.size());
    for (unsigned k = 0; k < n; ++k) {
      const unsigned idx = (next_ + k) % n;
      Channel& ch = channels_[idx];
      if (ch.pending == Op::None) continue;
      issue(ch);
      owner_ = static_cast<int>(idx);
      next_ = (idx + 1) % n;
      break;
    }
  }
  bool any_pending = false;
  for (const Channel& ch : channels_) {
    if (ch.pending != Op::None) {
      any_pending = true;
      ++contended_;  // lost arbitration this cycle
    }
  }
  set_clock_busy(owner_ >= 0 || any_pending);
}

void BusMasterMux::reset() {
  for (Channel& ch : channels_) {
    ch.pending = Op::None;
    ch.in_flight = Op::None;
    ch.active = false;
    ch.payload.clear();
    ch.captured.clear();
  }
  owner_ = -1;
  next_ = 0;
}

}  // namespace splice::bus
