#include "bus/apb.hpp"

namespace splice::bus {

ApbPins ApbPins::create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return ApbPins{
      data_width,
      sim.signal(name("RST"), 1),
      sim.signal(name("PSEL"), 1),
      sim.signal(name("PENABLE"), 1),
      sim.signal(name("PWRITE"), 1),
      sim.signal(name("PADDR"), func_id_width),
      sim.signal(name("PWDATA"), data_width),
      sim.signal(name("PRDATA"), data_width),
  };
}

ApbBus::ApbBus(rtl::Simulator& sim, const std::string& prefix,
               unsigned data_width, unsigned func_id_width)
    : rtl::Module(prefix + "bus"),
      pins_(ApbPins::create(sim, prefix, data_width, func_id_width)) {
  watch_none();  // clocked-only: the master FSM drives pins on the edge
  watch_clocked(pins_.rst);  // enqueues assert busy; reset must preempt
}

bool ApbBus::busy() const { return state_ != St::Idle || !queue_.empty(); }

void ApbBus::write(std::uint32_t fid, std::vector<std::uint64_t> beats) {
  for (std::uint64_t word : beats) {
    queue_.push_back(WordOp{false, fid, word});
  }
  set_clock_busy(true);
}

void ApbBus::read(std::uint32_t fid, unsigned beats) {
  if (!busy()) read_data_.clear();
  for (unsigned i = 0; i < beats; ++i) {
    queue_.push_back(WordOp{true, fid, 0});
  }
  set_clock_busy(true);
}

void ApbBus::clock_edge() {
  edge_impl();
  const bool b = busy();
  // The edge an operation train drains, hand completion to a CPU master
  // sleeping on busy() (it runs after us this same cycle).  The APB FSM
  // itself never stalls — strictly synchronous states advance every cycle —
  // so there is no wait state to sleep in.
  if (!b) wake_waiter();
  set_clock_busy(b || pins_.rst.high());
}

void ApbBus::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  switch (state_) {
    case St::Idle:
      if (!queue_.empty()) {
        current_ = queue_.front();
        queue_.pop_front();
        countdown_ = timing::kApbBridgeCycles;
        state_ = countdown_ == 0 ? St::Setup : St::Bridge;
      }
      break;

    case St::Bridge:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) state_ = St::Setup;
      break;

    case St::Setup:
      pins_.psel.set(true);
      pins_.penable.set(false);
      pins_.pwrite.set(!current_.is_read);
      pins_.paddr.set(static_cast<std::uint64_t>(current_.fid));
      if (!current_.is_read) pins_.pwdata.set(current_.data);
      state_ = St::Enable;
      break;

    case St::Enable:
      pins_.penable.set(true);
      state_ = St::Sample;
      break;

    case St::Sample:
      // The access cycle just elapsed; the (strictly synchronous) slave has
      // registered a write or driven PRDATA combinationally — no stalls
      // are possible on this interface (§2.3.1).
      if (current_.is_read) read_data_.push_back(pins_.prdata.get());
      ++transactions_;
      pins_.psel.set(false);
      pins_.penable.set(false);
      pins_.pwrite.set(false);
      state_ = St::Idle;
      break;
  }
}

void ApbBus::reset() {
  queue_.clear();
  state_ = St::Idle;
  countdown_ = 0;
  read_data_.clear();
  pins_.psel.set(false);
  pins_.penable.set(false);
  pins_.pwrite.set(false);
  pins_.paddr.set(std::uint64_t{0});
  pins_.pwdata.set(std::uint64_t{0});
}

}  // namespace splice::bus
