// Xilinx Fabric Co-processor Bus model (thesis §2.3.2).
//
// The FCB is not memory mapped: the CPU reaches it through dedicated APU
// opcodes, so there is no address decode and no bus arbitration.  Native
// single, double and quad word transfers are supported (§6.1.1 maps the
// WRITE_DOUBLE / WRITE_QUAD macros onto them).  Each operation opens with a
// one-cycle OP_VALID header carrying the function identifier and beat
// count; write beats are then presented one at a time and individually
// acknowledged by the slave (BEAT_ACK), which lets a hand-optimized device
// stream at one word per cycle while an SIS adapter inserts its per-word
// handshake.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/master_port.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

struct FcbPins {
  unsigned data_width;

  rtl::Signal& rst;
  rtl::Signal& op_valid;  ///< strobe: new operation header
  rtl::Signal& op_read;   ///< 1 = read operation
  rtl::Signal& op_func;   ///< target function identifier
  rtl::Signal& op_beats;  ///< 1, 2 or 4 words in this operation
  rtl::Signal& wr_data;   ///< current write beat (held until BEAT_ACK)
  rtl::Signal& wr_valid;  ///< write beat valid
  rtl::Signal& beat_ack;  ///< slave acknowledges current write beat
  rtl::Signal& rd_data;   ///< slave read beat
  rtl::Signal& rd_valid;  ///< slave read beat valid

  static FcbPins create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width);
};

class FcbBus : public rtl::Module, public MasterPort {
 public:
  FcbBus(rtl::Simulator& sim, const std::string& prefix, unsigned data_width,
         unsigned func_id_width);

  [[nodiscard]] FcbPins& pins() { return pins_; }

  // -- MasterPort -----------------------------------------------------------
  [[nodiscard]] bool busy() const override;
  void write(std::uint32_t fid, std::vector<std::uint64_t> beats) override;
  void read(std::uint32_t fid, unsigned beats) override;
  [[nodiscard]] const std::vector<std::uint64_t>& read_data() const override {
    return read_data_;
  }
  [[nodiscard]] unsigned max_burst_beats() const override { return 4; }
  [[nodiscard]] unsigned cpu_gap_cycles() const override {
    return timing::kFcbCpuGapCycles;
  }

  // -- Module ---------------------------------------------------------------
  void clock_edge() override;
  void reset() override;

  [[nodiscard]] std::uint64_t operations() const { return operations_; }

 private:
  struct Op {
    bool is_read = false;
    std::uint32_t fid = 0;
    std::vector<std::uint64_t> beats;  ///< write data, or sized for reads
    unsigned beat_count = 0;
  };
  enum class St : std::uint8_t { Idle, Issue, WriteBeats, FeedDelay, ReadBeats };

  void edge_impl();

  FcbPins pins_;
  std::deque<Op> queue_;
  St state_ = St::Idle;
  Op current_{};
  unsigned beat_index_ = 0;
  unsigned feed_countdown_ = 0;
  /// OP_VALID was strobed this edge; the next edge must run to lower it
  /// before a beat-wait state may sleep.
  bool strobed_ = false;
  std::vector<std::uint64_t> read_data_;
  std::uint64_t operations_ = 0;
};

}  // namespace splice::bus
