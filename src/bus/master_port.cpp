#include "bus/master_port.hpp"

#include "bus/timing.hpp"
#include "support/diagnostics.hpp"

namespace splice::bus {

unsigned MasterPort::cpu_gap_cycles() const { return timing::kCpuGapCycles; }

void MasterPort::dma_write(std::uint32_t, std::vector<std::uint64_t>) {
  throw SpliceError("this bus has no DMA capability");
}

void MasterPort::dma_read(std::uint32_t, unsigned) {
  throw SpliceError("this bus has no DMA capability");
}

}  // namespace splice::bus
