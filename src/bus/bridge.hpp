// PLB -> OPB bridge (the ML-403 hierarchy of thesis §2.2: peripherals on
// the OPB are reached from the PLB through a shared-access bridge).
//
// The bridge is a slave on the upstream PLB — it occupies an address
// window (PlbBus::add_window) and answers that window's CE/REQ protocol —
// and a master on the downstream OPB, which it drives through the ordinary
// MasterPort request API.  Each upstream request is latched, forwarded as
// one downstream word operation, and acknowledged upstream only when the
// sub-segment acknowledge returns, so the full OPB crossing latency is
// visible to the CPU.  A watchdog error-completes requests the sub-segment
// never acknowledges (unmapped slave, wedged device) with an all-ones word
// instead of hanging the upstream bus.
//
// The bridge also carries the interrupt path across segments: route_irq()
// registers a downstream IRQ line into an upstream one with one bridge
// register of latency.
//
// Clocked-only module: it behaves identically on the interpreter and the
// compiled backend (no combinational process to lower), and sleeps while
// idle — upstream request strobes and downstream IRQ edges wake it.
#pragma once

#include <cstdint>
#include <string>

#include "bus/master_port.hpp"
#include "bus/plb.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

class PlbOpbBridge : public rtl::Module {
 public:
  /// Deliberately-broken variants for checker-axiom tests: a healthy
  /// bridge never originates downstream traffic or upstream interrupts.
  enum class Fault : std::uint8_t {
    None,
    WildRequest,  ///< spontaneous downstream read with no upstream grant
    PhantomIrq,   ///< upstream IRQ pulse with no downstream source
  };

  /// `upstream` is the bridge's slave-select window on the PLB (created
  /// with PlbBus::add_window); `downstream` the sub-segment bus mastered
  /// by the bridge.
  PlbOpbBridge(PlbPins& upstream, MasterPort& downstream,
               unsigned timeout_cycles = timing::kBridgeTimeoutCycles);

  /// Forward `source` (a device IRQ on the sub-segment) onto `target` (the
  /// upstream interrupt line), registered: one bridge cycle of latency.
  void route_irq(rtl::Signal& source, rtl::Signal& target);

  /// Arm a fault `delay_cycles` from now (see Fault).
  void inject_fault(Fault fault, unsigned delay_cycles = 8);

  /// Requests forwarded to the sub-segment (granted bridge crossings).
  [[nodiscard]] std::uint64_t grants() const { return grants_; }
  /// Upstream transactions error-completed by the watchdog.
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

  void clock_edge() override;
  void reset() override;

 private:
  enum class St : std::uint8_t { Idle, Forward, AckHold };

  void edge_impl();
  void complete_upstream(std::uint64_t read_word);

  PlbPins& up_;
  MasterPort& down_;
  unsigned timeout_cycles_;

  St state_ = St::Idle;
  bool fwd_read_ = false;
  unsigned watchdog_ = 0;
  bool abandoned_ = false;  ///< watchdog fired; ignore a late completion

  rtl::Signal* irq_src_ = nullptr;
  rtl::Signal* irq_dst_ = nullptr;
  bool irq_out_ = false;

  Fault fault_ = Fault::None;
  unsigned fault_countdown_ = 0;
  unsigned phantom_hold_ = 0;  ///< cycles the phantom IRQ stays raised

  std::uint64_t grants_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace splice::bus
