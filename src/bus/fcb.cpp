#include "bus/fcb.hpp"

namespace splice::bus {

FcbPins FcbPins::create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return FcbPins{
      data_width,
      sim.signal(name("RST"), 1),
      sim.signal(name("OP_VALID"), 1),
      sim.signal(name("OP_READ"), 1),
      sim.signal(name("OP_FUNC"), func_id_width),
      sim.signal(name("OP_BEATS"), 3),
      sim.signal(name("WR_DATA"), data_width),
      sim.signal(name("WR_VALID"), 1),
      sim.signal(name("BEAT_ACK"), 1),
      sim.signal(name("RD_DATA"), data_width),
      sim.signal(name("RD_VALID"), 1),
  };
}

FcbBus::FcbBus(rtl::Simulator& sim, const std::string& prefix,
               unsigned data_width, unsigned func_id_width)
    : rtl::Module(prefix + "bus"),
      pins_(FcbPins::create(sim, prefix, data_width, func_id_width)) {
  watch_none();  // clocked-only: the master FSM drives pins on the edge
  // Enqueues assert busy and reset must preempt; the beat handshake lines
  // wake the wait states out of their event-gated sleep (see clock_edge).
  watch_clocked_all(pins_.rst, pins_.beat_ack, pins_.rd_valid);
}

bool FcbBus::busy() const { return state_ != St::Idle || !queue_.empty(); }

void FcbBus::write(std::uint32_t fid, std::vector<std::uint64_t> beats) {
  // Split into native single/double/quad operations (the WRITE_QUAD /
  // WRITE_DOUBLE / WRITE_SINGLE macro ladder of §6.1.1).
  std::size_t i = 0;
  while (i < beats.size()) {
    unsigned n = beats.size() - i >= 4 ? 4 : (beats.size() - i >= 2 ? 2 : 1);
    Op op;
    op.is_read = false;
    op.fid = fid;
    op.beats.assign(beats.begin() + static_cast<long>(i),
                    beats.begin() + static_cast<long>(i + n));
    op.beat_count = n;
    queue_.push_back(std::move(op));
    i += n;
  }
  set_clock_busy(true);
}

void FcbBus::read(std::uint32_t fid, unsigned beats) {
  if (!busy()) read_data_.clear();
  unsigned remaining = beats;
  while (remaining > 0) {
    unsigned n = remaining >= 4 ? 4 : (remaining >= 2 ? 2 : 1);
    Op op;
    op.is_read = true;
    op.fid = fid;
    op.beat_count = n;
    queue_.push_back(std::move(op));
    remaining -= n;
  }
  set_clock_busy(true);
}

void FcbBus::clock_edge() {
  edge_impl();
  const bool b = busy();
  // The edge an operation train drains, hand completion to a CPU master
  // sleeping on busy() (it runs after us this same cycle).
  if (!b) wake_waiter();
  // WriteBeats waits for BEAT_ACK and ReadBeats for RD_VALID; once the
  // one-cycle OP_VALID strobe has been lowered (the edge after Issue,
  // tracked by strobed_) both are pure waits, so sleep until the watched
  // handshake lines change.  FeedDelay counts down and must keep clocking,
  // as must reset.
  const bool beat_wait =
      !strobed_ &&
      ((state_ == St::WriteBeats && !pins_.beat_ack.high()) ||
       (state_ == St::ReadBeats && !pins_.rd_valid.high()));
  set_clock_busy((b && !beat_wait) || pins_.rst.high());
}

void FcbBus::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  pins_.op_valid.set(false);
  strobed_ = false;

  switch (state_) {
    case St::Idle:
      if (!queue_.empty()) {
        current_ = std::move(queue_.front());
        queue_.pop_front();
        beat_index_ = 0;
        state_ = St::Issue;
      }
      break;

    case St::Issue:
      strobed_ = true;
      pins_.op_valid.set(true);
      pins_.op_read.set(current_.is_read);
      pins_.op_func.set(static_cast<std::uint64_t>(current_.fid));
      pins_.op_beats.set(static_cast<std::uint64_t>(current_.beat_count));
      if (current_.is_read) {
        state_ = St::ReadBeats;
      } else {
        pins_.wr_data.set(current_.beats[0]);
        pins_.wr_valid.set(true);
        state_ = St::WriteBeats;
      }
      break;

    case St::WriteBeats:
      if (pins_.beat_ack.high()) {
        ++beat_index_;
        if (beat_index_ >= current_.beat_count) {
          pins_.wr_valid.set(false);
          pins_.wr_data.set(std::uint64_t{0});
          ++operations_;
          state_ = St::Idle;
        } else {
          // The CPU stages the next operand into the APU registers before
          // the following beat can be presented.
          pins_.wr_valid.set(false);
          feed_countdown_ = timing::kFcbBeatFeedCycles;
          state_ = St::FeedDelay;
        }
      }
      break;

    case St::FeedDelay:
      if (feed_countdown_ > 0) --feed_countdown_;
      if (feed_countdown_ == 0) {
        pins_.wr_data.set(current_.beats[beat_index_]);
        pins_.wr_valid.set(true);
        state_ = St::WriteBeats;
      }
      break;

    case St::ReadBeats:
      if (pins_.rd_valid.high()) {
        read_data_.push_back(pins_.rd_data.get());
        ++beat_index_;
        if (beat_index_ >= current_.beat_count) {
          ++operations_;
          state_ = St::Idle;
        }
      }
      break;
  }
}

void FcbBus::reset() {
  queue_.clear();
  state_ = St::Idle;
  beat_index_ = 0;
  strobed_ = false;
  read_data_.clear();
  pins_.op_valid.set(false);
  pins_.op_read.set(false);
  pins_.op_func.set(std::uint64_t{0});
  pins_.op_beats.set(std::uint64_t{0});
  pins_.wr_valid.set(false);
  pins_.wr_data.set(std::uint64_t{0});
}

}  // namespace splice::bus
