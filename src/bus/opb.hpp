// IBM CoreConnect On-chip Peripheral Bus model (thesis §2.3.2).
//
// The OPB hangs off the PLB through a shared-access arbiter/bridge, so it
// speaks the same CE/REQ/ACK pin protocol as the PLB but every transaction
// pays the bridge crossing in both directions — the "intrinsic latency
// penalties associated with the OPB" the thesis cites as the reason DMA
// users should prefer the PLB.  Matching the thesis' support level, only
// simple read and write operations are offered (no burst, no DMA).
#pragma once

#include "bus/plb.hpp"

namespace splice::bus {

using OpbPins = PlbPins;

class OpbBus : public PlbBus {
 public:
  OpbBus(rtl::Simulator& sim, const std::string& prefix, unsigned data_width,
         unsigned slots)
      : PlbBus(sim, prefix, data_width, slots,
               MemMappedBusConfig{
                   timing::kPlbArbitrationCycles,
                   timing::kPlbTurnaroundCycles,
                   timing::kOpbBridgeCycles,
                   timing::kCpuGapCycles,
               }) {}
};

}  // namespace splice::bus
