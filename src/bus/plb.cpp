#include "bus/plb.hpp"

#include "support/bits.hpp"

namespace splice::bus {

PlbPins PlbPins::create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned slots) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return PlbPins{
      data_width,
      slots,
      sim.signal(name("RST"), 1),
      sim.signal(name("RD_REQ"), 1),
      sim.signal(name("WR_REQ"), 1),
      sim.signal(name("RD_CE"), slots),
      sim.signal(name("WR_CE"), slots),
      sim.signal(name("BE"), data_width / 8),
      sim.signal(name("WR_DATA"), data_width),
      sim.signal(name("RD_DATA"), data_width),
      sim.signal(name("WR_ACK"), 1),
      sim.signal(name("RD_ACK"), 1),
  };
}

PlbBus::PlbBus(rtl::Simulator& sim, const std::string& prefix,
               unsigned data_width, unsigned slots, MemMappedBusConfig config)
    : rtl::Module(prefix + "bus"),
      sim_(sim),
      pins_(PlbPins::create(sim, prefix, data_width, slots)),
      config_(config) {
  if (slots == 0 || slots > 64) {
    throw SpliceError("PLB model supports 1..64 one-hot slots");
  }
  windows_.push_back(Window{pins_, 0});
  fid_limit_ = slots;
  cur_pins_ = &windows_.front().pins;
  watch_none();  // clocked-only: the master FSM drives pins on the edge
  // Enqueues assert busy and reset must preempt; the acknowledges wake the
  // WaitAck state out of its event-gated sleep (see clock_edge).
  watch_clocked_all(pins_.rst, pins_.rd_ack, pins_.wr_ack);
}

std::uint32_t PlbBus::add_window(const std::string& prefix, unsigned slots) {
  if (slots == 0 || slots > 64) {
    throw SpliceError("PLB model supports 1..64 one-hot slots per window");
  }
  const std::uint32_t base = fid_limit_;
  windows_.push_back(
      Window{PlbPins::create(sim_, prefix, pins_.data_width, slots), base});
  fid_limit_ += slots;
  // The new window's acknowledges must wake the WaitAck sleep too.
  PlbPins& p = windows_.back().pins;
  watch_clocked_all(p.rd_ack, p.wr_ack);
  invalidate_compile();
  return base;
}

PlbBus::Window& PlbBus::window_for(std::uint32_t fid) {
  for (Window& w : windows_) {
    if (fid >= w.base && fid < w.base + w.pins.slots) return w;
  }
  throw SpliceError("PLB operation targets unmapped function id " +
                    std::to_string(fid));
}

bool PlbBus::busy() const { return state_ != St::Idle || !queue_.empty(); }

void PlbBus::write(std::uint32_t fid, std::vector<std::uint64_t> beats) {
  // The PPC-405 cannot issue CPU-side PLB bursts (§2.3.2: "explicit
  // instruction-level support is required"), so multi-word macros fall back
  // to chained single-word transactions (§6.1.1).
  for (std::uint64_t word : beats) {
    queue_.push_back(WordOp{OpKind::DeviceWrite, fid, word});
  }
  set_clock_busy(true);
}

void PlbBus::read(std::uint32_t fid, unsigned beats) {
  if (!busy()) {
    read_data_.clear();
    dma_read_active_ = false;
  }
  for (unsigned i = 0; i < beats; ++i) {
    queue_.push_back(WordOp{OpKind::DeviceRead, fid, 0});
  }
  set_clock_busy(true);
}

void PlbBus::dma_write(std::uint32_t fid, std::vector<std::uint64_t> words) {
  if (!dma_enabled_) {
    throw SpliceError("PLB DMA engine not enabled for this configuration");
  }
  // §9.2.1: four bus transactions of setup/teardown bracket the stream.
  for (unsigned i = 0; i < timing::kDmaSetupWrites; ++i) {
    queue_.push_back(WordOp{OpKind::EngineWrite, 0, 0});
  }
  for (std::uint64_t word : words) {
    queue_.push_back(WordOp{OpKind::StreamWrite, fid, word});
  }
  for (unsigned i = 0; i < timing::kDmaTeardownReads; ++i) {
    queue_.push_back(WordOp{OpKind::EngineRead, 0, 0});
  }
  set_clock_busy(true);
}

void PlbBus::dma_read(std::uint32_t fid, unsigned words) {
  if (!dma_enabled_) {
    throw SpliceError("PLB DMA engine not enabled for this configuration");
  }
  if (!busy()) read_data_.clear();
  dma_read_active_ = true;
  for (unsigned i = 0; i < timing::kDmaSetupWrites; ++i) {
    queue_.push_back(WordOp{OpKind::EngineWrite, 0, 0});
  }
  for (unsigned i = 0; i < words; ++i) {
    queue_.push_back(WordOp{OpKind::StreamRead, fid, 0});
  }
  for (unsigned i = 0; i < timing::kDmaTeardownReads; ++i) {
    queue_.push_back(WordOp{OpKind::EngineRead, 0, 0});
  }
  set_clock_busy(true);
}

void PlbBus::begin_next_op() {
  current_ = queue_.front();
  queue_.pop_front();
  // Streamed DMA beats keep bus ownership: no re-arbitration.  Engine
  // register accesses and PIO transactions pay arbitration plus any bridge
  // crossing.
  countdown_ = is_stream(current_.kind)
                   ? config_.dma_stream_fetch_cycles
                   : config_.arbitration_cycles + config_.bridge_cycles;
  state_ = countdown_ == 0 ? St::Request : St::Arb;
}

void PlbBus::clock_edge() {
  edge_impl();
  const bool b = busy();
  // The edge an operation train drains, hand completion to a CPU master
  // sleeping on busy() (it runs after us this same cycle).
  if (!b) wake_waiter();
  // A non-engine WaitAck makes no progress until a slave acknowledge: once
  // the one-cycle request strobe has been lowered (the edge after Request,
  // tracked by strobed_) the state is a pure wait, so sleep until the
  // watched RD_ACK/WR_ACK lines change.  Engine accesses count down and
  // must keep clocking, as must reset.
  const bool ack_wait = state_ == St::WaitAck && !is_engine(current_.kind) &&
                        !strobed_ && !cur_pins_->rd_ack.high() &&
                        !cur_pins_->wr_ack.high();
  set_clock_busy((b && !ack_wait) || pins_.rst.high());
}

void PlbBus::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }

  // Request strobes are single-cycle; clear them every edge by default.
  for (Window& w : windows_) {
    w.pins.rd_req.set(false);
    w.pins.wr_req.set(false);
  }
  strobed_ = false;

  switch (state_) {
    case St::Idle:
      if (!queue_.empty()) begin_next_op();
      break;

    case St::Arb:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) state_ = St::Request;
      break;

    case St::Request: {
      // Drive CE/BE (held), data for writes, and strobe the request.
      if (is_engine(current_.kind)) {
        // DMA engine registers live elsewhere on the bus; the device pins
        // stay quiet.  Register access through the bus-master port takes
        // two cycles to acknowledge.
        countdown_ = 2;
        state_ = St::WaitAck;
        break;
      }
      Window& w = window_for(current_.fid);
      cur_pins_ = &w.pins;
      const std::uint64_t onehot = std::uint64_t{1}
                                   << (current_.fid - w.base);
      if (is_read(current_.kind)) {
        w.pins.rd_ce.set(onehot);
        w.pins.rd_req.set(true);
      } else {
        w.pins.wr_ce.set(onehot);
        w.pins.wr_data.set(current_.data);
        w.pins.wr_req.set(true);
      }
      w.pins.be.set(bits::low_mask(w.pins.data_width / 8));
      strobed_ = true;
      state_ = St::WaitAck;
      break;
    }

    case St::WaitAck: {
      bool acked = false;
      if (is_engine(current_.kind)) {
        if (countdown_ > 0) --countdown_;
        acked = countdown_ == 0;
      } else if (is_read(current_.kind)) {
        if (cur_pins_->rd_ack.high()) {
          read_data_.push_back(cur_pins_->rd_data.get());
          acked = true;
        }
      } else {
        acked = cur_pins_->wr_ack.high();
      }
      if (acked) {
        ++transactions_;
        cur_pins_->rd_ce.set(std::uint64_t{0});
        cur_pins_->wr_ce.set(std::uint64_t{0});
        cur_pins_->be.set(std::uint64_t{0});
        // Streamed beats chain without a turnaround; the engine holds the
        // grant for the whole block.
        const bool chain = is_stream(current_.kind) && !queue_.empty() &&
                           is_stream(queue_.front().kind);
        if (chain) {
          begin_next_op();  // engine keeps the grant; next word fetch starts
        } else if ((countdown_ = config_.turnaround_cycles +
                                 config_.bridge_cycles) == 0) {
          state_ = St::Idle;
        } else {
          state_ = St::Turnaround;
        }
      }
      break;
    }

    case St::Turnaround:
      if (countdown_ > 0) --countdown_;
      if (countdown_ == 0) {
        state_ = St::Idle;
        if (!queue_.empty()) begin_next_op();
      }
      break;
  }
}

void PlbBus::reset() {
  queue_.clear();
  state_ = St::Idle;
  countdown_ = 0;
  strobed_ = false;
  read_data_.clear();
  dma_read_active_ = false;
  for (Window& w : windows_) {
    w.pins.rd_req.set(false);
    w.pins.wr_req.set(false);
    w.pins.rd_ce.set(std::uint64_t{0});
    w.pins.wr_ce.set(std::uint64_t{0});
    w.pins.be.set(std::uint64_t{0});
    w.pins.wr_data.set(std::uint64_t{0});
  }
}

}  // namespace splice::bus
