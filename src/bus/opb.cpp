// OpbBus is a configuration of the PlbBus engine; this unit anchors it.
#include "bus/opb.hpp"
