// Interrupt hub: ORs any number of per-device interrupt request lines onto
// one CPU-facing line, registered (one cycle of combiner latency, like the
// OR gate + flop a platform generator would drop in front of the INTC).
//
// Clocked-only module: no combinational process to lower, so it behaves
// identically on the interpreter and the compiled backend.  It sleeps until
// one of its source lines changes.
#pragma once

#include <vector>

#include "rtl/simulator.hpp"

namespace splice::bus {

class IrqHub : public rtl::Module {
 public:
  explicit IrqHub(rtl::Signal& out) : rtl::Module("irq_hub"), out_(out) {
    watch_none();
    clocked_none();  // add_source() declares the triggers
  }

  /// Add one interrupt request source (device arbiter IRQ, bridged IRQ...).
  void add_source(rtl::Signal& line) {
    sources_.push_back(&line);
    watch_clocked(line);
  }

  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }

  void clock_edge() override {
    bool v = false;
    for (const rtl::Signal* s : sources_) v = v || s->high();
    if (v != value_) {
      value_ = v;
      out_.set(v);
    }
    // Pure function of the watched sources: edge-triggered only.
    set_clock_busy(false);
  }

  void reset() override {
    if (value_) out_.set(false);
    value_ = false;
  }

 private:
  rtl::Signal& out_;
  std::vector<const rtl::Signal*> sources_;
  bool value_ = false;
};

}  // namespace splice::bus
