#include "bus/bridge.hpp"

#include "support/bits.hpp"

namespace splice::bus {

PlbOpbBridge::PlbOpbBridge(PlbPins& upstream, MasterPort& downstream,
                           unsigned timeout_cycles)
    : rtl::Module("plb_opb_bridge"),
      up_(upstream),
      down_(downstream),
      timeout_cycles_(timeout_cycles) {
  watch_none();  // clocked-only: latches requests, drives registered acks
  // Idle sleeps; an upstream request strobe (or reset) wakes it.  The
  // forwarded operation keeps the bridge clock-busy until the upstream
  // acknowledge has been driven and lowered again.
  watch_clocked_all(up_.rst, up_.rd_req, up_.wr_req);
}

void PlbOpbBridge::route_irq(rtl::Signal& source, rtl::Signal& target) {
  irq_src_ = &source;
  irq_dst_ = &target;
  watch_clocked(source);  // IRQ edges wake the idle bridge
}

void PlbOpbBridge::inject_fault(Fault fault, unsigned delay_cycles) {
  fault_ = fault;
  fault_countdown_ = delay_cycles == 0 ? 1 : delay_cycles;
  set_clock_busy(true);  // the countdown must keep clocking
}

void PlbOpbBridge::complete_upstream(std::uint64_t read_word) {
  if (fwd_read_) {
    up_.rd_data.set(read_word);
    up_.rd_ack.set(true);
  } else {
    up_.wr_ack.set(true);
  }
  state_ = St::AckHold;
}

void PlbOpbBridge::clock_edge() {
  edge_impl();
  const bool irq_pending =
      phantom_hold_ > 0 ||
      (irq_src_ != nullptr && irq_dst_ != nullptr &&
       irq_src_->high() != irq_out_);
  set_clock_busy(state_ != St::Idle || fault_countdown_ > 0 || irq_pending ||
                 abandoned_ || up_.rst.high());
}

void PlbOpbBridge::edge_impl() {
  if (up_.rst.high()) {
    reset();
    return;
  }

  // Registered interrupt crossing: copy the sub-segment level upstream
  // with one bridge cycle of latency.  The phantom fault overrides it.
  if (irq_dst_ != nullptr) {
    bool level = irq_src_ != nullptr && irq_src_->high();
    if (phantom_hold_ > 0) {
      --phantom_hold_;
      level = true;
    }
    if (level != irq_out_) {
      irq_dst_->set(level);
      irq_out_ = level;
    }
  }

  // Armed fault countdowns.
  if (fault_countdown_ > 0 && --fault_countdown_ == 0) {
    if (fault_ == Fault::WildRequest) {
      // Downstream traffic no upstream grant ever asked for: a one-word
      // status read of the first sub-segment slave.  The bridge does not
      // track it — the cross-device checker must.
      down_.read(0, 1);
    } else if (fault_ == Fault::PhantomIrq) {
      phantom_hold_ = 8;
    }
  }

  // A watchdog-abandoned operation eventually drains on the sub-segment
  // (or never does, for a truly unmapped slave); ignore its completion.
  if (abandoned_ && !down_.busy()) abandoned_ = false;

  switch (state_) {
    case St::Idle: {
      const bool rd = up_.rd_req.high();
      const bool wr = up_.wr_req.high();
      if (!rd && !wr) break;
      fwd_read_ = rd;
      const std::uint64_t ce = rd ? up_.rd_ce.get() : up_.wr_ce.get();
      const std::uint32_t fid = bits::one_hot_index(ce);
      if (rd) {
        down_.read(fid, 1);
      } else {
        down_.write(fid, {up_.wr_data.get()});
      }
      ++grants_;
      watchdog_ = timeout_cycles_;
      state_ = St::Forward;
      break;
    }

    case St::Forward:
      if (!down_.busy()) {
        std::uint64_t word = 0;
        if (fwd_read_ && !down_.read_data().empty()) {
          word = down_.read_data().back();
        }
        complete_upstream(word);
      } else if (watchdog_ > 0 && --watchdog_ == 0) {
        ++timeouts_;
        abandoned_ = true;  // a late sub-segment completion is discarded
        complete_upstream(bits::low_mask(up_.data_width));
      }
      break;

    case St::AckHold:
      // The acknowledge is a single-cycle strobe toward the upstream bus.
      up_.rd_ack.set(false);
      up_.wr_ack.set(false);
      state_ = St::Idle;
      break;
  }
}

void PlbOpbBridge::reset() {
  state_ = St::Idle;
  fwd_read_ = false;
  watchdog_ = 0;
  abandoned_ = false;
  irq_out_ = false;
  fault_ = Fault::None;
  fault_countdown_ = 0;
  phantom_hold_ = 0;
  up_.rd_ack.set(false);
  up_.wr_ack.set(false);
  if (irq_dst_ != nullptr) irq_dst_->set(false);
}

}  // namespace splice::bus
