// AMBA Peripheral Bus model (thesis §2.3.1).
//
// The APB is the thesis' strictly synchronous interface: transactions run a
// fixed SETUP cycle (PSEL) followed by an ACCESS cycle (PSEL+PENABLE) and
// may never be stalled by the peripheral — which is why SIS adapters for it
// rely on CALC_DONE polling through the reserved function id 0 (§4.2.2).
// The bus hangs off the AHB through a bridge, costing extra cycles per
// transaction (§2.3.1: "peripherals must pass through multiple layers of
// arbitration").
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/master_port.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::bus {

struct ApbPins {
  unsigned data_width;

  rtl::Signal& rst;
  rtl::Signal& psel;
  rtl::Signal& penable;
  rtl::Signal& pwrite;
  rtl::Signal& paddr;   ///< function identifier (word address)
  rtl::Signal& pwdata;
  rtl::Signal& prdata;  ///< slave-driven, must be valid in the access cycle

  static ApbPins create(rtl::Simulator& sim, const std::string& prefix,
                        unsigned data_width, unsigned func_id_width);
};

class ApbBus : public rtl::Module, public MasterPort {
 public:
  ApbBus(rtl::Simulator& sim, const std::string& prefix, unsigned data_width,
         unsigned func_id_width);

  [[nodiscard]] ApbPins& pins() { return pins_; }

  // -- MasterPort -----------------------------------------------------------
  [[nodiscard]] bool busy() const override;
  void write(std::uint32_t fid, std::vector<std::uint64_t> beats) override;
  void read(std::uint32_t fid, unsigned beats) override;
  [[nodiscard]] const std::vector<std::uint64_t>& read_data() const override {
    return read_data_;
  }

  // -- Module ---------------------------------------------------------------
  void clock_edge() override;
  void reset() override;

  [[nodiscard]] std::uint64_t transactions() const { return transactions_; }

 private:
  struct WordOp {
    bool is_read = false;
    std::uint32_t fid = 0;
    std::uint64_t data = 0;
  };
  enum class St : std::uint8_t { Idle, Bridge, Setup, Enable, Sample };

  void edge_impl();

  ApbPins pins_;
  std::deque<WordOp> queue_;
  St state_ = St::Idle;
  WordOp current_{};
  unsigned countdown_ = 0;
  std::vector<std::uint64_t> read_data_;
  std::uint64_t transactions_ = 0;
};

}  // namespace splice::bus
