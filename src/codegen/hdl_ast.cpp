#include "codegen/hdl_ast.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace splice::codegen::ast {

namespace {

using support::hash_bytes;
using support::Hasher;

// Every string stored in a node went through str() on this context, so
// equal contents share one arena copy: identity of the data pointer IS
// content equality, and hashing a name costs one word, not one pass.
bool same_sv(std::string_view a, std::string_view b) {
  return a.data() == b.data() && a.size() == b.size();
}

std::uint64_t hash_expr(const Expr& e) {
  Hasher h;
  h.u64(static_cast<std::uint64_t>(e.kind) |
        (static_cast<std::uint64_t>(e.width) << 8));
  h.ptr(e.name.data());
  h.u64(e.value);
  for (const Expr* op : e.operands) h.ptr(op);
  return h.h;
}

// Children are already interned, so operand identity is operand equality —
// the comparison never recurses.
bool same_expr(const Expr& a, const Expr& b) {
  return a.kind == b.kind && same_sv(a.name, b.name) && a.value == b.value &&
         a.width == b.width &&
         std::equal(a.operands.begin(), a.operands.end(), b.operands.begin(),
                    b.operands.end());
}

std::uint64_t hash_stmt(const Stmt& s) {
  Hasher h;
  h.u64(static_cast<std::uint64_t>(s.kind) |
        (static_cast<std::uint64_t>(s.pad) << 8) |
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.index))
         << 32));
  for (std::string_view line : s.text) h.ptr(line.data());
  h.ptr(s.target.data());
  h.ptr(s.rhs);
  h.ptr(s.cond);
  for (const Stmt* t : s.then_body) h.ptr(t);
  h.u64(0x1d);  // separator: {a|b} vs {a}{b} must hash apart
  for (const Stmt* t : s.else_body) h.ptr(t);
  h.ptr(s.selector);
  for (const CaseArm& a : s.arms) {
    h.ptr(a.label);
    h.ptr(a.comment.data());
    for (const Stmt* t : a.body) h.ptr(t);
    h.u64(0x1e);
  }
  return h.h;
}

bool same_arm(const CaseArm& a, const CaseArm& b) {
  return a.label == b.label && same_sv(a.comment, b.comment) &&
         std::equal(a.body.begin(), a.body.end(), b.body.begin(),
                    b.body.end());
}

bool same_stmt(const Stmt& a, const Stmt& b) {
  return a.kind == b.kind &&
         std::equal(a.text.begin(), a.text.end(), b.text.begin(),
                    b.text.end(), same_sv) &&
         same_sv(a.target, b.target) && a.index == b.index && a.pad == b.pad &&
         a.rhs == b.rhs && a.cond == b.cond &&
         std::equal(a.then_body.begin(), a.then_body.end(),
                    b.then_body.begin(), b.then_body.end()) &&
         std::equal(a.else_body.begin(), a.else_body.end(),
                    b.else_body.begin(), b.else_body.end()) &&
         a.selector == b.selector &&
         std::equal(a.arms.begin(), a.arms.end(), b.arms.begin(),
                    b.arms.end(), same_arm);
}

/// Probe `t` for an entry with hash `h` accepted by `match`; when absent,
/// insert `make()`.  `occupied` tests slot liveness (null pointer / null
/// data mark empties).  Sets *hit so callers can count CSE reuse.
template <typename Table, typename Occupied, typename Match, typename Make>
auto intern_into(Table& t, std::uint64_t h, Occupied occupied, Match match,
                 Make make, bool* hit) {
  if (t.slots.empty()) t.slots.resize(64);
  std::size_t mask = t.slots.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (occupied(t.slots[i].value)) {
    if (t.slots[i].hash == h && match(t.slots[i].value)) {
      *hit = true;
      return t.slots[i].value;
    }
    i = (i + 1) & mask;
  }
  *hit = false;
  auto value = make();
  t.slots[i] = {h, value};
  if (++t.count * 4 >= t.slots.size() * 3) {
    std::vector<typename Table::Slot> old = std::move(t.slots);
    t.slots.assign(old.size() * 2, {});
    mask = t.slots.size() - 1;
    for (const auto& s : old) {
      if (!occupied(s.value)) continue;
      std::size_t j = static_cast<std::size_t>(s.hash) & mask;
      while (occupied(t.slots[j].value)) j = (j + 1) & mask;
      t.slots[j] = s;
    }
  }
  return value;
}

}  // namespace

std::string_view AstContext::str(std::string_view s) {
  if (s.empty()) return {};
  const std::uint64_t h = hash_bytes(s.data(), s.size());
  bool hit = false;
  return intern_into(
      strings_, h, [](std::string_view v) { return v.data() != nullptr; },
      [&](std::string_view v) { return v == s; },
      [&] { return arena_.copy_string(s); }, &hit);
}

std::string_view AstContext::concat(
    std::initializer_list<std::string_view> parts) {
  std::string joined;
  std::size_t total = 0;
  for (std::string_view p : parts) total += p.size();
  joined.reserve(total);
  for (std::string_view p : parts) joined.append(p);
  return str(joined);
}

const Expr* AstContext::intern_expr(const Expr& candidate) {
  bool hit = false;
  const Expr* stored = intern_into(
      exprs_, hash_expr(candidate), [](const Expr* v) { return v != nullptr; },
      [&](const Expr* v) { return same_expr(*v, candidate); },
      [&]() -> const Expr* { return arena_.create<Expr>(candidate); },
      &hit);
  if (hit) {
    ++stats_.cse_hits;
  } else {
    ++stats_.expr_nodes;
  }
  return stored;
}

const Stmt* AstContext::intern_stmt(const Stmt& candidate) {
  bool hit = false;
  const Stmt* stored = intern_into(
      stmts_, hash_stmt(candidate), [](const Stmt* v) { return v != nullptr; },
      [&](const Stmt* v) { return same_stmt(*v, candidate); },
      [&]() -> const Stmt* { return arena_.create<Stmt>(candidate); },
      &hit);
  if (hit) {
    ++stats_.cse_hits;
  } else {
    ++stats_.stmt_nodes;
  }
  return stored;
}

const Expr* AstContext::named(Expr::Kind kind, std::string_view name) {
  Expr e;
  e.kind = kind;
  e.name = str(name);
  return intern_expr(e);
}

const Expr* AstContext::signal(std::string_view name) {
  return named(Expr::Kind::SignalRef, name);
}

const Expr* AstContext::constant(std::string_view name) {
  return named(Expr::Kind::ConstRef, name);
}

const Expr* AstContext::state(std::string_view name) {
  return named(Expr::Kind::StateRef, name);
}

const Expr* AstContext::placeholder(std::string_view name) {
  return named(Expr::Kind::Placeholder, name);
}

const Expr* AstContext::bit(unsigned value) {
  Expr e;
  e.kind = Expr::Kind::BitLit;
  e.value = value ? 1 : 0;
  e.width = 1;
  return intern_expr(e);
}

const Expr* AstContext::vec_lit(std::uint64_t value, unsigned width) {
  Expr e;
  e.kind = Expr::Kind::VectorLit;
  e.value = value;
  e.width = width;
  return intern_expr(e);
}

const Expr* AstContext::zeros(unsigned width) {
  Expr e;
  e.kind = Expr::Kind::ZeroVector;
  e.width = width;
  return intern_expr(e);
}

const Expr* AstContext::eq(const Expr* a, const Expr* b) {
  // Constant fold: both sides literal bits.  Generated skeletons never
  // build this shape, so emitted bytes are unaffected.
  if (a->kind == Expr::Kind::BitLit && b->kind == Expr::Kind::BitLit) {
    ++stats_.folds;
    return bit(a->value == b->value ? 1 : 0);
  }
  const Expr* ops[2] = {a, b};
  Expr e;
  e.kind = Expr::Kind::Eq;
  e.operands = arena_.copy_array(ops, 2);
  return intern_expr(e);
}

const Expr* AstContext::all_of(std::initializer_list<const Expr*> operands) {
  return all_of(
      std::span<const Expr* const>(operands.begin(), operands.size()));
}

const Expr* AstContext::all_of(std::span<const Expr* const> operands) {
  // Peephole: conjunction is associative and both printers emit flat
  // " and " / " && " chains, so flattening nested Ands and collapsing a
  // single-operand And print byte-identically.
  std::vector<const Expr*> flat;
  flat.reserve(operands.size());
  for (const Expr* op : operands) {
    if (op->kind == Expr::Kind::And) {
      ++stats_.folds;
      flat.insert(flat.end(), op->operands.begin(), op->operands.end());
    } else {
      flat.push_back(op);
    }
  }
  if (flat.size() == 1) {
    ++stats_.folds;
    return flat.front();
  }
  Expr e;
  e.kind = Expr::Kind::And;
  e.operands = arena_.copy_array(flat.data(), flat.size());
  return intern_expr(e);
}

const Expr* AstContext::not_of(const Expr* a) {
  if (a->kind == Expr::Kind::Not) {  // double negation
    ++stats_.folds;
    return a->operands[0];
  }
  if (a->kind == Expr::Kind::BitLit) {
    ++stats_.folds;
    return bit(a->value ? 0 : 1);
  }
  const Expr* ops[1] = {a};
  Expr e;
  e.kind = Expr::Kind::Not;
  e.operands = arena_.copy_array(ops, 1);
  return intern_expr(e);
}

const Expr* AstContext::any_bit(const Expr* a) {
  const Expr* ops[1] = {a};
  Expr e;
  e.kind = Expr::Kind::AnyBitSet;
  e.operands = arena_.copy_array(ops, 1);
  return intern_expr(e);
}

const Stmt* AstContext::comment(
    std::initializer_list<std::string_view> lines) {
  std::vector<std::string_view> interned;
  interned.reserve(lines.size());
  for (std::string_view line : lines) interned.push_back(str(line));
  Stmt s;
  s.kind = Stmt::Kind::Comment;
  s.text = arena_.copy_array(interned.data(), interned.size());
  return intern_stmt(s);
}

const Stmt* AstContext::assign(std::string_view target, const Expr* rhs,
                               unsigned pad, int index) {
  Stmt s;
  s.kind = Stmt::Kind::Assign;
  s.target = str(target);
  s.index = index;
  s.pad = pad;
  s.rhs = rhs;
  return intern_stmt(s);
}

const Stmt* AstContext::if_then(const Expr* cond, StmtList then_body,
                                StmtList else_body) {
  Stmt s;
  s.kind = Stmt::Kind::If;
  s.cond = cond;
  s.then_body = then_body;
  s.else_body = else_body;
  return intern_stmt(s);
}

const Stmt* AstContext::case_of(const Expr* selector, CaseArmList arms) {
  Stmt s;
  s.kind = Stmt::Kind::Case;
  s.selector = selector;
  s.arms = arms;
  return intern_stmt(s);
}

StmtList AstContext::stmts(std::initializer_list<const Stmt*> body) {
  return arena_.copy_array(body.begin(), body.size());
}

StmtList AstContext::stmts(const std::vector<const Stmt*>& body) {
  return arena_.copy_array(body.data(), body.size());
}

CaseArm AstContext::arm(const Expr* label, std::string_view comment,
                        StmtList body) {
  CaseArm a;
  a.label = label;
  a.comment = str(comment);
  a.body = body;
  return a;
}

CaseArmList AstContext::arms(const std::vector<CaseArm>& list) {
  return arena_.copy_array(list.data(), list.size());
}

const Port* Module::find_port(std::string_view port_name) const {
  for (const Port& p : ports) {
    if (p.name == port_name) return &p;
  }
  return nullptr;
}

}  // namespace splice::codegen::ast
