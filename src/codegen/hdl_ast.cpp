#include "codegen/hdl_ast.hpp"

namespace splice::codegen::ast {

Expr Expr::signal(std::string name) {
  Expr e;
  e.kind = Kind::SignalRef;
  e.name = std::move(name);
  return e;
}

Expr Expr::constant(std::string name) {
  Expr e;
  e.kind = Kind::ConstRef;
  e.name = std::move(name);
  return e;
}

Expr Expr::state(std::string name) {
  Expr e;
  e.kind = Kind::StateRef;
  e.name = std::move(name);
  return e;
}

Expr Expr::placeholder(std::string name) {
  Expr e;
  e.kind = Kind::Placeholder;
  e.name = std::move(name);
  return e;
}

Expr Expr::bit(unsigned value) {
  Expr e;
  e.kind = Kind::BitLit;
  e.value = value;
  e.width = 1;
  return e;
}

Expr Expr::vec_lit(std::uint64_t value, unsigned width) {
  Expr e;
  e.kind = Kind::VectorLit;
  e.value = value;
  e.width = width;
  return e;
}

Expr Expr::zeros(unsigned width) {
  Expr e;
  e.kind = Kind::ZeroVector;
  e.width = width;
  return e;
}

Expr Expr::eq(Expr a, Expr b) {
  Expr e;
  e.kind = Kind::Eq;
  e.operands.push_back(std::move(a));
  e.operands.push_back(std::move(b));
  return e;
}

Expr Expr::all_of(std::vector<Expr> operands) {
  Expr e;
  e.kind = Kind::And;
  e.operands = std::move(operands);
  return e;
}

Expr Expr::not_of(Expr a) {
  Expr e;
  e.kind = Kind::Not;
  e.operands.push_back(std::move(a));
  return e;
}

Expr Expr::any_bit(Expr a) {
  Expr e;
  e.kind = Kind::AnyBitSet;
  e.operands.push_back(std::move(a));
  return e;
}

Stmt Stmt::comment(std::vector<std::string> lines) {
  Stmt s;
  s.kind = Kind::Comment;
  s.text = std::move(lines);
  return s;
}

Stmt Stmt::assign(std::string target, Expr rhs, unsigned pad) {
  Stmt s;
  s.kind = Kind::Assign;
  s.target = std::move(target);
  s.rhs = std::move(rhs);
  s.pad = pad;
  return s;
}

Stmt Stmt::if_then(Expr cond, std::vector<Stmt> then_body,
                   std::vector<Stmt> else_body) {
  Stmt s;
  s.kind = Kind::If;
  s.cond = std::move(cond);
  s.then_body = std::move(then_body);
  s.else_body = std::move(else_body);
  return s;
}

Stmt Stmt::case_of(Expr selector, std::vector<CaseArm> arms) {
  Stmt s;
  s.kind = Kind::Case;
  s.selector = std::move(selector);
  s.arms = std::move(arms);
  return s;
}

const Port* Module::find_port(const std::string& name) const {
  for (const auto& p : ports) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

}  // namespace splice::codegen::ast
