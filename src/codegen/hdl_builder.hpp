// The single shared AST builder: elaborates StubModel / the device spec
// into the language-neutral document model of hdl_ast.hpp.  Both writers
// and the resource estimator consume the Modules built here; the Dialect
// parameter selects the historically divergent idiom (guard operand order,
// comment wording, VHDL-only guidance constants) so that the printers stay
// purely syntactic.
#pragma once

#include "codegen/hdl_ast.hpp"
#include "codegen/stub_model.hpp"
#include "ir/device.hpp"

namespace splice::codegen {

/// The user-logic stub for one declaration (func_<name> file, §5.3).
[[nodiscard]] ast::Module build_stub_ast(const ir::FunctionDecl& fn,
                                         const ir::DeviceSpec& spec,
                                         ast::Dialect dialect);

/// The arbitration unit (user_<device> file, §5.2).
[[nodiscard]] ast::Module build_arbiter_ast(const ir::DeviceSpec& spec,
                                            ast::Dialect dialect);

}  // namespace splice::codegen
