// Neutral structural model of a generated user-logic stub (ICOB + SMB,
// thesis §5.3): which SMB states exist, which tracking registers and
// comparators each parameter implies.  The HDL AST builder
// (hdl_builder.hpp) elaborates this summary into a full document model;
// the resource estimator then counts hardware from that AST.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/device.hpp"

namespace splice::codegen {

struct StubState {
  std::string name;      ///< e.g. "IN_x", "CALC_0", "OUT_RESULT"
  std::string comment;   ///< generated guidance comment (§5.3.1)
  unsigned words = 0;    ///< bus words handled in this state (0 = n/a)
  unsigned ignore_bits = 0;  ///< trailing don't-care bits (§5.3.1 note)
};

struct StubRegister {
  std::string name;
  unsigned width = 0;
  std::string purpose;
};

struct StubComparator {
  std::string name;
  unsigned width = 0;
};

/// Structural summary of one user-logic stub.
struct StubModel {
  std::string function_name;
  std::uint32_t func_id = 0;
  std::uint32_t instances = 1;
  unsigned bus_width = 32;
  unsigned func_id_width = 4;
  bool blocking = true;
  bool has_output = false;

  std::vector<StubState> states;        ///< SMB states in order
  std::vector<StubRegister> registers;  ///< tracking/accumulator registers
  std::vector<StubComparator> comparators;

  [[nodiscard]] unsigned state_register_width() const;
  [[nodiscard]] unsigned total_register_bits() const;
};

[[nodiscard]] StubModel build_stub_model(const ir::FunctionDecl& fn,
                                         const ir::TargetSpec& target);

}  // namespace splice::codegen
