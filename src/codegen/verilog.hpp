// Verilog text generation — the first code-generation item on the thesis'
// §10.2 future-work list, implemented here.  Mirrors the VHDL writer: stub
// files, the arbitration unit, and snippet bodies for the standard macros.
#pragma once

#include <string>

#include "codegen/stub_model.hpp"
#include "ir/device.hpp"

namespace splice::codegen::verilog {

[[nodiscard]] std::string emit_stub_file(const ir::FunctionDecl& fn,
                                         const ir::DeviceSpec& spec);
[[nodiscard]] std::string emit_arbiter_file(const ir::DeviceSpec& spec);

/// "[N-1:0]" or "" for width 1.
[[nodiscard]] std::string vec(unsigned width);

}  // namespace splice::codegen::verilog
