// Verilog pretty-printer over the language-neutral AST — the first
// code-generation item on the thesis' §10.2 future-work list.  Mirrors the
// VHDL writer: all structure comes from hdl_builder.hpp; this layer owns
// syntax only (literal spelling, begin/end layout, wire/reg declarations).
#pragma once

#include <string>

#include "codegen/hdl_ast.hpp"
#include "ir/device.hpp"

namespace splice::codegen::verilog {

/// Render a whole AST module as a Verilog design file.
[[nodiscard]] std::string print_module(const ast::Module& m);

[[nodiscard]] std::string emit_stub_file(const ir::FunctionDecl& fn,
                                         const ir::DeviceSpec& spec);
[[nodiscard]] std::string emit_arbiter_file(const ir::DeviceSpec& spec);

/// "[N-1:0] " or "" for width 1.
[[nodiscard]] std::string vec(unsigned width);

}  // namespace splice::codegen::verilog
