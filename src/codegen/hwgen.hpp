// Hardware generation orchestrator for the bus-independent files: one
// user-logic stub per declared function plus the arbitration unit (thesis
// ch. 5 stages 2 and 3).  The native bus interface file (stage 1) is
// produced by the selected bus adapter plugin (adapters/) because its
// template is bus-specific.
#pragma once

#include <string>
#include <vector>

#include "ir/device.hpp"

namespace splice::codegen {

struct GeneratedFile {
  std::string filename;
  std::string content;
  std::string purpose;  ///< one-line description (the Figure 8.3 table)
};

/// Arbiter + stubs in the %target_hdl language.  FUNC_IDs must be assigned.
[[nodiscard]] std::vector<GeneratedFile> generate_user_logic(
    const ir::DeviceSpec& spec);

/// File extension for the target HDL (".vhd" / ".v").
[[nodiscard]] std::string hdl_extension(ir::Hdl hdl);

}  // namespace splice::codegen
