// Hardware generation orchestrator for the bus-independent files: one
// user-logic stub per declared function plus the arbitration unit (thesis
// ch. 5 stages 2 and 3).  The native bus interface file (stage 1) is
// produced by the selected bus adapter plugin (adapters/) because its
// template is bus-specific.
//
// The render_* entry points take a pre-built AST module so the pipeline can
// build each module once and feed the same tree to the lint pass and the
// pretty-printer; they are what the per-module jobs of the parallel engine
// call.  generate_user_logic remains the convenience wrapper that does
// build + render for every module serially.
#pragma once

#include <string>
#include <vector>

#include "codegen/hdl_ast.hpp"
#include "ir/device.hpp"

namespace splice::codegen {

struct GeneratedFile {
  std::string filename;
  std::string content;
  std::string purpose;  ///< one-line description (the Figure 8.3 table)
};

/// Arbiter + stubs in the %target_hdl language.  FUNC_IDs must be assigned.
[[nodiscard]] std::vector<GeneratedFile> generate_user_logic(
    const ir::DeviceSpec& spec);

/// Render one pre-built arbiter AST as its user_<device> file.
[[nodiscard]] GeneratedFile render_arbiter_file(const ast::Module& m,
                                                const ir::DeviceSpec& spec);

/// Render one pre-built stub AST as its func_<name> file.  Throws when the
/// function has no FUNC_ID assigned (run ir::validate first).
[[nodiscard]] GeneratedFile render_stub_file(const ast::Module& m,
                                             const ir::FunctionDecl& fn,
                                             const ir::DeviceSpec& spec);

/// Write every file under dir/<device_name>/ (the §3.2.3 rule that the
/// device name creates a subdirectory).  Returns the directory used;
/// throws SpliceError when the directory or any file cannot be written.
std::string write_file_set(const std::string& device_name,
                           const std::vector<GeneratedFile>& hardware,
                           const std::vector<GeneratedFile>& software,
                           const std::string& dir);

/// File extension for the target HDL (".vhd" / ".v").
[[nodiscard]] std::string hdl_extension(ir::Hdl hdl);

}  // namespace splice::codegen
