// AST verification pass over the generated-hardware document model: a
// generator-bug firewall that runs before any HDL file is written.  The
// rules target mistakes a code generator (or a custom bus adapter feeding
// it) can make — duplicate names, references to undeclared signals,
// undriven or unread machinery, assignment width mismatches, unreachable
// SMB states — and report stable 500-range DiagIds.
//
// Ports and signals marked `user_driven` describe machinery the emitted
// skeleton deliberately leaves to the end-user (DATA_IN latching, tracking
// registers); they are exempt from the driven/read requirements.
#pragma once

#include "codegen/hdl_ast.hpp"
#include "support/diagnostics.hpp"

namespace splice::codegen {

/// Verify one module; every finding is reported through `diags` as an
/// error.  Returns true when the module is clean.
bool lint_module(const ast::Module& m, DiagnosticEngine& diags);

}  // namespace splice::codegen
