#include "codegen/stub_model.hpp"

#include <algorithm>

#include "support/bits.hpp"

namespace splice::codegen {

unsigned StubModel::state_register_width() const {
  return bits::bits_for_count(
      std::max<std::uint64_t>(2, states.size()));
}

unsigned StubModel::total_register_bits() const {
  unsigned total = state_register_width();
  for (const auto& r : registers) total += r.width;
  return total;
}

namespace {

void add_param_hardware(StubModel& model, const ir::IoParam& p,
                        unsigned bus_width) {
  // §5.3.1: explicit arrays get a tracking register and a comparator;
  // implicit arrays get the same plus a latched runtime bound.  The
  // branches must stay exclusive: a packed *implicit* transfer used to
  // match both and declare <name>_counter twice, tripping the E501 lint
  // (packing never reaches here on a scalar — validation rejects it).
  const std::uint64_t max_elems = p.max_elements();
  if (p.count_kind == ir::CountKind::Explicit) {
    const unsigned w = bits::bits_for_value(
        std::max<std::uint64_t>(1, p.words_for(max_elems, bus_width)));
    model.registers.push_back(
        {p.name + "_counter", w, "tracks words received for " + p.name});
    model.comparators.push_back({p.name + "_cmp", w});
  }
  if (p.count_kind == ir::CountKind::Implicit) {
    const unsigned w = bits::bits_for_value(max_elems);
    model.registers.push_back(
        {p.name + "_counter", w, "tracks words received for " + p.name});
    model.registers.push_back(
        {p.name + "_max_value", w,
         "latched bound from index '" + p.index_var + "'"});
    model.comparators.push_back({p.name + "_cmp", w});
  }
  if (p.type.bits > bus_width) {
    // Split reassembly (§3.1.4): accumulator plus a word counter.
    model.registers.push_back(
        {p.name + "_acc", p.type.bits, "split-transfer accumulator"});
    const unsigned w =
        bits::bits_for_value(p.words_per_element(bus_width));
    model.registers.push_back(
        {p.name + "_acc_cnt", w, "split-transfer word counter"});
  }
}

unsigned packed_tail_ignore_bits(const ir::IoParam& p, unsigned bus_width,
                                 std::uint64_t elems) {
  if (!p.packed || p.type.bits >= bus_width ||
      p.count_kind != ir::CountKind::Explicit) {
    return 0;
  }
  const std::uint64_t words = p.words_for(elems, bus_width);
  const std::uint64_t used = elems * p.type.bits;
  return static_cast<unsigned>(words * bus_width - used);
}

}  // namespace

StubModel build_stub_model(const ir::FunctionDecl& fn,
                           const ir::TargetSpec& target) {
  StubModel model;
  model.function_name = fn.name;
  model.func_id = fn.func_id;
  model.instances = fn.instances;
  model.bus_width = target.bus_width;
  model.blocking = fn.blocking();
  model.has_output = fn.has_output();

  for (const auto& p : fn.inputs) {
    StubState st;
    st.name = "IN_" + p.name;
    const std::uint64_t elems =
        p.count_kind == ir::CountKind::Implicit ? 0 : p.max_elements();
    st.words = elems == 0
                   ? 0
                   : static_cast<unsigned>(p.words_for(elems,
                                                       target.bus_width));
    st.ignore_bits = packed_tail_ignore_bits(p, target.bus_width, elems);
    st.comment = "Handling " +
                 (st.words != 0 ? std::to_string(st.words)
                                : std::string("a variable number of")) +
                 " write operation(s) for " + p.name;
    if (st.ignore_bits != 0) {
      st.comment += " -- the final transfer carries " +
                    std::to_string(st.ignore_bits) +
                    " trailing bit(s) the hardware can safely ignore";
    }
    model.states.push_back(std::move(st));
    add_param_hardware(model, p, target.bus_width);
  }

  StubState calc;
  calc.name = "CALC_0";
  calc.comment =
      "Calculation state left blank for the end-user to fill in (§5.3.1); "
      "add further CALC_n states for multi-cycle operations";
  model.states.push_back(std::move(calc));

  if (fn.blocking()) {
    // §10.2 '&' by-reference parameters stream back before the result.
    for (std::size_t idx : fn.by_ref_params()) {
      const ir::IoParam& p = fn.inputs[idx];
      StubState st;
      st.name = "OUT_" + p.name;
      const std::uint64_t elems =
          p.count_kind == ir::CountKind::Implicit ? 0 : p.max_elements();
      st.words = elems == 0 ? 0
                            : static_cast<unsigned>(
                                  p.words_for(elems, target.bus_width));
      st.comment = "Streaming the updated '" + p.name +
                   "' values back to software ('&' by reference)";
      model.states.push_back(std::move(st));
      model.registers.push_back(
          {p.name + "_out_counter",
           bits::bits_for_value(std::max<std::uint64_t>(
               2, p.words_for(p.max_elements(), target.bus_width))),
           "tracks read-back words for " + p.name});
      model.comparators.push_back({p.name + "_out_cmp", 8});
    }
    StubState out;
    out.name = "OUT_RESULT";
    if (fn.has_output()) {
      const ir::IoParam& o = fn.output;
      const std::uint64_t elems =
          o.count_kind == ir::CountKind::Implicit ? 0 : o.max_elements();
      out.words = elems == 0 ? 0
                             : static_cast<unsigned>(
                                   o.words_for(elems, target.bus_width));
      out.comment = "Handling " +
                    (out.words != 0 ? std::to_string(out.words)
                                    : std::string("a variable number of")) +
                    " read operation(s) for the result";
      if (out.words > 1) {
        model.registers.push_back(
            {"result_counter", bits::bits_for_value(out.words),
             "tracks result words sent"});
        model.comparators.push_back(
            {"result_cmp", bits::bits_for_value(out.words)});
      }
    } else {
      out.words = 1;
      out.comment =
          "Pseudo output state: reports completion back to the blocking "
          "driver (§5.3.1)";
    }
    model.states.push_back(std::move(out));
  }

  return model;
}

}  // namespace splice::codegen
