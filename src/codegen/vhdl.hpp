// VHDL pretty-printer over the language-neutral AST (hdl_ast.hpp): the
// user-logic stub files (func_<name>.vhd, thesis §5.3 / Figure 8.4 shape),
// the arbitration unit (user_<device>.vhd, §5.2) and the macro snippets the
// Figure 7.1 standard markers expand to inside native-interface templates.
// All structure comes from hdl_builder.hpp; this layer owns syntax only.
#pragma once

#include <string>

#include "codegen/hdl_ast.hpp"
#include "ir/device.hpp"

namespace splice::codegen::vhdl {

/// Render a whole AST module as a VHDL design file.
[[nodiscard]] std::string print_module(const ast::Module& m);

// --- piecewise printers (the Figure 7.1 snippet granularity) --------------
[[nodiscard]] std::string print_constants(const ast::Module& m);
[[nodiscard]] std::string print_signal_decls(const ast::Module& m);
[[nodiscard]] std::string print_process(const ast::Process& p);
[[nodiscard]] std::string print_cont_assign_group(
    const ast::ContAssignGroup& g);

/// Complete func_<name>.vhd for one interface declaration.
[[nodiscard]] std::string emit_stub_file(const ir::FunctionDecl& fn,
                                         const ir::DeviceSpec& spec);

/// Complete user_<device>.vhd: arbitration unit + stub instantiations.
[[nodiscard]] std::string emit_arbiter_file(const ir::DeviceSpec& spec);

// --- Figure 7.1 macro snippet bodies --------------------------------------
[[nodiscard]] std::string func_consts(const ir::FunctionDecl& fn,
                                      const ir::DeviceSpec& spec);
[[nodiscard]] std::string func_signals(const ir::FunctionDecl& fn,
                                       const ir::DeviceSpec& spec);
[[nodiscard]] std::string func_fsm(const ir::FunctionDecl& fn,
                                   const ir::DeviceSpec& spec);
[[nodiscard]] std::string func_stub_process(const ir::FunctionDecl& fn,
                                            const ir::DeviceSpec& spec);
[[nodiscard]] std::string data_out_mux(const ir::DeviceSpec& spec);
[[nodiscard]] std::string data_out_valid_mux(const ir::DeviceSpec& spec);
[[nodiscard]] std::string io_done_mux(const ir::DeviceSpec& spec);
[[nodiscard]] std::string calc_done_encode(const ir::DeviceSpec& spec);

/// "std_logic_vector(0 to N-1)" or "std_logic" for width 1.
[[nodiscard]] std::string slv(unsigned width);

}  // namespace splice::codegen::vhdl
