#include "codegen/hdl_lint.hpp"

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/hash.hpp"

namespace splice::codegen {

namespace {

using ast::Expr;
using ast::Module;
using ast::Stmt;

/// One declared identifier: port, signal, constant or the FSM state
/// register halves.  width 0 means "any width" (integer constants).
/// Read/written usage is folded into the symbol record so one table lookup
/// serves lookup, usage marking and width checking alike — the separate
/// read/written sets used to triple-hash every reference on the hot path.
struct Symbol {
  unsigned width = 0;
  bool is_input = false;
  bool is_output = false;
  bool is_signal = false;
  bool is_constant = false;
  bool user_driven = false;
  bool read = false;
  bool written = false;
};

// The linter runs on every module before it is written, so its bookkeeping
// is keyed by string_view into the module's own storage (declaration
// strings and arena-interned node names — both stable for the walk).
// Symbols live in a declaration-order vector with an open-addressed
// {hash, index} side table: the module's symbol count is known up front,
// so the table is sized once and never rehashes, and deterministic
// diagnostic order falls out of walking the vector.  Because the tree is
// hash-consed, checking is memoized by node identity: a statement or
// expression shared by N case arms (or N instances) is verified once.
class Linter {
 public:
  Linter(const Module& m, DiagnosticEngine& diags) : m_(m), diags_(diags) {}

  bool run() {
    collect_symbols();
    for (const auto& p : m_.processes) {
      for (const auto& name : p.sensitivity) require_known(name);
      if (p.kind == ast::Process::Kind::Clocked) mark_read(p.clock);
      check_stmts(p.body);
    }
    for (const auto& g : m_.cont_assigns) {
      for (const auto& a : g.assigns) {
        check_assign(a.target, a.index, *a.rhs);
      }
    }
    for (const auto& inst : m_.instances) {
      for (const auto& group : inst.groups) {
        for (const auto& c : group) {
          Symbol* sym = lookup(c.signal);
          if (sym == nullptr) continue;
          if (c.is_output) {
            sym->written = true;
          } else {
            sym->read = true;
          }
        }
      }
    }
    check_driven_and_read();
    check_fsm_reachability();
    return clean_;
  }

 private:
  struct Entry {
    std::string_view name;
    Symbol sym;
  };

  /// One side-table slot: `index` is the entry position plus one, so zero
  /// marks an empty slot.
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t index = 0;
  };

  void error(DiagId id, std::string message) {
    clean_ = false;
    diags_.error(id, m_.name + ": " + std::move(message));
  }

  /// Probe for `name`; returns the slot where it lives or would go.
  Slot& probe(std::string_view name, std::uint64_t h) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i].index != 0) {
      if (slots_[i].hash == h && entries_[slots_[i].index - 1].name == name) {
        break;
      }
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void declare(std::string_view name, Symbol sym, bool is_port) {
    const std::uint64_t h = support::hash_string(name);
    Slot& slot = probe(name, h);
    if (slot.index != 0) {
      error(is_port ? DiagId::LintDuplicatePortName
                    : DiagId::LintDuplicateSignalName,
            std::string(is_port ? "port" : "declaration") + " '" +
                std::string(name) + "' collides with an earlier declaration");
      return;
    }
    entries_.push_back({name, sym});
    slot.hash = h;
    slot.index = static_cast<std::uint32_t>(entries_.size());
  }

  void collect_symbols() {
    std::size_t n = m_.ports.size() + m_.constants.size() + 2;
    for (const auto& decl : m_.signals) n += decl.names.size();
    entries_.reserve(n);
    // Sized for the full declaration set at < 50% load; inserts stop once
    // the declarations are collected, so the table never rehashes.
    std::size_t cap = 16;
    while (cap < n * 2) cap *= 2;
    slots_.assign(cap, {});
    for (const auto& p : m_.ports) {
      Symbol s;
      s.width = p.width;
      s.is_input = p.is_input;
      s.is_output = !p.is_input;
      s.user_driven = p.user_driven;
      declare(p.name, s, /*is_port=*/true);
    }
    for (const auto& c : m_.constants) {
      Symbol s;
      s.width = c.width;
      s.is_constant = true;
      declare(c.name, s, /*is_port=*/false);
    }
    if (m_.fsm) {
      for (const auto& st : m_.fsm->states) {
        if (!states_.insert(st).second) {
          error(DiagId::LintDuplicateSignalName,
                "FSM state '" + st + "' declared twice");
        }
      }
      for (const char* reg : {"cur_state", "next_state"}) {
        Symbol s;
        s.width = m_.fsm->state_width;
        s.is_signal = true;
        declare(reg, s, /*is_port=*/false);
      }
    }
    for (const auto& decl : m_.signals) {
      for (const auto& name : decl.names) {
        Symbol s;
        s.width = decl.width;
        s.is_signal = true;
        s.user_driven = decl.user_driven;
        declare(name, s, /*is_port=*/false);
      }
    }
  }

  /// Find a declared symbol; report (once) and return null when unknown.
  Symbol* lookup(std::string_view name) {
    Slot& slot = probe(name, support::hash_string(name));
    if (slot.index != 0) return &entries_[slot.index - 1].sym;
    if (unknown_.insert(name).second) {
      error(DiagId::LintUnknownSignal,
            "reference to undeclared signal '" + std::string(name) + "'");
    }
    return nullptr;
  }

  void require_known(std::string_view name) { lookup(name); }

  void mark_read(std::string_view name) {
    if (Symbol* sym = lookup(name)) sym->read = true;
  }

  /// Width of an expression, marking every referenced name as read.
  /// nullopt means "matches anything" (placeholders, integer constants).
  /// Memoized on node identity: interning guarantees a shared node always
  /// yields the same verdict, and read-marking is idempotent.
  std::optional<unsigned> visit(const Expr& e) {
    if (std::optional<unsigned>* seen = expr_memo_.find(&e)) return *seen;
    const std::optional<unsigned> w = visit_uncached(e);
    expr_memo_.insert(&e, w);
    return w;
  }

  std::optional<unsigned> visit_uncached(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::SignalRef:
      case K::ConstRef: {
        Symbol* sym = lookup(e.name);
        if (sym == nullptr) return std::nullopt;
        sym->read = true;
        if (sym->width == 0) return std::nullopt;
        return sym->width;
      }
      case K::StateRef:
        if (!states_.contains(e.name)) {
          error(DiagId::LintUnknownSignal,
                "reference to undeclared FSM state '" + std::string(e.name) +
                    "'");
          return std::nullopt;
        }
        return m_.fsm ? m_.fsm->state_width : 1;
      case K::Placeholder:
        return std::nullopt;  // user-to-complete; intentionally unchecked
      case K::BitLit:
        return 1;
      case K::VectorLit:
      case K::ZeroVector:
        return e.width;
      case K::Eq: {
        const auto a = visit(*e.operands[0]);
        const auto b = visit(*e.operands[1]);
        if (a && b && *a != *b) {
          error(DiagId::LintWidthMismatch,
                "comparison of a " + std::to_string(*a) + "-bit value with "
                "a " + std::to_string(*b) + "-bit value");
        }
        return 1;
      }
      case K::And:
      case K::Not:
        for (const Expr* op : e.operands) {
          const auto w = visit(*op);
          if (w && *w != 1) {
            error(DiagId::LintWidthMismatch,
                  "logical operator applied to a " + std::to_string(*w) +
                      "-bit operand");
          }
        }
        return 1;
      case K::AnyBitSet:
        visit(*e.operands[0]);
        return 1;
    }
    return std::nullopt;
  }

  void check_assign(std::string_view target, int index, const Expr& rhs) {
    Symbol* sym = lookup(target);
    if (sym != nullptr) sym->written = true;
    const auto rhs_width = visit(rhs);

    if (sym == nullptr) return;
    const unsigned declared = sym->width;
    if (index >= 0) {
      if (declared != 0 && static_cast<unsigned>(index) >= declared) {
        error(DiagId::LintWidthMismatch,
              "bit " + std::to_string(index) + " of '" + std::string(target) +
                  "' is out of range for its " + std::to_string(declared) +
                  "-bit declaration");
      }
      if (rhs_width && *rhs_width != 1) {
        error(DiagId::LintWidthMismatch,
              "assignment of a " + std::to_string(*rhs_width) +
                  "-bit value to single bit '" + std::string(target) + "'");
      }
      return;
    }
    if (declared != 0 && rhs_width && *rhs_width != declared) {
      error(DiagId::LintWidthMismatch,
            "assignment of a " + std::to_string(*rhs_width) +
                "-bit value to " + std::to_string(declared) + "-bit '" +
                std::string(target) + "'");
    }
  }

  void check_stmts(ast::StmtList body) {
    for (const Stmt* s : body) {
      // A statement subtree shared across arms or instances needs checking
      // once: the verdict is a function of the node, and usage marking
      // (read/written) is idempotent.  One caveat keeps this sound: an
      // assignment's written-bit must be set on every pass even when the
      // subtree is skipped, and it is — check_stmt's assign case marks the
      // target before any memoizable work, and Assign statements to the
      // same target/rhs are one interned node anyway.
      if (s->kind != Stmt::Kind::Comment && !stmt_memo_.insert_new(s)) {
        continue;
      }
      switch (s->kind) {
        case Stmt::Kind::Comment:
          break;
        case Stmt::Kind::Assign:
          check_assign(s->target, s->index, *s->rhs);
          break;
        case Stmt::Kind::If:
          visit(*s->cond);
          check_stmts(s->then_body);
          check_stmts(s->else_body);
          break;
        case Stmt::Kind::Case: {
          const auto sel = visit(*s->selector);
          for (const auto& arm : s->arms) {
            if (arm.label) {
              const auto lw = visit(*arm.label);
              if (sel && lw && *sel != *lw) {
                error(DiagId::LintWidthMismatch,
                      "case label width " + std::to_string(*lw) +
                          " does not match its " + std::to_string(*sel) +
                          "-bit selector");
              }
            }
            check_stmts(arm.body);
          }
          break;
        }
      }
    }
  }

  void check_driven_and_read() {
    for (const Entry& entry : entries_) {
      const std::string_view name = entry.name;
      const Symbol& sym = entry.sym;
      if (sym.user_driven || sym.is_constant) continue;
      const bool needs_drive = sym.is_output || sym.is_signal;
      if (needs_drive && !sym.written) {
        error(DiagId::LintUndrivenSignal,
              "'" + std::string(name) + "' is never driven");
      }
      const bool needs_read = sym.is_input || sym.is_signal;
      if (needs_read && !sym.read) {
        error(DiagId::LintUnreadSignal,
              "'" + std::string(name) + "' is never read");
      }
    }
  }

  /// Collect every `next_state <= <state>` in `body`, recursively.
  void next_states_in(ast::StmtList body,
                      std::unordered_set<std::string_view>& out) const {
    for (const Stmt* s : body) {
      switch (s->kind) {
        case Stmt::Kind::Assign:
          if (s->target == "next_state" &&
              s->rhs->kind == Expr::Kind::StateRef) {
            out.insert(s->rhs->name);
          }
          break;
        case Stmt::Kind::If:
          next_states_in(s->then_body, out);
          next_states_in(s->else_body, out);
          break;
        case Stmt::Kind::Case:
          for (const auto& arm : s->arms) next_states_in(arm.body, out);
          break;
        case Stmt::Kind::Comment:
          break;
      }
    }
  }

  void check_fsm_reachability() {
    if (!m_.fsm || m_.fsm->states.empty()) return;
    // Transitions come from the case over cur_state: each arm labelled
    // with a state contributes edges to every state it assigns next_state.
    std::unordered_map<std::string_view,
                       std::unordered_set<std::string_view>>
        edges;
    for (const auto& p : m_.processes) {
      collect_edges(p.body, edges);
    }
    std::unordered_set<std::string_view> reachable = {m_.fsm->states.front()};
    std::vector<std::string_view> frontier = {m_.fsm->states.front()};
    for (const auto& st : m_.fsm->user_entry_states) {
      if (states_.contains(st) && reachable.insert(st).second) {
        frontier.push_back(st);
      }
    }
    while (!frontier.empty()) {
      const std::string_view state = frontier.back();
      frontier.pop_back();
      for (const auto& next : edges[state]) {
        if (reachable.insert(next).second) frontier.push_back(next);
      }
    }
    for (const auto& st : m_.fsm->states) {
      if (!reachable.contains(st)) {
        error(DiagId::LintUnreachableState,
              "FSM state '" + st + "' is unreachable from reset state '" +
                  m_.fsm->states.front() + "'");
      }
    }
  }

  void collect_edges(ast::StmtList body,
                     std::unordered_map<std::string_view,
                                        std::unordered_set<std::string_view>>&
                         edges) const {
    for (const Stmt* s : body) {
      switch (s->kind) {
        case Stmt::Kind::Case:
          if (s->selector->kind == Expr::Kind::SignalRef &&
              s->selector->name == "cur_state") {
            for (const auto& arm : s->arms) {
              if (!arm.label || arm.label->kind != Expr::Kind::StateRef) {
                continue;
              }
              next_states_in(arm.body, edges[arm.label->name]);
            }
          } else {
            for (const auto& arm : s->arms) collect_edges(arm.body, edges);
          }
          break;
        case Stmt::Kind::If:
          collect_edges(s->then_body, edges);
          collect_edges(s->else_body, edges);
          break;
        default:
          break;
      }
    }
  }

  /// Open-addressed pointer-keyed memo; interned node addresses are the
  /// keys, so one multiply hashes them.
  template <typename V>
  struct PtrMemo {
    struct MemoSlot {
      const void* key = nullptr;
      V value{};
    };
    std::vector<MemoSlot> slots;
    std::size_t count = 0;

    static std::size_t spot(const void* k, std::size_t mask) {
      support::Hasher h;
      h.ptr(k);
      return static_cast<std::size_t>(h.h) & mask;
    }

    V* find(const void* k) {
      if (slots.empty()) return nullptr;
      const std::size_t mask = slots.size() - 1;
      for (std::size_t i = spot(k, mask); slots[i].key != nullptr;
           i = (i + 1) & mask) {
        if (slots[i].key == k) return &slots[i].value;
      }
      return nullptr;
    }

    void insert(const void* k, V v) {
      if (slots.empty()) slots.resize(64);
      std::size_t mask = slots.size() - 1;
      std::size_t i = spot(k, mask);
      while (slots[i].key != nullptr && slots[i].key != k) i = (i + 1) & mask;
      if (slots[i].key == nullptr) {
        slots[i] = {k, v};
        if (++count * 4 >= slots.size() * 3) grow();
      }
    }

    /// Returns false when `k` was already present.
    bool insert_new(const void* k) {
      if (find(k) != nullptr) return false;
      insert(k, V{});
      return true;
    }

    void grow() {
      std::vector<MemoSlot> old = std::move(slots);
      slots.assign(old.size() * 2, {});
      const std::size_t mask = slots.size() - 1;
      for (const auto& s : old) {
        if (s.key == nullptr) continue;
        std::size_t j = spot(s.key, mask);
        while (slots[j].key != nullptr) j = (j + 1) & mask;
        slots[j] = s;
      }
    }
  };

  struct Unit {};

  const Module& m_;
  DiagnosticEngine& diags_;
  std::vector<Entry> entries_;  ///< symbols in declaration order
  std::vector<Slot> slots_;     ///< name → entries_ index side table
  PtrMemo<std::optional<unsigned>> expr_memo_;
  PtrMemo<Unit> stmt_memo_;
  std::unordered_set<std::string_view> states_;
  std::unordered_set<std::string_view> unknown_;
  bool clean_ = true;
};

}  // namespace

bool lint_module(const ast::Module& m, DiagnosticEngine& diags) {
  return Linter(m, diags).run();
}

}  // namespace splice::codegen
