#include "codegen/hdl_lint.hpp"

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace splice::codegen {

namespace {

using ast::Expr;
using ast::Module;
using ast::Stmt;

/// One declared identifier: port, signal, constant or the FSM state
/// register halves.  width 0 means "any width" (integer constants).
struct Symbol {
  unsigned width = 0;
  bool is_input = false;
  bool is_output = false;
  bool is_signal = false;
  bool is_constant = false;
  bool user_driven = false;
};

class Linter {
 public:
  Linter(const Module& m, DiagnosticEngine& diags) : m_(m), diags_(diags) {}

  bool run() {
    collect_symbols();
    for (const auto& p : m_.processes) {
      for (const auto& name : p.sensitivity) require_known(name);
      if (p.kind == ast::Process::Kind::Clocked) mark_read(p.clock);
      check_stmts(p.body);
    }
    for (const auto& g : m_.cont_assigns) {
      for (const auto& a : g.assigns) {
        check_assign(a.target, a.index, a.rhs);
      }
    }
    for (const auto& inst : m_.instances) {
      for (const auto& group : inst.groups) {
        for (const auto& c : group) {
          require_known(c.signal);
          if (c.is_output) {
            written_.insert(c.signal);
          } else {
            mark_read(c.signal);
          }
        }
      }
    }
    check_driven_and_read();
    check_fsm_reachability();
    return clean_;
  }

 private:
  void error(DiagId id, std::string message) {
    clean_ = false;
    diags_.error(id, m_.name + ": " + std::move(message));
  }

  void declare(const std::string& name, Symbol sym, bool is_port) {
    if (symbols_.count(name) != 0) {
      error(is_port ? DiagId::LintDuplicatePortName
                    : DiagId::LintDuplicateSignalName,
            std::string(is_port ? "port" : "declaration") + " '" + name +
                "' collides with an earlier declaration");
      return;
    }
    symbols_.emplace(name, sym);
  }

  void collect_symbols() {
    for (const auto& p : m_.ports) {
      Symbol s;
      s.width = p.width;
      s.is_input = p.is_input;
      s.is_output = !p.is_input;
      s.user_driven = p.user_driven;
      declare(p.name, s, /*is_port=*/true);
    }
    for (const auto& c : m_.constants) {
      Symbol s;
      s.width = c.width;
      s.is_constant = true;
      declare(c.name, s, /*is_port=*/false);
    }
    if (m_.fsm) {
      for (const auto& st : m_.fsm->states) {
        if (!states_.insert(st).second) {
          error(DiagId::LintDuplicateSignalName,
                "FSM state '" + st + "' declared twice");
        }
      }
      for (const char* reg : {"cur_state", "next_state"}) {
        Symbol s;
        s.width = m_.fsm->state_width;
        s.is_signal = true;
        declare(reg, s, /*is_port=*/false);
      }
    }
    for (const auto& decl : m_.signals) {
      for (const auto& name : decl.names) {
        Symbol s;
        s.width = decl.width;
        s.is_signal = true;
        s.user_driven = decl.user_driven;
        declare(name, s, /*is_port=*/false);
      }
    }
  }

  void require_known(const std::string& name) {
    if (symbols_.count(name) == 0 && unknown_.insert(name).second) {
      error(DiagId::LintUnknownSignal,
            "reference to undeclared signal '" + name + "'");
    }
  }

  void mark_read(const std::string& name) {
    require_known(name);
    read_.insert(name);
  }

  /// Width of an expression, marking every referenced name as read.
  /// nullopt means "matches anything" (placeholders, integer constants).
  std::optional<unsigned> visit(const Expr& e) {
    using K = Expr::Kind;
    switch (e.kind) {
      case K::SignalRef:
      case K::ConstRef: {
        mark_read(e.name);
        auto it = symbols_.find(e.name);
        if (it == symbols_.end() || it->second.width == 0) {
          return std::nullopt;
        }
        return it->second.width;
      }
      case K::StateRef:
        if (states_.count(e.name) == 0) {
          error(DiagId::LintUnknownSignal,
                "reference to undeclared FSM state '" + e.name + "'");
          return std::nullopt;
        }
        return m_.fsm ? m_.fsm->state_width : 1;
      case K::Placeholder:
        return std::nullopt;  // user-to-complete; intentionally unchecked
      case K::BitLit:
        return 1;
      case K::VectorLit:
      case K::ZeroVector:
        return e.width;
      case K::Eq: {
        const auto a = visit(e.operands[0]);
        const auto b = visit(e.operands[1]);
        if (a && b && *a != *b) {
          error(DiagId::LintWidthMismatch,
                "comparison of a " + std::to_string(*a) + "-bit value with "
                "a " + std::to_string(*b) + "-bit value");
        }
        return 1;
      }
      case K::And:
      case K::Not:
        for (const auto& op : e.operands) {
          const auto w = visit(op);
          if (w && *w != 1) {
            error(DiagId::LintWidthMismatch,
                  "logical operator applied to a " + std::to_string(*w) +
                      "-bit operand");
          }
        }
        return 1;
      case K::AnyBitSet:
        visit(e.operands[0]);
        return 1;
    }
    return std::nullopt;
  }

  void check_assign(const std::string& target, int index, const Expr& rhs) {
    require_known(target);
    written_.insert(target);
    const auto rhs_width = visit(rhs);

    auto it = symbols_.find(target);
    if (it == symbols_.end()) return;
    const unsigned declared = it->second.width;
    if (index >= 0) {
      if (declared != 0 && static_cast<unsigned>(index) >= declared) {
        error(DiagId::LintWidthMismatch,
              "bit " + std::to_string(index) + " of '" + target +
                  "' is out of range for its " + std::to_string(declared) +
                  "-bit declaration");
      }
      if (rhs_width && *rhs_width != 1) {
        error(DiagId::LintWidthMismatch,
              "assignment of a " + std::to_string(*rhs_width) +
                  "-bit value to single bit '" + target + "'");
      }
      return;
    }
    if (declared != 0 && rhs_width && *rhs_width != declared) {
      error(DiagId::LintWidthMismatch,
            "assignment of a " + std::to_string(*rhs_width) +
                "-bit value to " + std::to_string(declared) + "-bit '" +
                target + "'");
    }
  }

  void check_stmts(const std::vector<Stmt>& body) {
    for (const auto& s : body) {
      switch (s.kind) {
        case Stmt::Kind::Comment:
          break;
        case Stmt::Kind::Assign:
          check_assign(s.target, s.index, s.rhs);
          break;
        case Stmt::Kind::If:
          visit(s.cond);
          check_stmts(s.then_body);
          check_stmts(s.else_body);
          break;
        case Stmt::Kind::Case: {
          const auto sel = visit(s.selector);
          for (const auto& arm : s.arms) {
            if (arm.label) {
              const auto lw = visit(*arm.label);
              if (sel && lw && *sel != *lw) {
                error(DiagId::LintWidthMismatch,
                      "case label width " + std::to_string(*lw) +
                          " does not match its " + std::to_string(*sel) +
                          "-bit selector");
              }
            }
            check_stmts(arm.body);
          }
          break;
        }
      }
    }
  }

  void check_driven_and_read() {
    for (const auto& [name, sym] : symbols_) {
      if (sym.user_driven || sym.is_constant) continue;
      const bool needs_drive = sym.is_output || sym.is_signal;
      if (needs_drive && written_.count(name) == 0) {
        error(DiagId::LintUndrivenSignal,
              "'" + name + "' is never driven");
      }
      const bool needs_read = sym.is_input || sym.is_signal;
      if (needs_read && read_.count(name) == 0) {
        error(DiagId::LintUnreadSignal, "'" + name + "' is never read");
      }
    }
  }

  /// Collect every `next_state <= <state>` in `body`, recursively.
  void next_states_in(const std::vector<Stmt>& body,
                      std::set<std::string>& out) const {
    for (const auto& s : body) {
      switch (s.kind) {
        case Stmt::Kind::Assign:
          if (s.target == "next_state" &&
              s.rhs.kind == Expr::Kind::StateRef) {
            out.insert(s.rhs.name);
          }
          break;
        case Stmt::Kind::If:
          next_states_in(s.then_body, out);
          next_states_in(s.else_body, out);
          break;
        case Stmt::Kind::Case:
          for (const auto& arm : s.arms) next_states_in(arm.body, out);
          break;
        case Stmt::Kind::Comment:
          break;
      }
    }
  }

  void check_fsm_reachability() {
    if (!m_.fsm || m_.fsm->states.empty()) return;
    // Transitions come from the case over cur_state: each arm labelled
    // with a state contributes edges to every state it assigns next_state.
    std::map<std::string, std::set<std::string>> edges;
    for (const auto& p : m_.processes) {
      collect_edges(p.body, edges);
    }
    std::set<std::string> reachable = {m_.fsm->states.front()};
    std::vector<std::string> frontier = {m_.fsm->states.front()};
    for (const auto& st : m_.fsm->user_entry_states) {
      if (states_.count(st) != 0 && reachable.insert(st).second) {
        frontier.push_back(st);
      }
    }
    while (!frontier.empty()) {
      const std::string state = std::move(frontier.back());
      frontier.pop_back();
      for (const auto& next : edges[state]) {
        if (reachable.insert(next).second) frontier.push_back(next);
      }
    }
    for (const auto& st : m_.fsm->states) {
      if (reachable.count(st) == 0) {
        error(DiagId::LintUnreachableState,
              "FSM state '" + st + "' is unreachable from reset state '" +
                  m_.fsm->states.front() + "'");
      }
    }
  }

  void collect_edges(const std::vector<Stmt>& body,
                     std::map<std::string, std::set<std::string>>& edges)
      const {
    for (const auto& s : body) {
      switch (s.kind) {
        case Stmt::Kind::Case:
          if (s.selector.kind == Expr::Kind::SignalRef &&
              s.selector.name == "cur_state") {
            for (const auto& arm : s.arms) {
              if (!arm.label || arm.label->kind != Expr::Kind::StateRef) {
                continue;
              }
              next_states_in(arm.body, edges[arm.label->name]);
            }
          } else {
            for (const auto& arm : s.arms) collect_edges(arm.body, edges);
          }
          break;
        case Stmt::Kind::If:
          collect_edges(s.then_body, edges);
          collect_edges(s.else_body, edges);
          break;
        default:
          break;
      }
    }
  }

  const Module& m_;
  DiagnosticEngine& diags_;
  std::map<std::string, Symbol> symbols_;
  std::set<std::string> states_;
  std::set<std::string> read_;
  std::set<std::string> written_;
  std::set<std::string> unknown_;
  bool clean_ = true;
};

}  // namespace

bool lint_module(const ast::Module& m, DiagnosticEngine& diags) {
  return Linter(m, diags).run();
}

}  // namespace splice::codegen
