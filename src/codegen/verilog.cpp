#include "codegen/verilog.hpp"

#include <sstream>

#include "codegen/hdl_builder.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace splice::codegen::verilog {

namespace {

using ast::CaseArm;
using ast::Expr;
using ast::Module;
using ast::Process;
using ast::Stmt;

std::string ljust(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string spaces(unsigned n) { return std::string(n, ' '); }

std::string render_expr(const Expr& e) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::SignalRef:
    case K::ConstRef:
    case K::Placeholder:
      return e.name;
    case K::StateRef:
      return str::to_upper(e.name);
    case K::BitLit:
      return e.value != 0 ? "1'b1" : "1'b0";
    case K::VectorLit:
      return std::to_string(e.value);
    case K::ZeroVector:
      return std::to_string(e.width) + "'d0";
    case K::Eq:
      return render_expr(e.operands[0]) + " == " +
             render_expr(e.operands[1]);
    case K::And: {
      std::string out;
      for (const auto& op : e.operands) {
        if (!out.empty()) out += " && ";
        out += render_expr(op);
      }
      return out;
    }
    case K::Not:
      return "!" + render_expr(e.operands[0]);
    case K::AnyBitSet:
      return "|" + render_expr(e.operands[0]);
  }
  throw SpliceError("expression kind not renderable as a Verilog operand");
}

std::string render_target(const std::string& name, int index) {
  if (index < 0) return name;
  return name + "[" + std::to_string(index) + "]";
}

/// `blocking` selects "=" (combinational) over "<=" (clocked).
std::string render_assign(const Stmt& s, bool blocking) {
  const std::string op = blocking ? "= " : "<= ";
  const std::string target = render_target(s.target, s.index);
  return (s.pad != 0 ? ljust(target, s.pad) : target + " ") + op +
         render_expr(s.rhs) + ";";
}

void print_stmt(std::ostream& os, const Stmt& s, unsigned ind,
                bool blocking);

void print_stmts(std::ostream& os, const std::vector<Stmt>& body,
                 unsigned ind, bool blocking) {
  for (const auto& s : body) print_stmt(os, s, ind, blocking);
}

bool all_assigns(const std::vector<Stmt>& body) {
  for (const auto& s : body) {
    if (s.kind != Stmt::Kind::Assign) return false;
  }
  return !body.empty();
}

void print_stmt(std::ostream& os, const Stmt& s, unsigned ind,
                bool blocking) {
  switch (s.kind) {
    case Stmt::Kind::Comment:
      for (const auto& line : s.text) {
        os << spaces(ind) << "// " << line << "\n";
      }
      return;
    case Stmt::Kind::Assign:
      os << spaces(ind) << render_assign(s, blocking) << "\n";
      return;
    case Stmt::Kind::If: {
      const std::string cond = render_expr(s.cond);
      const bool compact = s.then_body.size() == 1 &&
                           s.then_body[0].kind == Stmt::Kind::Assign &&
                           s.else_body.size() == 1 &&
                           s.else_body[0].kind == Stmt::Kind::Assign;
      if (compact) {
        const std::string head = "if (" + cond + ") ";
        os << spaces(ind) << head << render_assign(s.then_body[0], blocking)
           << "\n"
           << spaces(ind) << ljust("else", head.size())
           << render_assign(s.else_body[0], blocking) << "\n";
        return;
      }
      os << spaces(ind) << "if (" << cond << ") begin\n";
      print_stmts(os, s.then_body, ind + 4, blocking);
      if (!s.else_body.empty()) {
        os << spaces(ind) << "end else begin\n";
        print_stmts(os, s.else_body, ind + 4, blocking);
      }
      os << spaces(ind) << "end\n";
      return;
    }
    case Stmt::Kind::Case: {
      os << spaces(ind) << "case (" << render_expr(s.selector) << ")\n";
      for (const CaseArm& arm : s.arms) {
        if (!arm.comment.empty()) {
          os << spaces(ind + 4) << "// " << arm.comment << "\n";
        }
        const std::string label =
            arm.label ? render_expr(*arm.label) : std::string("default");
        if (all_assigns(arm.body)) {
          os << spaces(ind + 4) << label << ": begin";
          for (const auto& a : arm.body) {
            os << " " << render_assign(a, blocking);
          }
          os << " end\n";
        } else {
          os << spaces(ind + 4) << label << ": begin\n";
          print_stmts(os, arm.body, ind + 8, blocking);
          os << spaces(ind + 4) << "end\n";
        }
      }
      os << spaces(ind) << "endcase\n";
      return;
    }
  }
}

std::string header_comment(const Module& m) {
  const std::string rule = "//" + std::string(60, '-');
  std::ostringstream os;
  os << rule << "\n";
  for (const auto& line : m.banner) os << "// " << line << "\n";
  os << rule << "\n\n";
  return os.str();
}

std::string print_ports(const Module& m) {
  std::ostringstream os;
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const ast::Port& p = m.ports[i];
    os << "    "
       << (p.is_input ? "input  wire "
                      : (p.reg ? "output reg  " : "output wire "))
       << vec(p.width) << p.name << (i + 1 < m.ports.size() ? "," : "")
       << "\n";
  }
  return os.str();
}

std::string print_decls(const Module& m) {
  std::ostringstream os;
  for (const auto& c : m.constants) {
    os << "    localparam " << c.name << " = " << c.value << ";\n";
  }
  if (m.fsm) {
    for (std::size_t i = 0; i < m.fsm->states.size(); ++i) {
      os << "    localparam " << str::to_upper(m.fsm->states[i]) << " = "
         << i << ";\n";
    }
    os << "    reg " << vec(m.fsm->state_width)
       << "cur_state, next_state;\n";
  }
  for (const auto& s : m.signals) {
    os << "    " << (s.is_reg ? "reg " : "wire ") << vec(s.width)
       << str::join(s.names, ", ") << ";";
    if (!s.purpose.empty()) os << " // " << s.purpose;
    os << "\n";
  }
  return os.str();
}

std::string print_process(const Process& p) {
  std::ostringstream os;
  for (const auto& line : p.comment) os << "    // " << line << "\n";
  const bool clocked = p.kind == Process::Kind::Clocked;
  if (clocked) {
    os << "    always @(posedge " << p.clock << ") begin\n";
  } else {
    os << "    always @(*) begin\n";
  }
  print_stmts(os, p.body, 8, /*blocking=*/!clocked);
  os << "    end\n";
  return os.str();
}

std::string print_instance(const ast::Instance& inst) {
  std::ostringstream os;
  os << "    " << inst.module << " " << inst.label << " (\n";
  for (std::size_t i = 0; i < inst.groups.size(); ++i) {
    std::vector<std::string> conns;
    for (const auto& c : inst.groups[i]) {
      conns.push_back("." + c.port + "(" + c.signal + ")");
    }
    os << "        " << str::join(conns, ", ")
       << (i + 1 < inst.groups.size() ? "," : "") << "\n";
  }
  os << "    );\n";
  return os.str();
}

std::string print_cont_assign_group(const ast::ContAssignGroup& g) {
  std::ostringstream os;
  for (const auto& line : g.comment) os << "    // " << line << "\n";
  for (const auto& a : g.assigns) {
    os << "    assign " << render_target(a.target, a.index) << " = "
       << render_expr(a.rhs) << ";";
    if (!a.trailing_comment.empty()) os << " // " << a.trailing_comment;
    os << "\n";
  }
  return os.str();
}

}  // namespace

std::string vec(unsigned width) {
  if (width <= 1) return "";
  return "[" + std::to_string(width - 1) + ":0] ";
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  os << header_comment(m);
  os << "module " << m.name << " (\n" << print_ports(m) << ");\n\n";
  const std::string decls = print_decls(m);
  if (!decls.empty()) os << decls << "\n";

  std::vector<std::string> items;
  if (!m.instances.empty()) {
    std::string block;
    for (const auto& inst : m.instances) block += print_instance(inst);
    items.push_back(std::move(block));
  }
  for (const auto& p : m.processes) items.push_back(print_process(p));
  os << str::join(items, "\n");
  if (!m.cont_assigns.empty()) {
    os << "\n";
    for (const auto& g : m.cont_assigns) os << print_cont_assign_group(g);
  }
  os << "endmodule\n";
  return os.str();
}

std::string emit_stub_file(const ir::FunctionDecl& fn,
                           const ir::DeviceSpec& spec) {
  return print_module(build_stub_ast(fn, spec, ast::Dialect::Verilog));
}

std::string emit_arbiter_file(const ir::DeviceSpec& spec) {
  return print_module(build_arbiter_ast(spec, ast::Dialect::Verilog));
}

}  // namespace splice::codegen::verilog
