#include "codegen/verilog.hpp"

#include "codegen/hdl_builder.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

// Like the VHDL printer, this emitter appends into one pre-reserved
// buffer rather than an std::ostringstream — emission is on the
// per-module hot path and the stream's locale plumbing plus the per-line
// spaces()/ljust() temporaries dominated its profile.  print_module reuses
// a thread-local buffer across calls so only the exact-size result copy
// allocates after warm-up.
namespace splice::codegen::verilog {

namespace {

using ast::CaseArm;
using ast::Expr;
using ast::Module;
using ast::Process;
using ast::Stmt;

void append_indent(std::string& out, unsigned n) { out.append(n, ' '); }

void append_upper(std::string& out, std::string_view s) {
  for (char c : s) {
    out.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A')
                                       : c);
  }
}

void append_vec(std::string& out, unsigned width) {
  if (width <= 1) return;
  out.push_back('[');
  out += std::to_string(width - 1);
  out += ":0] ";
}

void append_expr(std::string& out, const Expr& e) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::SignalRef:
    case K::ConstRef:
    case K::Placeholder:
      out += e.name;
      return;
    case K::StateRef:
      append_upper(out, e.name);
      return;
    case K::BitLit:
      out += e.value != 0 ? "1'b1" : "1'b0";
      return;
    case K::VectorLit:
      out += std::to_string(e.value);
      return;
    case K::ZeroVector:
      out += std::to_string(e.width);
      out += "'d0";
      return;
    case K::Eq:
      append_expr(out, *e.operands[0]);
      out += " == ";
      append_expr(out, *e.operands[1]);
      return;
    case K::And: {
      bool first = true;
      for (const Expr* op : e.operands) {
        if (!first) out += " && ";
        first = false;
        append_expr(out, *op);
      }
      return;
    }
    case K::Not:
      out.push_back('!');
      append_expr(out, *e.operands[0]);
      return;
    case K::AnyBitSet:
      out.push_back('|');
      append_expr(out, *e.operands[0]);
      return;
  }
  throw SpliceError("expression kind not renderable as a Verilog operand");
}

void append_target(std::string& out, std::string_view name, int index) {
  out += name;
  if (index >= 0) {
    out.push_back('[');
    out += std::to_string(index);
    out.push_back(']');
  }
}

/// `blocking` selects "=" (combinational) over "<=" (clocked).
void append_assign(std::string& out, const Stmt& s, bool blocking) {
  const std::size_t start = out.size();
  append_target(out, s.target, s.index);
  if (s.pad != 0) {
    const std::size_t len = out.size() - start;
    if (len < s.pad) out.append(s.pad - len, ' ');
  } else {
    out.push_back(' ');
  }
  out += blocking ? "= " : "<= ";
  append_expr(out, *s.rhs);
  out.push_back(';');
}

void append_stmt(std::string& out, const Stmt& s, unsigned ind,
                 bool blocking);

void append_stmts(std::string& out, ast::StmtList body, unsigned ind,
                  bool blocking) {
  for (const Stmt* s : body) append_stmt(out, *s, ind, blocking);
}

bool all_assigns(ast::StmtList body) {
  for (const Stmt* s : body) {
    if (s->kind != Stmt::Kind::Assign) return false;
  }
  return !body.empty();
}

void append_stmt(std::string& out, const Stmt& s, unsigned ind,
                 bool blocking) {
  switch (s.kind) {
    case Stmt::Kind::Comment:
      for (std::string_view line : s.text) {
        append_indent(out, ind);
        out += "// ";
        out += line;
        out.push_back('\n');
      }
      return;
    case Stmt::Kind::Assign:
      append_indent(out, ind);
      append_assign(out, s, blocking);
      out.push_back('\n');
      return;
    case Stmt::Kind::If: {
      const bool compact = s.then_body.size() == 1 &&
                           s.then_body[0]->kind == Stmt::Kind::Assign &&
                           s.else_body.size() == 1 &&
                           s.else_body[0]->kind == Stmt::Kind::Assign;
      if (compact) {
        // The else keyword is padded to the width of "if (<cond>) " so the
        // two assignments line up column-wise.
        append_indent(out, ind);
        const std::size_t head_start = out.size();
        out += "if (";
        append_expr(out, *s.cond);
        out += ") ";
        const std::size_t head_len = out.size() - head_start;
        append_assign(out, *s.then_body[0], blocking);
        out.push_back('\n');
        append_indent(out, ind);
        out += "else";
        if (head_len > 4) out.append(head_len - 4, ' ');
        append_assign(out, *s.else_body[0], blocking);
        out.push_back('\n');
        return;
      }
      append_indent(out, ind);
      out += "if (";
      append_expr(out, *s.cond);
      out += ") begin\n";
      append_stmts(out, s.then_body, ind + 4, blocking);
      if (!s.else_body.empty()) {
        append_indent(out, ind);
        out += "end else begin\n";
        append_stmts(out, s.else_body, ind + 4, blocking);
      }
      append_indent(out, ind);
      out += "end\n";
      return;
    }
    case Stmt::Kind::Case: {
      append_indent(out, ind);
      out += "case (";
      append_expr(out, *s.selector);
      out += ")\n";
      for (const CaseArm& arm : s.arms) {
        if (!arm.comment.empty()) {
          append_indent(out, ind + 4);
          out += "// ";
          out += arm.comment;
          out.push_back('\n');
        }
        append_indent(out, ind + 4);
        if (arm.label) {
          append_expr(out, *arm.label);
        } else {
          out += "default";
        }
        if (all_assigns(arm.body)) {
          out += ": begin";
          for (const Stmt* a : arm.body) {
            out.push_back(' ');
            append_assign(out, *a, blocking);
          }
          out += " end\n";
        } else {
          out += ": begin\n";
          append_stmts(out, arm.body, ind + 8, blocking);
          append_indent(out, ind + 4);
          out += "end\n";
        }
      }
      append_indent(out, ind);
      out += "endcase\n";
      return;
    }
  }
}

void append_rule(std::string& out) {
  out += "//";
  out.append(60, '-');
}

void append_header_comment(std::string& out, const Module& m) {
  append_rule(out);
  out.push_back('\n');
  for (const auto& line : m.banner) {
    out += "// ";
    out += line;
    out.push_back('\n');
  }
  append_rule(out);
  out += "\n\n";
}

void append_ports(std::string& out, const Module& m) {
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const ast::Port& p = m.ports[i];
    out += "    ";
    out += p.is_input ? "input  wire "
                      : (p.reg ? "output reg  " : "output wire ");
    append_vec(out, p.width);
    out += p.name;
    if (i + 1 < m.ports.size()) out.push_back(',');
    out.push_back('\n');
  }
}

void append_decls(std::string& out, const Module& m) {
  for (const auto& c : m.constants) {
    out += "    localparam ";
    out += c.name;
    out += " = ";
    out += std::to_string(c.value);
    out += ";\n";
  }
  if (m.fsm) {
    for (std::size_t i = 0; i < m.fsm->states.size(); ++i) {
      out += "    localparam ";
      append_upper(out, m.fsm->states[i]);
      out += " = ";
      out += std::to_string(i);
      out += ";\n";
    }
    out += "    reg ";
    append_vec(out, m.fsm->state_width);
    out += "cur_state, next_state;\n";
  }
  for (const auto& s : m.signals) {
    out += "    ";
    out += s.is_reg ? "reg " : "wire ";
    append_vec(out, s.width);
    out += str::join(s.names, ", ");
    out.push_back(';');
    if (!s.purpose.empty()) {
      out += " // ";
      out += s.purpose;
    }
    out.push_back('\n');
  }
}

void append_process(std::string& out, const Process& p) {
  for (const auto& line : p.comment) {
    out += "    // ";
    out += line;
    out.push_back('\n');
  }
  const bool clocked = p.kind == Process::Kind::Clocked;
  if (clocked) {
    out += "    always @(posedge ";
    out += p.clock;
    out += ") begin\n";
  } else {
    out += "    always @(*) begin\n";
  }
  append_stmts(out, p.body, 8, /*blocking=*/!clocked);
  out += "    end\n";
}

void append_instance(std::string& out, const ast::Instance& inst) {
  out += "    ";
  out += inst.module;
  out.push_back(' ');
  out += inst.label;
  out += " (\n";
  for (std::size_t i = 0; i < inst.groups.size(); ++i) {
    out += "        ";
    bool first = true;
    for (const auto& c : inst.groups[i]) {
      if (!first) out += ", ";
      first = false;
      out.push_back('.');
      out += c.port;
      out.push_back('(');
      out += c.signal;
      out.push_back(')');
    }
    if (i + 1 < inst.groups.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "    );\n";
}

void append_cont_assign_group(std::string& out,
                              const ast::ContAssignGroup& g) {
  for (const auto& line : g.comment) {
    out += "    // ";
    out += line;
    out.push_back('\n');
  }
  for (const auto& a : g.assigns) {
    out += "    assign ";
    append_target(out, a.target, a.index);
    out += " = ";
    append_expr(out, *a.rhs);
    out.push_back(';');
    if (!a.trailing_comment.empty()) {
      out += " // ";
      out += a.trailing_comment;
    }
    out.push_back('\n');
  }
}

/// Rough per-node buffer estimate so print_module usually allocates once.
std::size_t estimate_size(const Module& m) {
  std::size_t est = 1024;
  est += m.banner.size() * 80;
  est += m.ports.size() * 64;
  est += m.constants.size() * 48;
  est += m.signals.size() * 96;
  est += m.instances.size() * 512;
  est += m.processes.size() * 1024;
  est += m.cont_assigns.size() * 256;
  if (m.fsm) est += 64 + m.fsm->states.size() * 32;
  return est;
}

}  // namespace

std::string vec(unsigned width) {
  std::string out;
  append_vec(out, width);
  return out;
}

std::string print_module(const Module& m) {
  // Reused across calls: after warm-up the only allocation left is the
  // exact-size copy handed back to the caller.
  thread_local std::string out;
  out.clear();
  const std::size_t est = estimate_size(m);
  if (out.capacity() < est) out.reserve(est);
  append_header_comment(out, m);
  out += "module ";
  out += m.name;
  out += " (\n";
  append_ports(out, m);
  out += ");\n\n";
  const std::size_t decls_start = out.size();
  append_decls(out, m);
  if (out.size() != decls_start) out.push_back('\n');

  // Instance block (if any) and each process are separated by one blank
  // line, matching the historical str::join(items, "\n") layout.
  bool first_item = true;
  auto separate = [&] {
    if (!first_item) out.push_back('\n');
    first_item = false;
  };
  if (!m.instances.empty()) {
    separate();
    for (const auto& inst : m.instances) append_instance(out, inst);
  }
  for (const auto& p : m.processes) {
    separate();
    append_process(out, p);
  }
  if (!m.cont_assigns.empty()) {
    out.push_back('\n');
    for (const auto& g : m.cont_assigns) append_cont_assign_group(out, g);
  }
  out += "endmodule\n";
  return out;
}

std::string emit_stub_file(const ir::FunctionDecl& fn,
                           const ir::DeviceSpec& spec) {
  return print_module(build_stub_ast(fn, spec, ast::Dialect::Verilog));
}

std::string emit_arbiter_file(const ir::DeviceSpec& spec) {
  return print_module(build_arbiter_ast(spec, ast::Dialect::Verilog));
}

}  // namespace splice::codegen::verilog
