#include "codegen/hwgen.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "codegen/hdl_builder.hpp"
#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "support/diagnostics.hpp"

namespace splice::codegen {

namespace {

std::string print_module(const ast::Module& m) {
  return m.dialect == ast::Dialect::Vhdl ? vhdl::print_module(m)
                                         : verilog::print_module(m);
}

}  // namespace

std::string hdl_extension(ir::Hdl hdl) {
  return hdl == ir::Hdl::Vhdl ? ".vhd" : ".v";
}

GeneratedFile render_arbiter_file(const ast::Module& m,
                                  const ir::DeviceSpec& spec) {
  GeneratedFile arbiter;
  arbiter.filename = "user_" + spec.target.device_name +
                     hdl_extension(spec.target.hdl);
  arbiter.content = print_module(m);
  arbiter.purpose = "Bus arbiter for the " + spec.target.device_name +
                    " device that is used to pass information to and from "
                    "each user function";
  return arbiter;
}

GeneratedFile render_stub_file(const ast::Module& m,
                               const ir::FunctionDecl& fn,
                               const ir::DeviceSpec& spec) {
  if (fn.func_id == 0) {
    throw SpliceError("function '" + fn.name +
                      "' has no FUNC_ID; run ir::validate first");
  }
  GeneratedFile f;
  f.filename = "func_" + fn.name + hdl_extension(spec.target.hdl);
  f.content = print_module(m);
  f.purpose = "Implements I/O logic for the " + fn.name + " function";
  return f;
}

std::vector<GeneratedFile> generate_user_logic(const ir::DeviceSpec& spec) {
  const ast::Dialect dialect = spec.target.hdl == ir::Hdl::Vhdl
                                   ? ast::Dialect::Vhdl
                                   : ast::Dialect::Verilog;
  std::vector<GeneratedFile> files;
  files.reserve(spec.functions.size() + 1);
  files.push_back(
      render_arbiter_file(build_arbiter_ast(spec, dialect), spec));
  for (const auto& fn : spec.functions) {
    files.push_back(
        render_stub_file(build_stub_ast(fn, spec, dialect), fn, spec));
  }
  return files;
}

std::string write_file_set(const std::string& device_name,
                           const std::vector<GeneratedFile>& hardware,
                           const std::vector<GeneratedFile>& software,
                           const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path base = fs::path(dir) / device_name;
  std::error_code ec;
  fs::create_directories(base, ec);
  if (ec) {
    throw SpliceError("cannot create output directory " + base.string() +
                      ": " + ec.message());
  }
  auto write = [&](const GeneratedFile& f) {
    const fs::path path = base / f.filename;
    std::ofstream out(path);
    if (!out) throw SpliceError("cannot write " + path.string());
    out << f.content;
    // A full disk or revoked permission often only surfaces when buffered
    // data is flushed, so check again after the write and the close.
    out.close();
    if (!out) {
      throw SpliceError("write failed for " + path.string() +
                        " (disk full or file no longer writable?)");
    }
  };
  for (const auto& f : hardware) write(f);
  for (const auto& f : software) write(f);
  return base.string();
}

}  // namespace splice::codegen
