#include "codegen/hwgen.hpp"

#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "support/diagnostics.hpp"

namespace splice::codegen {

std::string hdl_extension(ir::Hdl hdl) {
  return hdl == ir::Hdl::Vhdl ? ".vhd" : ".v";
}

std::vector<GeneratedFile> generate_user_logic(const ir::DeviceSpec& spec) {
  const bool vhdl = spec.target.hdl == ir::Hdl::Vhdl;
  const std::string ext = hdl_extension(spec.target.hdl);
  std::vector<GeneratedFile> files;

  GeneratedFile arbiter;
  arbiter.filename = "user_" + spec.target.device_name + ext;
  arbiter.content = vhdl ? vhdl::emit_arbiter_file(spec)
                         : verilog::emit_arbiter_file(spec);
  arbiter.purpose = "Bus arbiter for the " + spec.target.device_name +
                    " device that is used to pass information to and from "
                    "each user function";
  files.push_back(std::move(arbiter));

  for (const auto& fn : spec.functions) {
    if (fn.func_id == 0) {
      throw SpliceError("function '" + fn.name +
                        "' has no FUNC_ID; run ir::validate first");
    }
    GeneratedFile f;
    f.filename = "func_" + fn.name + ext;
    f.content = vhdl ? vhdl::emit_stub_file(fn, spec)
                     : verilog::emit_stub_file(fn, spec);
    f.purpose = "Implements I/O logic for the " + fn.name + " function";
    files.push_back(std::move(f));
  }
  return files;
}

}  // namespace splice::codegen
