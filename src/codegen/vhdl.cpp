#include "codegen/vhdl.hpp"

#include <sstream>

#include "codegen/hdl_builder.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

namespace splice::codegen::vhdl {

namespace {

using ast::CaseArm;
using ast::Expr;
using ast::Module;
using ast::Process;
using ast::Stmt;

std::string ljust(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string spaces(unsigned n) { return std::string(n, ' '); }

std::string bit_string(std::uint64_t value, unsigned width) {
  std::string bits;
  for (unsigned i = width; i-- > 0;) {
    bits += ((value >> i) & 1) != 0 ? '1' : '0';
  }
  return "\"" + bits + "\"";
}

std::string render_expr(const Expr& e) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::SignalRef:
    case K::ConstRef:
    case K::StateRef:
    case K::Placeholder:
      return e.name;
    case K::BitLit:
      return e.value != 0 ? "'1'" : "'0'";
    case K::VectorLit:
      return bit_string(e.value, e.width);
    case K::ZeroVector:
      return "(others => '0')";
    case K::Eq:
      return render_expr(e.operands[0]) + " = " + render_expr(e.operands[1]);
    case K::And: {
      std::string out;
      for (const auto& op : e.operands) {
        if (!out.empty()) out += " and ";
        out += render_expr(op);
      }
      return out;
    }
    case K::Not:
      return "not " + render_expr(e.operands[0]);
    case K::AnyBitSet:
      // Only legal as a full assignment right-hand side ("'1' when ...").
      break;
  }
  throw SpliceError("expression kind not renderable as a VHDL operand");
}

std::string render_target(const std::string& name, int index) {
  if (index < 0) return name;
  return name + "(" + std::to_string(index) + ")";
}

/// Right-hand side in assignment position; AnyBitSet becomes the
/// conditional-assignment idiom.
std::string render_rhs(const Expr& e) {
  if (e.kind == Expr::Kind::AnyBitSet) {
    return "'1' when " + render_expr(e.operands[0]) + " /= 0 else '0'";
  }
  return render_expr(e);
}

std::string render_assign(const Stmt& s) {
  return render_target(s.target, s.index) + " <= " + render_rhs(s.rhs) + ";";
}

void print_stmt(std::ostream& os, const Stmt& s, unsigned ind);

void print_stmts(std::ostream& os, const std::vector<Stmt>& body,
                 unsigned ind) {
  for (const auto& s : body) print_stmt(os, s, ind);
}

void print_stmt(std::ostream& os, const Stmt& s, unsigned ind) {
  switch (s.kind) {
    case Stmt::Kind::Comment:
      for (const auto& line : s.text) {
        os << spaces(ind) << "-- " << line << "\n";
      }
      return;
    case Stmt::Kind::Assign:
      os << spaces(ind) << render_assign(s) << "\n";
      return;
    case Stmt::Kind::If:
      os << spaces(ind) << "if (" << render_expr(s.cond) << ") then\n";
      print_stmts(os, s.then_body, ind + 4);
      if (!s.else_body.empty()) {
        os << spaces(ind) << "else\n";
        print_stmts(os, s.else_body, ind + 4);
      }
      os << spaces(ind) << "end if;\n";
      return;
    case Stmt::Kind::Case: {
      os << spaces(ind) << "case (" << render_expr(s.selector) << ") is\n";
      for (const CaseArm& arm : s.arms) {
        if (!arm.comment.empty()) {
          os << spaces(ind + 4) << "-- " << arm.comment << "\n";
        }
        const std::string label =
            arm.label ? render_expr(*arm.label) : std::string("others");
        const bool inline_arm =
            arm.body.size() == 1 && arm.body[0].kind == Stmt::Kind::Assign;
        if (inline_arm) {
          os << spaces(ind + 4) << "when " << label << " => "
             << render_assign(arm.body[0]) << "\n";
        } else {
          os << spaces(ind + 4) << "when " << label << " =>\n";
          print_stmts(os, arm.body, ind + 8);
        }
      }
      os << spaces(ind) << "end case;\n";
      return;
    }
  }
}

std::string header_comment(const Module& m) {
  const std::string rule(62, '-');
  std::ostringstream os;
  os << rule << "\n";
  for (const auto& line : m.banner) os << "-- " << line << "\n";
  os << rule << "\n"
     << "library IEEE;\n"
     << "use IEEE.STD_LOGIC_1164.ALL;\n"
     << "use IEEE.STD_LOGIC_UNSIGNED.ALL;\n\n";
  return os.str();
}

std::string print_ports(const Module& m) {
  std::ostringstream os;
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const ast::Port& p = m.ports[i];
    os << "        " << ljust(p.name, 15) << ": "
       << (p.is_input ? "in  " : "out ") << slv(p.width)
       << (i + 1 < m.ports.size() ? ";" : "") << "\n";
  }
  return os.str();
}

std::string print_components(const Module& m) {
  std::ostringstream os;
  for (const auto& comp : m.components) {
    os << "    component " << comp.module << "\n"
       << "        port (\n";
    for (std::size_t i = 0; i < comp.groups.size(); ++i) {
      const ast::ComponentGroup& g = comp.groups[i];
      os << "            ";
      if (g.names.size() > 1) {
        os << str::join(g.names, ", ") << " : "
           << (g.is_input ? "in" : "out") << " " << slv(g.width);
      } else {
        os << ljust(g.names.front(), 9) << ": "
           << (g.is_input ? "in  " : "out ") << slv(g.width);
      }
      os << (i + 1 < comp.groups.size() ? ";" : "") << "\n";
    }
    os << "        );\n"
       << "    end component;\n";
  }
  return os.str();
}

std::string print_instance(const ast::Instance& inst) {
  std::ostringstream os;
  os << "    " << inst.label << ": " << inst.module << " port map (\n";
  for (std::size_t i = 0; i < inst.groups.size(); ++i) {
    std::vector<std::string> conns;
    for (const auto& c : inst.groups[i]) {
      conns.push_back(c.port + " => " + c.signal);
    }
    os << "        " << str::join(conns, ", ")
       << (i + 1 < inst.groups.size() ? "," : "") << "\n";
  }
  os << "    );\n";
  return os.str();
}

}  // namespace

std::string slv(unsigned width) {
  if (width <= 1) return "std_logic";
  return "std_logic_vector(0 to " + std::to_string(width - 1) + ")";
}

std::string print_constants(const Module& m) {
  std::ostringstream os;
  if (!m.const_comment.empty()) {
    os << "    -- " << m.const_comment << "\n";
  }
  for (const auto& c : m.constants) {
    if (c.width != 0) {
      os << "    constant " << c.name << " : " << slv(c.width)
         << " := " << bit_string(c.value, c.width) << ";\n";
    } else {
      os << "    constant " << c.name << " : integer := " << c.value
         << ";\n";
    }
  }
  return os.str();
}

std::string print_signal_decls(const Module& m) {
  std::ostringstream os;
  if (m.fsm) {
    if (!m.fsm->comment.empty()) os << "    -- " << m.fsm->comment << "\n";
    os << "    type state_type is (" << str::join(m.fsm->states, ", ")
       << ");\n"
       << "    signal cur_state, next_state : state_type;\n";
  }
  if (!m.signal_comment.empty()) {
    os << "    -- " << m.signal_comment << "\n";
  }
  for (const auto& s : m.signals) {
    os << "    signal " << str::join(s.names, ", ") << " : " << slv(s.width)
       << ";";
    if (!s.purpose.empty()) os << " -- " << s.purpose;
    os << "\n";
  }
  return os.str();
}

std::string print_process(const Process& p) {
  std::ostringstream os;
  for (const auto& line : p.comment) os << "    -- " << line << "\n";
  const bool clocked = p.kind == Process::Kind::Clocked;
  os << "    " << p.label << ": process ("
     << (clocked ? p.clock : str::join(p.sensitivity, ", ")) << ")\n"
     << "    begin\n";
  if (clocked) {
    os << "        if (" << p.clock << " = '1' and " << p.clock
       << "'EVENT) then\n";
    print_stmts(os, p.body, 12);
    os << "        end if;\n";
  } else {
    print_stmts(os, p.body, 8);
  }
  os << "    end process;\n";
  return os.str();
}

std::string print_cont_assign_group(const ast::ContAssignGroup& g) {
  std::ostringstream os;
  for (const auto& line : g.comment) os << "    -- " << line << "\n";
  for (const auto& a : g.assigns) {
    os << "    " << render_target(a.target, a.index) << " <= "
       << render_rhs(a.rhs) << ";";
    if (!a.trailing_comment.empty()) os << " -- " << a.trailing_comment;
    os << "\n";
  }
  return os.str();
}

std::string print_module(const Module& m) {
  std::ostringstream os;
  os << header_comment(m);
  os << "entity " << m.name << " is\n"
     << "    port (\n"
     << print_ports(m) << "    );\n"
     << "end " << m.name << ";\n\n"
     << "architecture " << m.arch_name << " of " << m.name << " is\n"
     << print_constants(m);
  if (!m.components.empty()) os << print_components(m) << "\n";
  os << print_signal_decls(m) << "begin\n";

  std::vector<std::string> items;
  if (!m.instances.empty()) {
    std::string block;
    for (const auto& inst : m.instances) block += print_instance(inst);
    items.push_back(std::move(block));
  }
  for (const auto& p : m.processes) items.push_back(print_process(p));
  os << str::join(items, "\n");
  if (!m.cont_assigns.empty()) {
    os << "\n";
    for (const auto& g : m.cont_assigns) os << print_cont_assign_group(g);
  }
  os << "end " << m.arch_name << ";\n";
  return os.str();
}

std::string emit_stub_file(const ir::FunctionDecl& fn,
                           const ir::DeviceSpec& spec) {
  return print_module(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string emit_arbiter_file(const ir::DeviceSpec& spec) {
  return print_module(build_arbiter_ast(spec, ast::Dialect::Vhdl));
}

// --- Figure 7.1 macro snippet bodies --------------------------------------
// Each snippet is a slice of the stub/arbiter AST; interface templates are
// written in VHDL regardless of %target_hdl, so the dialect is fixed here.

std::string func_consts(const ir::FunctionDecl& fn,
                        const ir::DeviceSpec& spec) {
  return print_constants(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string func_signals(const ir::FunctionDecl& fn,
                         const ir::DeviceSpec& spec) {
  return print_signal_decls(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string func_fsm(const ir::FunctionDecl& fn, const ir::DeviceSpec& spec) {
  return print_process(
      build_stub_ast(fn, spec, ast::Dialect::Vhdl).processes.at(0));
}

std::string func_stub_process(const ir::FunctionDecl& fn,
                              const ir::DeviceSpec& spec) {
  return print_process(
      build_stub_ast(fn, spec, ast::Dialect::Vhdl).processes.at(1));
}

std::string data_out_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(0));
}

std::string data_out_valid_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(1));
}

std::string io_done_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(2));
}

std::string calc_done_encode(const ir::DeviceSpec& spec) {
  return print_cont_assign_group(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).cont_assigns.at(0));
}

}  // namespace splice::codegen::vhdl
