#include "codegen/vhdl.hpp"

#include "codegen/hdl_builder.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"

// Emission is a hot path (every module prints once per compile, twice per
// template-macro expansion), so this printer appends into one pre-reserved
// buffer instead of streaming through std::ostringstream: no locale
// machinery, no per-line temporary indent strings, one growing buffer.
// print_module reuses a thread-local buffer across calls — after the first
// module on a thread, printing allocates only the exact-size result copy.
namespace splice::codegen::vhdl {

namespace {

using ast::CaseArm;
using ast::Expr;
using ast::Module;
using ast::Process;
using ast::Stmt;

void append_ljust(std::string& out, std::string_view s, std::size_t width) {
  out += s;
  if (s.size() < width) out.append(width - s.size(), ' ');
}

void append_indent(std::string& out, unsigned n) { out.append(n, ' '); }

void append_slv(std::string& out, unsigned width) {
  if (width <= 1) {
    out += "std_logic";
    return;
  }
  out += "std_logic_vector(0 to ";
  out += std::to_string(width - 1);
  out.push_back(')');
}

void append_bit_string(std::string& out, std::uint64_t value,
                       unsigned width) {
  out.push_back('"');
  for (unsigned i = width; i-- > 0;) {
    out.push_back(((value >> i) & 1) != 0 ? '1' : '0');
  }
  out.push_back('"');
}

void append_expr(std::string& out, const Expr& e) {
  using K = Expr::Kind;
  switch (e.kind) {
    case K::SignalRef:
    case K::ConstRef:
    case K::StateRef:
    case K::Placeholder:
      out += e.name;
      return;
    case K::BitLit:
      out += e.value != 0 ? "'1'" : "'0'";
      return;
    case K::VectorLit:
      append_bit_string(out, e.value, e.width);
      return;
    case K::ZeroVector:
      out += "(others => '0')";
      return;
    case K::Eq:
      append_expr(out, *e.operands[0]);
      out += " = ";
      append_expr(out, *e.operands[1]);
      return;
    case K::And: {
      bool first = true;
      for (const Expr* op : e.operands) {
        if (!first) out += " and ";
        first = false;
        append_expr(out, *op);
      }
      return;
    }
    case K::Not:
      out += "not ";
      append_expr(out, *e.operands[0]);
      return;
    case K::AnyBitSet:
      // Only legal as a full assignment right-hand side ("'1' when ...").
      break;
  }
  throw SpliceError("expression kind not renderable as a VHDL operand");
}

void append_target(std::string& out, std::string_view name, int index) {
  out += name;
  if (index >= 0) {
    out.push_back('(');
    out += std::to_string(index);
    out.push_back(')');
  }
}

/// Right-hand side in assignment position; AnyBitSet becomes the
/// conditional-assignment idiom.
void append_rhs(std::string& out, const Expr& e) {
  if (e.kind == Expr::Kind::AnyBitSet) {
    out += "'1' when ";
    append_expr(out, *e.operands[0]);
    out += " /= 0 else '0'";
    return;
  }
  append_expr(out, e);
}

void append_assign(std::string& out, const Stmt& s) {
  append_target(out, s.target, s.index);
  out += " <= ";
  append_rhs(out, *s.rhs);
  out.push_back(';');
}

void append_stmt(std::string& out, const Stmt& s, unsigned ind);

void append_stmts(std::string& out, ast::StmtList body, unsigned ind) {
  for (const Stmt* s : body) append_stmt(out, *s, ind);
}

void append_stmt(std::string& out, const Stmt& s, unsigned ind) {
  switch (s.kind) {
    case Stmt::Kind::Comment:
      for (std::string_view line : s.text) {
        append_indent(out, ind);
        out += "-- ";
        out += line;
        out.push_back('\n');
      }
      return;
    case Stmt::Kind::Assign:
      append_indent(out, ind);
      append_assign(out, s);
      out.push_back('\n');
      return;
    case Stmt::Kind::If:
      append_indent(out, ind);
      out += "if (";
      append_expr(out, *s.cond);
      out += ") then\n";
      append_stmts(out, s.then_body, ind + 4);
      if (!s.else_body.empty()) {
        append_indent(out, ind);
        out += "else\n";
        append_stmts(out, s.else_body, ind + 4);
      }
      append_indent(out, ind);
      out += "end if;\n";
      return;
    case Stmt::Kind::Case: {
      append_indent(out, ind);
      out += "case (";
      append_expr(out, *s.selector);
      out += ") is\n";
      for (const CaseArm& arm : s.arms) {
        if (!arm.comment.empty()) {
          append_indent(out, ind + 4);
          out += "-- ";
          out += arm.comment;
          out.push_back('\n');
        }
        append_indent(out, ind + 4);
        out += "when ";
        if (arm.label) {
          append_expr(out, *arm.label);
        } else {
          out += "others";
        }
        const bool inline_arm =
            arm.body.size() == 1 && arm.body[0]->kind == Stmt::Kind::Assign;
        if (inline_arm) {
          out += " => ";
          append_assign(out, *arm.body[0]);
          out.push_back('\n');
        } else {
          out += " =>\n";
          append_stmts(out, arm.body, ind + 8);
        }
      }
      append_indent(out, ind);
      out += "end case;\n";
      return;
    }
  }
}

void append_header_comment(std::string& out, const Module& m) {
  out.append(62, '-');
  out.push_back('\n');
  for (const auto& line : m.banner) {
    out += "-- ";
    out += line;
    out.push_back('\n');
  }
  out.append(62, '-');
  out += "\n"
         "library IEEE;\n"
         "use IEEE.STD_LOGIC_1164.ALL;\n"
         "use IEEE.STD_LOGIC_UNSIGNED.ALL;\n\n";
}

void append_ports(std::string& out, const Module& m) {
  for (std::size_t i = 0; i < m.ports.size(); ++i) {
    const ast::Port& p = m.ports[i];
    out += "        ";
    append_ljust(out, p.name, 15);
    out += ": ";
    out += p.is_input ? "in  " : "out ";
    append_slv(out, p.width);
    if (i + 1 < m.ports.size()) out.push_back(';');
    out.push_back('\n');
  }
}

void append_components(std::string& out, const Module& m) {
  for (const auto& comp : m.components) {
    out += "    component ";
    out += comp.module;
    out += "\n        port (\n";
    for (std::size_t i = 0; i < comp.groups.size(); ++i) {
      const ast::ComponentGroup& g = comp.groups[i];
      out += "            ";
      if (g.names.size() > 1) {
        out += str::join(g.names, ", ");
        out += " : ";
        out += g.is_input ? "in" : "out";
        out.push_back(' ');
        append_slv(out, g.width);
      } else {
        append_ljust(out, g.names.front(), 9);
        out += ": ";
        out += g.is_input ? "in  " : "out ";
        append_slv(out, g.width);
      }
      if (i + 1 < comp.groups.size()) out.push_back(';');
      out.push_back('\n');
    }
    out += "        );\n"
           "    end component;\n";
  }
}

void append_instance(std::string& out, const ast::Instance& inst) {
  out += "    ";
  out += inst.label;
  out += ": ";
  out += inst.module;
  out += " port map (\n";
  for (std::size_t i = 0; i < inst.groups.size(); ++i) {
    out += "        ";
    bool first = true;
    for (const auto& c : inst.groups[i]) {
      if (!first) out += ", ";
      first = false;
      out += c.port;
      out += " => ";
      out += c.signal;
    }
    if (i + 1 < inst.groups.size()) out.push_back(',');
    out.push_back('\n');
  }
  out += "    );\n";
}

void append_constants(std::string& out, const Module& m) {
  if (!m.const_comment.empty()) {
    out += "    -- ";
    out += m.const_comment;
    out.push_back('\n');
  }
  for (const auto& c : m.constants) {
    if (c.width != 0) {
      out += "    constant ";
      out += c.name;
      out += " : ";
      append_slv(out, c.width);
      out += " := ";
      append_bit_string(out, c.value, c.width);
      out += ";\n";
    } else {
      out += "    constant ";
      out += c.name;
      out += " : integer := ";
      out += std::to_string(c.value);
      out += ";\n";
    }
  }
}

void append_signal_decls(std::string& out, const Module& m) {
  if (m.fsm) {
    if (!m.fsm->comment.empty()) {
      out += "    -- ";
      out += m.fsm->comment;
      out.push_back('\n');
    }
    out += "    type state_type is (";
    out += str::join(m.fsm->states, ", ");
    out += ");\n"
           "    signal cur_state, next_state : state_type;\n";
  }
  if (!m.signal_comment.empty()) {
    out += "    -- ";
    out += m.signal_comment;
    out.push_back('\n');
  }
  for (const auto& s : m.signals) {
    out += "    signal ";
    out += str::join(s.names, ", ");
    out += " : ";
    append_slv(out, s.width);
    out.push_back(';');
    if (!s.purpose.empty()) {
      out += " -- ";
      out += s.purpose;
    }
    out.push_back('\n');
  }
}

void append_process(std::string& out, const Process& p) {
  for (const auto& line : p.comment) {
    out += "    -- ";
    out += line;
    out.push_back('\n');
  }
  const bool clocked = p.kind == Process::Kind::Clocked;
  out += "    ";
  out += p.label;
  out += ": process (";
  out += clocked ? p.clock : str::join(p.sensitivity, ", ");
  out += ")\n"
         "    begin\n";
  if (clocked) {
    out += "        if (";
    out += p.clock;
    out += " = '1' and ";
    out += p.clock;
    out += "'EVENT) then\n";
    append_stmts(out, p.body, 12);
    out += "        end if;\n";
  } else {
    append_stmts(out, p.body, 8);
  }
  out += "    end process;\n";
}

void append_cont_assign_group(std::string& out,
                              const ast::ContAssignGroup& g) {
  for (const auto& line : g.comment) {
    out += "    -- ";
    out += line;
    out.push_back('\n');
  }
  for (const auto& a : g.assigns) {
    out += "    ";
    append_target(out, a.target, a.index);
    out += " <= ";
    append_rhs(out, *a.rhs);
    out.push_back(';');
    if (!a.trailing_comment.empty()) {
      out += " -- ";
      out += a.trailing_comment;
    }
    out.push_back('\n');
  }
}

/// Rough per-node buffer estimate so print_module usually allocates once.
std::size_t estimate_size(const Module& m) {
  std::size_t est = 1024;
  est += m.banner.size() * 80;
  est += m.ports.size() * 64;
  est += m.constants.size() * 64;
  est += m.signals.size() * 96;
  est += m.components.size() * 512;
  est += m.instances.size() * 512;
  est += m.processes.size() * 1024;
  est += m.cont_assigns.size() * 256;
  if (m.fsm) est += 128 + m.fsm->states.size() * 16;
  return est;
}

}  // namespace

std::string slv(unsigned width) {
  std::string out;
  append_slv(out, width);
  return out;
}

std::string print_constants(const Module& m) {
  std::string out;
  out.reserve(64 + m.constants.size() * 64);
  append_constants(out, m);
  return out;
}

std::string print_signal_decls(const Module& m) {
  std::string out;
  out.reserve(128 + m.signals.size() * 96);
  append_signal_decls(out, m);
  return out;
}

std::string print_process(const Process& p) {
  std::string out;
  out.reserve(1024);
  append_process(out, p);
  return out;
}

std::string print_cont_assign_group(const ast::ContAssignGroup& g) {
  std::string out;
  out.reserve(128 + g.assigns.size() * 64);
  append_cont_assign_group(out, g);
  return out;
}

std::string print_module(const Module& m) {
  // Reused across calls: after warm-up the only allocation left is the
  // exact-size copy handed back to the caller.
  thread_local std::string out;
  out.clear();
  const std::size_t est = estimate_size(m);
  if (out.capacity() < est) out.reserve(est);
  append_header_comment(out, m);
  out += "entity ";
  out += m.name;
  out += " is\n"
         "    port (\n";
  append_ports(out, m);
  out += "    );\n"
         "end ";
  out += m.name;
  out += ";\n\n"
         "architecture ";
  out += m.arch_name;
  out += " of ";
  out += m.name;
  out += " is\n";
  append_constants(out, m);
  if (!m.components.empty()) {
    append_components(out, m);
    out.push_back('\n');
  }
  append_signal_decls(out, m);
  out += "begin\n";

  // Instance block (if any) and each process are separated by one blank
  // line, matching the historical str::join(items, "\n") layout.
  bool first_item = true;
  auto separate = [&] {
    if (!first_item) out.push_back('\n');
    first_item = false;
  };
  if (!m.instances.empty()) {
    separate();
    for (const auto& inst : m.instances) append_instance(out, inst);
  }
  for (const auto& p : m.processes) {
    separate();
    append_process(out, p);
  }
  if (!m.cont_assigns.empty()) {
    out.push_back('\n');
    for (const auto& g : m.cont_assigns) append_cont_assign_group(out, g);
  }
  out += "end ";
  out += m.arch_name;
  out += ";\n";
  return out;
}

std::string emit_stub_file(const ir::FunctionDecl& fn,
                           const ir::DeviceSpec& spec) {
  return print_module(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string emit_arbiter_file(const ir::DeviceSpec& spec) {
  return print_module(build_arbiter_ast(spec, ast::Dialect::Vhdl));
}

// --- Figure 7.1 macro snippet bodies --------------------------------------
// Each snippet is a slice of the stub/arbiter AST; interface templates are
// written in VHDL regardless of %target_hdl, so the dialect is fixed here.

std::string func_consts(const ir::FunctionDecl& fn,
                        const ir::DeviceSpec& spec) {
  return print_constants(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string func_signals(const ir::FunctionDecl& fn,
                         const ir::DeviceSpec& spec) {
  return print_signal_decls(build_stub_ast(fn, spec, ast::Dialect::Vhdl));
}

std::string func_fsm(const ir::FunctionDecl& fn, const ir::DeviceSpec& spec) {
  return print_process(
      build_stub_ast(fn, spec, ast::Dialect::Vhdl).processes.at(0));
}

std::string func_stub_process(const ir::FunctionDecl& fn,
                              const ir::DeviceSpec& spec) {
  return print_process(
      build_stub_ast(fn, spec, ast::Dialect::Vhdl).processes.at(1));
}

std::string data_out_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(0));
}

std::string data_out_valid_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(1));
}

std::string io_done_mux(const ir::DeviceSpec& spec) {
  return print_process(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).processes.at(2));
}

std::string calc_done_encode(const ir::DeviceSpec& spec) {
  return print_cont_assign_group(
      build_arbiter_ast(spec, ast::Dialect::Vhdl).cont_assigns.at(0));
}

}  // namespace splice::codegen::vhdl
