// Language-neutral RTL document model — the layer between elaboration
// (StubModel / the device spec) and text emission.  The builder
// (hdl_builder.hpp) constructs one Module per generated hardware file; the
// VHDL and Verilog writers are pretty-printers over this model and no
// longer derive any structure themselves; the resource estimator counts
// hardware from it; hdl_lint.hpp verifies it before any file is written.
//
// The node types are syntax-free: a Port knows its direction and width,
// not whether it prints as "in  std_logic" or "input  wire".  The builder
// is parameterized by Dialect because the two historical outputs genuinely
// differ in idiom (guard operand order, comment text, which skeleton
// statements appear) — those choices live in one place, the builder, while
// the printers own nothing but syntax.
//
// Storage model: the expression/statement tree is immutable and arena-
// allocated.  Every Expr, Stmt and CaseArm is created through an
// AstContext, which hash-conses nodes (structural interning): building the
// same guard for ten case arms, or the same per-state skeleton for N
// instances, yields one shared node.  Node identity therefore doubles as
// structural equality, names are interned `string_view`s into the
// context's arena, and destroying the context frees the whole tree at
// once.  Module-level declarations (ports, constants, signal decls,
// instances, processes) stay plain value structs — they are small, per-
// module, and tests mutate them freely — but each Module keeps its
// context alive through a shared_ptr so the tree it references cannot
// dangle.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/arena.hpp"

namespace splice::codegen::ast {

enum class Dialect { Vhdl, Verilog };

struct Expr;
struct Stmt;
struct CaseArm;

/// Child lists are immutable pointer spans into the owning context's arena.
using ExprList = std::span<const Expr* const>;
using StmtList = std::span<const Stmt* const>;
using CaseArmList = std::span<const CaseArm>;

/// Expressions in conditions, assignment right-hand sides and case labels.
/// Immutable once created; construct via AstContext.
struct Expr {
  enum class Kind : std::uint8_t {
    SignalRef,    ///< a declared signal or port
    ConstRef,     ///< a declared constant / localparam
    StateRef,     ///< an FSM state name
    Placeholder,  ///< user-to-complete condition; printed verbatim
    BitLit,       ///< '0' / '1'  (value, width 1)
    VectorLit,    ///< literal of `width` bits with `value`
    ZeroVector,   ///< all-zero vector of `width` bits
    Eq,           ///< operands[0] == operands[1]
    And,          ///< n-ary conjunction over operands
    Not,          ///< !operands[0]
    AnyBitSet,    ///< reduction-OR of operands[0]
  };

  Kind kind = Kind::SignalRef;
  std::string_view name;     ///< SignalRef/ConstRef/StateRef/Placeholder
  std::uint64_t value = 0;   ///< BitLit/VectorLit
  unsigned width = 0;        ///< VectorLit/ZeroVector
  ExprList operands;
};

/// One arm of a case statement; a null label means the default/others arm.
struct CaseArm {
  const Expr* label = nullptr;
  std::string_view comment;  ///< printed on its own line before the arm
  StmtList body;
};

/// Sequential statement inside a process body.  Immutable once created;
/// construct via AstContext.
struct Stmt {
  enum class Kind : std::uint8_t { Comment, Assign, If, Case };

  Kind kind = Kind::Comment;

  // Comment
  std::span<const std::string_view> text;

  // Assign
  std::string_view target;
  int index = -1;    ///< >= 0: single-bit element of a vector target
  unsigned pad = 0;  ///< column to left-justify the target to (0 = none)
  const Expr* rhs = nullptr;

  // If
  const Expr* cond = nullptr;
  StmtList then_body;
  StmtList else_body;

  // Case
  const Expr* selector = nullptr;
  CaseArmList arms;
};

static_assert(std::is_trivially_destructible_v<Expr> &&
                  std::is_trivially_destructible_v<Stmt> &&
                  std::is_trivially_destructible_v<CaseArm>,
              "tree nodes live in the context arena, which never runs "
              "destructors");

/// Node factory and owner for one module's expression/statement tree.
///
/// Every factory hash-conses: a structurally identical node returns the
/// previously created pointer (counted in stats().cse_hits), which is what
/// lets N case arms or N instances share one subtree and lets the lint
/// pass memoize by node identity.  A thin peephole runs inside the
/// factories — only folds whose printed output is byte-identical to the
/// unfolded tree are applied (And-flattening, single-operand And collapse,
/// double negation, constant Not/Eq over bit literals that generated code
/// never prints anyway); anything affecting emitted bytes is out of
/// bounds.  Not thread-safe: one context per building thread.
class AstContext {
 public:
  struct Stats {
    std::uint64_t expr_nodes = 0;  ///< unique Expr nodes allocated
    std::uint64_t stmt_nodes = 0;  ///< unique Stmt nodes allocated
    std::uint64_t cse_hits = 0;    ///< factory calls answered by interning
    std::uint64_t folds = 0;       ///< peephole rewrites applied
  };

  AstContext() = default;
  AstContext(const AstContext&) = delete;
  AstContext& operator=(const AstContext&) = delete;

  /// Intern a string: the returned view lives as long as the context.
  std::string_view str(std::string_view s);
  /// Arena-resident concatenation (interned, so repeated concatenations of
  /// the same pieces share storage).
  std::string_view concat(std::initializer_list<std::string_view> parts);

  // --- expressions --------------------------------------------------------
  const Expr* signal(std::string_view name);
  const Expr* constant(std::string_view name);
  const Expr* state(std::string_view name);
  const Expr* placeholder(std::string_view name);
  const Expr* bit(unsigned value);
  const Expr* vec_lit(std::uint64_t value, unsigned width);
  const Expr* zeros(unsigned width);
  const Expr* eq(const Expr* a, const Expr* b);
  const Expr* all_of(std::initializer_list<const Expr*> operands);
  const Expr* all_of(std::span<const Expr* const> operands);
  const Expr* not_of(const Expr* a);
  const Expr* any_bit(const Expr* a);

  // --- statements ---------------------------------------------------------
  const Stmt* comment(std::initializer_list<std::string_view> lines);
  const Stmt* assign(std::string_view target, const Expr* rhs,
                     unsigned pad = 0, int index = -1);
  const Stmt* if_then(const Expr* cond, StmtList then_body,
                      StmtList else_body = {});
  const Stmt* case_of(const Expr* selector, CaseArmList arms);

  // --- list builders (copy into the arena; return stable spans) -----------
  StmtList stmts(std::initializer_list<const Stmt*> body);
  StmtList stmts(const std::vector<const Stmt*>& body);
  CaseArm arm(const Expr* label, std::string_view comment, StmtList body);
  CaseArmList arms(const std::vector<CaseArm>& list);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t bytes_used() const { return arena_.bytes_used(); }

 private:
  /// Open-addressed intern table: {hash, value} slots, linear probing,
  /// power-of-two capacity.  A null value marks an empty slot.  The
  /// node-based std::unordered_map buckets dominated the build profile
  /// (one heap node per entry plus a vector per hash); this flat layout
  /// allocates only when the slot array doubles.
  template <typename T>
  struct Table {
    struct Slot {
      std::uint64_t hash = 0;
      T value{};
    };
    std::vector<Slot> slots;
    std::size_t count = 0;
  };

  const Expr* intern_expr(const Expr& candidate);
  const Stmt* intern_stmt(const Stmt& candidate);
  const Expr* named(Expr::Kind kind, std::string_view name);

  support::Arena arena_;
  Table<std::string_view> strings_;  ///< interned names (empty: null data)
  Table<const Expr*> exprs_;
  Table<const Stmt*> stmts_;
  Stats stats_;
};

struct Port {
  std::string name;
  bool is_input = true;
  unsigned width = 1;
  bool reg = false;          ///< driven from a process (Verilog: output reg)
  bool user_driven = false;  ///< handled by user-completed logic; the lint
                             ///< pass does not require the skeleton to
                             ///< drive/consume it
};

/// Named constant; width 0 means a plain integer (guidance values such as
/// the <param>_max_words constants).
struct Constant {
  std::string name;
  unsigned width = 0;
  std::uint64_t value = 0;
};

struct SignalDecl {
  std::vector<std::string> names;  ///< one decl may introduce several
  unsigned width = 1;
  std::string purpose;       ///< trailing comment, empty for none
  bool is_reg = false;       ///< process-driven (Verilog: reg, not wire)
  bool user_driven = false;  ///< reserved for user logic; lint-exempt
};

/// Comparator implied by the generated skeleton (tracking-register bound
/// checks, §5.3.1).  Not printable structure — the stub leaves the actual
/// comparison to the user — but the resource estimator counts it.
struct ComparatorNote {
  std::string name;
  unsigned width = 0;
};

/// The SMB state machine (§5.3.2).  states[0] is the reset state; the
/// declaration of cur_state/next_state belongs to this node.
struct Fsm {
  std::vector<std::string> states;
  /// States the emitted skeleton deliberately leaves without an incoming
  /// transition because the user's completed logic is expected to jump
  /// there (the '&' read-back chain: every OUT state after the first
  /// returns to reset until the user retargets it, §10.2).  Reachability
  /// analysis seeds from these as well as from states[0].
  std::vector<std::string> user_entry_states;
  unsigned state_width = 1;  ///< encoded state-register width
  std::string comment;       ///< declaration-section comment, may be empty
};

/// One port-to-signal binding of an instantiation.
struct Connection {
  std::string port;
  std::string signal;
  bool is_output = false;  ///< the instance drives `signal`
};

struct Instance {
  std::string module;  ///< e.g. "func_scale"
  std::string label;   ///< e.g. "scale_0_inst"
  /// Connections pre-grouped into printed lines.
  std::vector<std::vector<Connection>> groups;
};

/// VHDL component declaration, ports pre-grouped into printed lines.
struct ComponentGroup {
  std::vector<std::string> names;
  bool is_input = true;
  unsigned width = 1;
};

struct ComponentDecl {
  std::string module;
  std::vector<ComponentGroup> groups;
};

struct Process {
  enum class Kind { Clocked, Combinational };

  Kind kind = Kind::Combinational;
  std::string label;  ///< VHDL process label
  std::vector<std::string> comment;
  std::string clock = "CLK";             ///< Clocked only
  std::vector<std::string> sensitivity;  ///< Combinational only
  StmtList body;
};

/// Concurrent / continuous assignment.
struct ContAssign {
  std::string target;
  int index = -1;
  const Expr* rhs = nullptr;
  std::string trailing_comment;
};

struct ContAssignGroup {
  std::vector<std::string> comment;
  std::vector<ContAssign> assigns;
};

/// One generated hardware file: entity/module, declarations, body.
struct Module {
  Dialect dialect = Dialect::Vhdl;
  std::string name;       ///< "func_<fn>" or "user_<device>"
  std::string arch_name;  ///< VHDL architecture name
  std::vector<std::string> banner;  ///< header comment lines

  /// Keeps the expression/statement tree (and every interned name) alive;
  /// copying a Module shares the immutable tree instead of cloning it.
  std::shared_ptr<AstContext> ctx;

  std::vector<Port> ports;
  std::string const_comment;
  std::vector<Constant> constants;
  std::optional<Fsm> fsm;
  std::string signal_comment;
  std::vector<SignalDecl> signals;
  std::vector<ComparatorNote> comparators;
  std::vector<ComponentDecl> components;

  std::vector<Instance> instances;
  std::vector<Process> processes;
  std::vector<ContAssignGroup> cont_assigns;

  [[nodiscard]] const Port* find_port(std::string_view name) const;
};

}  // namespace splice::codegen::ast
