// Language-neutral RTL document model — the layer between elaboration
// (StubModel / the device spec) and text emission.  The builder
// (hdl_builder.hpp) constructs one Module per generated hardware file; the
// VHDL and Verilog writers are pretty-printers over this model and no
// longer derive any structure themselves; the resource estimator counts
// hardware from it; hdl_lint.hpp verifies it before any file is written.
//
// The node types are syntax-free: a Port knows its direction and width,
// not whether it prints as "in  std_logic" or "input  wire".  The builder
// is parameterized by Dialect because the two historical outputs genuinely
// differ in idiom (guard operand order, comment text, which skeleton
// statements appear) — those choices live in one place, the builder, while
// the printers own nothing but syntax.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace splice::codegen::ast {

enum class Dialect { Vhdl, Verilog };

/// Expressions in conditions, assignment right-hand sides and case labels.
struct Expr {
  enum class Kind {
    SignalRef,    ///< a declared signal or port
    ConstRef,     ///< a declared constant / localparam
    StateRef,     ///< an FSM state name
    Placeholder,  ///< user-to-complete condition; printed verbatim
    BitLit,       ///< '0' / '1'  (value, width 1)
    VectorLit,    ///< literal of `width` bits with `value`
    ZeroVector,   ///< all-zero vector of `width` bits
    Eq,           ///< operands[0] == operands[1]
    And,          ///< n-ary conjunction over operands
    Not,          ///< !operands[0]
    AnyBitSet,    ///< reduction-OR of operands[0]
  };

  Kind kind = Kind::SignalRef;
  std::string name;          ///< SignalRef/ConstRef/StateRef/Placeholder
  std::uint64_t value = 0;   ///< BitLit/VectorLit
  unsigned width = 0;        ///< VectorLit/ZeroVector
  std::vector<Expr> operands;

  static Expr signal(std::string name);
  static Expr constant(std::string name);
  static Expr state(std::string name);
  static Expr placeholder(std::string name);
  static Expr bit(unsigned value);
  static Expr vec_lit(std::uint64_t value, unsigned width);
  static Expr zeros(unsigned width);
  static Expr eq(Expr a, Expr b);
  static Expr all_of(std::vector<Expr> operands);
  static Expr not_of(Expr a);
  static Expr any_bit(Expr a);
};

struct Stmt;

/// One arm of a case statement; no label means the default/others arm.
struct CaseArm {
  std::optional<Expr> label;
  std::string comment;  ///< printed on its own line before the arm
  std::vector<Stmt> body;
};

/// Sequential statement inside a process body.
struct Stmt {
  enum class Kind { Comment, Assign, If, Case };

  Kind kind = Kind::Comment;

  // Comment
  std::vector<std::string> text;

  // Assign
  std::string target;
  int index = -1;    ///< >= 0: single-bit element of a vector target
  unsigned pad = 0;  ///< column to left-justify the target to (0 = none)
  Expr rhs;

  // If
  Expr cond;
  std::vector<Stmt> then_body;
  std::vector<Stmt> else_body;

  // Case
  Expr selector;
  std::vector<CaseArm> arms;

  static Stmt comment(std::vector<std::string> lines);
  static Stmt assign(std::string target, Expr rhs, unsigned pad = 0);
  static Stmt if_then(Expr cond, std::vector<Stmt> then_body,
                      std::vector<Stmt> else_body = {});
  static Stmt case_of(Expr selector, std::vector<CaseArm> arms);
};

struct Port {
  std::string name;
  bool is_input = true;
  unsigned width = 1;
  bool reg = false;          ///< driven from a process (Verilog: output reg)
  bool user_driven = false;  ///< handled by user-completed logic; the lint
                             ///< pass does not require the skeleton to
                             ///< drive/consume it
};

/// Named constant; width 0 means a plain integer (guidance values such as
/// the <param>_max_words constants).
struct Constant {
  std::string name;
  unsigned width = 0;
  std::uint64_t value = 0;
};

struct SignalDecl {
  std::vector<std::string> names;  ///< one decl may introduce several
  unsigned width = 1;
  std::string purpose;       ///< trailing comment, empty for none
  bool is_reg = false;       ///< process-driven (Verilog: reg, not wire)
  bool user_driven = false;  ///< reserved for user logic; lint-exempt
};

/// Comparator implied by the generated skeleton (tracking-register bound
/// checks, §5.3.1).  Not printable structure — the stub leaves the actual
/// comparison to the user — but the resource estimator counts it.
struct ComparatorNote {
  std::string name;
  unsigned width = 0;
};

/// The SMB state machine (§5.3.2).  states[0] is the reset state; the
/// declaration of cur_state/next_state belongs to this node.
struct Fsm {
  std::vector<std::string> states;
  /// States the emitted skeleton deliberately leaves without an incoming
  /// transition because the user's completed logic is expected to jump
  /// there (the '&' read-back chain: every OUT state after the first
  /// returns to reset until the user retargets it, §10.2).  Reachability
  /// analysis seeds from these as well as from states[0].
  std::vector<std::string> user_entry_states;
  unsigned state_width = 1;  ///< encoded state-register width
  std::string comment;       ///< declaration-section comment, may be empty
};

/// One port-to-signal binding of an instantiation.
struct Connection {
  std::string port;
  std::string signal;
  bool is_output = false;  ///< the instance drives `signal`
};

struct Instance {
  std::string module;  ///< e.g. "func_scale"
  std::string label;   ///< e.g. "scale_0_inst"
  /// Connections pre-grouped into printed lines.
  std::vector<std::vector<Connection>> groups;
};

/// VHDL component declaration, ports pre-grouped into printed lines.
struct ComponentGroup {
  std::vector<std::string> names;
  bool is_input = true;
  unsigned width = 1;
};

struct ComponentDecl {
  std::string module;
  std::vector<ComponentGroup> groups;
};

struct Process {
  enum class Kind { Clocked, Combinational };

  Kind kind = Kind::Combinational;
  std::string label;  ///< VHDL process label
  std::vector<std::string> comment;
  std::string clock = "CLK";             ///< Clocked only
  std::vector<std::string> sensitivity;  ///< Combinational only
  std::vector<Stmt> body;
};

/// Concurrent / continuous assignment.
struct ContAssign {
  std::string target;
  int index = -1;
  Expr rhs;
  std::string trailing_comment;
};

struct ContAssignGroup {
  std::vector<std::string> comment;
  std::vector<ContAssign> assigns;
};

/// One generated hardware file: entity/module, declarations, body.
struct Module {
  Dialect dialect = Dialect::Vhdl;
  std::string name;       ///< "func_<fn>" or "user_<device>"
  std::string arch_name;  ///< VHDL architecture name
  std::vector<std::string> banner;  ///< header comment lines

  std::vector<Port> ports;
  std::string const_comment;
  std::vector<Constant> constants;
  std::optional<Fsm> fsm;
  std::string signal_comment;
  std::vector<SignalDecl> signals;
  std::vector<ComparatorNote> comparators;
  std::vector<ComponentDecl> components;

  std::vector<Instance> instances;
  std::vector<Process> processes;
  std::vector<ContAssignGroup> cont_assigns;

  [[nodiscard]] const Port* find_port(const std::string& name) const;
};

}  // namespace splice::codegen::ast
