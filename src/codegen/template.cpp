#include "codegen/template.hpp"

#include <cctype>

#include "codegen/vhdl.hpp"
#include "support/strings.hpp"

namespace splice::codegen {

void TemplateEngine::register_macro(std::string name, Handler handler) {
  macros_[std::move(name)] = std::move(handler);
}

bool TemplateEngine::has_macro(std::string_view name) const {
  return macros_.find(std::string(name)) != macros_.end();
}

std::vector<std::string> TemplateEngine::macro_names() const {
  std::vector<std::string> out;
  out.reserve(macros_.size());
  for (const auto& [name, _] : macros_) out.push_back(name);
  return out;
}

std::string TemplateEngine::expand(std::string_view tmpl,
                                   const MacroContext& ctx,
                                   DiagnosticEngine& diags) const {
  std::string out;
  out.reserve(tmpl.size());
  std::size_t pos = 0;
  auto is_symbol_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  };

  while (pos < tmpl.size()) {
    const std::size_t open = tmpl.find('%', pos);
    if (open == std::string_view::npos) {
      out.append(tmpl.substr(pos));
      break;
    }
    out.append(tmpl.substr(pos, open - pos));
    // A marker is %SYMBOL% with a non-empty symbol of [A-Za-z0-9_].
    std::size_t end = open + 1;
    while (end < tmpl.size() && is_symbol_char(tmpl[end])) ++end;
    if (end > open + 1 && end < tmpl.size() && tmpl[end] == '%') {
      const std::string name(tmpl.substr(open + 1, end - open - 1));
      auto it = macros_.find(name);
      if (it != macros_.end()) {
        out.append(it->second(ctx));
      } else {
        diags.error(DiagId::TemplateUnknownMacro,
                    "template references unknown macro %" + name + "%");
        out.append(tmpl.substr(open, end - open + 1));  // keep inspectable
      }
      pos = end + 1;
    } else {
      // A stray '%' (e.g. inside a VHDL comment) passes through verbatim.
      out.push_back('%');
      pos = open + 1;
    }
  }
  return out;
}

TemplateEngine make_standard_engine() {
  TemplateEngine engine;
  auto need_spec = [](const MacroContext& ctx) -> const ir::DeviceSpec& {
    if (ctx.spec == nullptr) {
      throw SpliceError("macro expansion requires a device spec");
    }
    return *ctx.spec;
  };
  auto need_fn = [](const MacroContext& ctx) -> const ir::FunctionDecl& {
    if (ctx.current_fn == nullptr) {
      throw SpliceError("per-function macro used outside a function region");
    }
    return *ctx.current_fn;
  };

  engine.register_macro("COMP_NAME", [need_spec](const MacroContext& ctx) {
    return need_spec(ctx).target.device_name;
  });
  engine.register_macro("BUS_WIDTH", [need_spec](const MacroContext& ctx) {
    return std::to_string(need_spec(ctx).target.bus_width);
  });
  engine.register_macro("FUNC_ID_WIDTH", [need_spec](const MacroContext& ctx) {
    return std::to_string(need_spec(ctx).func_id_width());
  });
  engine.register_macro("BASE_ADDR", [need_spec](const MacroContext& ctx) {
    return str::hex(need_spec(ctx).target.base_address.value_or(0), 8);
  });
  engine.register_macro("GEN_DATE", [](const MacroContext&) {
    // Deterministic stamp: real builds are reproducible, and golden tests
    // stay stable.
    return std::string("(splice reproduction build)");
  });
  engine.register_macro("DMA_ENABLED", [need_spec](const MacroContext& ctx) {
    return need_spec(ctx).target.dma_support ? "true" : "false";
  });

  engine.register_macro("FUNC_NAME", [need_fn](const MacroContext& ctx) {
    return need_fn(ctx).name;
  });
  engine.register_macro("MY_FUNC_ID", [need_fn](const MacroContext& ctx) {
    return std::to_string(need_fn(ctx).func_id);
  });
  engine.register_macro("FUNC_INSTS", [need_fn](const MacroContext& ctx) {
    return std::to_string(need_fn(ctx).instances);
  });
  engine.register_macro("FUNC_CONSTS",
                        [need_spec, need_fn](const MacroContext& ctx) {
                          return vhdl::func_consts(need_fn(ctx),
                                                   need_spec(ctx));
                        });
  engine.register_macro("FUNC_SIGNALS",
                        [need_spec, need_fn](const MacroContext& ctx) {
                          return vhdl::func_signals(need_fn(ctx),
                                                    need_spec(ctx));
                        });
  engine.register_macro("FUNC_FSM",
                        [need_spec, need_fn](const MacroContext& ctx) {
                          return vhdl::func_fsm(need_fn(ctx), need_spec(ctx));
                        });
  engine.register_macro("FUNC_STUB",
                        [need_spec, need_fn](const MacroContext& ctx) {
                          return vhdl::func_stub_process(need_fn(ctx),
                                                         need_spec(ctx));
                        });
  engine.register_macro("DATA_OUT_MUX", [need_spec](const MacroContext& ctx) {
    return vhdl::data_out_mux(need_spec(ctx));
  });
  engine.register_macro("DATA_OUT_V_MUX",
                        [need_spec](const MacroContext& ctx) {
                          return vhdl::data_out_valid_mux(need_spec(ctx));
                        });
  engine.register_macro("IO_DONE_MUX", [need_spec](const MacroContext& ctx) {
    return vhdl::io_done_mux(need_spec(ctx));
  });
  engine.register_macro("CALC_DONE_ENCODE",
                        [need_spec](const MacroContext& ctx) {
                          return vhdl::calc_done_encode(need_spec(ctx));
                        });
  return engine;
}

}  // namespace splice::codegen
