// The %MACRO% template engine (thesis §5.1, §7.1): annotated HDL template
// files carry markers of the form %SYMBOL%; the engine replaces each with
// the output of a registered handler.  Splice registers the Figure 7.1
// standard macro set; bus extension libraries add bus-specific markers
// through their marker-loader routine (§7.1.2).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/device.hpp"
#include "support/diagnostics.hpp"

namespace splice::codegen {

/// What a macro handler sees while a template is being expanded.
struct MacroContext {
  const ir::DeviceSpec* spec = nullptr;
  /// Set while a per-function region is expanded (%FUNC_NAME% etc.).
  const ir::FunctionDecl* current_fn = nullptr;
};

class TemplateEngine {
 public:
  using Handler = std::function<std::string(const MacroContext&)>;

  /// Register (or override) a macro handler.  Names are the bare symbol
  /// (no percent signs), upper-case by convention.
  void register_macro(std::string name, Handler handler);
  [[nodiscard]] bool has_macro(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> macro_names() const;

  /// Expand every %SYMBOL% in `tmpl`.  Unknown symbols and unterminated
  /// markers are reported; the marker text is left in place so the output
  /// stays inspectable.
  [[nodiscard]] std::string expand(std::string_view tmpl,
                                   const MacroContext& ctx,
                                   DiagnosticEngine& diags) const;

 private:
  std::unordered_map<std::string, Handler> macros_;
};

/// Build an engine pre-loaded with the Figure 7.1 standard macro set
/// (COMP_NAME, BUS_WIDTH, FUNC_ID_WIDTH, BASE_ADDR, GEN_DATE, DMA_ENABLED,
/// FUNC_NAME, MY_FUNC_ID, FUNC_INSTS, FUNC_CONSTS, FUNC_SIGNALS, FUNC_FSM,
/// FUNC_STUB, DATA_OUT_MUX, DATA_OUT_V_MUX, IO_DONE_MUX, CALC_DONE_ENCODE).
[[nodiscard]] TemplateEngine make_standard_engine();

}  // namespace splice::codegen
