#include "core/artifact_cache.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "support/digest64.hpp"
#include "support/sha256.hpp"
#include "support/strings.hpp"

namespace splice {

namespace fs = std::filesystem;

namespace telemetry = support::telemetry;

namespace {

constexpr std::string_view kBlobMagic = "splice-cache 2";

std::uint64_t us_since(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  if (!in) return std::nullopt;
  const std::streamsize size = in.tellg();
  if (size < 0) return std::nullopt;
  std::string out(static_cast<std::size_t>(size), '\0');
  in.seekg(0);
  in.read(out.data(), size);
  if (!in) return std::nullopt;
  return out;
}

bool write_file(const fs::path& p, std::string_view content) {
  std::ofstream out(p, std::ios::binary);
  if (!out) return false;
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.close();
  return static_cast<bool>(out);
}

std::string sanitize_line(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir,
                             telemetry::MetricsRegistry* metrics)
    : dir_(std::move(dir)) {
  if (metrics == nullptr) return;
  m_hits_ = &metrics->counter("cache.hits");
  m_misses_ = &metrics->counter("cache.misses");
  m_stores_ = &metrics->counter("cache.stores");
  m_corrupt_ = &metrics->counter("cache.corrupt");
  m_load_bytes_ = &metrics->counter("cache.load_bytes");
  m_store_bytes_ = &metrics->counter("cache.store_bytes");
  m_open_us_ = &metrics->histogram("cache.open_us");
  m_rename_us_ = &metrics->histogram("cache.rename_us");
}

const codegen::GeneratedFile* ArtifactSet::find(
    const std::string& filename) const {
  for (const auto& f : hardware) {
    if (f.filename == filename) return &f;
  }
  for (const auto& f : software) {
    if (f.filename == filename) return &f;
  }
  return nullptr;
}

std::vector<std::string> ArtifactSet::filenames() const {
  std::vector<std::string> out;
  out.reserve(hardware.size() + software.size());
  for (const auto& f : hardware) out.push_back(f.filename);
  for (const auto& f : software) out.push_back(f.filename);
  return out;
}

std::string ArtifactSet::write_to(const std::string& dir) const {
  return codegen::write_file_set(device_name, hardware, software, dir);
}

std::string ArtifactCache::normalize_spec(std::string_view spec_text) {
  std::string out;
  out.reserve(spec_text.size());
  std::size_t line_start = 0;
  auto flush_line = [&](std::string_view line) {
    std::size_t end = line.size();
    while (end > 0 &&
           (line[end - 1] == ' ' || line[end - 1] == '\t' ||
            line[end - 1] == '\r')) {
      --end;
    }
    out.append(line.substr(0, end));
    out.push_back('\n');
  };
  for (std::size_t i = 0; i < spec_text.size(); ++i) {
    if (spec_text[i] == '\n') {
      flush_line(spec_text.substr(line_start, i - line_start));
      line_start = i + 1;
    }
  }
  if (line_start < spec_text.size()) {
    flush_line(spec_text.substr(line_start));
  }
  while (str::ends_with(out, "\n\n")) out.pop_back();
  return out;
}

std::string ArtifactCache::key_for(std::string_view spec_text,
                                   std::string_view engine_config) {
  support::Sha256 h;
  h.update(kGeneratorVersion);
  h.update("\0", 1);
  h.update(engine_config);
  h.update("\0", 1);
  h.update(normalize_spec(spec_text));
  return h.hex_digest();
}

std::optional<ArtifactSet> ArtifactCache::load(const std::string& key,
                                               DiagnosticEngine& diags,
                                               CacheStats* local) {
  telemetry::Span span("cache.load", "cache");
  const fs::path entry = fs::path(dir_) / key.substr(0, 2) / key;
  auto miss = [&](bool corrupt) -> std::optional<ArtifactSet> {
    if (corrupt) {
      // Drop the unreadable entry so the regenerated store can replace it.
      std::error_code ec;
      fs::remove(entry, ec);
    }
    if (m_misses_ != nullptr) m_misses_->add();
    if (corrupt && m_corrupt_ != nullptr) m_corrupt_->add();
    if (local != nullptr) {
      ++local->misses;
      if (corrupt) ++local->corrupt;
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (corrupt) ++stats_.corrupt;
    return std::nullopt;
  };

  const auto t_open = std::chrono::steady_clock::now();
  const auto blob = read_file(entry);
  if (m_open_us_ != nullptr) m_open_us_->record(us_since(t_open));
  if (!blob) return miss(false);  // plain miss: nothing stored under key
  span.arg("bytes", blob->size());
  if (m_load_bytes_ != nullptr) m_load_bytes_->add(blob->size());
  const std::string_view text(*blob);

  ArtifactSet set;
  struct PendingDiag {
    Severity sev;
    DiagId id;
    SourceLoc loc;
    std::string message;
  };
  std::vector<PendingDiag> replay;
  struct PendingFile {
    bool hardware;
    std::size_t size;
  };
  std::vector<PendingFile> layout;
  std::vector<codegen::GeneratedFile>* section = nullptr;
  std::uint64_t expected_digest = 0;
  bool saw_digest = false;

  // Header: newline-separated keyword lines up to "end"; payload bytes
  // follow immediately after.
  std::size_t pos = 0;
  std::size_t payload_start = std::string_view::npos;
  bool first_line = true;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) return miss(true);
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (first_line) {
      if (line != kBlobMagic) return miss(true);
      first_line = false;
      continue;
    }
    if (line == "end") {
      payload_start = pos;
      break;
    }
    const std::size_t sp = line.find(' ');
    const std::string_view kw = line.substr(0, sp);
    const std::string_view rest =
        sp == std::string_view::npos ? std::string_view()
                                     : line.substr(sp + 1);
    if (kw == "generator") {
      if (rest != kGeneratorVersion) return miss(true);
    } else if (kw == "device") {
      set.device_name = std::string(rest);
    } else if (kw == "digest") {
      const auto v = str::parse_hex(rest);
      if (!v) return miss(true);
      expected_digest = *v;
      saw_digest = true;
    } else if (kw == "diag") {
      // diag <severity> <id> <line> <col> <message...>
      const auto parts = str::split(std::string(rest), ' ');
      if (parts.size() < 4) return miss(true);
      const auto sev = str::parse_u64(parts[0]);
      const auto id = str::parse_u64(parts[1]);
      const auto dline = str::parse_u64(parts[2]);
      const auto dcol = str::parse_u64(parts[3]);
      if (!sev || *sev > 2 || !id || !dline || !dcol) return miss(true);
      PendingDiag d{static_cast<Severity>(*sev),
                    static_cast<DiagId>(*id),
                    {static_cast<std::uint32_t>(*dline),
                     static_cast<std::uint32_t>(*dcol)},
                    {}};
      std::size_t consumed = parts[0].size() + parts[1].size() +
                             parts[2].size() + parts[3].size() + 4;
      if (consumed <= rest.size()) {
        d.message = std::string(rest.substr(consumed));
      }
      replay.push_back(std::move(d));
    } else if (kw == "file") {
      // file <H|S> <size> <filename>
      const std::size_t sp2 = rest.find(' ');
      if (sp2 == std::string_view::npos) return miss(true);
      const std::size_t sp3 = rest.find(' ', sp2 + 1);
      if (sp3 == std::string_view::npos) return miss(true);
      const std::string_view tag = rest.substr(0, sp2);
      const auto size = str::parse_u64(
          std::string(rest.substr(sp2 + 1, sp3 - sp2 - 1)));
      const std::string_view name = rest.substr(sp3 + 1);
      if (!size || name.empty()) return miss(true);
      if (tag == "H") {
        section = &set.hardware;
      } else if (tag == "S") {
        section = &set.software;
      } else {
        return miss(true);
      }
      codegen::GeneratedFile f;
      f.filename = std::string(name);
      section->push_back(std::move(f));
      layout.push_back({tag == "H", static_cast<std::size_t>(*size)});
    } else if (kw == "purpose") {
      if (section == nullptr || section->empty()) return miss(true);
      section->back().purpose = std::string(rest);
    } else {
      return miss(true);
    }
  }
  if (payload_start == std::string_view::npos || !saw_digest ||
      set.device_name.empty()) {
    return miss(true);
  }

  // Exact-size and digest check over the payload region, then slice it
  // into the per-file contents in header order.
  std::size_t total = 0;
  for (const auto& pf : layout) total += pf.size;
  const std::string_view payload = text.substr(payload_start);
  if (payload.size() != total) return miss(true);
  if (support::digest64(payload) != expected_digest) return miss(true);

  std::size_t offset = 0;
  std::size_t hw = 0, sw = 0;
  for (const auto& pf : layout) {
    auto& f = pf.hardware ? set.hardware[hw++] : set.software[sw++];
    f.content.assign(payload.substr(offset, pf.size));
    offset += pf.size;
  }

  for (auto& d : replay) {
    diags.report(d.sev, d.id, std::move(d.message), d.loc);
  }
  if (m_hits_ != nullptr) m_hits_->add();
  if (local != nullptr) ++local->hits;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.hits;
  return set;
}

void ArtifactCache::store(const std::string& key, const ArtifactSet& set,
                          const DiagnosticEngine& diags, CacheStats* local) {
  telemetry::Span span("cache.store", "cache");
  const fs::path shard = fs::path(dir_) / key.substr(0, 2);
  const fs::path entry = shard / key;
  // Stage as a sibling temp file, then rename: concurrent stores of the
  // same key race benignly (either complete entry wins).
  const fs::path tmp = shard / (key + ".tmp");

  std::error_code ec;
  fs::create_directories(shard, ec);
  if (ec) return;

  std::size_t payload_bytes = 0;
  for (const auto& f : set.hardware) payload_bytes += f.content.size();
  for (const auto& f : set.software) payload_bytes += f.content.size();

  std::string blob;
  blob.reserve(payload_bytes + 1024);
  blob.append(kBlobMagic).append("\n");
  blob.append("generator ").append(kGeneratorVersion).append("\n");
  blob.append("device ").append(sanitize_line(set.device_name));
  blob.push_back('\n');
  for (const auto& d : diags.all()) {
    if (d.severity == Severity::Error) continue;
    blob.append("diag ")
        .append(std::to_string(static_cast<unsigned>(d.severity)))
        .append(" ")
        .append(std::to_string(static_cast<unsigned>(d.id)))
        .append(" ")
        .append(std::to_string(d.loc.line))
        .append(" ")
        .append(std::to_string(d.loc.column))
        .append(" ")
        .append(sanitize_line(d.message))
        .append("\n");
  }
  auto add_section = [&](const std::vector<codegen::GeneratedFile>& files,
                         const char* tag) -> bool {
    for (const auto& f : files) {
      if (f.filename.empty() ||
          f.filename.find('\n') != std::string::npos ||
          f.filename.find('/') != std::string::npos) {
        return false;  // untrustworthy name; refuse to cache this set
      }
      blob.append("file ").append(tag).append(" ");
      blob.append(std::to_string(f.content.size())).append(" ");
      blob.append(f.filename).append("\n");
      blob.append("purpose ").append(sanitize_line(f.purpose));
      blob.push_back('\n');
    }
    return true;
  };
  if (!add_section(set.hardware, "H") || !add_section(set.software, "S")) {
    return;
  }

  std::string payload;
  payload.reserve(payload_bytes);
  for (const auto& f : set.hardware) payload.append(f.content);
  for (const auto& f : set.software) payload.append(f.content);
  blob.append("digest ").append(hex16(support::digest64(payload)));
  blob.append("\nend\n");
  blob.append(payload);

  span.arg("bytes", blob.size());
  const auto t_write = std::chrono::steady_clock::now();
  if (!write_file(tmp, blob)) {
    fs::remove(tmp, ec);
    return;
  }
  fs::rename(tmp, entry, ec);
  if (m_rename_us_ != nullptr) m_rename_us_->record(us_since(t_write));
  if (ec) {
    fs::remove(tmp, ec);
    return;
  }
  if (m_stores_ != nullptr) m_stores_->add();
  if (m_store_bytes_ != nullptr) m_store_bytes_->add(blob.size());
  if (local != nullptr) ++local->stores;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.stores;
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace splice
