// Content-addressed artifact cache for the generation pipeline.
//
// Key derivation: SHA-256 over
//     generator version \0 engine configuration \0 normalized spec text
// The specification text carries every %directive (bus type, widths, HDL,
// DMA/burst/IRQ flags ...), so target directives are part of the key by
// construction; the engine configuration string covers knobs that live
// outside the spec (today: the driver OS flavour).  Normalization is
// deliberately conservative — CRLF -> LF and trailing-whitespace stripping
// only — so two specs never alias unless they are byte-equal after
// whitespace noise is removed.
//
// Entry layout under the cache directory: one blob file per entry,
//     <key[0..1]>/<key>
// holding a text header (generator version, device, replayable
// diagnostics, one `file <H|S> <size> <name>` + `purpose ...` pair per
// artifact, a payload digest) terminated by `end\n`, followed by the raw
// payload bytes concatenated in header order.  A single file keeps a warm
// hit at one open+read and a store at one write+rename; integrity is a
// fast 64-bit digest over the payload region (support/digest64.hpp — the
// key is cryptographic, the on-disk check only detects corruption).  Any
// parse failure, size mismatch or digest mismatch marks the entry corrupt:
// it is dropped and the compile falls back to full regeneration.  Cache
// failures are never fatal — the cache may only ever make a build faster.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <mutex>

#include "codegen/hwgen.hpp"
#include "support/diagnostics.hpp"
#include "support/telemetry.hpp"

namespace splice {

/// Bumped whenever emitters can produce different bytes for an unchanged
/// spec; stale-by-version entries then simply miss.
inline constexpr std::string_view kGeneratorVersion = "splice-gen-3";

/// The materialized output of one compile: what the cache stores and what
/// batch consumers need (no elaborated spec attached — a cache hit skips
/// elaboration entirely).
struct ArtifactSet {
  std::string device_name;
  std::vector<codegen::GeneratedFile> hardware;
  std::vector<codegen::GeneratedFile> software;

  [[nodiscard]] const codegen::GeneratedFile* find(
      const std::string& filename) const;
  /// All filenames, hardware first.
  [[nodiscard]] std::vector<std::string> filenames() const;
  /// Write every file under dir/<device_name>/; returns the directory used.
  [[nodiscard]] std::string write_to(const std::string& dir) const;
};

/// Hit/miss counters surfaced by --gen-stats.  `corrupt` entries also count
/// as misses (the compile regenerated).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t corrupt = 0;
};

class ArtifactCache {
 public:
  /// `metrics` (optional) receives cache.{hits,misses,stores,corrupt}
  /// counters, cache.{load,store}_bytes byte counters and
  /// cache.{open,rename}_us I/O latency histograms; it must outlive the
  /// cache.  Attach before concurrent use.
  explicit ArtifactCache(std::string dir,
                         support::telemetry::MetricsRegistry* metrics = nullptr);

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// CRLF -> LF, strip trailing whitespace per line, drop trailing blank
  /// lines.  Exposed for tests.
  [[nodiscard]] static std::string normalize_spec(std::string_view spec_text);

  /// 64-hex-char content key (see file comment for the derivation).
  [[nodiscard]] static std::string key_for(std::string_view spec_text,
                                           std::string_view engine_config);

  /// Load the entry for `key`; nullopt on miss.  Corrupt entries are
  /// dropped and reported as a miss.  Non-error diagnostics recorded at
  /// store time (e.g. validation warnings) are replayed into `diags` so a
  /// cached compile reports exactly what the original did.  When `local`
  /// is non-null the outcome is additionally counted into it — the
  /// caller-owned delta that lets a batch attribute hits/misses to one
  /// spec without snapshotting the shared counters under contention.
  [[nodiscard]] std::optional<ArtifactSet> load(const std::string& key,
                                                DiagnosticEngine& diags,
                                                CacheStats* local = nullptr);

  /// Persist `set` under `key`, including `diags`' current non-error
  /// diagnostics.  Callers pass the per-spec engine of the compile that
  /// produced `set`.  I/O failures are swallowed: the entry is simply not
  /// written.  `local` as in load().
  void store(const std::string& key, const ArtifactSet& set,
             const DiagnosticEngine& diags, CacheStats* local = nullptr);

  [[nodiscard]] CacheStats stats() const;

 private:
  std::string dir_;
  support::telemetry::Counter* m_hits_ = nullptr;
  support::telemetry::Counter* m_misses_ = nullptr;
  support::telemetry::Counter* m_stores_ = nullptr;
  support::telemetry::Counter* m_corrupt_ = nullptr;
  support::telemetry::Counter* m_load_bytes_ = nullptr;
  support::telemetry::Counter* m_store_bytes_ = nullptr;
  support::telemetry::Histogram* m_open_us_ = nullptr;
  support::telemetry::Histogram* m_rename_us_ = nullptr;
  mutable std::mutex mu_;
  CacheStats stats_;
};

}  // namespace splice
