#include "core/splice.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "codegen/hdl_builder.hpp"
#include "codegen/hdl_lint.hpp"
#include "codegen/template.hpp"
#include "frontend/parser.hpp"

namespace splice {

const codegen::GeneratedFile* GeneratedArtifacts::find(
    const std::string& filename) const {
  for (const auto& f : hardware) {
    if (f.filename == filename) return &f;
  }
  for (const auto& f : software) {
    if (f.filename == filename) return &f;
  }
  return nullptr;
}

std::vector<std::string> GeneratedArtifacts::filenames() const {
  std::vector<std::string> out;
  for (const auto& f : hardware) out.push_back(f.filename);
  for (const auto& f : software) out.push_back(f.filename);
  return out;
}

std::string GeneratedArtifacts::write_to(const std::string& dir) const {
  namespace fs = std::filesystem;
  const fs::path base = fs::path(dir) / spec.target.device_name;
  std::error_code ec;
  fs::create_directories(base, ec);
  if (ec) {
    throw SpliceError("cannot create output directory " + base.string() +
                      ": " + ec.message());
  }
  auto write = [&](const codegen::GeneratedFile& f) {
    const fs::path path = base / f.filename;
    std::ofstream out(path);
    if (!out) throw SpliceError("cannot write " + path.string());
    out << f.content;
    // A full disk or revoked permission often only surfaces when buffered
    // data is flushed, so check again after the write and the close.
    out.close();
    if (!out) {
      throw SpliceError("write failed for " + path.string() +
                        " (disk full or file no longer writable?)");
    }
  };
  for (const auto& f : hardware) write(f);
  for (const auto& f : software) write(f);
  return base.string();
}

std::optional<GeneratedArtifacts> Engine::generate(
    std::string_view spec_text, DiagnosticEngine& diags) const {
  auto spec = frontend::parse_spec(spec_text, diags);
  if (!spec) return std::nullopt;
  return generate(std::move(*spec), diags);
}

std::optional<GeneratedArtifacts> Engine::generate(
    ir::DeviceSpec spec, DiagnosticEngine& diags) const {
  // Resolve the bus adapter (the lib<x>_interface.so lookup of §7.2).
  const adapters::BusAdapter* adapter = registry_.find(spec.target.bus_type);
  if (adapter == nullptr && !spec.target.bus_type.empty()) {
    diags.error(DiagId::UnknownBusType,
                "no interface library registered for bus '" +
                    spec.target.bus_type + "' (expected " +
                    adapters::library_filename(spec.target.bus_type) + ")");
    return std::nullopt;
  }
  if (adapter == nullptr) {
    diags.error(DiagId::MissingBusType, "%bus_type directive is required");
    return std::nullopt;
  }

  // Parameter checking routine (§7.1.2): validates language rules and bus
  // feasibility, assigns FUNC_IDs.
  if (!adapter->check_parameters(spec, diags)) return std::nullopt;

  // AST lint: verify the hardware document model before anything renders.
  // A finding here is a generator bug, not a user error, but refusing to
  // proceed beats writing broken HDL (§3.2 spirit).
  {
    const codegen::ast::Dialect dialect =
        spec.target.hdl == ir::Hdl::Vhdl ? codegen::ast::Dialect::Vhdl
                                         : codegen::ast::Dialect::Verilog;
    bool clean =
        codegen::lint_module(codegen::build_arbiter_ast(spec, dialect), diags);
    for (const auto& fn : spec.functions) {
      clean &= codegen::lint_module(codegen::build_stub_ast(fn, spec, dialect),
                                    diags);
    }
    if (!clean) return std::nullopt;
  }

  GeneratedArtifacts artifacts;

  // Stage 1 (§5.1): native bus interface, via the adapter's marker loader
  // and template expansion.
  codegen::TemplateEngine engine = codegen::make_standard_engine();
  adapter->load_markers(engine);
  artifacts.hardware = adapter->generate_interface(spec, engine, diags);

  // Stages 2+3 (§5.2/§5.3): arbitration unit and user-logic stubs.
  for (auto& f : codegen::generate_user_logic(spec)) {
    artifacts.hardware.push_back(std::move(f));
  }

  // Software side (ch. 6): per-bus macro library + driver pair.
  artifacts.software.push_back(
      {"splice_lib.h", adapter->macro_library(spec, options_.driver_os),
       "Implementation of software macros used to transfer data to and "
       "from the device across the " + spec.target.bus_type + " interface"});
  drivergen::DriverSources drivers = drivergen::emit_driver_sources(spec);
  artifacts.software.push_back(
      {drivers.source_filename, drivers.source,
       "Contains software driver functions for each interface declaration"});
  artifacts.software.push_back(
      {drivers.header_filename, drivers.header,
       "Listing of function prototypes for each driver"});

  if (diags.has_errors()) return std::nullopt;
  artifacts.spec = std::move(spec);
  return artifacts;
}

}  // namespace splice
