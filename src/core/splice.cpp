#include "core/splice.hpp"

#include <chrono>
#include <memory>
#include <utility>

#include "codegen/hdl_builder.hpp"
#include "codegen/hdl_lint.hpp"
#include "codegen/template.hpp"
#include "frontend/parser.hpp"

namespace splice {

namespace telemetry = support::telemetry;

namespace {

/// One instrumented pipeline phase: a trace span for the flame graph plus
/// a wall-time sample into the engine's metrics registry (when attached).
class Phase {
 public:
  Phase(telemetry::MetricsRegistry* metrics, std::string_view span_name,
        const char* histogram_name)
      : span_(span_name, "gen"),
        metrics_(metrics),
        histogram_name_(histogram_name),
        t0_(std::chrono::steady_clock::now()) {}
  ~Phase() {
    if (metrics_ == nullptr) return;
    metrics_->histogram(histogram_name_)
        .record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0_)
                .count()));
  }
  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

  telemetry::Span& span() { return span_; }

 private:
  telemetry::Span span_;
  telemetry::MetricsRegistry* metrics_;
  const char* histogram_name_;
  std::chrono::steady_clock::time_point t0_;
};

/// Reusable per-adapter template engine.  Marker handlers are stateless
/// closures (the spec reaches them through MacroContext at expand time),
/// so the standard-set + load_markers construction — an unordered_map of
/// std::functions rebuilt on every generate before this cache — is safe
/// to do once per adapter per thread.  Entries are validated against the
/// adapter's name so a recycled allocation address cannot resurrect a
/// stale engine; thread-locality keeps lookups lock-free.
const codegen::TemplateEngine& engine_for(
    const adapters::BusAdapter& adapter) {
  struct CachedEngine {
    const adapters::BusAdapter* adapter;
    std::string name;
    codegen::TemplateEngine engine;
  };
  thread_local std::vector<CachedEngine> cache;
  for (auto& entry : cache) {
    if (entry.adapter == &adapter && entry.name == adapter.name()) {
      return entry.engine;
    }
  }
  CachedEngine entry{&adapter, adapter.name(),
                     codegen::make_standard_engine()};
  adapter.load_markers(entry.engine);
  cache.push_back(std::move(entry));
  return cache.back().engine;
}

}  // namespace

const codegen::GeneratedFile* GeneratedArtifacts::find(
    const std::string& filename) const {
  for (const auto& f : hardware) {
    if (f.filename == filename) return &f;
  }
  for (const auto& f : software) {
    if (f.filename == filename) return &f;
  }
  return nullptr;
}

std::vector<std::string> GeneratedArtifacts::filenames() const {
  std::vector<std::string> out;
  for (const auto& f : hardware) out.push_back(f.filename);
  for (const auto& f : software) out.push_back(f.filename);
  return out;
}

std::string GeneratedArtifacts::write_to(const std::string& dir) const {
  return codegen::write_file_set(spec.target.device_name, hardware, software,
                                 dir);
}

ArtifactSet GeneratedArtifacts::take_set() && {
  ArtifactSet set;
  set.device_name = spec.target.device_name;
  set.hardware = std::move(hardware);
  set.software = std::move(software);
  return set;
}

std::optional<GeneratedArtifacts> Engine::generate(
    std::string_view spec_text, DiagnosticEngine& diags) const {
  std::optional<ir::DeviceSpec> spec;
  {
    // Lexing and parsing share one phase: the spec parser drives the lexer
    // over the whole text before its directive/declaration passes.
    Phase phase(options_.metrics, "gen.parse", "gen.parse_us");
    phase.span().arg("bytes", spec_text.size());
    spec = frontend::parse_spec(spec_text, diags);
  }
  if (!spec) return std::nullopt;
  return generate(std::move(*spec), diags);
}

std::optional<GeneratedArtifacts> Engine::generate(
    ir::DeviceSpec spec, DiagnosticEngine& diags) const {
  const adapters::BusAdapter* adapter = nullptr;
  {
    Phase phase(options_.metrics, "gen.validate", "gen.validate_us");
    // Resolve the bus adapter (the lib<x>_interface.so lookup of §7.2).
    adapter = registry_.find(spec.target.bus_type);
    if (adapter == nullptr && !spec.target.bus_type.empty()) {
      diags.error(DiagId::UnknownBusType,
                  "no interface library registered for bus '" +
                      spec.target.bus_type + "' (expected " +
                      adapters::library_filename(spec.target.bus_type) + ")");
      return std::nullopt;
    }
    if (adapter == nullptr) {
      diags.error(DiagId::MissingBusType, "%bus_type directive is required");
      return std::nullopt;
    }

    // Parameter checking routine (§7.1.2): validates language rules and
    // bus feasibility, assigns FUNC_IDs.  Serial: it mutates the spec that
    // every downstream job reads.
    if (!adapter->check_parameters(spec, diags)) return std::nullopt;
  }

  const codegen::ast::Dialect dialect =
      spec.target.hdl == ir::Hdl::Vhdl ? codegen::ast::Dialect::Vhdl
                                       : codegen::ast::Dialect::Verilog;
  const std::size_t nfn = spec.functions.size();

  // Job layout — the index doubles as the canonical merge position:
  //   [0]            arbitration unit (build + lint + print)
  //   [1 .. nfn]     one user-logic stub per declaration
  //   [nfn + 1]      native bus interface (adapter templates)
  //   [nfn + 2]      software side (splice_lib.h + driver pair)
  // Each job owns a private DiagnosticEngine; after the join the locals
  // are merged in index order, so parallel diagnostics render exactly as
  // the serial pass would (spec order is the CLI's job, module order and
  // emission order are preserved here).
  struct ModuleJob {
    std::vector<codegen::GeneratedFile> files;
    DiagnosticEngine diags;
    bool lint_clean = true;
  };
  const std::size_t njobs = nfn + 3;
  std::vector<ModuleJob> jobs(njobs);

  auto run_job = [&](std::size_t i) {
    ModuleJob& job = jobs[i];
    if (i == 0) {
      Phase phase(options_.metrics, "gen.arbiter", "gen.codegen_us");
      // Each AST is built once and feeds both the lint pass and the
      // printer (the serial pipeline used to elaborate it twice).
      codegen::ast::Module m = codegen::build_arbiter_ast(spec, dialect);
      if (options_.metrics != nullptr && m.ctx != nullptr) {
        options_.metrics->counter("gen.hdl_cse_hits")
            .add(m.ctx->stats().cse_hits);
      }
      job.lint_clean = codegen::lint_module(m, job.diags);
      if (!job.lint_clean) return;
      job.files.push_back(codegen::render_arbiter_file(m, spec));
    } else if (i <= nfn) {
      const ir::FunctionDecl& fn = spec.functions[i - 1];
      Phase phase(options_.metrics, "gen.stub:" + fn.name, "gen.codegen_us");
      codegen::ast::Module m = codegen::build_stub_ast(fn, spec, dialect);
      if (options_.metrics != nullptr && m.ctx != nullptr) {
        options_.metrics->counter("gen.hdl_cse_hits")
            .add(m.ctx->stats().cse_hits);
      }
      job.lint_clean = codegen::lint_module(m, job.diags);
      if (!job.lint_clean) return;
      job.files.push_back(codegen::render_stub_file(m, fn, spec));
    } else if (i == nfn + 1) {
      Phase phase(options_.metrics, "gen.interface", "gen.codegen_us");
      // Stage 1 (§5.1): native bus interface, via the adapter's marker
      // loader and template expansion.  Marker handlers are stateless
      // closures over the MacroContext, so the loaded engine is cached
      // per adapter per thread.
      job.files =
          adapter->generate_interface(spec, engine_for(*adapter), job.diags);
    } else {
      Phase phase(options_.metrics, "gen.software", "gen.drivergen_us");
      // Software side (ch. 6): per-bus macro library + driver pair.
      job.files.push_back(
          {"splice_lib.h", adapter->macro_library(spec, options_.driver_os),
           "Implementation of software macros used to transfer data to and "
           "from the device across the " + spec.target.bus_type +
               " interface"});
      drivergen::DriverSources drivers = drivergen::emit_driver_sources(spec);
      job.files.push_back(
          {drivers.source_filename, std::move(drivers.source),
           "Contains software driver functions for each interface "
           "declaration"});
      job.files.push_back(
          {drivers.header_filename, std::move(drivers.header),
           "Listing of function prototypes for each driver"});
    }
  };

  support::JobPool* pool = options_.pool;
  std::unique_ptr<support::JobPool> ephemeral;
  if (pool == nullptr && options_.jobs > 1) {
    // jobs-1 workers: the calling thread participates, so the total
    // concurrency equals the requested job count.
    ephemeral = std::make_unique<support::JobPool>(options_.jobs - 1);
    pool = ephemeral.get();
  }
  {
    // The fan-out's parent span: parallel_for carries it into the workers,
    // so per-module job spans nest here in the trace.
    telemetry::Span span("gen.modules", "gen");
    span.arg("jobs", njobs);
    if (options_.metrics != nullptr) {
      options_.metrics->counter("gen.modules").add(njobs);
    }
    support::parallel_for(pool, njobs, run_job);
  }

  Phase merge_phase(options_.metrics, "gen.merge", "gen.merge_us");

  // AST lint verdict first (§3.2 spirit: refuse to proceed on findings —
  // a finding is a generator bug, not a user error, but refusing beats
  // writing broken HDL).  Only lint diagnostics surface on failure, which
  // is exactly what the serial lint-before-generate ordering reported.
  bool lint_clean = true;
  for (std::size_t i = 0; i <= nfn; ++i) lint_clean &= jobs[i].lint_clean;
  if (!lint_clean) {
    for (std::size_t i = 0; i <= nfn; ++i) diags.merge_from(jobs[i].diags);
    return std::nullopt;
  }

  // Canonical merge: template/interface diagnostics after lint's (which
  // are clean here), file order identical to the historical serial walk —
  // interface files, arbiter, stubs, then software.
  for (std::size_t i = 0; i < njobs; ++i) diags.merge_from(jobs[i].diags);

  GeneratedArtifacts artifacts;
  artifacts.hardware = std::move(jobs[nfn + 1].files);
  for (std::size_t i = 0; i <= nfn; ++i) {
    for (auto& f : jobs[i].files) {
      artifacts.hardware.push_back(std::move(f));
    }
  }
  artifacts.software = std::move(jobs[nfn + 2].files);

  if (diags.has_errors()) return std::nullopt;
  artifacts.spec = std::move(spec);
  return artifacts;
}

std::string Engine::cache_config() const {
  // Only knobs that change output bytes belong here; the worker count
  // deliberately does not (parallel output is byte-identical by contract).
  return options_.driver_os == drivergen::DriverOs::Linux ? "os=linux"
                                                          : "os=baremetal";
}

std::optional<ArtifactSet> Engine::generate_cached(
    std::string_view spec_text, DiagnosticEngine& diags, ArtifactCache* cache,
    CacheStats* spec_cache_stats) const {
  std::string key;
  if (cache != nullptr) {
    key = ArtifactCache::key_for(spec_text, cache_config());
    if (auto hit = cache->load(key, diags, spec_cache_stats)) return hit;
  }
  auto generated = generate(spec_text, diags);
  if (!generated) return std::nullopt;
  ArtifactSet set = std::move(*generated).take_set();
  if (cache != nullptr) cache->store(key, set, diags, spec_cache_stats);
  return set;
}

}  // namespace splice
