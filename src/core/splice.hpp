// The top-level Splice engine (Figure 1.1): specification text in,
// complete hardware + software interface file set out.
//
//   splice::Engine engine;                      // built-in adapters
//   auto artifacts = engine.generate(spec_text, diags);
//   artifacts->write_to(output_dir);            // %device_name subdirectory
//
// The produced file set mirrors the thesis' Figures 8.3 (hardware) and
// 8.7 (software): <bus>_interface.vhd, user_<device>.vhd, one
// func_<name>.vhd per declaration, splice_lib.h, <device>_driver.c/.h.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adapters/registry.hpp"
#include "codegen/hwgen.hpp"
#include "drivergen/c_emitter.hpp"
#include "drivergen/maclib.hpp"
#include "ir/device.hpp"
#include "support/diagnostics.hpp"

namespace splice {

struct GeneratedArtifacts {
  ir::DeviceSpec spec;  ///< validated spec with FUNC_IDs assigned
  std::vector<codegen::GeneratedFile> hardware;  ///< interface+arbiter+stubs
  std::vector<codegen::GeneratedFile> software;  ///< splice_lib.h + drivers

  [[nodiscard]] const codegen::GeneratedFile* find(
      const std::string& filename) const;
  /// All filenames, hardware first (the Figure 8.3 / 8.7 listings).
  [[nodiscard]] std::vector<std::string> filenames() const;
  /// Write every file under dir/<device_name>/ (the §3.2.3 rule that the
  /// device name creates a subdirectory).  Returns the directory used.
  std::string write_to(const std::string& dir) const;
};

struct EngineOptions {
  drivergen::DriverOs driver_os = drivergen::DriverOs::BareMetal;
};

class Engine {
 public:
  explicit Engine(const adapters::AdapterRegistry& registry =
                      adapters::AdapterRegistry::instance(),
                  EngineOptions options = {})
      : registry_(registry), options_(options) {}

  /// Parse + validate + generate.  Returns nullopt when the specification
  /// is rejected; every problem is reported through `diags`.
  [[nodiscard]] std::optional<GeneratedArtifacts> generate(
      std::string_view spec_text, DiagnosticEngine& diags) const;

  /// Generation from an already-parsed spec (validated in place).
  [[nodiscard]] std::optional<GeneratedArtifacts> generate(
      ir::DeviceSpec spec, DiagnosticEngine& diags) const;

 private:
  const adapters::AdapterRegistry& registry_;
  EngineOptions options_;
};

}  // namespace splice
