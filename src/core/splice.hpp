// The top-level Splice engine (Figure 1.1): specification text in,
// complete hardware + software interface file set out.
//
//   splice::Engine engine;                      // built-in adapters
//   auto artifacts = engine.generate(spec_text, diags);
//   artifacts->write_to(output_dir);            // %device_name subdirectory
//
// The produced file set mirrors the thesis' Figures 8.3 (hardware) and
// 8.7 (software): <bus>_interface.vhd, user_<device>.vhd, one
// func_<name>.vhd per declaration, splice_lib.h, <device>_driver.c/.h.
//
// Generation is a parallel pipeline: after the serial frontend (parse,
// adapter resolution, parameter check) each output module — the arbiter,
// every function stub, the native bus interface, the software side — is an
// independent job (build AST once, lint it, pretty-print it) fanned out
// over a support::JobPool.  Results and diagnostics are merged in a fixed
// canonical order, so the emitted bytes and the rendered diagnostics are
// byte-identical to a serial run regardless of the worker count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adapters/registry.hpp"
#include "codegen/hwgen.hpp"
#include "core/artifact_cache.hpp"
#include "drivergen/c_emitter.hpp"
#include "drivergen/maclib.hpp"
#include "ir/device.hpp"
#include "support/diagnostics.hpp"
#include "support/job_pool.hpp"
#include "support/telemetry.hpp"

namespace splice {

struct GeneratedArtifacts {
  ir::DeviceSpec spec;  ///< validated spec with FUNC_IDs assigned
  std::vector<codegen::GeneratedFile> hardware;  ///< interface+arbiter+stubs
  std::vector<codegen::GeneratedFile> software;  ///< splice_lib.h + drivers

  [[nodiscard]] const codegen::GeneratedFile* find(
      const std::string& filename) const;
  /// All filenames, hardware first (the Figure 8.3 / 8.7 listings).
  [[nodiscard]] std::vector<std::string> filenames() const;
  /// Write every file under dir/<device_name>/ (the §3.2.3 rule that the
  /// device name creates a subdirectory).  Returns the directory used.
  std::string write_to(const std::string& dir) const;
  /// Detach the file set (device name + files, no spec) — the shape the
  /// artifact cache stores and batch consumers print from.
  [[nodiscard]] ArtifactSet take_set() &&;
};

struct EngineOptions {
  drivergen::DriverOs driver_os = drivergen::DriverOs::BareMetal;
  /// Worker threads for per-module generation.  1 = serial.  Ignored when
  /// `pool` is set.
  unsigned jobs = 1;
  /// Optional shared scheduler (e.g. the CLI batch pool) so nested
  /// per-spec/per-module fan-out stays bounded by one pool; the engine
  /// does not own it.  Null with jobs > 1 spins up an ephemeral pool per
  /// generate call.
  support::JobPool* pool = nullptr;
  /// Optional metrics sink (not owned; must outlive the engine).  When
  /// set, generate() records per-phase wall time histograms —
  /// gen.parse_us, gen.validate_us, gen.codegen_us (one sample per
  /// hardware module job), gen.drivergen_us, gen.merge_us — plus the
  /// gen.modules counter.  Span tracing is independent of this knob: it
  /// follows the process-wide installed tracer.
  support::telemetry::MetricsRegistry* metrics = nullptr;
};

class Engine {
 public:
  explicit Engine(const adapters::AdapterRegistry& registry =
                      adapters::AdapterRegistry::instance(),
                  EngineOptions options = {})
      : registry_(registry), options_(options) {}

  /// Parse + validate + generate.  Returns nullopt when the specification
  /// is rejected; every problem is reported through `diags`.
  [[nodiscard]] std::optional<GeneratedArtifacts> generate(
      std::string_view spec_text, DiagnosticEngine& diags) const;

  /// Generation from an already-parsed spec (validated in place).
  [[nodiscard]] std::optional<GeneratedArtifacts> generate(
      ir::DeviceSpec spec, DiagnosticEngine& diags) const;

  /// Cache-aware generation: on a hit the frontend and elaboration are
  /// skipped entirely and stored warnings are replayed; on a miss the spec
  /// is compiled and the result stored.  `cache` may be null (plain
  /// compile).  `diags` should be private to this spec so cached warnings
  /// stay attributable.  `spec_cache_stats`, when non-null, receives this
  /// call's own cache outcome (the per-spec delta batch reports print).
  [[nodiscard]] std::optional<ArtifactSet> generate_cached(
      std::string_view spec_text, DiagnosticEngine& diags,
      ArtifactCache* cache, CacheStats* spec_cache_stats = nullptr) const;

  /// The part of the cache key that lives outside the spec text.
  [[nodiscard]] std::string cache_config() const;

 private:
  const adapters::AdapterRegistry& registry_;
  EngineOptions options_;
};

}  // namespace splice
