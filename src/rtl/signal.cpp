// Signal is header-only; this translation unit anchors the library target.
#include "rtl/signal.hpp"
