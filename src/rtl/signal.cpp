#include "rtl/signal.hpp"

#include <algorithm>

#include "rtl/simulator.hpp"

namespace splice::rtl {

void Signal::value_changed() {
  if (owner_ != nullptr) owner_->on_signal_changed(*this);
}

void Signal::schedule_commit() {
  if (owner_ != nullptr) owner_->pending_commits_.push_back(this);
}

void Signal::add_watcher(Module& m) {
  if (owner_ == nullptr) {
    throw SpliceError("module '" + m.name() + "' cannot watch free signal '" +
                      name_ + "': no simulator owns it");
  }
  if (std::find(fanout_.begin(), fanout_.end(), &m) == fanout_.end()) {
    fanout_.push_back(&m);
  }
}

void Signal::add_clocked_watcher(Module& m) {
  if (owner_ == nullptr) {
    throw SpliceError("module '" + m.name() +
                      "' cannot clock-watch free signal '" + name_ +
                      "': no simulator owns it");
  }
  if (std::find(clocked_fanout_.begin(), clocked_fanout_.end(), &m) ==
      clocked_fanout_.end()) {
    clocked_fanout_.push_back(&m);
  }
}

}  // namespace splice::rtl
