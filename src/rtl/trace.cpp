#include "rtl/trace.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace splice::rtl {

Trace::Trace(Simulator& sim) : sim_(sim) {
  sim_.on_sample([this](std::uint64_t) {
    for (auto& ch : channels_) ch.values.push_back(ch.signal->get());
  });
}

void Trace::watch(Signal& s) { channels_.push_back(Channel{&s, {}}); }

void Trace::watch(const std::string& name) {
  Signal* s = sim_.find_signal(name);
  if (s == nullptr) throw SpliceError("Trace: unknown signal '" + name + "'");
  watch(*s);
}

std::size_t Trace::cycles_recorded() const {
  return channels_.empty() ? 0 : channels_.front().values.size();
}

const std::vector<std::uint64_t>& Trace::history(
    const std::string& name) const {
  for (const auto& ch : channels_) {
    if (ch.signal->name() == name) return ch.values;
  }
  throw SpliceError("Trace: signal '" + name + "' is not watched");
}

std::vector<const Signal*> Trace::watched() const {
  std::vector<const Signal*> out;
  out.reserve(channels_.size());
  for (const auto& ch : channels_) out.push_back(ch.signal);
  return out;
}

std::string Trace::render_ascii(std::size_t from_cycle,
                                std::size_t to_cycle) const {
  const std::size_t total = cycles_recorded();
  const std::size_t lo = std::min(from_cycle, total);
  const std::size_t hi = std::min(to_cycle, total);
  std::size_t name_w = 0;
  for (const auto& ch : channels_) {
    name_w = std::max(name_w, ch.signal->name().size());
  }

  // Cell width: wide enough for the largest hex value of any vector signal.
  std::size_t cell = 2;
  for (const auto& ch : channels_) {
    if (ch.signal->width() <= 1) continue;
    for (std::size_t c = lo; c < hi; ++c) {
      std::ostringstream os;
      os << std::hex << std::uppercase << ch.values[c];
      cell = std::max(cell, os.str().size() + 1);
    }
  }

  std::ostringstream out;
  // Cycle ruler.
  out << std::string(name_w, ' ') << "  ";
  for (std::size_t c = lo; c < hi; ++c) {
    std::string label = std::to_string(c);
    if (label.size() > cell) label = label.substr(label.size() - cell);
    out << label << std::string(cell - label.size() + 1, ' ');
  }
  out << '\n';

  for (const auto& ch : channels_) {
    out << ch.signal->name()
        << std::string(name_w - ch.signal->name().size(), ' ') << "  ";
    std::uint64_t prev = ~std::uint64_t{0};
    bool first = true;
    for (std::size_t c = lo; c < hi; ++c) {
      std::uint64_t v = ch.values[c];
      if (ch.signal->width() <= 1) {
        out << std::string(cell, v != 0 ? '-' : '_') << ' ';
      } else if (first || v != prev) {
        std::ostringstream hexv;
        hexv << std::hex << std::uppercase << v;
        std::string s = "|" + hexv.str();
        if (s.size() < cell) s += std::string(cell - s.size(), ' ');
        out << s << ' ';
      } else {
        out << std::string(cell, '.') << ' ';
      }
      prev = v;
      first = false;
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace splice::rtl
