// Run-time engine for compiled step programs.
//
// Owns the bit-packed signal arena and executes the statically scheduled
// unit stream.  Instead of the interpreter's dynamic worklist, each signal
// slot carries a precomputed list of dependent units (CSR layout); a value
// change flips those units' dirty bytes and the settle pass walks the
// region list in schedule order, running exactly the dirty units.  Acyclic
// regions need one pass by construction; cyclic regions iterate to a
// bounded fix point and throw a diagnostic naming the loop if they
// diverge.  Clock edges are gated too: a module that declared its clocked
// triggers (Module::watch_clocked / clocked_none + set_clock_busy) is
// skipped on cycles where nothing it watches changed and it is not busy.
//
// The executor synchronises with the Signal objects both ways: native
// kOut writes update Signal::cur_ directly (so samplers, traces and
// dynamic modules observe them), while changes made from outside the
// program (registered commits, dynamic eval_comb drives, test pokes) are
// queued by note_signal() and imported into the arena at the next settle.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/compile/program.hpp"
#include "support/telemetry.hpp"

namespace splice::rtl {

class Module;
class Signal;
class Simulator;

namespace compile {

class Executor {
 public:
  /// Per-region hotspot sample (--sim-profile / sim.prof.region.* keys).
  /// Counters accumulate only while Simulator profiling is enabled, so the
  /// region loop stays free of bookkeeping in the default configuration.
  struct RegionProfile {
    std::string name;  ///< first unit's name (+ "+N more" for wider regions)
    bool cyclic = false;
    std::uint32_t units = 0;
    std::uint64_t runs = 0;        ///< passes that ran at least one unit
    std::uint64_t iterations = 0;  ///< fix-point iterations (cyclic only)
  };

  /// Per-backend instrumentation (sim.compiled.* in metrics snapshots).
  struct Stats {
    std::uint64_t unit_runs = 0;
    std::uint64_t native_instrs = 0;
    std::uint64_t dynamic_evals = 0;
    std::uint64_t settle_skips = 0;  ///< settles with no pending work
    std::uint64_t region_iterations = 0;  ///< cyclic-region fix-point passes
    std::uint64_t clock_edges_run = 0;
    std::uint64_t clock_edges_skipped = 0;
  };

  /// Lowers and schedules sim's elaborated design; the executor is bound
  /// to the current structure (signals/modules/watches) — the simulator
  /// discards it on any structural change.
  explicit Executor(Simulator& sim);

  /// One clock cycle: samplers, gated clock edges, commit flush, settle.
  void step_cycle();
  /// Propagate combinational logic to a fix point (no-op fast path when
  /// nothing changed since the last settle).
  void settle();

  /// Signal changed outside the program: import at next settle.
  void note_signal(Signal& s);
  /// Module state changed (mark_dirty): force its units.
  void mark_module_dirty(Module& m);
  /// Module reported a not-busy -> busy transition: run its clock_edge()
  /// on the next cycle (Simulator::note_clock_busy routes here).
  void note_busy(Module& m);
  /// Reset-style invalidation: re-import everything, run everything.
  void mark_all_dirty();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const StepProgram& program() const { return prog_; }
  /// Snapshot of the per-region profiling counters (zeros unless the
  /// simulator had profiling enabled while stepping).
  [[nodiscard]] std::vector<RegionProfile> region_profiles() const;
  void add_metrics(support::telemetry::MetricsSnapshot& snap) const;

 private:
  void drain_external();
  void run_regions();
  bool maybe_run(std::uint32_t idx);
  void run_native(const Unit& u);
  void step_gated_scan();
  /// Mark every unit that reads signal slot `s` dirty.
  void wake_dependents(Slot s) {
    const std::uint32_t b = dep_offset_[s], e = dep_offset_[s + 1];
    for (std::uint32_t k = b; k < e; ++k) unit_dirty_[dep_unit_[k]] = 1;
  }
  /// A signal changed: flag its clocked watchers for the next edge.
  void wake_clocked(const Signal& s);

  Simulator& sim_;
  StepProgram prog_;
  std::vector<std::uint64_t> arena_;
  std::vector<std::uint64_t> epoch_;  ///< per-slot change stamp (kEdge)
  std::uint64_t now_ = 0;
  std::uint64_t settle_epoch0_ = 0;   ///< epoch floor of the current settle
  // Signal slot -> dependent unit ids, CSR layout.
  std::vector<std::uint32_t> dep_offset_;
  std::vector<std::uint32_t> dep_unit_;
  std::vector<std::uint8_t> unit_dirty_;
  std::vector<Signal*> external_;          ///< changed outside the program
  std::vector<std::uint8_t> external_mark_;  ///< per signal slot, dedup
  bool pending_ = false;      ///< any dirty unit or queued external
  bool has_always_ = false;   ///< any undeclared dynamic unit exists
  std::vector<Module*> clocked_always_;  ///< no clocked declaration
  std::vector<Module*> clocked_gated_;   ///< in module (interp) order
  // Gated-edge wake mask: bit i set means clocked_gated_[i] must run at the
  // next edge (a clock-watched signal changed, or it reported itself busy).
  // Idle cycles reduce to one zero test instead of a scan; designs with
  // more than 64 gated modules fall back to the scan (use_mask_ == false).
  bool use_mask_ = false;
  std::uint64_t gated_pending_ = 0;
  std::uint64_t gated_mask_all_ = 0;  ///< one bit per gated module
  std::unordered_map<Module*, std::vector<std::uint32_t>> module_units_;
  // Per-region profiling accumulators, indexed like prog_.regions; written
  // only under Simulator profiling (run_regions checks the flag once).
  std::vector<std::uint64_t> region_runs_;
  std::vector<std::uint64_t> region_iters_;
  Stats stats_;
};

}  // namespace compile
}  // namespace splice::rtl
