// Static scheduler for step programs.
//
// Orders the lowered units along the sensitivity graph (unit A feeds unit
// B when an output slot of A is an input slot of B) and groups them into
// regions: Tarjan condenses the graph into strongly connected components,
// a deterministic Kahn pass topologically orders the condensation, and
// consecutive acyclic components merge into one levelized single-pass
// region.  True combinational cycles survive as their own cyclic regions
// — the executor iterates just those to a bounded fix point instead of
// running a global worklist.  Dynamic (uncompiled) units always trail in
// one final region because their outputs are unknown statically.
#pragma once

#include "rtl/compile/program.hpp"

namespace splice::rtl::compile {

/// Reorders prog.units in place and fills prog.regions.
void schedule(StepProgram& prog);

}  // namespace splice::rtl::compile
