// Lowering from elaborated modules into the step program.
//
// A module opts into native compilation by overriding
// Module::lower_comb(CombBuilder&): it splits its combinational process
// into one or more named *units* (CombBuilder::unit) and re-expresses each
// as dataflow over Vals — SSA-style handles produced by the UnitBuilder
// ops below.  The builder constant-folds as it goes (a Val is either an
// arena slot or a compile-time constant), so zero-width/tied-off inputs
// cost nothing at run time, and it records exactly which signals each unit
// reads, which is what the static scheduler orders and the executor gates
// on.  The lowered units must reproduce eval_comb() bit-for-bit — the
// interpreter remains the differential oracle that checks they do.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rtl/compile/program.hpp"

namespace splice::rtl {

class Module;
class Signal;
class Simulator;

namespace compile {

class ProgramBuilder;

/// A lowered value: an arena slot or a folded constant.
struct Val {
  Slot slot = kNoSlot;
  bool is_const = false;
  std::uint64_t cval = 0;
};

/// Builds one unit's instruction run.  All reads must come in through
/// in()/changed()/load()/gather_bits()/select() so the unit's trigger set
/// is complete — reading a signal through a captured raw value would
/// compile, but the unit would never re-run when that signal changes.
class UnitBuilder {
 public:
  /// Read a signal (registers it as a unit input).
  Val in(Signal& s);
  /// Compile-time constant.
  Val imm(std::uint64_t v);
  Val imm(bool v) { return imm(static_cast<std::uint64_t>(v ? 1 : 0)); }
  /// Read module-internal state (kSmbLoad).  The module must mark_dirty()
  /// whenever the pointed-to state changes.
  Val load(const bool* p);
  Val load(const std::uint64_t* p);

  Val band(Val a, Val b) { return binop(Op::kAnd, a, b); }
  Val bor(Val a, Val b) { return binop(Op::kOr, a, b); }
  Val bxor(Val a, Val b) { return binop(Op::kXor, a, b); }
  Val lnot(Val a) { return unop(Op::kNotBool, a); }
  Val nonzero(Val a) { return unop(Op::kNonZero, a); }
  Val eq(Val a, Val b) { return binop(Op::kEq, a, b); }
  Val ne(Val a, Val b) { return binop(Op::kNe, a, b); }
  Val lt(Val a, Val b) { return binop(Op::kLt, a, b); }
  Val add(Val a, Val b) { return binop(Op::kAdd, a, b); }
  Val sub(Val a, Val b) { return binop(Op::kSub, a, b); }
  Val shl(Val a, Val b) { return binop(Op::kShl, a, b); }
  Val shr(Val a, Val b) { return binop(Op::kShr, a, b); }
  Val mux(Val sel, Val t, Val f);
  /// Lowest set bit index, 0 for 0 (bits::one_hot_index semantics in every
  /// context the generated logic uses it: the result is only consumed when
  /// the operand is known non-zero).
  Val one_hot(Val a);
  /// 1 iff `s` changed during the current settle (edge detect).
  Val changed(Signal& s);
  /// OR over (src != 0) << bit for each {src, bit} pair.
  Val gather_bits(const std::vector<std::pair<Signal*, unsigned>>& srcs);
  /// Value of the LAST matching case (match value -> source signal), or
  /// `def` when none matches — the arbiter's fan-in mux shape.
  Val select(Val sel,
             const std::vector<std::pair<std::uint64_t, Signal*>>& cases,
             Val def);

  /// Drive `s` with `v` (combinational output; masked to the signal width).
  void out(Signal& s, Val v);

 private:
  friend class CombBuilder;

  UnitBuilder(ProgramBuilder& pb, Module& mod, std::string name);

  Val binop(Op op, Val a, Val b);
  Val unop(Op op, Val a);
  Slot materialize(Val v);
  Slot temp();
  void add_input(const Signal& s);
  Val load_ext(ExtState e);

  ProgramBuilder& pb_;
  Module& mod_;
  std::string name_;
  std::vector<Instr> code_;
  std::vector<Slot> inputs_;
  std::vector<Slot> outputs_;
};

/// Handed to Module::lower_comb.  unit() closes the previous unit and
/// opens a new one; splitting a module into several units lets the
/// scheduler break module-level cycles (e.g. an adapter's pins->SIS and
/// SIS->pins directions) into acyclic single-pass regions.
class CombBuilder {
 public:
  UnitBuilder& unit(std::string name);

 private:
  friend class ProgramBuilder;

  CombBuilder(ProgramBuilder& pb, Module& mod) : pb_(pb), mod_(mod) {}
  void close();

  ProgramBuilder& pb_;
  Module& mod_;
  std::unique_ptr<UnitBuilder> cur_;
};

/// Lowers a whole simulator: native units from lower_comb() overrides,
/// dynamic fallback units for everything else.  Output still needs
/// schedule() (scheduler.hpp) before execution.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(Simulator& sim) : sim_(sim) {}
  [[nodiscard]] StepProgram build();

 private:
  friend class UnitBuilder;
  friend class CombBuilder;

  Slot alloc_const(std::uint64_t v);
  Slot alloc_temp();
  Slot alloc_slot(std::uint64_t init);
  std::uint32_t add_ext(ExtState e);
  std::uint32_t add_table(const std::vector<TableEntry>& entries);

  Simulator& sim_;
  StepProgram prog_;
  std::vector<std::pair<std::uint64_t, Slot>> const_pool_;
};

}  // namespace compile
}  // namespace splice::rtl
