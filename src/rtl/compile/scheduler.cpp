#include "rtl/compile/scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace splice::rtl::compile {

namespace {

struct SccResult {
  std::vector<std::uint32_t> comp_of;            // unit -> component id
  std::vector<std::vector<std::uint32_t>> comps; // component -> unit ids
};

/// Tarjan over the native-unit graph.  Components come out in reverse
/// topological order; we re-derive a deterministic order with Kahn below,
/// so only the grouping matters here.
SccResult tarjan(std::size_t n,
                 const std::vector<std::vector<std::uint32_t>>& succ) {
  SccResult res;
  res.comp_of.assign(n, 0);
  std::vector<std::uint32_t> index(n, 0), low(n, 0);
  std::vector<bool> on_stack(n, false), visited(n, false);
  std::vector<std::uint32_t> stack;
  std::uint32_t next_index = 1;

  std::function<void(std::uint32_t)> strongconnect = [&](std::uint32_t v) {
    index[v] = low[v] = next_index++;
    visited[v] = true;
    stack.push_back(v);
    on_stack[v] = true;
    for (std::uint32_t w : succ[v]) {
      if (!visited[w]) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack[w]) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      const auto comp = static_cast<std::uint32_t>(res.comps.size());
      res.comps.emplace_back();
      for (;;) {
        const std::uint32_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        res.comp_of[w] = comp;
        res.comps[comp].push_back(w);
        if (w == v) break;
      }
    }
  };
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!visited[v]) strongconnect(v);
  }
  return res;
}

}  // namespace

void schedule(StepProgram& prog) {
  std::vector<Unit> native;
  std::vector<Unit> dynamic;
  for (Unit& u : prog.units) {
    (u.dynamic ? dynamic : native).push_back(std::move(u));
  }
  const std::size_t n = native.size();

  // Producing unit(s) for every signal slot.  A well-formed design has one
  // combinational driver per signal; tolerate several (last writer wins at
  // run time, both become scheduling edges).
  std::vector<std::vector<std::uint32_t>> def(prog.n_signals);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (Slot s : native[i].outputs) def[s].push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> succ(n);
  std::vector<bool> self_loop(n, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    for (Slot s : native[v].inputs) {
      for (std::uint32_t u : def[s]) {
        if (u == v) {
          self_loop[v] = true;
        } else if (std::find(succ[u].begin(), succ[u].end(), v) ==
                   succ[u].end()) {
          succ[u].push_back(v);
        }
      }
    }
  }

  SccResult scc = tarjan(n, succ);
  const std::size_t nc = scc.comps.size();
  for (auto& comp : scc.comps) std::sort(comp.begin(), comp.end());

  // Condensation in-degrees, then a deterministic Kahn order: among ready
  // components always pick the one containing the smallest unit index, so
  // the schedule is stable across runs and platforms.
  std::vector<std::uint32_t> indeg(nc, 0);
  std::vector<std::vector<std::uint32_t>> csucc(nc);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v : succ[u]) {
      const std::uint32_t cu = scc.comp_of[u], cv = scc.comp_of[v];
      if (cu == cv) continue;
      if (std::find(csucc[cu].begin(), csucc[cu].end(), cv) ==
          csucc[cu].end()) {
        csucc[cu].push_back(cv);
        ++indeg[cv];
      }
    }
  }
  std::vector<std::uint32_t> ready;
  for (std::uint32_t c = 0; c < nc; ++c) {
    if (indeg[c] == 0) ready.push_back(c);
  }
  std::vector<std::uint32_t> order;
  order.reserve(nc);
  while (!ready.empty()) {
    auto best = std::min_element(
        ready.begin(), ready.end(), [&](std::uint32_t a, std::uint32_t b) {
          return scc.comps[a].front() < scc.comps[b].front();
        });
    const std::uint32_t c = *best;
    ready.erase(best);
    order.push_back(c);
    for (std::uint32_t d : csucc[c]) {
      if (--indeg[d] == 0) ready.push_back(d);
    }
  }

  std::vector<Unit> ordered;
  ordered.reserve(prog.units.size());
  std::vector<Region> regions;
  for (std::uint32_t c : order) {
    const auto& comp = scc.comps[c];
    const bool cyclic = comp.size() > 1 || self_loop[comp.front()];
    if (cyclic) {
      Region r;
      r.first_unit = static_cast<std::uint32_t>(ordered.size());
      r.unit_count = static_cast<std::uint32_t>(comp.size());
      r.cyclic = true;
      for (std::uint32_t u : comp) {
        if (!r.cycle_desc.empty()) r.cycle_desc += " -> ";
        r.cycle_desc += native[u].name;
        ordered.push_back(std::move(native[u]));
      }
      regions.push_back(std::move(r));
    } else {
      if (regions.empty() || regions.back().cyclic || regions.back().dynamic) {
        Region r;
        r.first_unit = static_cast<std::uint32_t>(ordered.size());
        r.unit_count = 0;
        regions.push_back(std::move(r));
      }
      ++regions.back().unit_count;
      ordered.push_back(std::move(native[comp.front()]));
    }
  }
  if (!dynamic.empty()) {
    Region r;
    r.first_unit = static_cast<std::uint32_t>(ordered.size());
    r.unit_count = static_cast<std::uint32_t>(dynamic.size());
    r.dynamic = true;
    regions.push_back(std::move(r));
    for (Unit& u : dynamic) ordered.push_back(std::move(u));
  }

  prog.units = std::move(ordered);
  prog.regions = std::move(regions);
}

}  // namespace splice::rtl::compile
