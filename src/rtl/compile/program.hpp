// Flat "step program" representation for the compiled simulation backend.
//
// After elaboration the design is lowered once into this form: every
// signal's two-state value lives in one contiguous bit-packed arena
// (vector<uint64_t>, one slot per signal/constant/temporary), and each
// module's combinational process becomes a *unit* — a contiguous run of
// instructions over a small opcode set (assign/mux/arith/compare/
// SMB-state-load/edge-detect) plus table-driven gather/select ops for the
// arbiter-style fan-in muxes.  Units carry their input signal slots so the
// executor can gate re-evaluation statically instead of consulting the
// interpreter's dynamic worklist; the scheduler orders them topologically
// along the sensitivity graph and groups them into levelized regions
// (single-pass for acyclic logic, bounded fix-point only where true cycles
// remain).  Modules that do not lower natively are wrapped as *dynamic*
// units: the executor calls their eval_comb() through the usual virtual
// dispatch, gated by the same input-slot tracking.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace splice::rtl {

class Module;
class Signal;

namespace compile {

/// Arena slot index.  16 bits bound the arena at 65535 slots — orders of
/// magnitude above any elaborated Splice design, and it keeps Instr at
/// 12 bytes so a unit's instruction run stays in one or two cache lines.
using Slot = std::uint16_t;
inline constexpr Slot kNoSlot = 0xFFFFu;
inline constexpr std::size_t kMaxSlots = 0xFFFFu;  // kNoSlot is reserved

enum class Op : std::uint8_t {
  kCopy,     ///< dst = a
  kAnd,      ///< dst = a & b
  kOr,       ///< dst = a | b
  kXor,      ///< dst = a ^ b
  kNotBool,  ///< dst = (a == 0)
  kNonZero,  ///< dst = (a != 0)
  kEq,       ///< dst = (a == b)
  kNe,       ///< dst = (a != b)
  kLt,       ///< dst = (a < b), unsigned
  kAdd,      ///< dst = a + b (mod 2^64; masked at kOut)
  kSub,      ///< dst = a - b (mod 2^64; masked at kOut)
  kShl,      ///< dst = a << (b & 63)
  kShr,      ///< dst = a >> (b & 63)
  kMux,      ///< dst = a ? b : c
  kOneHot,   ///< dst = a ? countr_zero(a) : 0 (lowest set bit index)
  kEdge,     ///< dst = 1 iff slot `a` changed during this settle
  kSmbLoad,  ///< dst = ext-state load; ext[aux] names {ptr, kind}
  kGatherBits,    ///< dst = OR over table[off..off+n): (slot!=0) << imm
  kSelectTable,   ///< dst = value of LAST table entry with imm == a, else b
  kOut,      ///< drive signal slot dst with a & mask[dst] (see executor)
};

[[nodiscard]] const char* op_name(Op op);

struct Instr {
  Op op;
  Slot dst = kNoSlot;
  Slot a = kNoSlot;
  Slot b = kNoSlot;
  Slot c = kNoSlot;
  /// Table ops: (offset << 8) | count, count <= 255.  kSmbLoad: ext index.
  std::uint32_t aux = 0;
};

[[nodiscard]] inline std::uint32_t pack_table(std::size_t offset,
                                              std::size_t count) {
  return static_cast<std::uint32_t>(offset << 8 | count);
}
[[nodiscard]] inline std::uint32_t table_offset(std::uint32_t aux) {
  return aux >> 8;
}
[[nodiscard]] inline std::uint32_t table_count(std::uint32_t aux) {
  return aux & 0xFFu;
}

/// One row of the shared operand table (kGatherBits / kSelectTable).
struct TableEntry {
  std::uint64_t imm = 0;  ///< bit position (gather) or match value (select)
  Slot slot = kNoSlot;    ///< source arena slot
};

/// Module-internal state read by a lowered comb process (kSmbLoad).  The
/// pointer stays valid for the program's lifetime: modules are owned by the
/// simulator and a structural change recompiles.  Consistency contract: a
/// module whose ext state changes must call mark_dirty() (the same contract
/// the interpreter's event scheduler already imposes).
struct ExtState {
  enum class Kind : std::uint8_t { kBool, kU64 };
  const void* ptr = nullptr;
  Kind kind = Kind::kBool;
};

/// A gated re-evaluation unit: one contiguous instruction run (native) or
/// one eval_comb() call (dynamic), triggered when any input slot changes.
struct Unit {
  std::string name;
  Module* module = nullptr;
  std::uint32_t first_instr = 0;
  std::uint32_t instr_count = 0;
  bool dynamic = false;
  /// Dynamic unit without declared sensitivities: run every settle pass
  /// (the compiled mirror of the interpreter's full-pass fallback).
  bool always = false;
  std::vector<Slot> inputs;   ///< signal slots that trigger this unit
  std::vector<Slot> outputs;  ///< signal slots written (scheduling only)
};

/// A maximal schedulable run of units.  Acyclic regions evaluate in one
/// topologically ordered pass; cyclic regions (a strongly connected
/// component of the unit graph) iterate to a bounded fix point.  Dynamic
/// units trail in their own region — their outputs are unknown statically,
/// so the executor's outer settle loop re-propagates whatever they drive.
struct Region {
  std::uint32_t first_unit = 0;
  std::uint32_t unit_count = 0;
  bool cyclic = false;
  bool dynamic = false;
  std::string cycle_desc;  ///< unit names, for the loop diagnostic
};

struct StepProgram {
  std::size_t n_signals = 0;  ///< slots [0, n_signals) mirror Simulator signals
  std::size_t n_slots = 0;    ///< total arena size (signals + consts + temps)
  std::vector<std::uint64_t> init;  ///< initial arena image (size n_slots)
  std::vector<std::uint64_t> mask;  ///< per-slot write masks (size n_slots)
  std::vector<Instr> code;
  std::vector<TableEntry> table;
  std::vector<ExtState> ext;
  std::vector<Unit> units;    ///< in final scheduled order
  std::vector<Region> regions;
  std::vector<Signal*> slot_sig;  ///< size n_signals; slot -> signal

  [[nodiscard]] std::string dump() const;
};

}  // namespace compile
}  // namespace splice::rtl
