#include "rtl/compile/executor.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "rtl/compile/lowering.hpp"
#include "rtl/compile/scheduler.hpp"
#include "rtl/simulator.hpp"

namespace splice::rtl::compile {

Executor::Executor(Simulator& sim) : sim_(sim) {
  prog_ = ProgramBuilder(sim).build();
  schedule(prog_);

  arena_ = prog_.init;
  epoch_.assign(prog_.n_slots, 0);
  unit_dirty_.assign(prog_.units.size(), 1);
  external_mark_.assign(prog_.n_signals, 0);
  external_.reserve(prog_.n_signals);

  // Signal slot -> dependent units, CSR.
  dep_offset_.assign(prog_.n_signals + 1, 0);
  for (const Unit& u : prog_.units) {
    for (Slot s : u.inputs) ++dep_offset_[s + 1];
  }
  for (std::size_t i = 1; i < dep_offset_.size(); ++i) {
    dep_offset_[i] += dep_offset_[i - 1];
  }
  dep_unit_.resize(dep_offset_.back());
  std::vector<std::uint32_t> cursor(dep_offset_.begin(),
                                    dep_offset_.end() - 1);
  for (std::uint32_t i = 0; i < prog_.units.size(); ++i) {
    for (Slot s : prog_.units[i].inputs) dep_unit_[cursor[s]++] = i;
  }

  for (std::uint32_t i = 0; i < prog_.units.size(); ++i) {
    const Unit& u = prog_.units[i];
    if (u.module != nullptr) module_units_[u.module].push_back(i);
    has_always_ = has_always_ || u.always;
  }
  for (const auto& m : sim_.modules_) {
    (m->clocked_declared_ ? clocked_gated_ : clocked_always_)
        .push_back(m.get());
    // First compiled cycle clocks everything: the program has no change
    // history yet, and a spurious clock_edge() is always safe.
    m->clock_event_ = true;
  }
  use_mask_ = clocked_gated_.size() <= 64;
  for (std::uint32_t i = 0; i < clocked_gated_.size(); ++i) {
    clocked_gated_[i]->gate_bit_ = use_mask_ ? i : Module::kNoGateBit;
  }
  for (Module* m : clocked_always_) m->gate_bit_ = Module::kNoGateBit;
  gated_mask_all_ =
      use_mask_ && !clocked_gated_.empty()
          ? ~std::uint64_t{0} >> (64 - clocked_gated_.size())
          : 0;
  gated_pending_ = gated_mask_all_;  // first cycle runs everything
  pending_ = true;

  region_runs_.assign(prog_.regions.size(), 0);
  region_iters_.assign(prog_.regions.size(), 0);
}

void Executor::wake_clocked(const Signal& s) {
  for (Module* m : s.clocked_fanout_) {
    m->clock_event_ = true;
    if (m->gate_bit_ != Module::kNoGateBit) {
      gated_pending_ |= std::uint64_t{1} << m->gate_bit_;
    }
  }
}

void Executor::note_busy(Module& m) {
  if (m.gate_bit_ != Module::kNoGateBit) {
    gated_pending_ |= std::uint64_t{1} << m.gate_bit_;
  }
}

void Executor::note_signal(Signal& s) {
  pending_ = true;
  const std::uint32_t slot = s.slot_;
  if (external_mark_[slot] == 0) {
    external_mark_[slot] = 1;
    external_.push_back(&s);
  }
  wake_clocked(s);
}

void Executor::mark_module_dirty(Module& m) {
  pending_ = true;
  auto it = module_units_.find(&m);
  if (it != module_units_.end()) {
    for (std::uint32_t idx : it->second) unit_dirty_[idx] = 1;
  }
}

void Executor::mark_all_dirty() {
  pending_ = true;
  std::fill(unit_dirty_.begin(), unit_dirty_.end(), 1);
  for (const auto& m : sim_.modules_) m->clock_event_ = true;
  gated_pending_ = gated_mask_all_;
  for (std::size_t i = 0; i < prog_.n_signals; ++i) {
    const std::uint64_t v = prog_.slot_sig[i]->cur_;
    if (arena_[i] != v) {
      arena_[i] = v;
      epoch_[i] = ++now_;
    }
  }
}

void Executor::drain_external() {
  for (Signal* s : external_) {
    const std::uint32_t slot = s->slot_;
    external_mark_[slot] = 0;
    const std::uint64_t v = s->cur_;
    if (arena_[slot] != v) {
      arena_[slot] = v;
      epoch_[slot] = ++now_;
      wake_dependents(static_cast<Slot>(slot));
    }
  }
  external_.clear();
}

void Executor::settle() {
  ++sim_.stats_.settles;
  // Fast path: nothing changed since the last settle, nothing to do.
  // Undeclared dynamic units forfeit it — the interpreter re-runs them
  // every settle, so the compiled backend must too.
  if (!pending_ && !has_always_) {
    ++stats_.settle_skips;
    return;
  }
  settle_epoch0_ = now_ + 1;
  for (int iter = 0; iter < Simulator::kMaxSettleIterations; ++iter) {
    pending_ = false;
    drain_external();
    run_regions();
    // Dynamic evals (and mark_dirty calls from them) feed changes back in
    // through note_signal; re-propagate until the wavefront dies out.
    if (external_.empty() && !pending_) return;
  }
  throw SpliceError("combinational logic failed to settle (loop?)");
}

void Executor::run_regions() {
  const bool prof = sim_.profiling_;
  for (std::size_t ri = 0; ri < prog_.regions.size(); ++ri) {
    const Region& r = prog_.regions[ri];
    const std::uint32_t b = r.first_unit;
    const std::uint32_t e = r.first_unit + r.unit_count;
    if (!r.cyclic) {
      // Levelized: topological order guarantees one pass suffices.  The
      // profiled variant collects "did anything run"; the default loop
      // stays free of that bookkeeping.
      if (prof) {
        bool any = false;
        for (std::uint32_t i = b; i < e; ++i) any = maybe_run(i) || any;
        if (any) ++region_runs_[ri];
      } else {
        for (std::uint32_t i = b; i < e; ++i) maybe_run(i);
      }
    } else {
      std::uint64_t iters = 0;
      for (int it = 0;; ++it) {
        bool any = false;
        for (std::uint32_t i = b; i < e; ++i) any = maybe_run(i) || any;
        if (!any) break;
        ++iters;
        ++stats_.region_iterations;
        if (it >= Simulator::kMaxSettleIterations) {
          throw SpliceError(
              "combinational loop failed to settle in compiled region: " +
              r.cycle_desc);
        }
      }
      if (prof && iters > 0) {
        ++region_runs_[ri];
        region_iters_[ri] += iters;
      }
    }
  }
}

bool Executor::maybe_run(std::uint32_t idx) {
  const Unit& u = prog_.units[idx];
  if (unit_dirty_[idx] == 0 && !u.always) return false;
  unit_dirty_[idx] = 0;
  ++stats_.unit_runs;
  if (u.dynamic) {
    ++stats_.dynamic_evals;
    sim_.run_eval(*u.module);
  } else {
    run_native(u);
  }
  return true;
}

void Executor::run_native(const Unit& u) {
  std::uint64_t* const a = arena_.data();
  const Instr* ip = prog_.code.data() + u.first_instr;
  const Instr* const end = ip + u.instr_count;
  stats_.native_instrs += u.instr_count;
  for (; ip != end; ++ip) {
    const Instr& in = *ip;
    switch (in.op) {
      case Op::kCopy: a[in.dst] = a[in.a]; break;
      case Op::kAnd: a[in.dst] = a[in.a] & a[in.b]; break;
      case Op::kOr: a[in.dst] = a[in.a] | a[in.b]; break;
      case Op::kXor: a[in.dst] = a[in.a] ^ a[in.b]; break;
      case Op::kNotBool: a[in.dst] = a[in.a] == 0 ? 1 : 0; break;
      case Op::kNonZero: a[in.dst] = a[in.a] != 0 ? 1 : 0; break;
      case Op::kEq: a[in.dst] = a[in.a] == a[in.b] ? 1 : 0; break;
      case Op::kNe: a[in.dst] = a[in.a] != a[in.b] ? 1 : 0; break;
      case Op::kLt: a[in.dst] = a[in.a] < a[in.b] ? 1 : 0; break;
      case Op::kAdd: a[in.dst] = a[in.a] + a[in.b]; break;
      case Op::kSub: a[in.dst] = a[in.a] - a[in.b]; break;
      case Op::kShl: a[in.dst] = a[in.a] << (a[in.b] & 63); break;
      case Op::kShr: a[in.dst] = a[in.a] >> (a[in.b] & 63); break;
      case Op::kMux: a[in.dst] = a[in.a] != 0 ? a[in.b] : a[in.c]; break;
      case Op::kOneHot: {
        const std::uint64_t x = a[in.a];
        a[in.dst] =
            x != 0 ? static_cast<std::uint64_t>(std::countr_zero(x)) : 0;
        break;
      }
      case Op::kEdge:
        a[in.dst] = epoch_[in.a] >= settle_epoch0_ ? 1 : 0;
        break;
      case Op::kSmbLoad: {
        const ExtState& e = prog_.ext[in.aux];
        a[in.dst] = e.kind == ExtState::Kind::kBool
                        ? static_cast<std::uint64_t>(
                              *static_cast<const bool*>(e.ptr) ? 1 : 0)
                        : *static_cast<const std::uint64_t*>(e.ptr);
        break;
      }
      case Op::kGatherBits: {
        const std::uint32_t off = table_offset(in.aux);
        const std::uint32_t cnt = table_count(in.aux);
        std::uint64_t v = 0;
        for (std::uint32_t k = 0; k < cnt; ++k) {
          const TableEntry& t = prog_.table[off + k];
          v |= static_cast<std::uint64_t>(a[t.slot] != 0) << t.imm;
        }
        a[in.dst] = v;
        break;
      }
      case Op::kSelectTable: {
        const std::uint32_t off = table_offset(in.aux);
        const std::uint32_t cnt = table_count(in.aux);
        const std::uint64_t sel = a[in.a];
        std::uint64_t v = a[in.b];  // default; last match wins
        for (std::uint32_t k = 0; k < cnt; ++k) {
          const TableEntry& t = prog_.table[off + k];
          if (t.imm == sel) v = a[t.slot];
        }
        a[in.dst] = v;
        break;
      }
      case Op::kOut: {
        const std::uint64_t v = a[in.a] & prog_.mask[in.dst];
        if (v != a[in.dst]) {
          a[in.dst] = v;
          epoch_[in.dst] = ++now_;
          wake_dependents(in.dst);
          // Keep the Signal object coherent: samplers, traces, dynamic
          // modules and clocked processes all read cur_ directly.
          Signal* s = prog_.slot_sig[in.dst];
          s->cur_ = v;
          ++sim_.stats_.signal_changes;
          wake_clocked(*s);
        }
        break;
      }
    }
  }
}

void Executor::step_cycle() {
  for (auto& fn : sim_.samplers_) fn(sim_.cycle_);
  for (Module* m : clocked_always_) m->clock_edge();
  stats_.clock_edges_run += clocked_always_.size();
  if (use_mask_) {
    // Wake-mask walk, in module (interpreter) order.  Bits set *during* an
    // edge for modules later in the order run this same cycle (the
    // interpreter's scan would reach them after their waker); bits for
    // modules already passed — and busy re-arms recorded in `next` — wait
    // for the following cycle.  Wholly idle cycles are one zero test.
    std::uint64_t next = 0;
    std::uint32_t ran = 0;
    unsigned cursor = 0;
    while (cursor < 64) {
      const std::uint64_t ahead = gated_pending_ & (~std::uint64_t{0} << cursor);
      if (ahead == 0) break;
      const unsigned idx = static_cast<unsigned>(std::countr_zero(ahead));
      gated_pending_ &= ~(std::uint64_t{1} << idx);
      Module* m = clocked_gated_[idx];
      m->clock_event_ = false;
      m->clock_edge();
      ++ran;
      if (m->clock_busy_) next |= std::uint64_t{1} << idx;
      cursor = idx + 1;
    }
    gated_pending_ |= next;  // plus any below-cursor wakes still in the mask
    stats_.clock_edges_run += ran;
    stats_.clock_edges_skipped += clocked_gated_.size() - ran;
  } else {
    step_gated_scan();
  }
  sim_.flush_commits();
  if (has_always_) pending_ = true;
  settle();
}

void Executor::step_gated_scan() {
  for (Module* m : clocked_gated_) {
    // A spurious clock_edge() is always safe (the interpreter clocks every
    // module every cycle); only a *missed* one can diverge, and the
    // declared trigger set plus the busy flag must rule that out.
    if (m->clock_busy_ || m->clock_event_) {
      m->clock_event_ = false;
      m->clock_edge();
      ++stats_.clock_edges_run;
    } else {
      ++stats_.clock_edges_skipped;
    }
  }
}

std::vector<Executor::RegionProfile> Executor::region_profiles() const {
  std::vector<RegionProfile> out;
  out.reserve(prog_.regions.size());
  for (std::size_t ri = 0; ri < prog_.regions.size(); ++ri) {
    const Region& r = prog_.regions[ri];
    RegionProfile p;
    p.name = prog_.units[r.first_unit].name;
    if (r.unit_count > 1) {
      p.name += " +" + std::to_string(r.unit_count - 1) + " more";
    }
    p.cyclic = r.cyclic;
    p.units = r.unit_count;
    p.runs = region_runs_[ri];
    p.iterations = region_iters_[ri];
    out.push_back(std::move(p));
  }
  return out;
}

void Executor::add_metrics(support::telemetry::MetricsSnapshot& snap) const {
  snap.counters["sim.compiled.unit_runs"] = stats_.unit_runs;
  snap.counters["sim.compiled.native_instrs"] = stats_.native_instrs;
  snap.counters["sim.compiled.dynamic_evals"] = stats_.dynamic_evals;
  snap.counters["sim.compiled.settle_skips"] = stats_.settle_skips;
  snap.counters["sim.compiled.region_iterations"] = stats_.region_iterations;
  snap.counters["sim.compiled.clock_edges_run"] = stats_.clock_edges_run;
  snap.counters["sim.compiled.clock_edges_skipped"] =
      stats_.clock_edges_skipped;
  snap.gauges["sim.compiled.units"] =
      static_cast<std::int64_t>(prog_.units.size());
  std::int64_t dyn = 0;
  for (const Unit& u : prog_.units) dyn += u.dynamic ? 1 : 0;
  snap.gauges["sim.compiled.dynamic_units"] = dyn;
  snap.gauges["sim.compiled.instrs"] =
      static_cast<std::int64_t>(prog_.code.size());
  snap.gauges["sim.compiled.regions"] =
      static_cast<std::int64_t>(prog_.regions.size());
  snap.gauges["sim.compiled.arena_slots"] =
      static_cast<std::int64_t>(prog_.n_slots);
  if (sim_.profiling_) {
    // sim.prof.region.NNN.* keys appear only under profiling, matching the
    // interpreter's sim.prof.wakes.* gating.  Zero-padded index keeps the
    // sorted metrics render in schedule order.
    char idx[8];
    for (std::size_t ri = 0; ri < region_runs_.size(); ++ri) {
      std::snprintf(idx, sizeof idx, "%03zu", ri);
      const std::string base = "sim.prof.region." + std::string(idx);
      snap.counters[base + ".runs"] = region_runs_[ri];
      snap.counters[base + ".iterations"] = region_iters_[ri];
    }
  }
}

}  // namespace splice::rtl::compile
