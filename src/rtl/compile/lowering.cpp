#include "rtl/compile/lowering.hpp"

#include <algorithm>
#include <bit>

#include "rtl/simulator.hpp"

namespace splice::rtl::compile {

namespace {

std::uint64_t fold(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kNotBool: return a == 0 ? 1 : 0;
    case Op::kNonZero: return a != 0 ? 1 : 0;
    case Op::kEq: return a == b ? 1 : 0;
    case Op::kNe: return a != b ? 1 : 0;
    case Op::kLt: return a < b ? 1 : 0;
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kShl: return a << (b & 63);
    case Op::kShr: return a >> (b & 63);
    case Op::kOneHot:
      return a != 0 ? static_cast<std::uint64_t>(std::countr_zero(a)) : 0;
    default: break;
  }
  throw SpliceError("lowering: op is not foldable");
}

}  // namespace

// -- UnitBuilder --------------------------------------------------------------

UnitBuilder::UnitBuilder(ProgramBuilder& pb, Module& mod, std::string name)
    : pb_(pb), mod_(mod), name_(std::move(name)) {}

void UnitBuilder::add_input(const Signal& s) {
  const Slot slot = static_cast<Slot>(s.slot_);
  if (std::find(inputs_.begin(), inputs_.end(), slot) == inputs_.end()) {
    inputs_.push_back(slot);
  }
}

Val UnitBuilder::in(Signal& s) {
  add_input(s);
  return Val{static_cast<Slot>(s.slot_), false, 0};
}

Val UnitBuilder::imm(std::uint64_t v) { return Val{kNoSlot, true, v}; }

Slot UnitBuilder::materialize(Val v) {
  if (!v.is_const) return v.slot;
  return pb_.alloc_const(v.cval);
}

Slot UnitBuilder::temp() { return pb_.alloc_temp(); }

Val UnitBuilder::load_ext(ExtState e) {
  const Slot dst = temp();
  code_.push_back(Instr{Op::kSmbLoad, dst, kNoSlot, kNoSlot, kNoSlot,
                        pb_.add_ext(e)});
  return Val{dst};
}

Val UnitBuilder::load(const bool* p) {
  return load_ext(ExtState{p, ExtState::Kind::kBool});
}

Val UnitBuilder::load(const std::uint64_t* p) {
  return load_ext(ExtState{p, ExtState::Kind::kU64});
}

Val UnitBuilder::binop(Op op, Val a, Val b) {
  if (a.is_const && b.is_const) return imm(fold(op, a.cval, b.cval));
  const Slot dst = temp();
  code_.push_back(Instr{op, dst, materialize(a), materialize(b), kNoSlot, 0});
  return Val{dst};
}

Val UnitBuilder::unop(Op op, Val a) {
  if (a.is_const) return imm(fold(op, a.cval, 0));
  const Slot dst = temp();
  code_.push_back(Instr{op, dst, a.slot, kNoSlot, kNoSlot, 0});
  return Val{dst};
}

Val UnitBuilder::mux(Val sel, Val t, Val f) {
  if (sel.is_const) return sel.cval != 0 ? t : f;
  const Slot dst = temp();
  code_.push_back(
      Instr{Op::kMux, dst, sel.slot, materialize(t), materialize(f), 0});
  return Val{dst};
}

Val UnitBuilder::one_hot(Val a) { return unop(Op::kOneHot, a); }

Val UnitBuilder::changed(Signal& s) {
  add_input(s);
  const Slot dst = temp();
  code_.push_back(
      Instr{Op::kEdge, dst, static_cast<Slot>(s.slot_), kNoSlot, kNoSlot, 0});
  return Val{dst};
}

Val UnitBuilder::gather_bits(
    const std::vector<std::pair<Signal*, unsigned>>& srcs) {
  if (srcs.empty()) return imm(std::uint64_t{0});
  std::vector<TableEntry> entries;
  entries.reserve(srcs.size());
  for (const auto& [sig, bit] : srcs) {
    add_input(*sig);
    entries.push_back(TableEntry{bit, static_cast<Slot>(sig->slot_)});
  }
  const Slot dst = temp();
  code_.push_back(Instr{Op::kGatherBits, dst, kNoSlot, kNoSlot, kNoSlot,
                        pb_.add_table(entries)});
  return Val{dst};
}

Val UnitBuilder::select(
    Val sel, const std::vector<std::pair<std::uint64_t, Signal*>>& cases,
    Val def) {
  if (sel.is_const) {
    // Last matching case wins, like the arbiter's sequential compare chain.
    Signal* hit = nullptr;
    for (const auto& [match, sig] : cases) {
      if (match == sel.cval) hit = sig;
    }
    return hit != nullptr ? in(*hit) : def;
  }
  if (cases.empty()) return def;
  std::vector<TableEntry> entries;
  entries.reserve(cases.size());
  for (const auto& [match, sig] : cases) {
    add_input(*sig);
    entries.push_back(TableEntry{match, static_cast<Slot>(sig->slot_)});
  }
  const Slot dst = temp();
  code_.push_back(Instr{Op::kSelectTable, dst, sel.slot, materialize(def),
                        kNoSlot, pb_.add_table(entries)});
  return Val{dst};
}

void UnitBuilder::out(Signal& s, Val v) {
  const Slot dst = static_cast<Slot>(s.slot_);
  code_.push_back(Instr{Op::kOut, dst, materialize(v), kNoSlot, kNoSlot, 0});
  if (std::find(outputs_.begin(), outputs_.end(), dst) == outputs_.end()) {
    outputs_.push_back(dst);
  }
}

// -- CombBuilder --------------------------------------------------------------

UnitBuilder& CombBuilder::unit(std::string name) {
  close();
  cur_.reset(new UnitBuilder(pb_, mod_, mod_.name() + "." + std::move(name)));
  return *cur_;
}

void CombBuilder::close() {
  if (cur_ == nullptr) return;
  UnitBuilder& ub = *cur_;
  if (!ub.code_.empty()) {
    Unit u;
    u.name = std::move(ub.name_);
    u.module = &mod_;
    u.first_instr = static_cast<std::uint32_t>(pb_.prog_.code.size());
    u.instr_count = static_cast<std::uint32_t>(ub.code_.size());
    u.inputs = std::move(ub.inputs_);
    u.outputs = std::move(ub.outputs_);
    pb_.prog_.code.insert(pb_.prog_.code.end(), ub.code_.begin(),
                          ub.code_.end());
    pb_.prog_.units.push_back(std::move(u));
  }
  cur_.reset();
}

// -- ProgramBuilder -----------------------------------------------------------

Slot ProgramBuilder::alloc_slot(std::uint64_t init) {
  if (prog_.n_slots >= kMaxSlots) {
    throw SpliceError("compiled backend: design exceeds " +
                      std::to_string(kMaxSlots) + " arena slots");
  }
  const Slot s = static_cast<Slot>(prog_.n_slots++);
  prog_.init.push_back(init);
  prog_.mask.push_back(~std::uint64_t{0});
  return s;
}

Slot ProgramBuilder::alloc_const(std::uint64_t v) {
  for (const auto& [cv, slot] : const_pool_) {
    if (cv == v) return slot;
  }
  const Slot s = alloc_slot(v);
  const_pool_.emplace_back(v, s);
  return s;
}

Slot ProgramBuilder::alloc_temp() { return alloc_slot(0); }

std::uint32_t ProgramBuilder::add_ext(ExtState e) {
  const auto idx = static_cast<std::uint32_t>(prog_.ext.size());
  prog_.ext.push_back(e);
  return idx;
}

std::uint32_t ProgramBuilder::add_table(
    const std::vector<TableEntry>& entries) {
  if (entries.size() > 0xFF) {
    throw SpliceError("compiled backend: operand table exceeds 255 entries");
  }
  const std::size_t off = prog_.table.size();
  prog_.table.insert(prog_.table.end(), entries.begin(), entries.end());
  return pack_table(off, entries.size());
}

StepProgram ProgramBuilder::build() {
  auto& signals = sim_.signals_;
  if (signals.size() >= kMaxSlots) {
    throw SpliceError("compiled backend: design exceeds " +
                      std::to_string(kMaxSlots) + " signals");
  }
  prog_.n_signals = signals.size();
  prog_.slot_sig.reserve(signals.size());
  for (Signal& s : signals) {
    s.slot_ = static_cast<std::uint32_t>(prog_.n_slots);
    prog_.slot_sig.push_back(&s);
    alloc_slot(s.cur_);
    prog_.mask.back() = s.mask_;
  }

  for (const auto& mp : sim_.modules_) {
    Module& m = *mp;
    {
      CombBuilder cb(*this, m);
      if (m.lower_comb(cb)) {
        cb.close();
        continue;
      }
      // lower_comb declined: drop any partially built unit (its buffered
      // instructions never reach the program).
    }
    // Dynamic fallback: eval_comb() through virtual dispatch, triggered by
    // the module's declared watch set.
    Unit u;
    u.name = m.name() + " [dynamic]";
    u.module = &m;
    u.dynamic = true;
    u.always = !m.sensitivity_declared();
    for (Signal& s : signals) {
      const auto& fan = s.fanout_;
      if (std::find(fan.begin(), fan.end(), &m) != fan.end()) {
        u.inputs.push_back(static_cast<Slot>(s.slot_));
      }
    }
    if (m.sensitivity_declared() && u.inputs.empty()) {
      // watch_none(): no combinational process at all.
      continue;
    }
    prog_.units.push_back(std::move(u));
  }
  return std::move(prog_);
}

}  // namespace splice::rtl::compile
