#include "rtl/compile/program.hpp"

#include <sstream>

#include "rtl/signal.hpp"

namespace splice::rtl::compile {

const char* op_name(Op op) {
  switch (op) {
    case Op::kCopy: return "copy";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNotBool: return "not";
    case Op::kNonZero: return "nonzero";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kMux: return "mux";
    case Op::kOneHot: return "onehot";
    case Op::kEdge: return "edge";
    case Op::kSmbLoad: return "smbload";
    case Op::kGatherBits: return "gather";
    case Op::kSelectTable: return "select";
    case Op::kOut: return "out";
  }
  return "?";
}

std::string StepProgram::dump() const {
  std::ostringstream os;
  os << "step program: " << n_slots << " slots (" << n_signals
     << " signals), " << code.size() << " instrs, " << units.size()
     << " units, " << regions.size() << " regions\n";
  auto slot_name = [this](Slot s) -> std::string {
    if (s == kNoSlot) return "-";
    if (s < n_signals) return "%" + std::to_string(s) + ":" +
                              slot_sig[s]->name();
    return "%" + std::to_string(s);
  };
  for (const Region& r : regions) {
    os << "region [" << r.first_unit << ".." << r.first_unit + r.unit_count
       << ")" << (r.cyclic ? " cyclic" : "") << (r.dynamic ? " dynamic" : "")
       << "\n";
    for (std::uint32_t ui = r.first_unit; ui < r.first_unit + r.unit_count;
         ++ui) {
      const Unit& u = units[ui];
      os << "  unit " << ui << " '" << u.name << "'"
         << (u.dynamic ? " [dynamic]" : "") << (u.always ? " [always]" : "")
         << " inputs:";
      for (Slot s : u.inputs) os << " " << slot_name(s);
      os << "\n";
      for (std::uint32_t k = u.first_instr; k < u.first_instr + u.instr_count;
           ++k) {
        const Instr& in = code[k];
        os << "    " << op_name(in.op) << " " << slot_name(in.dst) << ", "
           << slot_name(in.a) << ", " << slot_name(in.b) << ", "
           << slot_name(in.c);
        if (in.aux != 0) os << " aux=" << in.aux;
        os << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace splice::rtl::compile
