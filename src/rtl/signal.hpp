// Signals for the cycle-based RTL simulation kernel.  A Signal carries up
// to 64 bits (wider hardware values are modelled as word arrays at the
// protocol level, exactly as they cross a real bus).  Combinational logic
// drives signals immediately with `drive`; clocked processes schedule the
// next-cycle value with `set` which the simulator commits on the clock edge.
#pragma once

#include <cstdint>
#include <string>

#include "support/bits.hpp"
#include "support/diagnostics.hpp"

namespace splice::rtl {

class Simulator;

class Signal {
 public:
  Signal(std::string name, unsigned width)
      : name_(std::move(name)), width_(width), mask_(bits::low_mask(width)) {
    if (width == 0 || width > 64) {
      throw SpliceError("signal '" + name_ + "' width must be 1..64");
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned width() const { return width_; }

  /// Current value (what combinational logic and clocked reads observe).
  [[nodiscard]] std::uint64_t get() const { return cur_; }
  [[nodiscard]] bool high() const { return cur_ != 0; }

  /// Combinational drive: takes effect immediately.  Returns true when the
  /// value changed (the simulator uses this for fix-point detection).
  bool drive(std::uint64_t v) {
    v &= mask_;
    if (v == cur_) return false;
    cur_ = v;
    return true;
  }
  bool drive(bool v) { return drive(static_cast<std::uint64_t>(v ? 1 : 0)); }

  /// Registered write: becomes visible after the next clock edge commit.
  void set(std::uint64_t v) {
    next_ = v & mask_;
    pending_ = true;
  }
  void set(bool v) { set(static_cast<std::uint64_t>(v ? 1 : 0)); }

 private:
  friend class Simulator;
  /// Apply a pending registered write; returns true on change.
  bool commit() {
    if (!pending_) return false;
    pending_ = false;
    if (next_ == cur_) return false;
    cur_ = next_;
    return true;
  }

  std::string name_;
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t cur_ = 0;
  std::uint64_t next_ = 0;
  bool pending_ = false;
};

}  // namespace splice::rtl
