// Signals for the cycle-based RTL simulation kernel.  A Signal carries up
// to 64 bits (wider hardware values are modelled as word arrays at the
// protocol level, exactly as they cross a real bus).  Combinational logic
// drives signals immediately with `drive`; clocked processes schedule the
// next-cycle value with `set` which the simulator commits on the clock edge.
//
// Simulator-owned signals additionally carry a fanout list: the modules
// that declared (via Module::watch) that their combinational process reads
// this signal.  Every observable value change notifies the owning
// simulator, which enqueues exactly those modules for re-evaluation — the
// backbone of the event-driven settle scheduler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bits.hpp"
#include "support/diagnostics.hpp"

namespace splice::rtl {

class Module;
class Simulator;

namespace compile {
class Executor;
class ProgramBuilder;
class UnitBuilder;
}  // namespace compile

class Signal {
 public:
  Signal(std::string name, unsigned width)
      : name_(std::move(name)), width_(width), mask_(bits::low_mask(width)) {
    if (width == 0 || width > 64) {
      throw SpliceError("signal '" + name_ + "' width must be 1..64");
    }
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned width() const { return width_; }

  /// Current value (what combinational logic and clocked reads observe).
  [[nodiscard]] std::uint64_t get() const { return cur_; }
  [[nodiscard]] bool high() const { return cur_ != 0; }

  /// Combinational drive: takes effect immediately.  Returns true when the
  /// value changed (the simulator uses this for fix-point detection).
  bool drive(std::uint64_t v) {
    v &= mask_;
    if (v == cur_) return false;
    cur_ = v;
    value_changed();
    return true;
  }
  bool drive(bool v) { return drive(static_cast<std::uint64_t>(v ? 1 : 0)); }

  /// Registered write: becomes visible after the next clock edge commit.
  void set(std::uint64_t v) {
    next_ = v & mask_;
    if (!pending_) {
      pending_ = true;
      schedule_commit();
    }
  }
  void set(bool v) { set(static_cast<std::uint64_t>(v ? 1 : 0)); }

  /// Modules whose eval_comb() declared this signal as an input.
  [[nodiscard]] const std::vector<Module*>& fanout() const { return fanout_; }

 private:
  friend class Module;
  friend class Simulator;
  friend class compile::Executor;
  friend class compile::ProgramBuilder;
  friend class compile::UnitBuilder;

  /// Apply a pending registered write; returns true on change.
  bool commit() {
    if (!pending_) return false;
    pending_ = false;
    if (next_ == cur_) return false;
    cur_ = next_;
    value_changed();
    return true;
  }

  /// Notify the owning simulator's scheduler (no-op for free signals).
  void value_changed();
  /// Register with the owning simulator's pending-commit list.
  void schedule_commit();
  /// Add `m` to the fanout list; throws for signals not owned by a
  /// simulator (there is no scheduler to deliver the events).
  void add_watcher(Module& m);
  /// Add `m` to the clocked fanout list (Module::watch_clocked): the
  /// compiled backend runs m's clock_edge() on the cycle after this signal
  /// changes.  Ignored by the interpreter, which clocks every module.
  void add_clocked_watcher(Module& m);

  std::string name_;
  unsigned width_;
  std::uint64_t mask_;
  std::uint64_t cur_ = 0;
  std::uint64_t next_ = 0;
  bool pending_ = false;
  Simulator* owner_ = nullptr;
  std::vector<Module*> fanout_;
  std::vector<Module*> clocked_fanout_;
  /// Arena slot under the compiled backend; reassigned on each compile.
  std::uint32_t slot_ = 0;
};

}  // namespace splice::rtl
