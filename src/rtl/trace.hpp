// Per-cycle waveform recording plus an ASCII renderer that reproduces the
// thesis' timing-diagram figures (4.3-4.8) directly from simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/simulator.hpp"

namespace splice::rtl {

class Trace {
 public:
  /// Attaches a sampler to `sim`; signals must be watched before stepping.
  explicit Trace(Simulator& sim);

  /// Record this signal every cycle.  Watch order defines render order.
  void watch(Signal& s);
  void watch(const std::string& name);

  [[nodiscard]] std::size_t cycles_recorded() const;
  /// Value history of a watched signal; throws when the name is unknown.
  [[nodiscard]] const std::vector<std::uint64_t>& history(
      const std::string& name) const;

  /// Watched signals in watch order.
  [[nodiscard]] std::vector<const Signal*> watched() const;

  /// Render all watched signals as an ASCII waveform:
  ///   1-bit signals as level lines (`_` low, `-` high),
  ///   vectors as hex values held with `.` until they change.
  [[nodiscard]] std::string render_ascii(std::size_t from_cycle = 0,
                                         std::size_t to_cycle = SIZE_MAX) const;

 private:
  struct Channel {
    Signal* signal;
    std::vector<std::uint64_t> values;
  };
  Simulator& sim_;
  std::vector<Channel> channels_;
};

}  // namespace splice::rtl
