#include "rtl/observe/platform_observer.hpp"

#include <algorithm>

#include "runtime/cpu.hpp"
#include "support/diagnostics.hpp"

namespace splice::rtl::observe {
namespace {

template <typename Bus>
Bus& bus_as(runtime::VirtualPlatform& vp) {
  auto* bus = dynamic_cast<Bus*>(&vp.port());
  if (bus == nullptr) {
    throw SpliceError("platform bus does not match its declared kind");
  }
  return *bus;
}

}  // namespace

PlatformObserver::PlatformObserver(runtime::VirtualPlatform& vp) : vp_(vp) {
  rtl::Simulator& sim = vp.sim();
  switch (vp.bus_kind()) {
    case runtime::BusKind::Plb:
    case runtime::BusKind::Opb:
      decoder_ = &sim.add<PlbDecoder>(bus_as<bus::PlbBus>(vp).pins());
      break;
    case runtime::BusKind::Ahb:
      decoder_ = &sim.add<AhbDecoder>(bus_as<bus::AhbBus>(vp).pins());
      break;
    case runtime::BusKind::Apb:
      decoder_ = &sim.add<ApbDecoder>(bus_as<bus::ApbBus>(vp).pins());
      break;
    case runtime::BusKind::Fcb:
      decoder_ = &sim.add<FcbDecoder>(bus_as<bus::FcbBus>(vp).pins());
      break;
  }
  if (rtl::Signal* irq_line = sim.find_signal("IRQ")) {
    irq_ = &sim.add<IrqDecoder>(*irq_line);
  }
  vp.cpu().set_observer(&timeline_);
}

PlatformObserver::~PlatformObserver() { vp_.cpu().set_observer(nullptr); }

void PlatformObserver::begin_call(const std::string& function,
                                  std::size_t index) {
  timeline_.begin_call(function, index, vp_.sim().cycle());
}

void PlatformObserver::end_call() { timeline_.end_call(vp_.sim().cycle()); }

std::vector<BusEvent> PlatformObserver::merged_events() const {
  std::vector<BusEvent> all = decoder_->events();
  if (irq_ != nullptr) {
    all.insert(all.end(), irq_->events().begin(), irq_->events().end());
  }
  all.insert(all.end(), timeline_.dma_events().begin(),
             timeline_.dma_events().end());
  // Each source is cycle-ordered; a stable sort over the fixed source
  // concatenation is a pure function of the event data.
  std::stable_sort(all.begin(), all.end(),
                   [](const BusEvent& a, const BusEvent& b) {
                     if (a.end_cycle != b.end_cycle) {
                       return a.end_cycle < b.end_cycle;
                     }
                     return a.start_cycle < b.start_cycle;
                   });
  return all;
}

std::string PlatformObserver::bus_stream() const {
  return render_events(merged_events());
}

std::string PlatformObserver::trace_events(int pid) const {
  return sim_trace_events(timeline_.calls(), merged_events(), pid);
}

std::string PlatformObserver::trace_json() const {
  return sim_trace_json(timeline_.calls(), merged_events());
}

std::size_t exercise_device(runtime::VirtualPlatform& vp,
                            PlatformObserver& observer,
                            std::uint64_t max_cycles) {
  std::size_t calls = 0;
  for (const ir::FunctionDecl& fn : vp.spec().functions) {
    drivergen::CallArgs args;
    for (std::size_t i = 0; i < fn.inputs.size(); ++i) {
      const ir::IoParam& p = fn.inputs[i];
      std::uint64_t count = 1;
      if (p.count_kind == ir::CountKind::Explicit) {
        count = p.explicit_count;
      } else if (p.count_kind == ir::CountKind::Implicit) {
        for (std::size_t j = 0; j < args.size(); ++j) {
          if (fn.inputs[j].name == p.index_var && !args[j].empty()) {
            count = args[j][0];
            break;
          }
        }
      }
      std::vector<std::uint64_t> vals;
      if (!p.is_array() && p.used_as_index) {
        vals.push_back(4);  // keeps implicit element counts small
      } else {
        for (std::uint64_t k = 0; k < count; ++k) {
          vals.push_back(0x2a + 31 * i + 7 * k);
        }
      }
      args.push_back(std::move(vals));
    }
    observer.begin_call(fn.name, calls);
    vp.call(fn.name, args, 0, max_cycles);
    observer.end_call();
    ++calls;
    if (!fn.blocking()) {
      // Fire-and-forget: drain the in-flight calculation so the stub is
      // idle before the next call (nowait pacing is the user's job).
      vp.sim().step(64);
    }
  }
  return calls;
}

}  // namespace splice::rtl::observe
