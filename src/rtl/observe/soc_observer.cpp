#include "rtl/observe/soc_observer.hpp"

#include "runtime/cpu.hpp"

namespace splice::rtl::observe {

SocObserver::SocObserver(runtime::SocPlatform& soc) : soc_(soc) {
  rtl::Simulator& sim = soc.sim();
  for (std::size_t i = 0; i < soc.device_count(); ++i) {
    decoders_.push_back(&sim.add<PlbDecoder>(
        soc.device_window(i), "observe.plb.d" + std::to_string(i)));
  }
  if (rtl::Signal* line = soc.irq_line()) {
    irq_ = &sim.add<IrqDecoder>(*line);
  }
  for (unsigned m = 0; m < soc.master_count(); ++m) {
    timelines_.emplace_back();
    soc.cpu(m).set_observer(&timelines_.back());
  }
}

SocObserver::~SocObserver() {
  for (unsigned m = 0; m < soc_.master_count(); ++m) {
    soc_.cpu(m).set_observer(nullptr);
  }
}

void SocObserver::begin_call(const std::string& function, std::size_t index,
                             unsigned master) {
  timelines_.at(master).begin_call(function, index, soc_.sim().cycle());
}

void SocObserver::end_call(unsigned master) {
  timelines_.at(master).end_call(soc_.sim().cycle());
}

std::string SocObserver::bus_stream() const {
  std::string out;
  for (std::size_t i = 0; i < decoders_.size(); ++i) {
    out += "= device " + std::to_string(i) + " (" +
           soc_.spec(i).target.device_name + ") seg" +
           std::to_string(soc_.device_segment(i)) + " =\n";
    out += render_events(decoders_[i]->events());
  }
  if (irq_ != nullptr) {
    out += "= irq =\n";
    out += render_events(irq_->events());
  }
  return out;
}

std::string SocObserver::timeline_stream() const {
  std::string out;
  for (std::size_t m = 0; m < timelines_.size(); ++m) {
    out += "= master " + std::to_string(m) + " =\n";
    out += timelines_[m].render();
  }
  return out;
}

std::uint64_t SocObserver::transactions() const {
  std::uint64_t n = 0;
  for (const BusDecoder* d : decoders_) n += d->transactions();
  return n;
}

}  // namespace splice::rtl::observe
