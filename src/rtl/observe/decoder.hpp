// Pin-level transaction decoders, one per bus protocol.
//
// A decoder is a pure-observer Module attached to the same simulator as the
// bus it watches: it samples the settled pre-edge pin wavefront in
// clock_edge() — exactly the state the SIS protocol checker and the bus
// FSMs themselves read — and reconstructs completed transfers as BusEvents.
// Decoders never drive or schedule a signal and never assert clock-busy, so
// attaching one cannot perturb the simulation.
//
// Backend determinism: decoders declare watch_none() (no combinational
// process) and deliberately make NO clocked declaration, so the interpreter
// clocks them every cycle and the compiled executor places them in its
// always-clocked set.  Both backends therefore decode the identical
// wavefront in the identical module order, making the event stream
// byte-comparable across backends — the lockstep conformance harness
// asserts exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bus/ahb.hpp"
#include "bus/apb.hpp"
#include "bus/fcb.hpp"
#include "bus/plb.hpp"
#include "rtl/observe/txn.hpp"
#include "rtl/simulator.hpp"

namespace splice::rtl::observe {

class BusDecoder : public rtl::Module {
 public:
  explicit BusDecoder(std::string name) : rtl::Module(std::move(name)) {
    watch_none();  // observer: no combinational process
    // No clocked declaration: run every cycle on both backends (see above).
  }

  [[nodiscard]] const std::vector<BusEvent>& events() const { return events_; }
  /// Completed read/write transfers (DMA brackets and IRQ edges excluded).
  [[nodiscard]] std::uint64_t transactions() const;
  /// Total wait-state cycles accumulated inside completed transfers.
  [[nodiscard]] std::uint64_t stall_cycles() const;

 protected:
  void emit(EventKind kind, std::uint64_t start, std::uint64_t end,
            std::uint32_t fid, unsigned beats, std::uint64_t data,
            unsigned wait) {
    events_.push_back(BusEvent{kind, start, end, fid, beats, data, wait});
  }

 private:
  std::vector<BusEvent> events_;
};

/// CoreConnect request/acknowledge handshake (PLB; the OPB model reuses the
/// same pins, so this decoder covers both).  A transfer opens when a
/// one-cycle RD_REQ/WR_REQ strobe appears (fid from the held one-hot chip
/// enable, write data from DATA_IN) and completes on the matching
/// acknowledge; wait counts the request-to-acknowledge latency.
class PlbDecoder : public BusDecoder {
 public:
  explicit PlbDecoder(const bus::PlbPins& pins,
                      std::string name = "observe.plb")
      : BusDecoder(std::move(name)), pins_(pins) {}
  void clock_edge() override;
  void reset() override { open_ = false; }

 private:
  bus::PlbPins pins_;  // copy of the reference bundle; aliases the signals
  bool open_ = false;
  bool is_read_ = false;
  std::uint32_t fid_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t start_ = 0;
};

/// AMBA AHB pipelined transfers: a NONSEQ address phase opens a burst
/// (expected beat count from the HBURST model signal), every subsequent
/// ready cycle with an open data phase completes one beat, and HREADY low
/// while a burst is open counts as a wait state.  DMA engine register
/// accesses never reach the pins and are invisible here by design.
class AhbDecoder : public BusDecoder {
 public:
  explicit AhbDecoder(const bus::AhbPins& pins)
      : BusDecoder("observe.ahb"), pins_(pins) {}
  void clock_edge() override;
  void reset() override {
    open_ = false;
    pending_data_ = false;
  }

 private:
  bus::AhbPins pins_;
  bool open_ = false;
  bool pending_data_ = false;  ///< next ready cycle carries a data phase
  bool is_read_ = false;
  std::uint32_t fid_ = 0;
  unsigned expected_ = 0;
  unsigned beats_done_ = 0;
  unsigned wait_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t start_ = 0;
};

/// AMBA APB setup/access pair: PSEL without PENABLE marks the setup cycle,
/// PSEL with PENABLE the single access cycle (the strictly synchronous
/// slave may never stall, so wait is always zero).
class ApbDecoder : public BusDecoder {
 public:
  explicit ApbDecoder(const bus::ApbPins& pins)
      : BusDecoder("observe.apb"), pins_(pins) {}
  void clock_edge() override;

 private:
  bus::ApbPins pins_;
  std::uint64_t setup_ = 0;
};

/// Xilinx FCB operations: a one-cycle OP_VALID header opens the operation
/// (direction, function id and beat count ride along), write beats complete
/// on WR_VALID+BEAT_ACK (a presented-but-unacknowledged beat is a wait
/// state), read beats on RD_VALID (a cycle without one is a wait state).
class FcbDecoder : public BusDecoder {
 public:
  explicit FcbDecoder(const bus::FcbPins& pins)
      : BusDecoder("observe.fcb"), pins_(pins) {}
  void clock_edge() override;
  void reset() override { open_ = false; }

 private:
  bus::FcbPins pins_;
  bool open_ = false;
  bool is_read_ = false;
  std::uint32_t fid_ = 0;
  unsigned expected_ = 0;
  unsigned beats_done_ = 0;
  unsigned wait_ = 0;
  std::uint64_t data_ = 0;
  std::uint64_t start_ = 0;
};

/// Interrupt line edges (%irq_support): a rise is an IrqAssert instant, a
/// fall — the device clearing its request after the ISR's status read — an
/// IrqAck instant.
class IrqDecoder : public BusDecoder {
 public:
  explicit IrqDecoder(rtl::Signal& line, std::string name = "observe.irq")
      : BusDecoder(std::move(name)), line_(line) {}
  void clock_edge() override;
  void reset() override { prev_ = false; }

 private:
  rtl::Signal& line_;
  bool prev_ = false;
};

}  // namespace splice::rtl::observe
