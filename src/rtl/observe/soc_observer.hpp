// Observability for a multi-device SocPlatform: one PLB window decoder per
// device (root devices on their root-bus window, sub-segment devices on
// their OPB window — each sees local function slots), the CPU interrupt
// line when the SoC wired one, and a CallTimeline per master.  The decoded
// per-device streams are concatenated under stable device headers, so the
// whole SoC's bus activity is one canonical string the lockstep harness
// byte-compares between the interpreter and the compiled backend.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "rtl/observe/decoder.hpp"
#include "rtl/observe/timeline.hpp"
#include "runtime/soc.hpp"

namespace splice::rtl::observe {

class SocObserver {
 public:
  explicit SocObserver(runtime::SocPlatform& soc);
  ~SocObserver();
  SocObserver(const SocObserver&) = delete;
  SocObserver& operator=(const SocObserver&) = delete;

  /// Bracket one driver call on `master` (before/after SocPlatform::call).
  void begin_call(const std::string& function, std::size_t index,
                  unsigned master = 0);
  void end_call(unsigned master = 0);

  [[nodiscard]] const BusDecoder& device_decoder(std::size_t i) const {
    return *decoders_.at(i);
  }
  [[nodiscard]] const CallTimeline& timeline(unsigned master = 0) const {
    return timelines_.at(master);
  }

  /// Per-device decoded transactions plus IRQ edges, concatenated under
  /// device headers — the canonical cross-backend comparison stream.
  [[nodiscard]] std::string bus_stream() const;
  /// Per-master call timelines, concatenated under master headers.
  [[nodiscard]] std::string timeline_stream() const;

  /// Completed transfers summed over every device window.
  [[nodiscard]] std::uint64_t transactions() const;

 private:
  runtime::SocPlatform& soc_;
  std::deque<CallTimeline> timelines_;  // stable addresses for set_observer
  std::vector<BusDecoder*> decoders_;   // owned by the SoC's simulator
  IrqDecoder* irq_ = nullptr;           // owned by the SoC's simulator
};

}  // namespace splice::rtl::observe
