#include "rtl/observe/profile.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

#include "rtl/compile/executor.hpp"

namespace splice::rtl::observe {
namespace {

struct ModuleRow {
  const std::string* name;
  std::uint64_t evals;
  std::uint64_t wakes;
};

std::vector<ModuleRow> module_rows(const Simulator& sim) {
  std::vector<ModuleRow> rows;
  for (const auto& m : sim.modules()) {
    rows.push_back(ModuleRow{&m->name(), m->eval_count(), m->wake_count()});
  }
  std::sort(rows.begin(), rows.end(), [](const ModuleRow& a,
                                         const ModuleRow& b) {
    if (a.evals != b.evals) return a.evals > b.evals;
    if (a.wakes != b.wakes) return a.wakes > b.wakes;
    return *a.name < *b.name;
  });
  return rows;
}

void json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string render_profile(const Simulator& sim,
                           support::telemetry::Format format) {
  using support::telemetry::Format;
  const auto rows = module_rows(sim);
  const compile::Executor* exec = sim.compiled();
  const bool compiled = sim.backend() == Simulator::Backend::kCompiled;

  if (format == Format::Json) {
    std::ostringstream os;
    os << "{\"backend\":\"" << (compiled ? "compiled" : "interp")
       << "\",\"profiling\":" << (sim.profiling() ? "true" : "false")
       << ",\"modules\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i != 0) os << ",";
      os << "{\"name\":";
      json_string(os, *rows[i].name);
      os << ",\"evals\":" << rows[i].evals << ",\"wakes\":" << rows[i].wakes
         << "}";
    }
    os << "],\"regions\":[";
    if (exec != nullptr) {
      const auto regions = exec->region_profiles();
      for (std::size_t i = 0; i < regions.size(); ++i) {
        if (i != 0) os << ",";
        os << "{\"index\":" << i << ",\"name\":";
        json_string(os, regions[i].name);
        os << ",\"cyclic\":" << (regions[i].cyclic ? "true" : "false")
           << ",\"units\":" << regions[i].units
           << ",\"runs\":" << regions[i].runs
           << ",\"iterations\":" << regions[i].iterations << "}";
      }
    }
    os << "]}";
    return os.str();
  }

  std::ostringstream os;
  os << "simulation profile (" << (compiled ? "compiled" : "interpreter")
     << " backend, profiling " << (sim.profiling() ? "on" : "off") << ")\n";
  os << "  " << std::left << std::setw(32) << "module" << std::right
     << std::setw(12) << "evals" << std::setw(12) << "wakes" << "\n";
  for (const ModuleRow& r : rows) {
    os << "  " << std::left << std::setw(32) << *r.name << std::right
       << std::setw(12) << r.evals << std::setw(12) << r.wakes << "\n";
  }
  if (exec != nullptr) {
    os << "  compiled regions:\n";
    os << "  " << std::left << std::setw(6) << "idx" << std::setw(8) << "kind"
       << std::right << std::setw(8) << "units" << std::setw(12) << "runs"
       << std::setw(12) << "iters" << "  name\n";
    const auto regions = exec->region_profiles();
    for (std::size_t i = 0; i < regions.size(); ++i) {
      const auto& r = regions[i];
      os << "  " << std::left << std::setw(6) << i << std::setw(8)
         << (r.cyclic ? "cyclic" : "level") << std::right << std::setw(8)
         << r.units << std::setw(12) << r.runs << std::setw(12)
         << r.iterations << "  " << r.name << "\n";
    }
  }
  return os.str();
}

}  // namespace splice::rtl::observe
