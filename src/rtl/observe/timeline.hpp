// The SIS call timeline: driver calls, their ICOB phases and driver ops on
// the simulated-time axis.
//
// A CallTimeline is a CpuObserver: the CPU master reports op boundaries,
// status polls and taken interrupts as it executes driver programs, and the
// harness brackets each driver call with begin_call/end_call.  Ops map onto
// the thesis' ICOB phases — writes are the input phase, WAIT_FOR_RESULTS
// (with its polls or interrupt sleep) the calc phase, reads the output
// phase — and contiguous same-phase ops merge into phase spans, giving the
// call -> phase -> op nesting the Chrome trace renders.  DMA ops
// additionally emit BurstBegin/BurstEnd bracket events with exact beat
// counts (the pin stream cannot distinguish a streamed word from a PIO one;
// the op stream can).
//
// Determinism: callbacks fire on op-transition cycles, which the lockstep
// harness proves identical across simulation backends, so a rendered
// timeline is byte-comparable between the interpreter and compiled backend.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "drivergen/program.hpp"
#include "rtl/observe/txn.hpp"
#include "runtime/cpu.hpp"

namespace splice::rtl::observe {

enum class IcobPhase : std::uint8_t { Input, Calc, Output };

[[nodiscard]] const char* icob_phase_name(IcobPhase phase);

struct OpSpan {
  drivergen::OpCode op = drivergen::OpCode::SetAddress;
  std::uint32_t fid = 0;
  std::size_t index = 0;  ///< op index within the driver program
  unsigned beats = 0;     ///< words this op moves (0 for address/wait ops)
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

struct PhaseSpan {
  IcobPhase phase = IcobPhase::Input;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

struct CallSpan {
  std::string function;
  std::size_t index = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::uint64_t polls = 0;
  std::uint64_t irqs = 0;
  std::vector<OpSpan> ops;

  /// Contiguous same-phase op runs merged into ICOB phase spans.
  /// SetAddress ops are neutral and fold into the adjacent phase.
  [[nodiscard]] std::vector<PhaseSpan> phases() const;
};

class CallTimeline final : public runtime::CpuObserver {
 public:
  /// Bracket one driver call.  Ops reported while no call is open fall into
  /// an implicit anonymous call (harnesses that drive the CPU directly).
  void begin_call(std::string function, std::size_t index,
                  std::uint64_t cycle);
  void end_call(std::uint64_t cycle);

  // -- CpuObserver ----------------------------------------------------------
  void on_op_start(const drivergen::DriverOp& op, std::size_t index,
                   std::uint64_t cycle) override;
  void on_op_finish(std::size_t index, std::uint64_t cycle) override;
  void on_poll(std::uint64_t cycle) override;
  void on_irq(std::uint64_t cycle) override;

  [[nodiscard]] const std::vector<CallSpan>& calls() const { return calls_; }
  /// DMA BurstBegin/BurstEnd bracket events, in cycle order.
  [[nodiscard]] const std::vector<BusEvent>& dma_events() const {
    return dma_;
  }

  /// Canonical one-call-per-block rendering; the lockstep harness
  /// byte-compares this between backends.
  [[nodiscard]] std::string render() const;

 private:
  CallSpan& ensure_open(std::uint64_t cycle);

  std::vector<CallSpan> calls_;
  std::vector<BusEvent> dma_;
  bool open_ = false;
};

/// Chrome trace-event JSON for the simulated-time axis (1 cycle = 1 us):
/// call spans nest phase spans nest op spans nest bus transactions on one
/// track, with DMA brackets and IRQ edges as instant events.  Returns the
/// comma-joined event objects *without* the enclosing array, so callers can
/// either wrap them (sim_trace_json) or splice them into an existing trace
/// (Tracer::chrome_trace_json's extra_events) under a distinct pid.
[[nodiscard]] std::string sim_trace_events(
    const std::vector<CallSpan>& calls, const std::vector<BusEvent>& events,
    int pid);

/// A complete standalone trace file (--sim-trace-out).
[[nodiscard]] std::string sim_trace_json(const std::vector<CallSpan>& calls,
                                         const std::vector<BusEvent>& events);

}  // namespace splice::rtl::observe
