#include "rtl/observe/timeline.hpp"

#include <optional>
#include <sstream>

namespace splice::rtl::observe {
namespace {

using drivergen::OpCode;

/// ICOB phase of one op; nullopt for neutral ops (SetAddress is address
/// arithmetic that belongs to whichever transfer phase surrounds it).
std::optional<IcobPhase> op_phase(OpCode op) {
  switch (op) {
    case OpCode::SetAddress:
      return std::nullopt;
    case OpCode::WriteSingle:
    case OpCode::WriteDouble:
    case OpCode::WriteQuad:
    case OpCode::WriteDma:
      return IcobPhase::Input;
    case OpCode::WaitForResults:
    case OpCode::PollStatus:
    case OpCode::WaitIrq:
      return IcobPhase::Calc;
    case OpCode::ReadSingle:
    case OpCode::ReadDouble:
    case OpCode::ReadQuad:
    case OpCode::ReadDma:
      return IcobPhase::Output;
  }
  return std::nullopt;
}

unsigned op_beats(const drivergen::DriverOp& op) {
  switch (op.op) {
    case OpCode::WriteSingle:
    case OpCode::WriteDouble:
    case OpCode::WriteQuad:
    case OpCode::WriteDma:
      return static_cast<unsigned>(op.data.size());
    case OpCode::ReadSingle:
    case OpCode::ReadDouble:
    case OpCode::ReadQuad:
    case OpCode::ReadDma:
      return op.read_words;
    case OpCode::SetAddress:
    case OpCode::WaitForResults:
    case OpCode::PollStatus:
    case OpCode::WaitIrq:
      return 0;
  }
  return 0;
}

bool is_dma(OpCode op) {
  return op == OpCode::WriteDma || op == OpCode::ReadDma;
}

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

const char* icob_phase_name(IcobPhase phase) {
  switch (phase) {
    case IcobPhase::Input: return "input";
    case IcobPhase::Calc: return "calc";
    case IcobPhase::Output: return "output";
  }
  return "?";
}

std::vector<PhaseSpan> CallSpan::phases() const {
  // Resolve neutral ops to the nearest following phase-bearing op (or the
  // preceding one at the tail), then merge contiguous same-phase runs.
  std::vector<PhaseSpan> out;
  std::vector<IcobPhase> resolved(ops.size(), IcobPhase::Input);
  IcobPhase next = IcobPhase::Input;
  for (std::size_t i = ops.size(); i-- > 0;) {
    if (auto p = op_phase(ops[i].op)) next = *p;
    resolved[i] = next;
  }
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!out.empty() && out.back().phase == resolved[i]) {
      out.back().end = ops[i].end;
    } else {
      out.push_back(PhaseSpan{resolved[i], ops[i].start, ops[i].end});
    }
  }
  return out;
}

CallSpan& CallTimeline::ensure_open(std::uint64_t cycle) {
  if (!open_) {
    CallSpan c;
    c.index = calls_.size();
    c.start = cycle;
    c.end = cycle;
    calls_.push_back(std::move(c));
    open_ = true;
  }
  return calls_.back();
}

void CallTimeline::begin_call(std::string function, std::size_t index,
                              std::uint64_t cycle) {
  CallSpan c;
  c.function = std::move(function);
  c.index = index;
  c.start = cycle;
  c.end = cycle;
  calls_.push_back(std::move(c));
  open_ = true;
}

void CallTimeline::end_call(std::uint64_t cycle) {
  if (!open_) return;
  calls_.back().end = cycle;
  open_ = false;
}

void CallTimeline::on_op_start(const drivergen::DriverOp& op,
                               std::size_t index, std::uint64_t cycle) {
  CallSpan& call = ensure_open(cycle);
  call.ops.push_back(OpSpan{op.op, op.fid, index, op_beats(op), cycle, cycle});
  if (is_dma(op.op)) {
    dma_.push_back(BusEvent{EventKind::BurstBegin, cycle, cycle, op.fid,
                            op_beats(op), 0, 0});
  }
}

void CallTimeline::on_op_finish(std::size_t index, std::uint64_t cycle) {
  (void)index;
  if (calls_.empty() || calls_.back().ops.empty()) return;
  CallSpan& call = calls_.back();
  OpSpan& op = call.ops.back();
  op.end = cycle;
  call.end = cycle;
  if (is_dma(op.op)) {
    dma_.push_back(
        BusEvent{EventKind::BurstEnd, cycle, cycle, op.fid, op.beats, 0, 0});
  }
}

void CallTimeline::on_poll(std::uint64_t cycle) {
  if (open_) {
    ++calls_.back().polls;
    calls_.back().end = cycle;
  }
}

void CallTimeline::on_irq(std::uint64_t cycle) {
  if (open_) {
    ++calls_.back().irqs;
    calls_.back().end = cycle;
  }
}

std::string CallTimeline::render() const {
  std::ostringstream os;
  for (const CallSpan& c : calls_) {
    os << "call " << (c.function.empty() ? "(anonymous)" : c.function) << "#"
       << c.index << " [" << c.start << ".." << c.end
       << "] polls=" << c.polls << " irqs=" << c.irqs << "\n";
    for (const OpSpan& op : c.ops) {
      os << "  op " << op.index << ":" << drivergen::opcode_name(op.op)
         << " fid=" << op.fid << " beats=" << op.beats << " [" << op.start
         << ".." << op.end << "]\n";
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Chrome trace emission (simulated-time axis, 1 cycle = 1 us)

namespace {

class EventWriter {
 public:
  explicit EventWriter(int pid) : pid_(pid) {}

  void span(std::string_view name, std::string_view cat, std::uint64_t start,
            std::uint64_t end, std::string_view args_json) {
    begin(name, cat, "X", start);
    os_ << ",\"dur\":" << (end - start);
    finish(args_json);
  }

  void instant(std::string_view name, std::string_view cat,
               std::uint64_t cycle, std::string_view args_json) {
    begin(name, cat, "i", cycle);
    os_ << ",\"s\":\"t\"";
    finish(args_json);
  }

  void metadata(std::string_view name, std::string_view value) {
    comma();
    os_ << "{\"name\":\"" << name << "\",\"ph\":\"M\",\"pid\":" << pid_
        << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os_, value);
    os_ << "\"}}";
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  void begin(std::string_view name, std::string_view cat, const char* ph,
             std::uint64_t ts) {
    comma();
    os_ << "{\"name\":\"";
    json_escape(os_, name);
    os_ << "\",\"cat\":\"" << cat << "\",\"ph\":\"" << ph
        << "\",\"ts\":" << ts << ",\"pid\":" << pid_ << ",\"tid\":0";
  }
  void finish(std::string_view args_json) {
    os_ << ",\"args\":{" << args_json << "}}";
  }
  void comma() {
    if (!first_) os_ << ",";
    first_ = false;
  }

  std::ostringstream os_;
  int pid_;
  bool first_ = true;
};

std::string u64_args(
    std::initializer_list<std::pair<const char*, std::uint64_t>> kv) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) os << ",";
    first = false;
    os << "\"" << k << "\":" << v;
  }
  return os.str();
}

}  // namespace

std::string sim_trace_events(const std::vector<CallSpan>& calls,
                             const std::vector<BusEvent>& events, int pid) {
  EventWriter w(pid);
  w.metadata("process_name", "simulation (1 cycle = 1us)");
  w.metadata("thread_name", "driver timeline");
  for (const CallSpan& c : calls) {
    w.span("call " + (c.function.empty() ? "(anonymous)" : c.function),
           "sim.call", c.start, c.end,
           u64_args({{"index", c.index}, {"polls", c.polls},
                     {"irqs", c.irqs}}));
    for (const PhaseSpan& p : c.phases()) {
      w.span(icob_phase_name(p.phase), "sim.phase", p.start, p.end, "");
    }
    for (const OpSpan& op : c.ops) {
      w.span(drivergen::opcode_name(op.op), "sim.op", op.start, op.end,
             u64_args({{"fid", op.fid}, {"beats", op.beats}}));
    }
  }
  for (const BusEvent& e : events) {
    const std::string name =
        std::string(event_kind_name(e.kind)) + " fid=" + std::to_string(e.fid);
    switch (e.kind) {
      case EventKind::Read:
      case EventKind::Write:
        w.span(name, "sim.bus", e.start_cycle, e.end_cycle,
               u64_args({{"fid", e.fid},
                         {"beats", e.beats},
                         {"data", e.data},
                         {"wait", e.wait_cycles}}));
        break;
      case EventKind::BurstBegin:
      case EventKind::BurstEnd:
        w.instant(name, "sim.dma", e.start_cycle,
                  u64_args({{"fid", e.fid}, {"beats", e.beats}}));
        break;
      case EventKind::IrqAssert:
      case EventKind::IrqAck:
        w.instant(event_kind_name(e.kind), "sim.irq", e.start_cycle, "");
        break;
    }
  }
  return w.str();
}

std::string sim_trace_json(const std::vector<CallSpan>& calls,
                           const std::vector<BusEvent>& events) {
  return "{\"traceEvents\":[" + sim_trace_events(calls, events, 1) + "]}\n";
}

}  // namespace splice::rtl::observe
