// Transaction-level vocabulary of the simulation observability layer.
//
// A BusEvent is one decoded unit of bus activity: a completed word or burst
// transfer, a DMA stream bracket, or an interrupt edge.  Events carry the
// simulated-cycle interval they occupied on the wire, so the same records
// feed three consumers: the canonical text stream the lockstep harness
// byte-compares across backends, the Chrome/Perfetto trace emission, and
// the bench counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace splice::rtl::observe {

enum class EventKind : std::uint8_t {
  Read,        ///< completed read transfer (beats words)
  Write,       ///< completed write transfer
  BurstBegin,  ///< DMA stream bracket: engine setup done, stream starting
  BurstEnd,    ///< DMA stream bracket: stream drained
  IrqAssert,   ///< interrupt line rose
  IrqAck,      ///< interrupt line fell (device acknowledged / cleared)
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct BusEvent {
  EventKind kind = EventKind::Read;
  std::uint64_t start_cycle = 0;  ///< request first visible on the pins
  std::uint64_t end_cycle = 0;    ///< completion (== start for instants)
  std::uint32_t fid = 0;          ///< target function slot
  unsigned beats = 0;             ///< words transferred (bursts: beat count)
  std::uint64_t data = 0;         ///< first/only data word
  unsigned wait_cycles = 0;       ///< stall cycles inside the transfer

  bool operator==(const BusEvent&) const = default;
};

/// Canonical one-line-per-event rendering.  This is the stream the lockstep
/// conformance harness byte-compares between the interpreter and the
/// compiled backend, so the format must stay a pure function of the events.
[[nodiscard]] std::string render_events(const std::vector<BusEvent>& events);

}  // namespace splice::rtl::observe
