#include "rtl/observe/txn.hpp"

#include <sstream>

namespace splice::rtl::observe {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::Read: return "RD";
    case EventKind::Write: return "WR";
    case EventKind::BurstBegin: return "DMA+";
    case EventKind::BurstEnd: return "DMA-";
    case EventKind::IrqAssert: return "IRQ+";
    case EventKind::IrqAck: return "IRQ-";
  }
  return "?";
}

std::string render_events(const std::vector<BusEvent>& events) {
  std::ostringstream os;
  for (const BusEvent& e : events) {
    os << event_kind_name(e.kind) << " [" << e.start_cycle << ".."
       << e.end_cycle << "] fid=" << e.fid << " beats=" << e.beats
       << " data=0x" << std::hex << e.data << std::dec
       << " wait=" << e.wait_cycles << "\n";
  }
  return os.str();
}

}  // namespace splice::rtl::observe
