#include "rtl/observe/decoder.hpp"

#include <bit>

namespace splice::rtl::observe {

std::uint64_t BusDecoder::transactions() const {
  std::uint64_t n = 0;
  for (const BusEvent& e : events()) {
    n += (e.kind == EventKind::Read || e.kind == EventKind::Write) ? 1 : 0;
  }
  return n;
}

std::uint64_t BusDecoder::stall_cycles() const {
  std::uint64_t n = 0;
  for (const BusEvent& e : events()) n += e.wait_cycles;
  return n;
}

void PlbDecoder::clock_edge() {
  if (pins_.rst.high()) {
    open_ = false;
    return;
  }
  if (!open_) {
    const bool rd = pins_.rd_req.high();
    const bool wr = pins_.wr_req.high();
    if (rd || wr) {
      open_ = true;
      is_read_ = rd;
      const std::uint64_t ce = rd ? pins_.rd_ce.get() : pins_.wr_ce.get();
      fid_ = ce != 0
                 ? static_cast<std::uint32_t>(std::countr_zero(ce))
                 : 0;
      data_ = wr ? pins_.wr_data.get() : 0;
      start_ = sim_cycle();
    }
  }
  // A slave may acknowledge on the strobe cycle itself, so the completion
  // check runs in the same invocation that opened the transfer.
  if (open_) {
    const bool acked =
        is_read_ ? pins_.rd_ack.high() : pins_.wr_ack.high();
    if (acked) {
      if (is_read_) data_ = pins_.rd_data.get();
      const std::uint64_t now = sim_cycle();
      emit(is_read_ ? EventKind::Read : EventKind::Write, start_, now, fid_,
           1, data_, static_cast<unsigned>(now - start_));
      open_ = false;
    }
  }
}

void AhbDecoder::clock_edge() {
  if (pins_.rst.high()) {
    open_ = false;
    pending_data_ = false;
    return;
  }
  if (!pins_.hready.high()) {
    // Every pin is frozen; the open transfer pays a wait state.
    if (open_) ++wait_;
    return;
  }
  if (pending_data_) {
    const std::uint64_t word =
        is_read_ ? pins_.hrdata.get() : pins_.hwdata.get();
    if (beats_done_ == 0) data_ = word;
    ++beats_done_;
    pending_data_ = false;
  }
  const std::uint64_t trans = pins_.htrans.get();
  if (trans == bus::kHtransNonseq) {
    open_ = true;
    is_read_ = !pins_.hwrite.high();
    fid_ = static_cast<std::uint32_t>(pins_.haddr.get());
    expected_ = static_cast<unsigned>(pins_.hburst.get());
    beats_done_ = 0;
    wait_ = 0;
    data_ = 0;
    start_ = sim_cycle();
    pending_data_ = true;  // this beat's data phase rides the next cycle
  } else if (trans == bus::kHtransSeq) {
    pending_data_ = true;
  }
  if (open_ && beats_done_ >= expected_ && !pending_data_) {
    emit(is_read_ ? EventKind::Read : EventKind::Write, start_, sim_cycle(),
         fid_, beats_done_, data_, wait_);
    open_ = false;
  }
}

void ApbDecoder::clock_edge() {
  if (pins_.rst.high()) return;
  const bool sel = pins_.psel.high();
  const bool enable = pins_.penable.high();
  if (sel && !enable) setup_ = sim_cycle();
  if (sel && enable) {
    // The access cycle: address, direction and (for reads) PRDATA are all
    // valid now; the APB never stalls (§2.3.1).
    const bool write = pins_.pwrite.high();
    emit(write ? EventKind::Write : EventKind::Read, setup_, sim_cycle(),
         static_cast<std::uint32_t>(pins_.paddr.get()), 1,
         write ? pins_.pwdata.get() : pins_.prdata.get(), 0);
  }
}

void FcbDecoder::clock_edge() {
  if (pins_.rst.high()) {
    open_ = false;
    return;
  }
  if (!open_ && pins_.op_valid.high()) {
    open_ = true;
    is_read_ = pins_.op_read.high();
    fid_ = static_cast<std::uint32_t>(pins_.op_func.get());
    expected_ = static_cast<unsigned>(pins_.op_beats.get());
    beats_done_ = 0;
    wait_ = 0;
    data_ = 0;
    start_ = sim_cycle();
  }
  if (!open_) return;
  if (is_read_) {
    if (pins_.rd_valid.high()) {
      if (beats_done_ == 0) data_ = pins_.rd_data.get();
      ++beats_done_;
    } else {
      ++wait_;  // device has not produced the next read beat
    }
  } else {
    if (pins_.wr_valid.high()) {
      if (pins_.beat_ack.high()) {
        if (beats_done_ == 0) data_ = pins_.wr_data.get();
        ++beats_done_;
      } else {
        ++wait_;  // beat presented but not yet accepted
      }
    }
    // WR_VALID low mid-operation is the CPU staging the next operand
    // (FeedDelay), not a device wait state.
  }
  if (beats_done_ >= expected_) {
    emit(is_read_ ? EventKind::Read : EventKind::Write, start_, sim_cycle(),
         fid_, beats_done_, data_, wait_);
    open_ = false;
  }
}

void IrqDecoder::clock_edge() {
  const bool high = line_.high();
  if (high == prev_) return;
  prev_ = high;
  const std::uint64_t now = sim_cycle();
  emit(high ? EventKind::IrqAssert : EventKind::IrqAck, now, now, 0, 0,
       high ? 1 : 0, 0);
}

}  // namespace splice::rtl::observe
