// The --sim-profile report: where simulation time goes, for either backend.
//
// Interpreter: per-module eval_comb() totals plus wake statistics (worklist
// pushes while Simulator::set_profiling(true) was active) show which
// modules the settle wavefront keeps re-evaluating.  Compiled backend:
// per-region execution and fix-point iteration counts (gathered by the
// executor under the same profiling flag) show which statically scheduled
// regions run hot and which cyclic regions iterate.  The same numbers are
// surfaced as sim.prof.* metrics through Simulator::metrics_snapshot().
#pragma once

#include <string>

#include "rtl/simulator.hpp"
#include "support/telemetry.hpp"

namespace splice::rtl::observe {

/// Render the hotspot profile of `sim` (Text: human table; Json: one
/// stable-keyed object).  Meaningful after stepping with profiling enabled;
/// without it the wake/region counters read zero but eval totals still show.
[[nodiscard]] std::string render_profile(
    const Simulator& sim,
    support::telemetry::Format format = support::telemetry::Format::Text);

}  // namespace splice::rtl::observe
