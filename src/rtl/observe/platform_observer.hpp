// One-call attachment of the observability layer to a VirtualPlatform:
// picks the matching pin decoder for the platform's bus, watches the IRQ
// line when %irq_support wired one up, and registers a CallTimeline with
// the CPU master.  The decoder modules are owned by the platform's
// simulator (they must be clocked every cycle); the observer itself only
// holds the timeline, so it must be destroyed — or simply go out of scope —
// before the platform it watches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/observe/decoder.hpp"
#include "rtl/observe/timeline.hpp"
#include "runtime/platform.hpp"

namespace splice::rtl::observe {

class PlatformObserver {
 public:
  explicit PlatformObserver(runtime::VirtualPlatform& vp);
  ~PlatformObserver();
  PlatformObserver(const PlatformObserver&) = delete;
  PlatformObserver& operator=(const PlatformObserver&) = delete;

  /// Bracket one driver call (call before/after VirtualPlatform::call).
  void begin_call(const std::string& function, std::size_t index);
  void end_call();

  [[nodiscard]] const CallTimeline& timeline() const { return timeline_; }
  [[nodiscard]] const BusDecoder& decoder() const { return *decoder_; }

  /// Pin transactions, IRQ edges and DMA brackets merged into one
  /// cycle-ordered stream (a pure sort, so backend-deterministic).
  [[nodiscard]] std::vector<BusEvent> merged_events() const;

  /// Canonical streams for the lockstep byte-comparison.
  [[nodiscard]] std::string bus_stream() const;
  [[nodiscard]] std::string timeline_stream() const {
    return timeline_.render();
  }

  /// Chrome trace events / full trace file for this platform's activity.
  [[nodiscard]] std::string trace_events(int pid) const;
  [[nodiscard]] std::string trace_json() const;

  [[nodiscard]] std::uint64_t transactions() const {
    return decoder_->transactions();
  }
  [[nodiscard]] std::uint64_t stall_cycles() const {
    return decoder_->stall_cycles();
  }

 private:
  runtime::VirtualPlatform& vp_;
  CallTimeline timeline_;
  BusDecoder* decoder_ = nullptr;  // owned by the platform's simulator
  IrqDecoder* irq_ = nullptr;      // owned by the platform's simulator
};

/// Deterministic smoke workload for CLI tracing/profiling: one driver call
/// per declared function (instance 0) with fixed argument values —
/// index-typed scalars get a small constant so implicit counts stay
/// reasonable.  Non-blocking calls are drained before the next one.
/// Returns the number of calls issued.
std::size_t exercise_device(runtime::VirtualPlatform& vp,
                            PlatformObserver& observer,
                            std::uint64_t max_cycles = 200000);

}  // namespace splice::rtl::observe
