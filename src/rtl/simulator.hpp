// Event-driven two-phase simulation kernel.
//
// Each cycle:
//   1. combinational settle (see below);
//   2. observers sample the settled pre-edge state (waveform recording);
//   3. clock edge: every module's clock_edge() reads current values and
//      schedules registered writes via Signal::set;
//   4. commit of the scheduled writes + re-settle for the next cycle.
//
// The settle phase is driven by *sensitivities*: a module declares the
// signals its eval_comb() reads with watch() (or declares it has no
// combinational process at all with watch_none()), and the scheduler keeps
// a worklist of exactly the modules whose watched signals changed — a
// change-propagation fix point that evaluates ~1 module per changed signal
// instead of every module per pass.  Modules that declare nothing fall
// back to the legacy full-pass fix point (one pass over all of them per
// settle iteration, repeated until a pass changes no signal), so migration
// is incremental: undeclared modules stay correct, declared modules get
// cheap.  A true combinational loop still throws, in either regime.
//
// This matches the strictly synchronous, single-clock designs Splice
// generates (thesis ch. 4-5: one CLK broadcast signal drives everything).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/signal.hpp"
#include "support/telemetry.hpp"

namespace splice::rtl {

namespace compile {
class CombBuilder;
class Executor;
class ProgramBuilder;
}  // namespace compile

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Combinational process: reads current signal values, drives outputs.
  /// Must be idempotent; may run several times per cycle.
  virtual void eval_comb() {}
  /// Clocked process: reads current values, schedules registered updates.
  virtual void clock_edge() {}
  /// Synchronous reset behaviour (called by Simulator::reset).
  virtual void reset() {}

  // -- Sensitivity API ------------------------------------------------------
  /// Declare that eval_comb() reads `s`.  Once any sensitivity is declared
  /// the scheduler re-evaluates this module only when a watched signal
  /// changes (or mark_dirty() is called) — the declared set must therefore
  /// cover *every* signal eval_comb() reads.
  void watch(Signal& s);
  /// Declare every signal of a bundle in one go.
  template <typename... Signals>
  void watch_all(Signals&... signals) {
    (watch(signals), ...);
  }
  /// Declare an empty sensitivity list: this module has no combinational
  /// process (clocked-only), so the scheduler never calls eval_comb().
  void watch_none() { sensitive_ = true; }
  [[nodiscard]] bool sensitivity_declared() const { return sensitive_; }

  // -- Clocked-process scheduling (compiled backend) ------------------------
  /// Declare that clock_edge() must run on the cycle after `s` changes.
  /// Once any clocked declaration is made the compiled backend skips this
  /// module's clock_edge() on cycles where no clock-watched signal changed
  /// and the module did not report itself busy (set_clock_busy).  The
  /// interpreter ignores these declarations and clocks every module, so a
  /// wrong declaration shows up as a backend trace divergence.
  void watch_clocked(Signal& s);
  template <typename... Signals>
  void watch_clocked_all(Signals&... signals) {
    (watch_clocked(signals), ...);
  }
  /// Declare that clock_edge() needs no external triggers at all (it is a
  /// no-op, or self-sustained activity is fully covered by set_clock_busy).
  void clocked_none() { clocked_declared_ = true; }
  [[nodiscard]] bool clocked_declared() const { return clocked_declared_; }

  /// External wake: run this module's clock_edge() at the next opportunity
  /// even though no clock-watched signal changed (same cycle when the
  /// requester precedes it in module order, otherwise the next one).  Used
  /// for module-to-module completion hand-off: a bus whose operation train
  /// just drained wakes the CPU master sleeping on MasterPort::busy().
  /// The interpreter clocks every module anyway, so this is a no-op there.
  void request_clock_edge() {
    clock_event_ = true;
    if (sim_ != nullptr) note_busy_transition();
  }

  /// Lower this module's combinational process into the compiled backend's
  /// step program.  Return true after emitting units that reproduce
  /// eval_comb() exactly; the default keeps dynamic dispatch (eval_comb is
  /// then called from the compiled settle loop like the interpreter does).
  virtual bool lower_comb(compile::CombBuilder&) { return false; }

  /// eval_comb() invocations so far (kernel instrumentation).
  [[nodiscard]] std::uint64_t eval_count() const { return evals_; }
  /// Event-driven worklist wakes recorded while Simulator::set_profiling
  /// was on (hotspot profiling; always 0 otherwise).
  [[nodiscard]] std::uint64_t wake_count() const { return wakes_; }

 protected:
  /// Internal state read by eval_comb() changed outside the settle phase
  /// (typically in clock_edge): request a re-evaluation at the next settle
  /// even though no watched signal changed.
  void mark_dirty();
  /// Clocked FSM is mid-activity (countdowns, open transactions): keep
  /// running clock_edge() every cycle while true, regardless of events.
  /// Becoming busy outside this module's own clock_edge() (an enqueue from
  /// another module or from test/driver code) must reach the compiled
  /// scheduler, which tracks runnable modules in a wake mask.
  void set_clock_busy(bool busy) {
    if (busy && !clock_busy_ && sim_ != nullptr) note_busy_transition();
    clock_busy_ = busy;
  }
  /// Current simulation cycle (0 when not yet adopted).  During clock_edge
  /// this is the cycle being clocked; gated modules use it to fold skipped
  /// quiet cycles into their per-cycle counters.
  [[nodiscard]] std::uint64_t sim_cycle() const;
  /// Structural mux inputs changed after elaboration (e.g. an IRQ line was
  /// attached): force the compiled backend to re-lower before its next use.
  void invalidate_compile();

 private:
  friend class Simulator;
  friend class compile::Executor;
  friend class compile::ProgramBuilder;

  static constexpr std::uint32_t kNoGateBit = ~0u;

  void note_busy_transition();

  std::string name_;
  Simulator* sim_ = nullptr;  ///< set when the simulator takes ownership
  bool sensitive_ = false;    ///< any sensitivity declaration was made
  bool queued_ = false;       ///< already on the settle worklist
  bool clocked_declared_ = false;  ///< any clocked declaration was made
  bool clock_busy_ = false;   ///< self-reported clocked activity
  bool clock_event_ = true;   ///< a clock-watched signal changed
  std::uint32_t gate_bit_ = kNoGateBit;  ///< compiled wake-mask position
  std::uint64_t evals_ = 0;
  std::uint64_t wakes_ = 0;  ///< worklist pushes while profiling was on
};

class Simulator {
 public:
  /// Settle scheduling policy.  kEventDriven (the default) uses declared
  /// sensitivities; kFullPass forces the legacy every-module fix point for
  /// all modules regardless of declarations (equivalence testing).
  enum class SettleMode : std::uint8_t { kEventDriven, kFullPass };

  /// Execution backend.  kInterp walks the module tree each settle (the
  /// reference semantics); kCompiled lowers the elaborated design once into
  /// a statically scheduled step program (src/rtl/compile/) and is selected
  /// per simulator (CLI: --sim-backend).  SettleMode::kFullPass overrides
  /// the compiled backend back to the interpreter (equivalence testing).
  enum class Backend : std::uint8_t { kInterp, kCompiled };

  /// Kernel instrumentation counters (monotonic; see reset_stats).
  struct Stats {
    std::uint64_t settles = 0;            ///< settle() invocations
    std::uint64_t settle_iterations = 0;  ///< fix-point iterations
    std::uint64_t evals = 0;              ///< eval_comb() invocations
    std::uint64_t fallback_passes = 0;    ///< full passes over undeclared modules
    std::uint64_t worklist_pushes = 0;    ///< modules enqueued by events
    std::uint64_t signal_changes = 0;     ///< observable signal value changes
    std::uint64_t commits = 0;            ///< registered writes committed
  };

  Simulator();
  ~Simulator();

  /// Create (or fetch, by exact name) a signal owned by the simulator.
  Signal& signal(const std::string& name, unsigned width = 1);
  [[nodiscard]] Signal* find_signal(const std::string& name);

  /// Construct a module in place; the simulator owns it.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto mod = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *mod;
    modules_.push_back(std::move(mod));
    adopt(ref);
    return ref;
  }

  /// Sample hook, called once per cycle on the settled pre-edge state.
  void on_sample(std::function<void(std::uint64_t cycle)> fn) {
    samplers_.push_back(std::move(fn));
  }

  /// Advance `n` clock cycles.
  void step(std::uint64_t n = 1);
  /// Step until `pred()` is true (checked on settled pre-edge state) or
  /// `max_cycles` elapse; returns true when the predicate fired.
  bool step_until(const std::function<bool()>& pred,
                  std::uint64_t max_cycles);
  /// Drive all module reset() hooks and clear the cycle counter.
  void reset();
  /// Propagate combinational logic to a fixed point right now.  step()
  /// calls this internally; exposed for tests and interactive probing.
  void settle();

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const std::deque<Signal>& signals() const { return signals_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Module>>& modules() const {
    return modules_;
  }

  void set_settle_mode(SettleMode mode) { mode_ = mode; }
  [[nodiscard]] SettleMode settle_mode() const { return mode_; }

  /// Select the execution backend.  Switching is legal at any point between
  /// cycles; the compiled program is (re)built lazily at the next settle
  /// and the interpreter's worklist invariants are restored on the way back.
  void set_backend(Backend backend);
  [[nodiscard]] Backend backend() const { return backend_; }
  /// The live compiled program, or nullptr while the interpreter is active
  /// (or before the first compiled settle).  Test/introspection hook.
  [[nodiscard]] const compile::Executor* compiled() const {
    return exec_.get();
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  /// Hotspot profiling (--sim-profile): while on, the interpreter charges
  /// worklist wakes to the woken module (Module::wake_count) and the
  /// compiled executor keeps per-region run and fix-point iteration counts.
  /// Off by default — the hot paths then pay a single predictable branch —
  /// so the counters read zero unless enabled before stepping.  The
  /// gathered numbers surface as sim.prof.* keys in metrics_snapshot() and
  /// feed observe::render_profile.
  void set_profiling(bool on) { profiling_ = on; }
  [[nodiscard]] bool profiling() const { return profiling_; }

  /// Per-instance metrics, live-fed by the kernel: distribution histograms
  /// sim.settle_iters / sim.settle_evals (per settle), sim.watch_churn
  /// (worklist pushes per settle — how hard the sensitivity wavefront
  /// works) and sim.step_commits (registered writes per cycle).  The
  /// monotonic Stats counters above are folded in at render time; see
  /// metrics_snapshot().
  [[nodiscard]] support::telemetry::MetricsRegistry& metrics() {
    return metrics_;
  }
  /// The full kernel report as one snapshot: the live histograms plus the
  /// Stats counters (sim.*), topology gauges and per-module
  /// sim.module_evals.<name> counters — ready for MetricsSnapshot::render.
  [[nodiscard]] support::telemetry::MetricsSnapshot metrics_snapshot() const;

 private:
  friend class Module;
  friend class Signal;
  friend class compile::Executor;
  friend class compile::ProgramBuilder;

  static constexpr int kMaxSettleIterations = 64;

  void adopt(Module& m);
  void settle_full_pass();
  void step_cycle();
  void ensure_settled() {
    if (!settled_once_) {
      settle();
      settled_once_ = true;
    }
  }
  /// True when step/settle should take the compiled path.
  [[nodiscard]] bool use_compiled() const {
    return backend_ == Backend::kCompiled && mode_ != SettleMode::kFullPass;
  }
  /// (Re)build the step program if absent or stale.
  void ensure_program();
  /// Drop the compiled program and restore interpreter worklist invariants.
  void invalidate_program();
  /// Structure changed (new signal/module/watch): any compiled program is
  /// stale.  Also rebuilds the interpreter's fallback partition.
  void structure_changed() {
    partition_stale_ = true;
    invalidate_program();
  }
  /// mark_dirty() routing while the compiled program is live.
  void module_dirty_compiled(Module& m);
  /// on_signal_changed() routing while the compiled program is live.
  void notify_compiled(Signal& s);
  /// set_clock_busy(false -> true) routing: wake `m` in the compiled
  /// scheduler's gated mask.
  void note_clock_busy(Module& m);
  void run_eval(Module& m) {
    m.eval_comb();
    ++m.evals_;
    ++stats_.evals;
  }
  /// Put `m` on the settle worklist (idempotent per drain).
  void enqueue(Module& m) {
    if (m.queued_) return;
    m.queued_ = true;
    worklist_.push_back(&m);
    ++stats_.worklist_pushes;
    if (profiling_) ++m.wakes_;
  }
  /// Scheduler hook: `s` changed value; wake its fanout.  While a compiled
  /// program is live, changes instead flow into its arena import queue and
  /// clocked-event flags (the static schedule replaces the worklist).
  void on_signal_changed(Signal& s) {
    ++stats_.signal_changes;
    if (exec_ != nullptr) {
      notify_compiled(s);
      return;
    }
    for (Module* m : s.fanout_) enqueue(*m);
  }
  void flush_commits();
  void rebuild_partition();

  std::deque<Signal> signals_;  // deque: stable addresses for references
  std::unordered_map<std::string, std::size_t> signal_index_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<Module*> fallback_;       ///< modules without sensitivities
  bool partition_stale_ = true;
  std::vector<Module*> worklist_;       ///< modules awaiting eval_comb
  std::vector<Signal*> pending_commits_;
  std::vector<std::function<void(std::uint64_t)>> samplers_;
  SettleMode mode_ = SettleMode::kEventDriven;
  Backend backend_ = Backend::kInterp;
  std::unique_ptr<compile::Executor> exec_;
  bool program_stale_ = true;
  bool profiling_ = false;  ///< sim.prof.* gathering (set_profiling)
  std::uint64_t compile_us_total_ = 0;  ///< sim.compile_us
  std::uint64_t step_us_total_ = 0;     ///< sim.step_us (compiled stepping)
  Stats stats_;
  support::telemetry::MetricsRegistry metrics_;
  // Cached histogram handles: record() is a few relaxed atomics, so the
  // settle loop can feed them without name lookups.
  support::telemetry::Histogram* h_settle_iters_ = nullptr;
  support::telemetry::Histogram* h_settle_evals_ = nullptr;
  support::telemetry::Histogram* h_watch_churn_ = nullptr;
  support::telemetry::Histogram* h_step_commits_ = nullptr;
  std::uint64_t cycle_ = 0;
  bool settled_once_ = false;
};

inline void Module::watch(Signal& s) {
  s.add_watcher(*this);
  sensitive_ = true;
  if (sim_ != nullptr) sim_->structure_changed();
}

inline void Module::watch_clocked(Signal& s) {
  s.add_clocked_watcher(*this);
  clocked_declared_ = true;
  if (sim_ != nullptr) sim_->structure_changed();
}

inline void Module::mark_dirty() {
  if (sim_ == nullptr) return;
  if (sim_->exec_ != nullptr) {
    sim_->module_dirty_compiled(*this);
    return;
  }
  sim_->enqueue(*this);
}

inline void Module::invalidate_compile() {
  if (sim_ != nullptr) sim_->structure_changed();
}

inline void Module::note_busy_transition() { sim_->note_clock_busy(*this); }

inline std::uint64_t Module::sim_cycle() const {
  return sim_ != nullptr ? sim_->cycle_ : 0;
}

/// Render the kernel instrumentation (counters, per-module eval totals and
/// the settle-distribution histograms) through the unified telemetry
/// render path: Text is the human table report, Json one machine-readable
/// object with stable key names (--sim-stats --stats-format json).
[[nodiscard]] std::string render_stats(
    const Simulator& sim,
    support::telemetry::Format format = support::telemetry::Format::Text);

}  // namespace splice::rtl
