// Two-phase cycle-based simulation kernel.
//
// Each cycle:
//   1. combinational settle: every module's eval_comb() runs repeatedly
//      until no signal changes (bounded; a true combinational loop throws);
//   2. observers sample the settled pre-edge state (waveform recording);
//   3. clock edge: every module's clock_edge() reads current values and
//      schedules registered writes via Signal::set;
//   4. commit + re-settle for the next cycle.
//
// This matches the strictly synchronous, single-clock designs Splice
// generates (thesis ch. 4-5: one CLK broadcast signal drives everything).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace splice::rtl {

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Combinational process: reads current signal values, drives outputs.
  /// Must be idempotent; may run several times per cycle.
  virtual void eval_comb() {}
  /// Clocked process: reads current values, schedules registered updates.
  virtual void clock_edge() {}
  /// Synchronous reset behaviour (called by Simulator::reset).
  virtual void reset() {}

 private:
  std::string name_;
};

class Simulator {
 public:
  Simulator() = default;

  /// Create (or fetch, by exact name) a signal owned by the simulator.
  Signal& signal(const std::string& name, unsigned width = 1);
  [[nodiscard]] Signal* find_signal(const std::string& name);

  /// Construct a module in place; the simulator owns it.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto mod = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *mod;
    modules_.push_back(std::move(mod));
    return ref;
  }

  /// Sample hook, called once per cycle on the settled pre-edge state.
  void on_sample(std::function<void(std::uint64_t cycle)> fn) {
    samplers_.push_back(std::move(fn));
  }

  /// Advance `n` clock cycles.
  void step(std::uint64_t n = 1);
  /// Step until `pred()` is true (checked on settled pre-edge state) or
  /// `max_cycles` elapse; returns true when the predicate fired.
  bool step_until(const std::function<bool()>& pred,
                  std::uint64_t max_cycles);
  /// Drive all module reset() hooks and clear the cycle counter.
  void reset();

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] const std::deque<Signal>& signals() const { return signals_; }

 private:
  void settle();

  std::deque<Signal> signals_;  // deque: stable addresses for references
  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<std::function<void(std::uint64_t)>> samplers_;
  std::uint64_t cycle_ = 0;
  bool settled_once_ = false;
};

}  // namespace splice::rtl
