// Value Change Dump writer so recorded traces can be inspected in any
// standard waveform viewer (GTKWave etc.).
#pragma once

#include <string>

#include "rtl/trace.hpp"

namespace splice::rtl {

/// Serialize a recorded trace as VCD text (one timescale unit per cycle).
[[nodiscard]] std::string to_vcd(const Trace& trace, const Simulator& sim,
                                 const std::string& top_name = "splice");

/// Convenience: write the VCD text to a file; returns false on I/O failure.
bool write_vcd_file(const Trace& trace, const Simulator& sim,
                    const std::string& path,
                    const std::string& top_name = "splice");

}  // namespace splice::rtl
