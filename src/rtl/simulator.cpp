#include "rtl/simulator.hpp"

namespace splice::rtl {

Signal& Simulator::signal(const std::string& name, unsigned width) {
  if (Signal* s = find_signal(name)) {
    if (s->width() != width) {
      throw SpliceError("signal '" + name + "' re-declared with width " +
                        std::to_string(width) + " (was " +
                        std::to_string(s->width()) + ")");
    }
    return *s;
  }
  signals_.emplace_back(name, width);
  return signals_.back();
}

Signal* Simulator::find_signal(const std::string& name) {
  for (auto& s : signals_) {
    if (s.name() == name) return &s;
  }
  return nullptr;
}

void Simulator::settle() {
  // Snapshot-based fix point: record all values, run one full pass of every
  // module's eval_comb, compare; repeat until a pass changes nothing.
  constexpr int kMaxIterations = 64;
  for (int iter = 0; iter < kMaxIterations; ++iter) {
    bool changed = false;
    std::vector<std::uint64_t> before;
    before.reserve(signals_.size());
    for (const auto& s : signals_) before.push_back(s.get());
    for (auto& m : modules_) m->eval_comb();
    std::size_t i = 0;
    for (const auto& s : signals_) {
      if (s.get() != before[i++]) {
        changed = true;
        break;
      }
    }
    if (!changed) return;
  }
  throw SpliceError("combinational logic failed to settle (loop?)");
}

void Simulator::step(std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) {
    if (!settled_once_) {
      settle();
      settled_once_ = true;
    }
    for (auto& fn : samplers_) fn(cycle_);
    for (auto& m : modules_) m->clock_edge();
    for (auto& s : signals_) s.commit();
    settle();
    ++cycle_;
  }
}

bool Simulator::step_until(const std::function<bool()>& pred,
                           std::uint64_t max_cycles) {
  for (std::uint64_t k = 0; k < max_cycles; ++k) {
    if (!settled_once_) {
      settle();
      settled_once_ = true;
    }
    if (pred()) return true;
    step();
  }
  return pred();
}

void Simulator::reset() {
  for (auto& m : modules_) m->reset();
  for (auto& s : signals_) s.commit();
  settled_once_ = false;
  cycle_ = 0;
}

}  // namespace splice::rtl
