#include "rtl/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "rtl/compile/executor.hpp"

namespace splice::rtl {

namespace telemetry = support::telemetry;

namespace {
[[noreturn]] void throw_unsettled() {
  throw SpliceError("combinational logic failed to settle (loop?)");
}
}  // namespace

Simulator::Simulator() {
  h_settle_iters_ = &metrics_.histogram("sim.settle_iters");
  h_settle_evals_ = &metrics_.histogram("sim.settle_evals");
  h_watch_churn_ = &metrics_.histogram("sim.watch_churn");
  h_step_commits_ = &metrics_.histogram("sim.step_commits");
}

Simulator::~Simulator() = default;

void Simulator::set_backend(Backend backend) {
  if (backend == backend_) return;
  backend_ = backend;
  // Leaving the compiled backend (or entering it with a stale program from
  // a previous selection) drops the program; kCompiled rebuilds lazily at
  // the next settle via ensure_program().
  if (backend_ == Backend::kInterp) invalidate_program();
}

void Simulator::ensure_program() {
  if (exec_ != nullptr) return;
  const auto t0 = std::chrono::steady_clock::now();
  exec_ = std::make_unique<compile::Executor>(*this);
  compile_us_total_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  // The static schedule supersedes the interpreter's worklist; the
  // executor starts with every unit dirty, so nothing queued is lost.
  for (Module* m : worklist_) m->queued_ = false;
  worklist_.clear();
}

void Simulator::invalidate_program() {
  if (exec_ == nullptr) return;
  exec_.reset();
  // Restore the interpreter's invariant that pending work lives on the
  // worklist: re-evaluate everything at the next settle.
  for (auto& m : modules_) enqueue(*m);
}

void Simulator::module_dirty_compiled(Module& m) {
  exec_->mark_module_dirty(m);
}

void Simulator::notify_compiled(Signal& s) { exec_->note_signal(s); }

void Simulator::note_clock_busy(Module& m) {
  if (exec_ != nullptr) exec_->note_busy(m);
}

Signal& Simulator::signal(const std::string& name, unsigned width) {
  auto it = signal_index_.find(name);
  if (it != signal_index_.end()) {
    Signal& s = signals_[it->second];
    if (s.width() != width) {
      throw SpliceError("signal '" + name + "' re-declared with width " +
                        std::to_string(width) + " (was " +
                        std::to_string(s.width()) + ")");
    }
    return s;
  }
  signals_.emplace_back(name, width);
  signals_.back().owner_ = this;
  signal_index_.emplace(name, signals_.size() - 1);
  structure_changed();  // a live step program has no slot for it
  return signals_.back();
}

Signal* Simulator::find_signal(const std::string& name) {
  auto it = signal_index_.find(name);
  return it != signal_index_.end() ? &signals_[it->second] : nullptr;
}

void Simulator::adopt(Module& m) {
  m.sim_ = this;
  structure_changed();
  // A fresh module has never run: evaluate it at the next settle so its
  // outputs reflect its initial state even if no watched signal changes.
  enqueue(m);
}

void Simulator::rebuild_partition() {
  fallback_.clear();
  for (const auto& m : modules_) {
    if (!m->sensitivity_declared()) fallback_.push_back(m.get());
  }
  partition_stale_ = false;
}

void Simulator::settle() {
  if (use_compiled()) {
    ensure_program();
    exec_->settle();  // bumps stats_.settles itself
    return;
  }
  ++stats_.settles;
  // Per-settle distributions, recorded on every exit path (including the
  // unsettled throw) so the histograms always match the counters.
  struct SettleSample {
    Simulator* sim;
    std::uint64_t iters0, evals0, pushes0;
    ~SettleSample() {
      sim->h_settle_iters_->record(sim->stats_.settle_iterations - iters0);
      sim->h_settle_evals_->record(sim->stats_.evals - evals0);
      sim->h_watch_churn_->record(sim->stats_.worklist_pushes - pushes0);
    }
  } sample{this, stats_.settle_iterations, stats_.evals,
           stats_.worklist_pushes};
  if (mode_ == SettleMode::kFullPass) {
    settle_full_pass();
    return;
  }
  if (partition_stale_) rebuild_partition();

  // Budget: a converging design evaluates each module a handful of times
  // per settle; anything past this bound is a combinational loop.
  const std::uint64_t eval_budget =
      static_cast<std::uint64_t>(kMaxSettleIterations) *
      (modules_.size() + 1);
  std::uint64_t evals_here = 0;

  for (int iter = 0; iter < kMaxSettleIterations; ++iter) {
    ++stats_.settle_iterations;
    // Drain the event worklist: only modules whose watched signals changed
    // (or that asked via mark_dirty).  Evaluations may wake further
    // modules; the drain continues until the wavefront dies out.  FIFO
    // order matters: it follows the propagation wavefront, so a forward
    // chain settles in one linear sweep instead of the quadratic churn a
    // LIFO pop would cause when many modules start queued.
    for (std::size_t head = 0; head < worklist_.size(); ++head) {
      Module* m = worklist_[head];
      m->queued_ = false;
      if (++evals_here > eval_budget) throw_unsettled();
      run_eval(*m);
    }
    worklist_.clear();
    if (fallback_.empty()) return;

    // Legacy path for modules without declared sensitivities: one full
    // pass, repeated until a pass changes nothing and wakes nobody.
    const std::uint64_t tick = stats_.signal_changes;
    for (Module* m : fallback_) run_eval(*m);
    ++stats_.fallback_passes;
    evals_here += fallback_.size();
    if (stats_.signal_changes == tick && worklist_.empty()) return;
  }
  throw_unsettled();
}

void Simulator::settle_full_pass() {
  for (int iter = 0; iter < kMaxSettleIterations; ++iter) {
    ++stats_.settle_iterations;
    const std::uint64_t tick = stats_.signal_changes;
    for (const auto& m : modules_) run_eval(*m);
    ++stats_.fallback_passes;
    if (stats_.signal_changes == tick) {
      // Event notifications still enqueued watchers; the full pass already
      // covered them, so drop the worklist.
      for (Module* m : worklist_) m->queued_ = false;
      worklist_.clear();
      return;
    }
  }
  throw_unsettled();
}

void Simulator::flush_commits() {
  // Only signals with scheduled writes are visited (Signal::set registers
  // them); commits of changed values notify fanout via value_changed.
  for (Signal* s : pending_commits_) {
    if (s->commit()) ++stats_.commits;
  }
  pending_commits_.clear();
}

void Simulator::step_cycle() {
  if (use_compiled()) {
    // ensure_program() already ran (step/step_until/ensure_settled).  The
    // executor's cycle skips the per-cycle histograms: its hot loop stays
    // free of atomics, and the monotonic Stats counters still track it.
    exec_->step_cycle();
    ++cycle_;
    return;
  }
  for (auto& fn : samplers_) fn(cycle_);
  for (auto& m : modules_) m->clock_edge();
  const std::uint64_t commits0 = stats_.commits;
  flush_commits();
  h_step_commits_->record(stats_.commits - commits0);
  settle();
  ++cycle_;
}

void Simulator::step(std::uint64_t n) {
  if (use_compiled()) {
    ensure_program();
    const auto t0 = std::chrono::steady_clock::now();
    ensure_settled();
    for (std::uint64_t k = 0; k < n; ++k) step_cycle();
    step_us_total_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return;
  }
  ensure_settled();
  for (std::uint64_t k = 0; k < n; ++k) step_cycle();
}

bool Simulator::step_until(const std::function<bool()>& pred,
                           std::uint64_t max_cycles) {
  if (use_compiled()) {
    ensure_program();
    const auto t0 = std::chrono::steady_clock::now();
    bool hit = false;
    ensure_settled();
    std::uint64_t k = 0;
    for (; k < max_cycles; ++k) {
      if (pred()) {
        hit = true;
        break;
      }
      step_cycle();
    }
    if (!hit && k == max_cycles) hit = pred();
    step_us_total_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return hit;
  }
  ensure_settled();
  for (std::uint64_t k = 0; k < max_cycles; ++k) {
    if (pred()) return true;
    step_cycle();
  }
  return pred();
}

void Simulator::reset() {
  for (auto& m : modules_) m->reset();
  flush_commits();
  // Every module's state changed: schedule a full re-evaluation.
  if (exec_ != nullptr) {
    exec_->mark_all_dirty();
  } else {
    for (auto& m : modules_) enqueue(*m);
  }
  settled_once_ = false;
  cycle_ = 0;
}

telemetry::MetricsSnapshot Simulator::metrics_snapshot() const {
  telemetry::MetricsSnapshot snap = metrics_.snapshot();
  snap.counters["sim.cycles"] = cycle_;
  snap.counters["sim.settles"] = stats_.settles;
  snap.counters["sim.settle_iterations"] = stats_.settle_iterations;
  snap.counters["sim.eval_comb_calls"] = stats_.evals;
  snap.counters["sim.fallback_passes"] = stats_.fallback_passes;
  snap.counters["sim.worklist_pushes"] = stats_.worklist_pushes;
  snap.counters["sim.signal_changes"] = stats_.signal_changes;
  snap.counters["sim.commits"] = stats_.commits;
  snap.gauges["sim.signals"] = static_cast<std::int64_t>(signals_.size());
  snap.gauges["sim.modules"] = static_cast<std::int64_t>(modules_.size());
  std::int64_t undeclared = 0;
  for (const auto& m : modules_) {
    // The per-module eval table of the old report, as counters; modules on
    // the full-pass fallback path are flagged in the name.
    snap.counters["sim.module_evals." + m->name() +
                  (m->sensitivity_declared() ? "" : " [no sensitivities]")] =
        m->eval_count();
    if (!m->sensitivity_declared()) ++undeclared;
  }
  snap.gauges["sim.modules_without_sensitivities"] = undeclared;
  if (profiling_) {
    // Hotspot profiling keys (sim.prof.*): only present with profiling on,
    // so the default stats surface stays stable and overhead-free.
    for (const auto& m : modules_) {
      snap.counters["sim.prof.wakes." + m->name()] = m->wake_count();
    }
  }
  snap.counters["sim.compile_us"] = compile_us_total_;
  snap.counters["sim.step_us"] = step_us_total_;
  if (exec_ != nullptr) exec_->add_metrics(snap);
  return snap;
}

std::string render_stats(const Simulator& sim, telemetry::Format format) {
  const char* mode =
      sim.settle_mode() == Simulator::SettleMode::kEventDriven
          ? "event-driven"
          : "full-pass";
  const char* backend =
      sim.backend() == Simulator::Backend::kCompiled ? "compiled" : "interp";
  const telemetry::MetricsSnapshot snap = sim.metrics_snapshot();
  if (format == telemetry::Format::Json) {
    return "{\"settle_mode\": \"" + std::string(mode) + "\", \"backend\": \"" +
           backend + "\", \"metrics\": " + snap.render(format) + "}";
  }
  return "simulation kernel stats (backend: " + std::string(backend) + ", " +
         mode + " settle)\n" + snap.render(format);
}

}  // namespace splice::rtl
