// A small thread-pool job scheduler for the generation pipeline.  Workers
// drain a shared FIFO queue; `parallel_for` fans a bounded index range out
// over the pool with the *calling thread participating*, so nested
// parallel_for calls (batch-of-specs outside, per-module inside) can share
// one pool without ever deadlocking: the caller always makes progress on
// its own indices even when every worker is busy elsewhere.
//
// Determinism contract: `parallel_for(pool, n, fn)` returns only after all
// n indices completed; result ordering is the caller's job (write into an
// index-addressed output slot).  When one or more indices throw, the
// exception of the *lowest* failing index is rethrown after the whole range
// has settled — the same exception a serial loop would have surfaced first.
//
// Telemetry: parallel_for captures the caller's active span
// (support/telemetry) and adopts it inside every drain, so spans opened by
// fn on pool workers parent under the launching span instead of appearing
// as per-thread orphans in the trace.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

namespace splice::support {

class JobPool {
 public:
  /// Spawns `threads` workers; 0 means no workers (everything submitted
  /// through parallel_for then runs inline on the calling thread).
  explicit JobPool(unsigned threads);
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a fire-and-forget task.  Tasks must not block waiting for
  /// other queued tasks (parallel_for's helpers follow this rule).
  void submit(std::function<void()> task);

  /// `hardware_concurrency` with a floor of 1 (the value is 0 on some
  /// platforms).
  [[nodiscard]] static unsigned default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Run fn(0) .. fn(n-1), using `pool` for parallelism when it has workers.
/// The calling thread always participates; a null pool (or a 0-worker pool,
/// or n <= 1) degrades to a plain serial loop.
void parallel_for(JobPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace splice::support
