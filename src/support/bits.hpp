// Bit-level helpers shared by the bus models, code generators and the
// resource estimator.
#pragma once

#include <cstdint>

namespace splice::bits {

/// Ceiling division for positive integers.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Number of bits required to represent values 0..n-1 (at least 1).
[[nodiscard]] constexpr unsigned bits_for_count(std::uint64_t n) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) < n && bits < 63) ++bits;
  return bits;
}

/// Number of bits required to represent the value n itself.
[[nodiscard]] constexpr unsigned bits_for_value(std::uint64_t n) {
  return bits_for_count(n + 1);
}

/// Mask with the low `width` bits set (width in [0, 64]).
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0}
                     : ((std::uint64_t{1} << width) - 1);
}

/// True when exactly one bit is set.
[[nodiscard]] constexpr bool is_one_hot(std::uint64_t v) {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Index of the single set bit of a one-hot value (undefined otherwise).
[[nodiscard]] constexpr unsigned one_hot_index(std::uint64_t v) {
  unsigned idx = 0;
  while ((v & 1) == 0 && idx < 63) {
    v >>= 1;
    ++idx;
  }
  return idx;
}

}  // namespace splice::bits
