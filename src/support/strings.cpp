#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace splice::str {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
char lower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return lower(c); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (lower(a[i]) != lower(b[i])) return false;
  }
  return true;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  std::size_t pos = 0;
  while (true) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      return out;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::optional<std::uint64_t> parse_hex(std::string_view s) {
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : s) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F') digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else return std::nullopt;
    value = (value << 4) | digit;
  }
  return value;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0]))) return false;
  return std::all_of(s.begin() + 1, s.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

std::string lhex(std::uint64_t value) {
  char buf[17];
  const int n = std::snprintf(buf, sizeof buf, "%llx",
                              static_cast<unsigned long long>(value));
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string hex(std::uint64_t value, int min_digits) {
  std::ostringstream os;
  os << std::hex << std::uppercase << value;
  std::string digits = os.str();
  while (static_cast<int>(digits.size()) < min_digits) {
    digits.insert(digits.begin(), '0');
  }
  return "0x" + digits;
}

std::string indent(std::string_view body, int spaces) {
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    std::string_view line = body.substr(pos, eol - pos);
    if (!line.empty()) out += pad;
    out += line;
    if (eol < body.size()) out += '\n';
    pos = eol + 1;
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace splice::str
