#include "support/diagnostics.hpp"

#include <sstream>

namespace splice {

std::string SourceLoc::to_string() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << line;
  if (column != 0) os << ':' << column;
  return os.str();
}

namespace {
std::string_view severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.valid()) os << loc.to_string() << ": ";
  os << severity_name(severity) << " [E" << static_cast<int>(id) << "] "
     << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, DiagId id, std::string message,
                              SourceLoc loc) {
  if (sev == Severity::Error) ++error_count_;
  diags_.push_back(Diagnostic{sev, id, std::move(message), loc});
}

bool DiagnosticEngine::contains(DiagId id) const {
  for (const auto& d : diags_) {
    if (d.id == id) return true;
  }
  return false;
}

std::string DiagnosticEngine::render() const {
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  error_count_ = 0;
}

}  // namespace splice
