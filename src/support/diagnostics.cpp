#include "support/diagnostics.hpp"

#include <sstream>

namespace splice {

std::string SourceLoc::to_string() const {
  if (!valid()) return "<unknown>";
  std::ostringstream os;
  os << line;
  if (column != 0) os << ':' << column;
  return os.str();
}

namespace {
std::string_view severity_name(Severity sev) {
  switch (sev) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  if (loc.valid()) os << loc.to_string() << ": ";
  os << severity_name(severity) << " [E" << static_cast<int>(id) << "] "
     << message;
  return os.str();
}

void DiagnosticEngine::report(Severity sev, DiagId id, std::string message,
                              SourceLoc loc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sev == Severity::Error) {
    error_count_.fetch_add(1, std::memory_order_release);
  }
  diags_.push_back(Diagnostic{sev, id, std::move(message), loc});
}

void DiagnosticEngine::merge_from(const DiagnosticEngine& src) {
  if (&src == this) return;
  // Snapshot the source first so the two locks are never held together
  // (merge_from(a, b) racing merge_from(b, a) must not deadlock).
  std::vector<Diagnostic> copied;
  std::size_t errors = 0;
  {
    std::lock_guard<std::mutex> lock(src.mu_);
    copied = src.diags_;
    errors = src.error_count_.load(std::memory_order_acquire);
  }
  std::lock_guard<std::mutex> lock(mu_);
  error_count_.fetch_add(errors, std::memory_order_release);
  for (auto& d : copied) diags_.push_back(std::move(d));
}

bool DiagnosticEngine::contains(DiagId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& d : diags_) {
    if (d.id == id) return true;
  }
  return false;
}

std::string DiagnosticEngine::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& d : diags_) os << d.to_string() << '\n';
  return os.str();
}

void DiagnosticEngine::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  diags_.clear();
  error_count_.store(0, std::memory_order_release);
}

}  // namespace splice
