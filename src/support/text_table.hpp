// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables and figure data in a readable, diffable form.
#pragma once

#include <string>
#include <vector>

namespace splice {

class TextTable {
 public:
  enum class Align { Left, Right };

  /// Define the column headers; alignment defaults to Left.
  void set_header(std::vector<std::string> header);
  void set_alignment(std::vector<Align> alignment);
  void add_row(std::vector<std::string> row);
  /// A horizontal rule between body rows.
  void add_rule();

  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
};

}  // namespace splice
