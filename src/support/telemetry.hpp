// Unified runtime telemetry: a span tracer and a metrics registry.
//
// The tracer records nested spans (name, category, wall-clock interval,
// thread, counter args) into per-thread buffers that are merged at flush
// and serialized as Chrome trace-event JSON — the format Perfetto and
// chrome://tracing load directly.  Exactly one tracer is *installed*
// process-wide at a time (the CLI installs one for `--trace-out`); opening
// a span while none is installed costs a single relaxed atomic load, so
// instrumentation can stay unconditionally in hot paths.
//
// Parenting: each thread keeps a stack of its open spans; a new span's
// parent is the innermost open span.  Work that hops threads (the job
// pool's `parallel_for`) carries the caller's span id across and adopts it
// via ParentScope, so spans opened inside pool workers parent under the
// span that issued the fan-out and the batch renders as one flame graph
// instead of per-thread orphans.
//
// The metrics registry is the single registration point for counters,
// gauges and histograms.  Metric objects are lock-free atomics; the
// registry's name→metric maps are mutex-guarded get-or-create with stable
// addresses, so callers hold onto `Counter*`/`Histogram*` and record from
// any thread.  `snapshot()` captures a point-in-time view; snapshots
// subtract (`diff_since`) for per-unit-of-work deltas (e.g. one spec's own
// cache hits inside a batch) and render through one path as either a
// text_table report or a JSON object with stable key names.
//
// Lifetime discipline for the tracer: install(nullptr) (or destroying an
// installed tracer) before reading results, with no spans still open.
// Threads that outlive a tracer re-register against the next one lazily —
// installation bumps a process-wide epoch that invalidates every thread's
// cached buffer.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace splice::support::telemetry {

enum class Format : std::uint8_t { Text, Json };

// ---------------------------------------------------------------------------
// Metrics

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of unsigned samples.  Bucket i holds values
/// whose bit width is i (0 in bucket 0, [2^(i-1), 2^i) in bucket i), which
/// keeps record() a handful of relaxed atomic ops — cheap enough for the
/// simulator's per-settle feed.  Quantiles are bucket-resolution estimates.
class Histogram {
 public:
  static constexpr int kBuckets = 40;  ///< covers values below 2^39

  void record(std::uint64_t v);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Exact extremes of the recorded samples; not diffable (diff_since
    /// keeps the later snapshot's values).
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Upper bound of the bucket holding the q-quantile sample (q in [0,1]).
    [[nodiscard]] std::uint64_t quantile_bound(double q) const;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time view of a registry (or a hand-assembled report: callers
/// may insert extra entries before rendering — the simulator folds its
/// kernel counters in this way).  Maps keep names sorted, so both render
/// formats are deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Delta view: counters and histogram counts/sums/buckets subtract
  /// (entries absent from `earlier` count from zero); gauges and histogram
  /// min/max keep this snapshot's values.  Entries whose delta is zero are
  /// dropped, so a per-spec diff lists only what that spec did.
  [[nodiscard]] MetricsSnapshot diff_since(const MetricsSnapshot& earlier) const;

  /// One rendering path for every stat surface: Text is a text_table
  /// report (counters/gauges table, then a histogram table), Json is a
  /// single object {"counters":{},"gauges":{},"histograms":{}} with stable
  /// key names.
  [[nodiscard]] std::string render(Format format) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the returned reference stays valid for the registry's
  /// lifetime.  Safe to call concurrently.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  [[nodiscard]] std::string render(Format format) const {
    return snapshot().render(format);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// ---------------------------------------------------------------------------
// Span tracer

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Install `t` as the process-wide active tracer (nullptr disables
  /// tracing).  Not safe to call while spans are open on other threads.
  static void install(Tracer* t);
  [[nodiscard]] static Tracer* active();

  /// A finished span as recorded in a thread buffer.  `tid` is a dense
  /// per-tracer thread index in registration order (0 = first recording
  /// thread); `parent` is 0 for roots.
  struct SpanRecord {
    std::string name;
    std::string cat;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint32_t tid = 0;
    std::uint64_t start_ns = 0;  ///< since tracer construction
    std::uint64_t dur_ns = 0;
    std::vector<std::pair<std::string, std::uint64_t>> args;
  };

  /// Merge every thread buffer and return the spans sorted by start time
  /// (ties by id).  Call only after the producing work has been joined.
  [[nodiscard]] std::vector<SpanRecord> spans() const;

  /// Chrome trace-event JSON ("X" complete events, plus "s"/"f" flow
  /// arrows for spans whose parent ran on a different thread).  Loadable
  /// in Perfetto / chrome://tracing.  Same join requirement as spans().
  /// `extra_events` is a caller-prerendered, comma-joined run of trace
  /// events (no surrounding array) appended to the traceEvents list — how
  /// the simulated-time observability spans share a file with wall-clock
  /// generation spans (distinct pid).
  [[nodiscard]] std::string chrome_trace_json(
      std::string_view extra_events = {}) const;

  /// One recording thread's buffer: written only by its owning thread,
  /// read at merge time after the producers joined.
  struct ThreadBuf {
    std::uint32_t tid = 0;
    std::vector<SpanRecord> spans;
  };

 private:
  friend class Span;

  /// Register the calling thread; returns its buffer (stable address).
  ThreadBuf* register_thread();
  [[nodiscard]] std::uint64_t now_ns() const;
  std::uint64_t next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::deque<ThreadBuf> buffers_;  // deque: stable addresses for threads
};

/// RAII span against the installed tracer; a no-op (one atomic load) when
/// none is installed.  Spans must be closed on the thread that opened them
/// and strictly nest per thread — scope-bound usage guarantees both.
class Span {
 public:
  Span(std::string_view name, std::string_view cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a counter argument (rendered into the trace event's "args").
  void arg(std::string_view key, std::uint64_t value);

  [[nodiscard]] bool recording() const { return buf_ != nullptr; }
  /// This span's id (0 when not recording) — what parallel_for carries
  /// across threads.
  [[nodiscard]] std::uint64_t id() const { return rec_.id; }

 private:
  Tracer* tracer_ = nullptr;
  Tracer::ThreadBuf* buf_ = nullptr;
  std::uint64_t epoch_ = 0;          ///< install epoch this span belongs to
  std::uint64_t saved_current_ = 0;  ///< caller's innermost span, restored
  Tracer::SpanRecord rec_;
};

/// The calling thread's innermost open span id — the adopted cross-thread
/// parent when the thread's own stack is empty — or 0 when idle/untraced.
[[nodiscard]] std::uint64_t current_span_id();

/// Adopt `parent_id` as the parent for spans this thread opens at stack
/// depth zero while the scope lives.  job_pool::parallel_for wraps worker
/// drains in one of these so fanned-out work parents under the span that
/// launched it.  Nests (saves and restores the previous adoption).
class ParentScope {
 public:
  explicit ParentScope(std::uint64_t parent_id);
  ~ParentScope();
  ParentScope(const ParentScope&) = delete;
  ParentScope& operator=(const ParentScope&) = delete;

 private:
  std::uint64_t saved_;
};

}  // namespace splice::support::telemetry
