#include "support/job_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "support/telemetry.hpp"

namespace splice::support {

JobPool::JobPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobPool::~JobPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void JobPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void JobPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

unsigned JobPool::default_thread_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

namespace {

/// Shared state of one parallel_for call.  Helpers submitted to the pool
/// and the calling thread all claim indices from the same atomic counter;
/// whoever holds the last completion notifies the waiting caller.  The
/// state is shared_ptr-owned because queued helpers may outlive the call
/// itself (they find the range exhausted and return immediately).
struct ForState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors;  // slot per index, distinct writers
  /// The caller's active span at fan-out time: helper threads adopt it so
  /// spans opened inside fn parent under the span that launched the range
  /// and the fan-out renders as one flame graph.
  std::uint64_t parent_span = 0;

  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;  // guarded by mu

  void drain() {
    telemetry::ParentScope adopt(parent_span);
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*fn)(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        ++done;
      }
      cv.notify_all();
    }
  }
};

}  // namespace

void parallel_for(JobPool* pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->thread_count() == 0 || n == 1) {
    // Serial fallback keeps the exception contract trivially: the first
    // (lowest-index) failure propagates.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  state->errors.resize(n);
  state->parent_span = telemetry::current_span_id();

  // One helper per worker is enough: each helper loops until the range is
  // exhausted.  More would only queue no-ops.
  const std::size_t helpers =
      std::min<std::size_t>(pool->thread_count(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->submit([state] { state->drain(); });
  }

  state->drain();  // the caller participates (nested calls stay live)
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done == state->n; });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (state->errors[i]) std::rethrow_exception(state->errors[i]);
  }
}

}  // namespace splice::support
