// Small string helpers used across the Splice libraries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace splice::str {

/// Stream-free output buffer for generated text: `<<` appends straight
/// into one std::string (integers via to_string), so emitters keep their
/// chained style without std::ostringstream's locale and virtual-streambuf
/// overhead, which was measurable on the generation hot path.
class Appender {
 public:
  Appender() = default;
  explicit Appender(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  Appender& operator<<(std::string_view v) {
    buf_ += v;
    return *this;
  }
  Appender& operator<<(const char* v) {
    buf_ += v;
    return *this;
  }
  Appender& operator<<(char c) {
    buf_ += c;
    return *this;
  }
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, char> &&
             !std::is_same_v<T, bool>)
  Appender& operator<<(T v) {
    buf_ += std::to_string(v);
    return *this;
  }

  [[nodiscard]] const std::string& str() const& { return buf_; }
  [[nodiscard]] std::string str() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Lowercase hex digits with no prefix and no padding — what
/// `os << std::hex << v` used to print.
[[nodiscard]] std::string lhex(std::uint64_t value);

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] std::string to_lower(std::string_view s);
[[nodiscard]] std::string to_upper(std::string_view s);
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);
/// Split on any run of whitespace; no empty pieces.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix);
/// Replace every occurrence of `from` in `s` with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);
/// Parse a decimal unsigned integer; nullopt on any non-digit.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);
/// Parse "0x..." or plain hex digits.
[[nodiscard]] std::optional<std::uint64_t> parse_hex(std::string_view s);
/// True if `s` matches the thesis `identifier` production:
/// alpha (alphanumeric | '_')*.
[[nodiscard]] bool is_identifier(std::string_view s);
/// Render `value` as 0x%08X-style hex with at least `min_digits` digits.
[[nodiscard]] std::string hex(std::uint64_t value, int min_digits = 1);
/// Indent every line of `body` by `spaces` spaces.
[[nodiscard]] std::string indent(std::string_view body, int spaces);
/// Escape `s` for inclusion inside a JSON double-quoted string (quotes,
/// backslashes, control characters; no outer quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace splice::str
