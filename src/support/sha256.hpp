// Minimal SHA-256 (FIPS 180-4) used for content-addressing generated
// artifacts.  Collision resistance matters here: cache keys derived from
// specification text must never alias two different specs, and payload
// digests must reliably detect corrupted cache entries.  No third-party
// dependency is available in the build image, so the compression function
// lives here; it is not a hot path (a few KB per compile).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace splice::support {

class Sha256 {
 public:
  Sha256();

  /// Absorb more input; may be called repeatedly.
  void update(std::string_view data);
  void update(const void* data, std::size_t len);

  /// Finalize and return the 64-character lowercase hex digest.  The
  /// hasher must not be reused afterwards.
  [[nodiscard]] std::string hex_digest();

 private:
  void compress(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience wrapper.
[[nodiscard]] std::string sha256_hex(std::string_view data);

}  // namespace splice::support
