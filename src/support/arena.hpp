// Bump-pointer arena allocator for phase-scoped object graphs: the
// frontend's token stream / parse structures and the HDL AST both allocate
// thousands of small, identically-lived nodes per generated module, and a
// general-purpose heap pays lock + header + free-list costs on every one.
// An Arena hands out pointers from large chunks and frees everything at
// once when it is destroyed.
//
// Restrictions, enforced at compile time where possible:
//  - destructors are never run: only trivially-destructible types may be
//    placed in an arena (string_view/span-based node structs qualify);
//  - individual deallocation is impossible by design;
//  - the arena is not thread-safe — one arena per building thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace splice::support {

class Arena {
 public:
  /// First chunk size; later chunks double up to kMaxChunk so one-off
  /// giant parses don't thrash while small specs stay cheap.
  static constexpr std::size_t kFirstChunk = 16 * 1024;
  static constexpr std::size_t kMaxChunk = 512 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw aligned allocation.  Never returns nullptr (throws bad_alloc).
  void* allocate(std::size_t size, std::size_t align) {
    char* p = align_up(cur_, align);
    if (p + size > end_) {
      grow(size + align);
      p = align_up(cur_, align);
    }
    cur_ = p + size;
    bytes_used_ += size;
    return p;
  }

  /// Construct a single T in the arena.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of n Ts (caller fills every slot).
  template <typename T>
  T* alloc_array_uninit(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    if (n == 0) return nullptr;
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Copy a contiguous range into the arena; returns the stable span.
  template <typename T>
  std::span<const T> copy_array(const T* src, std::size_t n) {
    if (n == 0) return {};
    T* dst = alloc_array_uninit<T>(n);
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(dst, src, n * sizeof(T));
    } else {
      for (std::size_t i = 0; i < n; ++i) ::new (dst + i) T(src[i]);
    }
    return {dst, n};
  }

  template <typename T>
  std::span<const T> copy_span(std::span<const T> src) {
    return copy_array(src.data(), src.size());
  }

  /// Copy a string into the arena; the returned view stays valid for the
  /// arena's lifetime (the backbone of zero-copy interning).
  std::string_view copy_string(std::string_view s) {
    if (s.empty()) return {};
    char* dst = alloc_array_uninit<char>(s.size());
    std::memcpy(dst, s.data(), s.size());
    return {dst, s.size()};
  }

  /// Total bytes handed out (not counting chunk slack).
  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }

 private:
  static char* align_up(char* p, std::size_t align) {
    const auto v = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t aligned = (v + align - 1) & ~(align - 1);
    return p + (aligned - v);
  }

  void grow(std::size_t at_least) {
    std::size_t size = chunks_.empty() ? kFirstChunk
                                       : std::min(kMaxChunk, chunks_.back().size * 2);
    if (size < at_least) size = at_least;
    chunks_.push_back({std::make_unique<char[]>(size), size});
    cur_ = chunks_.back().data.get();
    end_ = cur_ + size;
  }

  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  char* cur_ = nullptr;
  char* end_ = nullptr;
  std::size_t bytes_used_ = 0;
};

/// A push_back-growable array backed by an Arena: geometric growth, old
/// blocks are simply abandoned to the arena (they are reclaimed when the
/// arena dies).  For trivially-copyable element types only.  Used where
/// the element count is unknown up front (token streams, statement lists).
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "growth relocates elements with memcpy");

 public:
  explicit ArenaVector(Arena& arena, std::size_t initial_capacity = 8)
      : arena_(&arena) {
    reserve(initial_capacity);
  }

  void push_back(const T& v) {
    if (size_ == cap_) reserve(cap_ == 0 ? 8 : cap_ * 2);
    data_[size_++] = v;
  }

  void reserve(std::size_t cap) {
    if (cap <= cap_) return;
    T* next = arena_->alloc_array_uninit<T>(cap);
    if (size_ != 0) std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    cap_ = cap;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] T* data() { return data_; }
  [[nodiscard]] const T* data() const { return data_; }
  [[nodiscard]] std::span<const T> span() const { return {data_, size_}; }

 private:
  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace splice::support
