// A fast non-cryptographic 64-bit digest for integrity checking of cache
// payloads.  Content *addressing* stays on SHA-256 (support/sha256.hpp);
// this digest only answers "did these bytes change on disk", where speed
// matters (it runs over every artifact byte on every warm cache hit) and
// adversarial collisions do not.  Mixes 8-byte little-endian lanes with a
// multiply-xorshift round (splitmix64-style finalizer).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace splice::support {

inline std::uint64_t digest64(std::string_view data) {
  constexpr std::uint64_t kMul = 0x9e3779b97f4a7c15ULL;
  std::uint64_t h = 0x51'7c'c1'b7'27'22'0a'95ULL ^ (data.size() * kMul);
  const char* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  std::uint64_t tail = 0;
  if (n != 0) {
    std::memcpy(&tail, p, n);
    h = (h ^ tail) * kMul;
  }
  h ^= h >> 32;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 29;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 32;
  return h;
}

}  // namespace splice::support
