#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace splice::support::telemetry {

// ---------------------------------------------------------------------------
// Histogram

void Histogram::record(std::uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  const int bucket =
      std::min(kBuckets - 1, static_cast<int>(std::bit_width(v)));
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

std::uint64_t Histogram::Snapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[static_cast<std::size_t>(i)];
    if (seen > rank) {
      // Bucket i holds values of bit width i: upper bound 2^i - 1, clamped
      // to the observed maximum.
      const std::uint64_t bound =
          i >= 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << i) - 1;
      return std::min(bound, max);
    }
  }
  return max;
}

// ---------------------------------------------------------------------------
// Snapshot algebra and rendering

MetricsSnapshot MetricsSnapshot::diff_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    if (value != before) out.counters.emplace(name, value - before);
  }
  out.gauges = gauges;
  for (const auto& [name, snap] : histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      if (snap.count != 0) out.histograms.emplace(name, snap);
      continue;
    }
    if (snap.count == it->second.count) continue;
    Histogram::Snapshot d = snap;  // min/max stay: extremes cannot subtract
    d.count -= it->second.count;
    d.sum -= it->second.sum;
    for (std::size_t i = 0; i < d.buckets.size(); ++i) {
      d.buckets[i] -= it->second.buckets[i];
    }
    out.histograms.emplace(name, d);
  }
  return out;
}

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

void append_json_histogram(std::string& out, const Histogram::Snapshot& h) {
  out += "{\"count\": " + std::to_string(h.count) +
         ", \"sum\": " + std::to_string(h.sum) +
         ", \"min\": " + std::to_string(h.min) +
         ", \"max\": " + std::to_string(h.max) +
         ", \"mean\": " + format_double(h.mean()) +
         ", \"p50\": " + std::to_string(h.quantile_bound(0.50)) +
         ", \"p95\": " + std::to_string(h.quantile_bound(0.95)) + "}";
}

}  // namespace

std::string MetricsSnapshot::render(Format format) const {
  if (format == Format::Json) {
    std::string out = "{\"counters\": {";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + str::json_escape(name) + "\": " + std::to_string(value);
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + str::json_escape(name) + "\": " + std::to_string(value);
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [name, snap] : histograms) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + str::json_escape(name) + "\": ";
      append_json_histogram(out, snap);
    }
    out += "}}";
    return out;
  }

  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable t;
    t.set_header({"metric", "value"});
    t.set_alignment({TextTable::Align::Left, TextTable::Align::Right});
    for (const auto& [name, value] : counters) {
      t.add_row({name, std::to_string(value)});
    }
    for (const auto& [name, value] : gauges) {
      t.add_row({name, std::to_string(value)});
    }
    out += t.render();
  }
  if (!histograms.empty()) {
    TextTable t;
    t.set_header({"histogram", "count", "sum", "mean", "min", "max", "~p50",
                  "~p95"});
    std::vector<TextTable::Align> align(8, TextTable::Align::Right);
    align[0] = TextTable::Align::Left;
    t.set_alignment(align);
    for (const auto& [name, h] : histograms) {
      t.add_row({name, std::to_string(h.count), std::to_string(h.sum),
                 format_double(h.mean()), std::to_string(h.min),
                 std::to_string(h.max),
                 std::to_string(h.quantile_bound(0.50)),
                 std::to_string(h.quantile_bound(0.95))});
    }
    out += t.render();
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, h->snapshot());
  }
  return s;
}

// ---------------------------------------------------------------------------
// Tracer

namespace {

std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<std::uint64_t> g_epoch{0};

/// Per-thread tracing state, lazily re-bound whenever the install epoch
/// moves (so threads that outlive one tracer attach cleanly to the next).
struct TlsState {
  std::uint64_t epoch = 0;
  Tracer::ThreadBuf* buf = nullptr;
  std::uint64_t current = 0;  ///< innermost open span id on this thread
  std::uint64_t adopted = 0;  ///< cross-thread parent (ParentScope)
};

thread_local TlsState g_tls;

/// Reset the thread's cached state when the install epoch moved; returns
/// the thread's buffer under the current epoch (null when unregistered).
Tracer::ThreadBuf* bind_thread() {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (g_tls.epoch != epoch) {
    g_tls.epoch = epoch;
    g_tls.buf = nullptr;
    g_tls.current = 0;
  }
  return g_tls.buf;
}

}  // namespace

Tracer::Tracer() : start_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() {
  if (active() == this) install(nullptr);
}

void Tracer::install(Tracer* t) {
  g_tracer.store(t, std::memory_order_release);
  g_epoch.fetch_add(1, std::memory_order_acq_rel);
}

Tracer* Tracer::active() {
  return g_tracer.load(std::memory_order_acquire);
}

Tracer::ThreadBuf* Tracer::register_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.emplace_back();
  buffers_.back().tid = static_cast<std::uint32_t>(buffers_.size() - 1);
  return &buffers_.back();
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::vector<Tracer::SpanRecord> Tracer::spans() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      out.insert(out.end(), buf.spans.begin(), buf.spans.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::string Tracer::chrome_trace_json(std::string_view extra_events) const {
  const std::vector<SpanRecord> all = spans();

  // tid of every span, for flow arrows on cross-thread parent edges.
  std::map<std::uint64_t, std::uint32_t> tid_of;
  for (const auto& s : all) tid_of.emplace(s.id, s.tid);

  auto append_us = [](std::string& out, std::uint64_t ns) {
    // Microseconds with nanosecond precision (Chrome ts/dur are doubles).
    out += std::to_string(ns / 1000) + "." + [&] {
      char frac[8];
      std::snprintf(frac, sizeof(frac), "%03u",
                    static_cast<unsigned>(ns % 1000));
      return std::string(frac);
    }();
  };

  std::string out;
  out.reserve(256 + all.size() * 160);
  out +=
      "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"splice\"}}";
  for (const auto& s : all) {
    out += ",\n{\"name\": \"" + str::json_escape(s.name) + "\", \"cat\": \"" +
           str::json_escape(s.cat) + "\", \"ph\": \"X\", \"pid\": 1, "
           "\"tid\": " + std::to_string(s.tid) + ", \"ts\": ";
    append_us(out, s.start_ns);
    out += ", \"dur\": ";
    append_us(out, s.dur_ns);
    out += ", \"args\": {\"span_id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent);
    for (const auto& [key, value] : s.args) {
      out += ", \"" + str::json_escape(key) + "\": " + std::to_string(value);
    }
    out += "}}";

    // A parent on another thread cannot be drawn by slice nesting; emit a
    // flow arrow from the parent's track to this span's start instead.
    const auto parent_tid = tid_of.find(s.parent);
    if (s.parent != 0 && parent_tid != tid_of.end() &&
        parent_tid->second != s.tid) {
      std::string ts;
      append_us(ts, s.start_ns);
      out += ",\n{\"name\": \"fan-out\", \"cat\": \"pool\", \"ph\": \"s\", "
             "\"id\": " + std::to_string(s.id) +
             ", \"pid\": 1, \"tid\": " + std::to_string(parent_tid->second) +
             ", \"ts\": " + ts + "}";
      out += ",\n{\"name\": \"fan-out\", \"cat\": \"pool\", \"ph\": \"f\", "
             "\"bp\": \"e\", \"id\": " + std::to_string(s.id) +
             ", \"pid\": 1, \"tid\": " + std::to_string(s.tid) +
             ", \"ts\": " + ts + "}";
    }
  }
  if (!extra_events.empty()) {
    // Caller-prerendered events (e.g. the simulated-time spans from
    // rtl/observe) ride in the same traceEvents array; the process_name
    // metadata event above guarantees a predecessor for the comma.
    out += ",\n";
    out += extra_events;
  }
  out += "\n]}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Span / ParentScope

Span::Span(std::string_view name, std::string_view cat) {
  Tracer* t = Tracer::active();
  if (t == nullptr) return;
  Tracer::ThreadBuf* buf = bind_thread();
  if (buf == nullptr) {
    buf = t->register_thread();
    g_tls.buf = buf;
  }
  tracer_ = t;
  buf_ = buf;
  epoch_ = g_tls.epoch;
  rec_.name.assign(name);
  rec_.cat.assign(cat);
  rec_.id = t->next_id();
  rec_.parent = g_tls.current != 0 ? g_tls.current : g_tls.adopted;
  rec_.tid = buf->tid;
  saved_current_ = g_tls.current;
  g_tls.current = rec_.id;
  rec_.start_ns = t->now_ns();
}

Span::~Span() {
  if (buf_ == nullptr) return;
  // A tracer swap while this span was open orphans it: drop the record —
  // the buffer may belong to a tracer that no longer exists.
  if (g_epoch.load(std::memory_order_acquire) != epoch_) return;
  rec_.dur_ns = tracer_->now_ns() - rec_.start_ns;
  g_tls.current = saved_current_;
  buf_->spans.push_back(std::move(rec_));
}

void Span::arg(std::string_view key, std::uint64_t value) {
  if (buf_ == nullptr) return;
  rec_.args.emplace_back(std::string(key), value);
}

std::uint64_t current_span_id() {
  if (Tracer::active() == nullptr) return 0;
  if (g_tls.epoch != g_epoch.load(std::memory_order_acquire)) return 0;
  return g_tls.current != 0 ? g_tls.current : g_tls.adopted;
}

ParentScope::ParentScope(std::uint64_t parent_id) {
  // Re-bind first so a stale adopted value from a previous tracer epoch
  // cannot leak into this scope's save/restore pair.
  bind_thread();
  saved_ = g_tls.adopted;
  g_tls.adopted = parent_id;
}

ParentScope::~ParentScope() { g_tls.adopted = saved_; }

}  // namespace splice::support::telemetry
