// Diagnostics infrastructure shared by the Splice frontend and code
// generators.  The original tool reported errors textually and "refused to
// proceed" (thesis §3.2); we mirror that with a collecting engine so callers
// can decide whether to abort, plus an exception type for fatal misuse of
// the library API itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace splice {

/// Position inside a Splice specification (1-based, column 0 == unknown).
struct SourceLoc {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string to_string() const;
};

enum class Severity : std::uint8_t { Note, Warning, Error };

/// Stable machine-readable identifiers for every diagnostic the tool can
/// produce.  Tests assert on these instead of message text.
enum class DiagId : std::uint16_t {
  // Lexing / parsing
  UnexpectedCharacter = 100,
  UnterminatedComment,
  ExpectedToken,
  ExpectedType,
  ExpectedIdentifier,
  MalformedDirective,
  UnknownDirective,
  DuplicateDirective,
  MalformedNumber,

  // Declaration semantics (thesis §3.1, §3.3)
  DuplicateFunctionName = 200,
  DuplicateParamName,
  VoidParameter,
  PointerWithoutBound,
  ImplicitIndexUnknown,
  ImplicitIndexNotBefore,
  ImplicitIndexNotScalar,
  PackingOnScalar,
  DmaOnScalar,
  PackingTooWide,
  NowaitWithValue,
  ByRefNeedsPointer,
  ByRefWithNowait,
  ZeroInstanceCount,
  ZeroElementCount,
  ReturnPointerImplicit,
  NowaitWithoutInputs,

  // Target-specification semantics (thesis §3.2)
  MissingBusType = 300,
  MissingBusWidth,
  MissingDeviceName,
  MissingBaseAddress,
  UnsupportedBusWidth,
  UnknownBusType,
  DmaNotSupportedByBus,
  DmaNotEnabled,
  BurstNotSupportedByBus,
  IrqNotSupportedByBus,
  UnknownHdl,
  UnknownUserType,
  DuplicateUserType,
  BadUserTypeWidth,
  BaseAddressIgnored,
  FuncIdSpaceExhausted,

  // Extension API (thesis ch. 7)
  AdapterNameMismatch = 400,
  AdapterMissingRoutine,
  TemplateUnknownMacro,
  TemplateUnterminatedMacro,

  // HDL AST lint: verification of the generated-hardware document model
  // before any file is written
  LintDuplicatePortName = 500,
  LintDuplicateSignalName,
  LintUnknownSignal,
  LintUndrivenSignal,
  LintUnreadSignal,
  LintWidthMismatch,
  LintUnreachableState,
};

struct Diagnostic {
  Severity severity = Severity::Error;
  DiagId id = DiagId::UnexpectedCharacter;
  std::string message;
  SourceLoc loc;

  [[nodiscard]] std::string to_string() const;
};

/// Collects diagnostics during a frontend or generation pass.
///
/// Thread-safety: report()/error()/warning()/note(), merge_from(),
/// has_errors() and error_count() may be called concurrently.  The parallel
/// generation pipeline nevertheless gives each job its own private engine
/// and merges them in a canonical order (spec input order, then module
/// order, then emission order — which within a module follows source
/// location), so a parallel run renders byte-for-byte the same report as a
/// serial run; the locking only guards against a stray concurrent report
/// corrupting the vector.  all()/render()/contains() take a snapshot under
/// the same lock but return data that is only meaningfully ordered once the
/// producing jobs have been joined.
class DiagnosticEngine {
 public:
  DiagnosticEngine() = default;
  DiagnosticEngine(const DiagnosticEngine&) = delete;
  DiagnosticEngine& operator=(const DiagnosticEngine&) = delete;

  void report(Severity sev, DiagId id, std::string message, SourceLoc loc = {});
  void error(DiagId id, std::string message, SourceLoc loc = {}) {
    report(Severity::Error, id, std::move(message), loc);
  }
  void warning(DiagId id, std::string message, SourceLoc loc = {}) {
    report(Severity::Warning, id, std::move(message), loc);
  }
  void note(DiagId id, std::string message, SourceLoc loc = {}) {
    report(Severity::Note, id, std::move(message), loc);
  }

  /// Append every diagnostic collected by `src`, preserving its order.
  /// The canonical merge discipline for parallel jobs: merge local engines
  /// in spec-then-module order after joining, never share one engine.
  void merge_from(const DiagnosticEngine& src);

  [[nodiscard]] bool has_errors() const {
    return error_count_.load(std::memory_order_acquire) > 0;
  }
  [[nodiscard]] std::size_t error_count() const {
    return error_count_.load(std::memory_order_acquire);
  }
  /// Direct view of the collected diagnostics.  Only valid once every
  /// thread that may report here has been joined.
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] bool contains(DiagId id) const;
  /// Render every diagnostic, one per line (the CLI-style report).
  [[nodiscard]] std::string render() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Diagnostic> diags_;
  std::atomic<std::size_t> error_count_{0};
};

/// Thrown on misuse of the library API (not on bad user specifications —
/// those go through DiagnosticEngine).
class SpliceError : public std::runtime_error {
 public:
  explicit SpliceError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace splice
