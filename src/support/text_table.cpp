#include "support/text_table.hpp"

#include <algorithm>
#include <sstream>

namespace splice {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void TextTable::add_rule() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      width[i] = std::max(width[i], cells[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) {
    if (!r.rule) measure(r.cells);
  }

  auto align_of = [&](std::size_t i) {
    return i < alignment_.size() ? alignment_[i] : Align::Left;
  };
  auto emit_row = [&](std::ostringstream& os,
                      const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cols; ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      std::size_t pad = width[i] - cell.size();
      os << ' ';
      if (align_of(i) == Align::Right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t i = 0; i < cols; ++i) {
      os << std::string(width[i] + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  if (!header_.empty()) {
    emit_row(os, header_);
    emit_rule(os);
  }
  for (const auto& r : rows_) {
    if (r.rule) emit_rule(os);
    else emit_row(os, r.cells);
  }
  emit_rule(os);
  return os.str();
}

}  // namespace splice
