// Shared word-at-a-time hashing for the generation hot path.  Both the
// HDL-AST interner and the lint pass key open-addressed tables by name;
// the per-byte FNV they started with showed up at the top of the build
// profile, so the mixer below works a word at a time.  The final state
// feeds power-of-two tables, so every step finishes with a high-to-low
// xor to spread entropy into the index bits.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace splice::support {

/// Multiply-xor mixer over 64-bit words.
struct Hasher {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;

  void u64(std::uint64_t v) {
    h ^= v;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
  }
  void ptr(const void* p) { u64(reinterpret_cast<std::uintptr_t>(p)); }
};

/// Content hash, eight bytes per mixing step.
inline std::uint64_t hash_bytes(const char* p, std::size_t n) {
  Hasher h;
  h.u64(n);
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    h.u64(v);
    p += 8;
    n -= 8;
  }
  if (n != 0) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, n);
    h.u64(v);
  }
  return h.h;
}

inline std::uint64_t hash_string(std::string_view s) {
  return hash_bytes(s.data(), s.size());
}

}  // namespace splice::support
