#include "devices/evaluation.hpp"

#include "devices/baselines.hpp"
#include "drivergen/program.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"
#include "support/diagnostics.hpp"

namespace splice::devices {

std::string_view impl_name(Impl impl) {
  switch (impl) {
    case Impl::NaivePlb: return "Simple PLB";
    case Impl::SplicePlbSimple: return "Splice PLB (Simple)";
    case Impl::SplicePlbDma: return "Splice PLB (DMA)";
    case Impl::SpliceFcb: return "Splice FCB";
    case Impl::OptimizedFcb: return "Optimized FCB";
  }
  return "?";
}

bool impl_is_splice(Impl impl) {
  return impl == Impl::SplicePlbSimple || impl == Impl::SplicePlbDma ||
         impl == Impl::SpliceFcb;
}

namespace {

drivergen::CallArgs make_args(const ScenarioInputs& in) {
  return {{static_cast<std::uint64_t>(in.set1.size())}, in.set1,
          {static_cast<std::uint64_t>(in.set2.size())}, in.set2,
          {static_cast<std::uint64_t>(in.set3.size())}, in.set3};
}

ScenarioRun run_splice(Impl impl, const Scenario& sc, unsigned warm_runs) {
  const bool dma = impl == Impl::SplicePlbDma;
  const bool fcb = impl == Impl::SpliceFcb;
  ir::DeviceSpec spec = make_interpolator_spec(fcb ? "fcb" : "plb",
                                               /*burst=*/fcb, dma);
  runtime::VirtualPlatform vp(std::move(spec), make_interpolator_behaviors());
  const ScenarioInputs in = make_inputs(sc);
  const drivergen::CallArgs args = make_args(in);

  ScenarioRun run;
  run.expected = in.expected();
  for (unsigned k = 0; k < std::max(1u, warm_runs); ++k) {
    auto r = vp.call("interp", args);
    run.bus_cycles = r.bus_cycles;
    run.result = static_cast<std::uint32_t>(r.outputs.at(0));
  }
  if (!vp.checker().clean()) {
    throw SpliceError("SIS protocol violation during " +
                      std::string(impl_name(impl)) + " run: " +
                      vp.checker().violations().front());
  }
  return run;
}

/// The "standardized driver set" of §9.2.1 for the two hand-coded
/// interfaces: the same word sequence the Splice drivers produce, grouped
/// into the native burst ops the optimized FCB driver uses.
drivergen::DriverProgram baseline_program(bool fcb_bursts,
                                          const ScenarioInputs& in) {
  using drivergen::DriverOp;
  using drivergen::OpCode;
  drivergen::DriverProgram prog;
  prog.function_name = "interp";
  prog.fid = 1;
  prog.ops.push_back(DriverOp{OpCode::SetAddress, 1, {}, 0});

  auto emit_words = [&](const std::vector<std::uint64_t>& words) {
    if (!fcb_bursts) {
      for (std::uint64_t w : words) {
        prog.ops.push_back(DriverOp{OpCode::WriteSingle, 1, {w}, 0});
      }
      return;
    }
    std::size_t i = 0;
    while (i < words.size()) {
      std::size_t n = words.size() - i >= 4 ? 4
                      : words.size() - i >= 2 ? 2
                                              : 1;
      DriverOp op;
      op.op = n == 4   ? OpCode::WriteQuad
              : n == 2 ? OpCode::WriteDouble
                       : OpCode::WriteSingle;
      op.fid = 1;
      op.data.assign(words.begin() + static_cast<long>(i),
                     words.begin() + static_cast<long>(i + n));
      prog.ops.push_back(std::move(op));
      i += n;
    }
  };

  emit_words({in.set1.size()});
  emit_words(in.set1);
  emit_words({in.set2.size()});
  emit_words(in.set2);
  emit_words({in.set3.size()});
  emit_words(in.set3);
  prog.ops.push_back(DriverOp{OpCode::WaitForResults, 1, {}, 0});
  prog.ops.push_back(DriverOp{OpCode::ReadSingle, 1, {}, 1});
  prog.total_read_words = 1;
  return prog;
}

ScenarioRun run_baseline(Impl impl, const Scenario& sc, unsigned warm_runs) {
  rtl::Simulator sim;
  bus::MasterPort* port = nullptr;
  if (impl == Impl::NaivePlb) {
    auto& plb = sim.add<bus::PlbBus>(sim, "PLB_", 32, /*slots=*/2);
    sim.add<NaivePlbInterpolator>(plb.pins());
    port = &plb;
  } else {
    auto& fcb = sim.add<bus::FcbBus>(sim, "FCB_", 32, /*func_id_width=*/4);
    sim.add<OptimizedFcbInterpolator>(fcb.pins());
    port = &fcb;
  }
  auto& cpu = sim.add<runtime::CpuMaster>(
      *port, sis::ProtocolClass::PseudoAsynchronous);

  const ScenarioInputs in = make_inputs(sc);
  ScenarioRun run;
  run.expected = in.expected();
  for (unsigned k = 0; k < std::max(1u, warm_runs); ++k) {
    cpu.clear_read_words();
    cpu.run(baseline_program(impl == Impl::OptimizedFcb, in));
    const std::uint64_t start = sim.cycle();
    if (!sim.step_until([&] { return cpu.done(); }, 1'000'000)) {
      throw SpliceError("baseline run did not complete");
    }
    run.bus_cycles = sim.cycle() - start;
    run.result = cpu.read_words().empty()
                     ? 0
                     : static_cast<std::uint32_t>(cpu.read_words().back());
  }
  return run;
}

}  // namespace

ScenarioRun run_scenario(Impl impl, const Scenario& sc, unsigned warm_runs) {
  if (impl_is_splice(impl)) return run_splice(impl, sc, warm_runs);
  return run_baseline(impl, sc, warm_runs);
}

namespace {

using resources::ResourceReport;

/// Interface-side structure of the naive hand-coded PLB interconnect: a
/// monolithic per-word FSM, redundant re-decode, duplicated staging and
/// shadow registers, and unrolled word-index compare chains that grow with
/// the scenario (the §9.2.1 narrative, counted with the same component
/// cost functions as the generated logic).
ResourceReport naive_plb_resources(const Scenario& sc) {
  ResourceReport r;
  r += resources::fsm_cost(6 * 6);          // 6 pipeline states x 6 phases
  r += resources::register_cost(32);        // write staging
  r += resources::register_cost(32);        // read staging
  r += resources::register_cost(32);        // redundant data shadow
  r += resources::encoder_cost(2);          // CE decode
  r += resources::encoder_cost(2);          // ...performed twice
  for (int i = 0; i < 3; ++i) {
    r += resources::counter_cost(16);       // oversized phase counters
    r += resources::comparator_cost(16);
  }
  r.ffs += 12;                              // handshake sync flops
  r += resources::register_cost(32);        // spare diagnostic capture reg
  r.luts += 24;                             // duplicated ready/valid gating
  // Unrolled per-word compare chain sized to the worst-case scenario the
  // designer hard-coded for.
  r.luts += sc.total() * 6;
  r.ffs += sc.total();
  // Base PLB attachment (same protocol machinery every PLB slave needs).
  r.luts += 3 * 32 + 40;
  r.ffs += 2 * 32 + 16;
  return r;
}

/// Interface-side structure of the hand-optimized FCB interconnect.
ResourceReport optimized_fcb_resources(const Scenario& sc) {
  ResourceReport r;
  r += resources::fsm_cost(14);             // op + per-phase sequencing
  r += resources::register_cost(32);        // write staging register
  r += resources::register_cost(32);        // result register
  r += resources::counter_cost(3);          // beat counter
  r += resources::comparator_cost(3);
  for (int i = 0; i < 3; ++i) {
    r += resources::counter_cost(16);       // per-set element counters
    r += resources::comparator_cost(16);
    r += resources::register_cost(16);      // latched set bounds
  }
  r += resources::mux_cost(3, 32);          // set routing mux
  r.luts += 2 * 32 + 24;                    // base FCB attachment
  r.ffs += 32 + 16;
  r.ffs += 8;                               // pipeline valid/ack flops
  r.luts += sc.total() / 2;                 // small per-scenario tuning
  return r;
}

}  // namespace

resources::ResourceReport implementation_resources(Impl impl,
                                                   const Scenario& sc) {
  switch (impl) {
    case Impl::NaivePlb:
      return naive_plb_resources(sc);
    case Impl::OptimizedFcb:
      return optimized_fcb_resources(sc);
    case Impl::SplicePlbSimple:
      return resources::estimate_splice_device(
          make_interpolator_spec("plb", false, false));
    case Impl::SplicePlbDma:
      return resources::estimate_splice_device(
          make_interpolator_spec("plb", false, true));
    case Impl::SpliceFcb:
      return resources::estimate_splice_device(
          make_interpolator_spec("fcb", true, false));
  }
  return {};
}

}  // namespace splice::devices
