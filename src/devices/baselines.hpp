// The two hand-coded interconnects of the thesis evaluation (§9.2.1):
//
//  * "Simple PLB": the naive first-attempt PLB interface — "the designer
//    was not aware of all of the intricacies of the PLB and thus the
//    interface was not nearly as optimized as it could have been".
//    Modelled structurally: every word crawls through decode/latch/settle
//    states before the acknowledge fires.
//
//  * "Optimized FCB": the hand-tuned replacement — fully pipelined beat
//    acceptance at one word per cycle and an immediately served result.
//
// Both sit directly on the native bus pins with no SIS in between.
#pragma once

#include <cstdint>
#include <vector>

#include "bus/fcb.hpp"
#include "bus/plb.hpp"
#include "bus/timing.hpp"
#include "rtl/simulator.hpp"

namespace splice::devices {

/// Shared input sequencer: consumes the interpolator's word stream
/// (n1, set1..., n2, set2..., n3, set3...) and runs the constant-latency
/// calculation.  Both baselines embed one; the calculation is identical to
/// the Splice variants' behaviour by construction (§9.2: "the amount of
/// calculation done in each implementation is constant").
class InterpSequencer {
 public:
  void consume(std::uint64_t word);
  [[nodiscard]] bool inputs_complete() const { return phase_ >= 6; }
  /// Advance the calculation countdown one cycle.
  void tick();
  [[nodiscard]] bool result_ready() const {
    return calc_started_ && calc_left_ == 0;
  }
  [[nodiscard]] std::uint32_t result() const { return result_; }
  void restart();

 private:
  int phase_ = 0;  // 0:n1 1:set1 2:n2 3:set2 4:n3 5:set3 6:done
  std::uint64_t expected_ = 0;
  std::vector<std::uint64_t> sets_[3];
  bool calc_started_ = false;
  unsigned calc_left_ = 0;
  std::uint32_t result_ = 0;
};

/// The naive hand-coded PLB slave ("Simple PLB").
class NaivePlbInterpolator : public rtl::Module {
 public:
  explicit NaivePlbInterpolator(bus::PlbPins& pins);
  void clock_edge() override;
  void reset() override;
  [[nodiscard]] std::uint64_t runs_completed() const { return runs_; }

 private:
  enum class St : std::uint8_t {
    Idle,
    Decode,   // redundant address re-decode
    Latch,    // staging register hop
    Ack,      // acknowledge pulse
    Settle1,  // unnecessary recovery states
    Settle2,
  };
  bus::PlbPins& pins_;
  InterpSequencer seq_;
  St state_ = St::Idle;
  bool pending_is_read_ = false;
  std::uint64_t staged_ = 0;
  std::uint64_t runs_ = 0;
};

/// The hand-optimized FCB slave ("Optimized FCB").
class OptimizedFcbInterpolator : public rtl::Module {
 public:
  explicit OptimizedFcbInterpolator(bus::FcbPins& pins);
  void eval_comb() override;
  void clock_edge() override;
  void reset() override;
  [[nodiscard]] std::uint64_t runs_completed() const { return runs_; }

 private:
  void edge_impl();

  bus::FcbPins& pins_;
  InterpSequencer seq_;
  bool op_active_ = false;
  bool op_read_ = false;
  unsigned beats_left_ = 0;
  bool rd_pulse_ = false;
  std::uint64_t rd_latch_ = 0;  ///< result held across the sequencer restart
  std::uint64_t runs_ = 0;
};

}  // namespace splice::devices
