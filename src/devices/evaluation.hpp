// The chapter-9 evaluation harness: the five interpolator interface
// implementations (§9.2.1), cycle measurement per scenario (Figure 9.2)
// and FPGA resource estimation per implementation (Figure 9.3).
#pragma once

#include <cstdint>
#include <string_view>

#include "devices/interpolator.hpp"
#include "resources/model.hpp"

namespace splice::devices {

/// The five interfaces of §9.2.1, in the order the figures list them.
enum class Impl : std::uint8_t {
  NaivePlb,         ///< "Simple PLB" — naive hand-coded
  SplicePlbSimple,  ///< "Splice PLB (Simple)"
  SplicePlbDma,     ///< "Splice PLB (DMA)"
  SpliceFcb,        ///< "Splice FCB"
  OptimizedFcb,     ///< "Optimized FCB" — hand-optimized
};

inline constexpr Impl kAllImpls[] = {
    Impl::NaivePlb, Impl::SplicePlbSimple, Impl::SplicePlbDma,
    Impl::SpliceFcb, Impl::OptimizedFcb};

[[nodiscard]] std::string_view impl_name(Impl impl);
[[nodiscard]] bool impl_is_splice(Impl impl);

struct ScenarioRun {
  std::uint64_t bus_cycles = 0;
  std::uint32_t result = 0;
  std::uint32_t expected = 0;

  [[nodiscard]] bool correct() const { return result == expected; }
};

/// Execute one interpolator run (all input transfers, the constant-time
/// calculation, and the result read) on a freshly built platform and
/// report its cycle cost — the Figure 9.2 measurement.  `warm_runs`
/// repeats the call and reports the last run's cycles (steady state).
[[nodiscard]] ScenarioRun run_scenario(Impl impl, const Scenario& sc,
                                       unsigned warm_runs = 2);

/// Interface-logic resource estimate for an implementation sized to a
/// scenario — the Figure 9.3 measurement.  The user calculation logic is
/// excluded everywhere (the thesis holds it constant across
/// implementations).
[[nodiscard]] resources::ResourceReport implementation_resources(
    Impl impl, const Scenario& sc);

}  // namespace splice::devices
