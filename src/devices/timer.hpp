// The chapter-8 worked example: a 64-bit hardware timer with seven
// interface declarations (Figure 8.2).  The timer core is an independent
// clocked module living alongside the generated stubs — exactly the §8.3.1
// architecture where an instantiated timer answers one-hot commands from
// the user-logic functions.
#pragma once

#include <cstdint>
#include <string>

#include "elab/behavior.hpp"
#include "ir/device.hpp"
#include "rtl/simulator.hpp"

namespace splice::devices {

class TimerCore {
 public:
  /// Advance the counter one bus-clock cycle (Figure 8.6 semantics: count
  /// while enabled; on reaching the threshold, raise the trigger and wrap
  /// to zero).
  void tick();

  // Command / query surface (Figure 8.5's one-hot COMMAND operations).
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  void set_threshold(std::uint64_t t) {
    threshold_ = t;
    value_ = 0;  // "Also Resets the Timer" (Figure 8.8)
  }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }
  [[nodiscard]] std::uint64_t snapshot() const { return value_; }
  /// Bus clock in Hz (the ML-403 interconnect clock, §9.3).
  [[nodiscard]] std::uint32_t clock_rate() const { return 100'000'000; }
  /// Status word: bit 0 = enabled, bit 1 = fired; reading clears the fired
  /// bit (Figure 8.8: "Clears Internal Timer Fired Bit").
  [[nodiscard]] std::uint32_t read_status();
  [[nodiscard]] bool fired() const { return fired_; }

 private:
  bool enabled_ = false;
  bool fired_ = false;
  std::uint64_t value_ = 0;
  std::uint64_t threshold_ = 0;
};

/// Clock glue: ticks a TimerCore from the simulator.
class TimerTick : public rtl::Module {
 public:
  explicit TimerTick(TimerCore& core)
      : rtl::Module("hw_timer_core"), core_(core) {
    watch_none();  // clocked-only: advances the counter on the edge
  }
  void clock_edge() override { core_.tick(); }

 private:
  TimerCore& core_;
};

/// The Figure 8.2 specification, verbatim (brace-form declarations,
/// space-separated directives, llong/ulong user types).
[[nodiscard]] std::string timer_spec_text(const std::string& bus = "plb");
[[nodiscard]] ir::DeviceSpec make_timer_spec(const std::string& bus = "plb");

/// Behaviours binding the seven declarations to a TimerCore (the §8.3.1
/// "filling in user-logic stubs" step).
[[nodiscard]] elab::BehaviorMap make_timer_behaviors(TimerCore& core);

}  // namespace splice::devices
