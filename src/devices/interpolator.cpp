#include "devices/interpolator.hpp"

#include <algorithm>

#include "bus/timing.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "support/diagnostics.hpp"

namespace splice::devices {

const std::array<Scenario, 4>& scenarios() {
  // Figure 9.1: Input Parameters Required for Each Scenario.
  static const std::array<Scenario, 4> table = {{
      {1, 2, 1, 2},
      {2, 4, 2, 4},
      {3, 8, 3, 6},
      {4, 16, 4, 8},
  }};
  return table;
}

std::uint32_t interpolate(const std::vector<std::uint64_t>& set1,
                          const std::vector<std::uint64_t>& set2,
                          const std::vector<std::uint64_t>& set3) {
  if (set1.empty() || set2.empty()) return 0;
  std::uint64_t acc = 0;
  for (std::size_t q = 0; q < set3.size(); ++q) {
    const std::uint64_t t = set3[q];
    // Locate the bracketing samples (set1 treated as ascending; clamp).
    std::size_t hi = 0;
    while (hi < set1.size() && set1[hi] < t) ++hi;
    const std::size_t i1 = std::min(hi, set1.size() - 1);
    const std::size_t i0 = i1 == 0 ? 0 : i1 - 1;
    const std::uint64_t t0 = set1[i0];
    const std::uint64_t t1 = set1[i1];
    // Control values cycle through set2.
    const std::uint64_t v0 = set2[i0 % set2.size()];
    const std::uint64_t v1 = set2[i1 % set2.size()];
    std::uint64_t interp;
    if (t1 == t0) {
      interp = v1 << 16;
    } else {
      const std::uint64_t tc = std::clamp(t, t0, t1);
      // 16.16 fixed-point lerp.
      const std::uint64_t frac = ((tc - t0) << 16) / (t1 - t0);
      interp = (v0 << 16) + (v1 - v0) * frac;
    }
    acc += interp;
    acc = (acc & 0xFFFFFFFFull) ^ (acc >> 32);  // fold into 32 bits
  }
  return static_cast<std::uint32_t>(acc & 0xFFFFFFFFull);
}

ir::DeviceSpec make_interpolator_spec(const std::string& bus, bool burst,
                                      bool dma) {
  const std::string caret = dma ? "^" : "";
  const std::string text = std::string("%device_name interp\n") +
                           "%bus_type " + bus + "\n" +
                           "%bus_width 32\n" +
                           "%base_address 0x80004000\n" +
                           "%burst_support " + (burst ? "true" : "false") +
                           "\n" +
                           "%dma_support " + (dma ? "true" : "false") + "\n" +
                           "unsigned interp(char n1, unsigned*:n1" + caret +
                           " set1, char n2, unsigned*:n2" + caret +
                           " set2, char n3, unsigned*:n3" + caret +
                           " set3);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  if (!spec || !ir::validate(*spec, diags)) {
    throw SpliceError("interpolator spec failed to build:\n" +
                      diags.render());
  }
  return std::move(*spec);
}

elab::BehaviorMap make_interpolator_behaviors() {
  elab::BehaviorMap behaviors;
  behaviors.set("interp", [](const elab::CallContext& ctx) {
    // Inputs: n1, set1, n2, set2, n3, set3 (declaration order).
    const std::uint32_t result =
        interpolate(ctx.array(1), ctx.array(3), ctx.array(5));
    return elab::CalcResult{bus::timing::kInterpolatorCalcCycles, {result}};
  });
  return behaviors;
}

ScenarioInputs make_inputs(const Scenario& sc, std::uint32_t seed) {
  // Small deterministic LCG; ascending timestamps for set1.
  std::uint32_t state = seed * 2654435761u + sc.id;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) & 0x3FF;
  };
  ScenarioInputs in;
  std::uint64_t t = 0;
  for (unsigned i = 0; i < sc.set1; ++i) {
    t += 1 + next() % 97;
    in.set1.push_back(t);
  }
  for (unsigned i = 0; i < sc.set2; ++i) in.set2.push_back(next());
  for (unsigned i = 0; i < sc.set3; ++i) in.set3.push_back(next() % (t + 1));
  return in;
}

}  // namespace splice::devices
