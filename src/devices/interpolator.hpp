// The Scan Eagle UAV linear interpolator of thesis chapter 9: the device
// re-implemented behind five different interfaces for the evaluation.  The
// calculation core "runs in a predictable manner and requires the same
// number of clock cycles to produce results each time" (§9.1), so one
// shared kernel serves every implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "elab/behavior.hpp"
#include "ir/device.hpp"

namespace splice::devices {

/// The four usage scenarios of Figure 9.1: input elements per data set.
struct Scenario {
  unsigned id;
  unsigned set1;
  unsigned set2;
  unsigned set3;

  [[nodiscard]] unsigned total() const { return set1 + set2 + set3; }
};

[[nodiscard]] const std::array<Scenario, 4>& scenarios();

/// The interpolation kernel (16.16 fixed point).  set1 holds sample
/// timestamps, set2 control values, set3 query times; each query is
/// clamped into the sample range, bracketing samples are located, and the
/// interpolants accumulate into a single 32-bit flight-control word.  The
/// exact semantics are unimportant for the evaluation (§9.2) — what
/// matters is that the result is a deterministic function of every input
/// word, so data-integrity checks catch any dropped or reordered transfer.
[[nodiscard]] std::uint32_t interpolate(
    const std::vector<std::uint64_t>& set1,
    const std::vector<std::uint64_t>& set2,
    const std::vector<std::uint64_t>& set3);

/// Splice interface declaration for the interpolator: three implicit
/// pointer transfers (§9.2.1), one 32-bit result.
///   unsigned interp(char n1, unsigned*:n1 set1,
///                   char n2, unsigned*:n2 set2,
///                   char n3, unsigned*:n3 set3);
[[nodiscard]] ir::DeviceSpec make_interpolator_spec(const std::string& bus,
                                                    bool burst, bool dma);

/// Calculation behaviour used by every Splice-generated variant.
[[nodiscard]] elab::BehaviorMap make_interpolator_behaviors();

/// Deterministic input data for a scenario (what the flight software
/// would feed the device).
struct ScenarioInputs {
  std::vector<std::uint64_t> set1;
  std::vector<std::uint64_t> set2;
  std::vector<std::uint64_t> set3;

  [[nodiscard]] std::uint32_t expected() const {
    return interpolate(set1, set2, set3);
  }
};
[[nodiscard]] ScenarioInputs make_inputs(const Scenario& sc,
                                         std::uint32_t seed = 1);

}  // namespace splice::devices
