#include "devices/timer.hpp"

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "support/diagnostics.hpp"

namespace splice::devices {

void TimerCore::tick() {
  if (!enabled_) return;
  if (value_ >= threshold_) {
    fired_ = true;
    value_ = 0;
  } else {
    ++value_;
  }
}

std::uint32_t TimerCore::read_status() {
  std::uint32_t status = (enabled_ ? 1u : 0u) | (fired_ ? 2u : 0u);
  fired_ = false;
  return status;
}

std::string timer_spec_text(const std::string& bus) {
  // Figure 8.2, reproduced with its space-separated directive spellings
  // and brace-form interface declarations.
  return std::string("// Target Specification\n") +
         "% name hw timer\n"
         "% hdl type vhdl\n"
         "% bus type " + bus + "\n"
         "% bus width 32\n"
         "% base address 0x8000401C\n"
         "% dma support false\n"
         "% user type llong, unsigned long long, 64\n"
         "% user type ulong, unsigned long, 32\n"
         "\n"
         "// Interface Directives\n"
         "void disable{};\n"
         "void enable{};\n"
         "void set_threshold{llong thold};\n"
         "llong get_threshold{};\n"
         "llong get_snapshot{};\n"
         "ulong get_clock{};\n"
         "ulong get_status{};\n";
}

ir::DeviceSpec make_timer_spec(const std::string& bus) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(timer_spec_text(bus), diags);
  if (!spec || !ir::validate(*spec, diags)) {
    throw SpliceError("timer spec failed to build:\n" + diags.render());
  }
  return std::move(*spec);
}

elab::BehaviorMap make_timer_behaviors(TimerCore& core) {
  elab::BehaviorMap b;
  b.set("disable", [&core](const elab::CallContext&) {
    core.disable();
    return elab::CalcResult{1, {}};
  });
  b.set("enable", [&core](const elab::CallContext&) {
    core.enable();
    return elab::CalcResult{1, {}};
  });
  b.set("set_threshold", [&core](const elab::CallContext& ctx) {
    core.set_threshold(ctx.scalar(0));
    return elab::CalcResult{1, {}};
  });
  b.set("get_threshold", [&core](const elab::CallContext&) {
    return elab::CalcResult{1, {core.threshold()}};
  });
  b.set("get_snapshot", [&core](const elab::CallContext&) {
    return elab::CalcResult{1, {core.snapshot()}};
  });
  b.set("get_clock", [&core](const elab::CallContext&) {
    return elab::CalcResult{1, {core.clock_rate()}};
  });
  b.set("get_status", [&core](const elab::CallContext&) {
    return elab::CalcResult{1, {core.read_status()}};
  });
  return b;
}

}  // namespace splice::devices
