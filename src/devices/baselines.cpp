#include "devices/baselines.hpp"

#include <tuple>

#include "devices/interpolator.hpp"

namespace splice::devices {

// ---------------------------------------------------------------------------
// InterpSequencer
// ---------------------------------------------------------------------------

void InterpSequencer::consume(std::uint64_t word) {
  switch (phase_) {
    case 0:
    case 2:
    case 4:
      expected_ = word & 0xFF;  // the char count
      if (expected_ == 0) phase_ += 2;
      else ++phase_;
      break;
    case 1:
    case 3:
    case 5: {
      auto& set = sets_[(phase_ - 1) / 2];
      set.push_back(word);
      if (set.size() >= expected_) ++phase_;
      break;
    }
    default:
      break;  // extra words beyond the protocol are dropped
  }
  if (phase_ >= 6 && !calc_started_) {
    calc_started_ = true;
    calc_left_ = bus::timing::kInterpolatorCalcCycles;
  }
}

void InterpSequencer::tick() {
  if (inputs_complete() && calc_left_ > 0) {
    if (--calc_left_ == 0) {
      result_ = interpolate(sets_[0], sets_[1], sets_[2]);
    }
  }
}

void InterpSequencer::restart() {
  calc_started_ = false;
  phase_ = 0;
  expected_ = 0;
  for (auto& s : sets_) s.clear();
  calc_left_ = 0;
  result_ = 0;
}

// ---------------------------------------------------------------------------
// NaivePlbInterpolator
// ---------------------------------------------------------------------------

NaivePlbInterpolator::NaivePlbInterpolator(bus::PlbPins& pins)
    : rtl::Module("naive_plb_interp"), pins_(pins) {
  watch_none();  // clocked-only: no combinational process
}

void NaivePlbInterpolator::clock_edge() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  pins_.wr_ack.set(false);
  pins_.rd_ack.set(false);
  seq_.tick();

  switch (state_) {
    case St::Idle:
      // Requests are only noticed on the strobe, then crawl through the
      // decode/latch pipeline before the acknowledge fires.
      if (pins_.wr_req.high() && pins_.wr_ce.get() != 0) {
        pending_is_read_ = false;
        staged_ = pins_.wr_data.get();
        state_ = St::Decode;
      } else if (pins_.rd_req.high() && pins_.rd_ce.get() != 0) {
        pending_is_read_ = true;
        state_ = St::Decode;
      }
      break;

    case St::Decode:
      // The address was already one-hot decoded by the bus, but the naive
      // design re-registers it anyway.
      state_ = St::Latch;
      break;

    case St::Latch:
      if (pending_is_read_) {
        // Results are only handed out once the calculation finished; the
        // pseudo asynchronous bus simply stalls until then.
        if (seq_.result_ready()) state_ = St::Ack;
      } else {
        seq_.consume(staged_);
        state_ = St::Ack;
      }
      break;

    case St::Ack:
      if (pending_is_read_) {
        pins_.rd_data.set(static_cast<std::uint64_t>(seq_.result()));
        pins_.rd_ack.set(true);
        ++runs_;
        seq_.restart();
      } else {
        pins_.wr_ack.set(true);
      }
      state_ = St::Settle1;
      break;

    case St::Settle1:
      state_ = St::Settle2;
      break;

    case St::Settle2:
      state_ = St::Idle;
      break;
  }
}

void NaivePlbInterpolator::reset() {
  state_ = St::Idle;
  seq_.restart();
  pins_.wr_ack.set(false);
  pins_.rd_ack.set(false);
}

// ---------------------------------------------------------------------------
// OptimizedFcbInterpolator
// ---------------------------------------------------------------------------

OptimizedFcbInterpolator::OptimizedFcbInterpolator(bus::FcbPins& pins)
    : rtl::Module("optimized_fcb_interp"), pins_(pins) {
  // eval_comb additionally reads the operation registers; clock_edge marks
  // the module dirty whenever they move.
  watch(pins_.wr_valid);
}

void OptimizedFcbInterpolator::eval_comb() {
  // Fully pipelined beat acceptance: every presented write beat is
  // acknowledged combinationally, one word per cycle.
  pins_.beat_ack.drive(op_active_ && !op_read_ && pins_.wr_valid.high());
  pins_.rd_data.drive(rd_latch_);
  pins_.rd_valid.drive(rd_pulse_);
}

void OptimizedFcbInterpolator::clock_edge() {
  const auto before = std::make_tuple(op_active_, op_read_, rd_pulse_,
                                      rd_latch_);
  edge_impl();
  if (before != std::make_tuple(op_active_, op_read_, rd_pulse_,
                                rd_latch_)) {
    mark_dirty();  // eval_comb reads these operation registers
  }
}

void OptimizedFcbInterpolator::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  seq_.tick();
  rd_pulse_ = false;

  if (!op_active_) {
    if (pins_.op_valid.high()) {
      op_active_ = true;
      op_read_ = pins_.op_read.high();
      beats_left_ = static_cast<unsigned>(pins_.op_beats.get());
    }
    return;
  }

  if (!op_read_) {
    if (pins_.wr_valid.high()) {
      seq_.consume(pins_.wr_data.get());
      if (--beats_left_ == 0) op_active_ = false;
    }
  } else {
    // Result reads stall (no rd_valid) until the calculation completes,
    // then stream one beat per cycle.
    if (seq_.result_ready()) {
      rd_latch_ = seq_.result();
      rd_pulse_ = true;
      if (--beats_left_ == 0) {
        op_active_ = false;
        ++runs_;
        seq_.restart();
      }
    }
  }
}

void OptimizedFcbInterpolator::reset() {
  op_active_ = false;
  op_read_ = false;
  beats_left_ = 0;
  rd_pulse_ = false;
  rd_latch_ = 0;
  seq_.restart();
}

}  // namespace splice::devices
