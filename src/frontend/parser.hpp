// Parser for complete Splice specifications: %-directives (thesis §3.2)
// interleaved with interface declarations (§3.1).  Produces the IR consumed
// by the generators; semantic validation (ir::validate) is a separate pass.
#pragma once

#include <optional>
#include <string_view>

#include "ir/device.hpp"
#include "support/diagnostics.hpp"

namespace splice::frontend {

/// Parse a full specification.  Returns nullopt when any *error* was
/// reported (warnings do not fail the parse).  Per §3.2.3 the thesis
/// collects %user_type definitions up front regardless of position, so this
/// runs two passes over the token stream.
[[nodiscard]] std::optional<ir::DeviceSpec> parse_spec(std::string_view text,
                                                       DiagnosticEngine& diags);

/// Parse a single interface declaration against an existing type table —
/// the unit-test entry point for the Figure 3.1–3.8 grammar.
[[nodiscard]] std::optional<ir::FunctionDecl> parse_prototype(
    std::string_view text, const ir::TypeTable& types,
    DiagnosticEngine& diags);

}  // namespace splice::frontend
