#include "frontend/parser.hpp"

#include <algorithm>
#include <span>
#include <unordered_set>

#include "frontend/lexer.hpp"
#include "support/arena.hpp"
#include "support/strings.hpp"

namespace splice::frontend {

namespace {

using ir::CountKind;
using ir::DeviceSpec;
using ir::FunctionDecl;
using ir::IoParam;
using ir::ReturnKind;

// ---------------------------------------------------------------------------
// Directive handling
// ---------------------------------------------------------------------------

enum class DirectiveKind {
  DeviceName,
  BusType,
  BusWidth,
  BaseAddress,
  BurstSupport,
  DmaSupport,
  PackingSupport,
  IrqSupport,
  TargetHdl,
  UserType,
  Unknown,
};

struct DirectiveLine {
  DirectiveKind kind = DirectiveKind::Unknown;
  std::span<const Token> args;  ///< tokens after the keyword (slice of the
                                ///< arena-resident stream; nothing copied)
  SourceLoc loc;
  std::string keyword_spelling;
};

// Split an identifier spelling on '_' exactly like str::split (empty pieces
// included), but into string_views — no allocation per piece.
void split_ident(std::string_view text, std::vector<std::string_view>& out) {
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '_') {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
}

std::size_t count_pieces(std::string_view text) {
  return static_cast<std::size_t>(std::count(text.begin(), text.end(), '_')) +
         1;
}

// The thesis writes directives both with underscores (%bus_type, §3.2.1) and
// with spaces (Figure 8.2: "% bus type plb").  We normalize identifiers into
// words and match the longest known keyword sequence.
struct Keyword {
  std::string_view w0;
  std::string_view w1;  // empty for one-word keywords
  DirectiveKind kind;
};

constexpr Keyword kKeywords[] = {
    {"device", "name", DirectiveKind::DeviceName},
    {"name", "", DirectiveKind::DeviceName},
    {"bus", "type", DirectiveKind::BusType},
    {"bus", "width", DirectiveKind::BusWidth},
    {"base", "address", DirectiveKind::BaseAddress},
    {"burst", "support", DirectiveKind::BurstSupport},
    {"dma", "support", DirectiveKind::DmaSupport},
    {"packing", "support", DirectiveKind::PackingSupport},
    {"irq", "support", DirectiveKind::IrqSupport},
    {"interrupt", "support", DirectiveKind::IrqSupport},
    {"target", "hdl", DirectiveKind::TargetHdl},
    {"hdl", "type", DirectiveKind::TargetHdl},
    {"user", "type", DirectiveKind::UserType},
};

DirectiveKind match_keyword(std::span<const std::string_view> words,
                            std::size_t& consumed) {
  // Longest match first.
  for (std::size_t len = 2; len >= 1; --len) {
    if (words.size() >= len) {
      for (const Keyword& kw : kKeywords) {
        const std::size_t kw_len = kw.w1.empty() ? 1 : 2;
        if (kw_len != len) continue;
        if (!str::iequals(words[0], kw.w0)) continue;
        if (len == 2 && !str::iequals(words[1], kw.w1)) continue;
        consumed = len;
        return kw.kind;
      }
    }
    if (len == 1) break;
  }
  consumed = 0;
  return DirectiveKind::Unknown;
}

// ---------------------------------------------------------------------------
// Token cursor
// ---------------------------------------------------------------------------

class Cursor {
 public:
  /// Walk `toks` (which need not contain a trailing EndOfInput token);
  /// `eoi` is what peek/advance yield once the span is exhausted.
  Cursor(std::span<const Token> toks, Token eoi, DiagnosticEngine& diags)
      : toks_(toks), eoi_(eoi), diags_(diags) {
    eoi_.kind = Tok::EndOfInput;
  }

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t idx = i_ + ahead;
    return idx < toks_.size() ? toks_[idx] : eoi_;
  }
  const Token& advance() {
    const Token& t = peek();
    if (i_ < toks_.size()) ++i_;
    return t;
  }
  [[nodiscard]] bool at_end() const {
    return peek().kind == Tok::EndOfInput;
  }
  bool accept(Tok kind) {
    if (peek().kind == kind) {
      advance();
      return true;
    }
    return false;
  }
  bool expect(Tok kind, std::string_view what) {
    if (accept(kind)) return true;
    diags_.error(DiagId::ExpectedToken,
                 "expected " + std::string(token_name(kind)) + " " +
                     std::string(what) + ", found " +
                     std::string(token_name(peek().kind)),
                 peek().loc);
    return false;
  }
  /// Skip tokens until one of `sync` (or end); does not consume the sync
  /// token itself.
  void recover_to(std::initializer_list<Tok> sync) {
    while (!at_end()) {
      for (Tok t : sync) {
        if (peek().kind == t) return;
      }
      advance();
    }
  }

 private:
  std::span<const Token> toks_;
  Token eoi_;
  DiagnosticEngine& diags_;
  std::size_t i_ = 0;
};

/// End-of-input token anchored at the last real token of a statement, so
/// "expected ';'"-style messages point at the statement, not offset 0.
Token eoi_after(std::span<const Token> toks) {
  Token end;
  end.kind = Tok::EndOfInput;
  if (!toks.empty()) end.loc = toks.back().loc;
  return end;
}

// ---------------------------------------------------------------------------
// Prototype parsing (Figures 3.1 - 3.8)
// ---------------------------------------------------------------------------

struct Extensions {
  bool pointer = false;
  bool packed = false;
  bool dma = false;
  bool by_reference = false;
  bool has_bound = false;
  CountKind bound_kind = CountKind::Scalar;
  std::uint32_t explicit_count = 0;
  std::string index_var;
};

class ProtoParser {
 public:
  ProtoParser(Cursor& cur, const ir::TypeTable& types, DiagnosticEngine& diags)
      : cur_(cur), types_(types), diags_(diags) {}

  // proto := (c_type | 'nowait') exts? name ('(' list? ')' | '{' list? '}')
  //          (':' digits)? ';'
  std::optional<FunctionDecl> parse() {
    FunctionDecl fn;
    fn.loc = cur_.peek().loc;

    if (!cur_.peek().is(Tok::Ident)) {
      diags_.error(DiagId::ExpectedType,
                   "expected a return type to begin an interface declaration",
                   cur_.peek().loc);
      cur_.recover_to({Tok::Semi});
      cur_.accept(Tok::Semi);
      return std::nullopt;
    }

    bool ok = true;
    const Token type_tok = cur_.advance();
    std::optional<ir::CType> ret_type;
    if (type_tok.is_ident("nowait")) {
      fn.return_kind = ReturnKind::Nowait;  // §3.1.7
    } else {
      ret_type = types_.find(type_tok.text);
      if (!ret_type) {
        diags_.error(DiagId::ExpectedType,
                     "unknown type '" + std::string(type_tok.text) +
                         "' (declare it with %user_type, §3.2.3)",
                     type_tok.loc);
        ok = false;
      }
    }
    Extensions ret_exts = parse_extensions();

    if (!cur_.peek().is(Tok::Ident)) {
      diags_.error(DiagId::ExpectedIdentifier,
                   "expected an interface name", cur_.peek().loc);
      cur_.recover_to({Tok::Semi});
      cur_.accept(Tok::Semi);
      return std::nullopt;
    }
    fn.name = std::string(cur_.advance().text);

    // The thesis' own example specification (Figure 8.2) writes parameter
    // lists in braces; chapter 3 uses parentheses.  Accept both.
    Tok close = Tok::RParen;
    if (cur_.accept(Tok::LBrace)) close = Tok::RBrace;
    else if (!cur_.expect(Tok::LParen, "to open the parameter list")) {
      cur_.recover_to({Tok::Semi});
      cur_.accept(Tok::Semi);
      return std::nullopt;
    }

    if (cur_.peek().kind != close) {
      while (true) {
        auto p = parse_param();
        if (p) fn.inputs.push_back(std::move(*p));
        else ok = false;
        if (!cur_.accept(Tok::Comma)) break;
      }
    }
    if (!cur_.expect(close, "to close the parameter list")) {
      cur_.recover_to({Tok::Semi});
    }

    // Multiple-instance extension (Figure 3.6): `... ):4;`
    if (cur_.accept(Tok::Colon)) {
      if (cur_.peek().is(Tok::Number)) {
        fn.instances = static_cast<std::uint32_t>(cur_.advance().value);
      } else {
        diags_.error(DiagId::ExpectedToken,
                     "expected an instance count after ':'", cur_.peek().loc);
        ok = false;
      }
    }
    cur_.expect(Tok::Semi, "to terminate the declaration");

    // Assemble the return value.
    if (fn.return_kind != ReturnKind::Nowait && ret_type) {
      if (ret_type->is_void() && !ret_exts.pointer) {
        fn.return_kind = ReturnKind::Void;
      } else {
        fn.return_kind = ReturnKind::Value;
        fn.output = make_param(*ret_type, ret_exts, /*name=*/"", type_tok.loc);
      }
    }
    if (fn.return_kind == ReturnKind::Nowait &&
        (ret_exts.pointer || ret_exts.has_bound)) {
      diags_.error(DiagId::NowaitWithValue,
                   "'nowait' declarations cannot carry a return transfer "
                   "(§3.1.7)",
                   type_tok.loc);
      ok = false;
    }

    if (!ok) return std::nullopt;
    return fn;
  }

 private:
  // exts := '*'? (':' (digits | identifier))? inter-mixed with '+' and '^'
  // in any order; the thesis shows both `char*:16^+ x` (§3.1.8) and the
  // postfix spelling `char* x:8+` (§3.1.3).
  Extensions parse_extensions() {
    Extensions e;
    while (true) {
      const Token& t = cur_.peek();
      if (t.is(Tok::Star)) {
        cur_.advance();
        e.pointer = true;
      } else if (t.is(Tok::Plus)) {
        cur_.advance();
        e.packed = true;
      } else if (t.is(Tok::Caret)) {
        cur_.advance();
        e.dma = true;
      } else if (t.is(Tok::Amp)) {
        cur_.advance();
        e.by_reference = true;  // §10.2 by-reference extension
      } else if (t.is(Tok::Colon)) {
        // Only a bound if followed by a number or identifier; a bare ':'
        // belongs to the caller (multi-instance suffix).
        const Token& after = cur_.peek(1);
        if (!after.is(Tok::Number) && !after.is(Tok::Ident)) break;
        cur_.advance();  // ':'
        const Token bound = cur_.advance();
        if (e.has_bound) {
          diags_.warning(DiagId::ExpectedToken,
                         "duplicate bound on one transfer; keeping the first",
                         bound.loc);
          continue;
        }
        e.has_bound = true;
        if (bound.is(Tok::Number)) {
          e.bound_kind = CountKind::Explicit;
          e.explicit_count = static_cast<std::uint32_t>(bound.value);
        } else {
          e.bound_kind = CountKind::Implicit;
          e.index_var = std::string(bound.text);
        }
      } else {
        break;
      }
    }
    return e;
  }

  static IoParam make_param(const ir::CType& type, const Extensions& e,
                            std::string name, SourceLoc loc) {
    IoParam p;
    p.name = std::move(name);
    p.type = type;
    p.is_pointer = e.pointer;
    p.packed = e.packed;
    p.dma = e.dma;
    p.by_reference = e.by_reference;
    p.loc = loc;
    if (e.has_bound) {
      p.count_kind = e.bound_kind;
      p.explicit_count = e.explicit_count;
      p.index_var = e.index_var;
    }
    return p;
  }

  static Extensions merge(const Extensions& pre, const Extensions& post,
                          DiagnosticEngine& diags, SourceLoc loc) {
    Extensions e = pre;
    e.pointer |= post.pointer;
    e.packed |= post.packed;
    e.dma |= post.dma;
    e.by_reference |= post.by_reference;
    if (post.has_bound) {
      if (e.has_bound) {
        diags.warning(DiagId::ExpectedToken,
                      "bound given both before and after the parameter name; "
                      "keeping the first",
                      loc);
      } else {
        e.has_bound = true;
        e.bound_kind = post.bound_kind;
        e.explicit_count = post.explicit_count;
        e.index_var = post.index_var;
      }
    }
    return e;
  }

  // splice_decl := c_type exts? identifier exts?   (postfix form tolerated)
  std::optional<IoParam> parse_param() {
    const Token& first = cur_.peek();
    if (!first.is(Tok::Ident)) {
      diags_.error(DiagId::ExpectedType, "expected a parameter type",
                   first.loc);
      cur_.recover_to({Tok::Comma, Tok::RParen, Tok::RBrace, Tok::Semi});
      return std::nullopt;
    }
    const Token type_tok = cur_.advance();
    auto type = types_.find(type_tok.text);
    if (!type) {
      diags_.error(DiagId::ExpectedType,
                   "unknown type '" + std::string(type_tok.text) +
                       "' (declare it with %user_type, §3.2.3)",
                   type_tok.loc);
      cur_.recover_to({Tok::Comma, Tok::RParen, Tok::RBrace, Tok::Semi});
      return std::nullopt;
    }

    Extensions pre = parse_extensions();
    if (!cur_.peek().is(Tok::Ident)) {
      diags_.error(DiagId::ExpectedIdentifier,
                   "expected a parameter name", cur_.peek().loc);
      cur_.recover_to({Tok::Comma, Tok::RParen, Tok::RBrace, Tok::Semi});
      return std::nullopt;
    }
    const Token name_tok = cur_.advance();
    Extensions post = parse_extensions();
    Extensions e = merge(pre, post, diags_, name_tok.loc);
    return make_param(*type, e, std::string(name_tok.text), type_tok.loc);
  }

  Cursor& cur_;
  const ir::TypeTable& types_;
  DiagnosticEngine& diags_;
};

// ---------------------------------------------------------------------------
// Specification parsing
// ---------------------------------------------------------------------------

class SpecParser {
 public:
  SpecParser(std::string_view text, DiagnosticEngine& diags) : diags_(diags) {
    Lexer lexer(text, diags);
    toks_ = lexer.tokenize(arena_);
  }

  std::optional<DeviceSpec> parse() {
    const std::size_t errors_before = diags_.error_count();
    split_stream();
    // Pass 1: collect %user_type definitions first; the thesis states the
    // tool "simply collects all the definitions" regardless of position.
    for (auto& d : directives_) {
      if (d.kind == DirectiveKind::UserType) apply_user_type(d);
    }
    // Pass 2: remaining directives.
    for (auto& d : directives_) {
      if (d.kind != DirectiveKind::UserType) apply_directive(d);
    }
    // Pass 3: prototypes.
    for (auto stmt : statements_) {
      Cursor cur(stmt, eoi_after(stmt), diags_);
      ProtoParser pp(cur, spec_.types, diags_);
      auto fn = pp.parse();
      if (fn) spec_.functions.push_back(std::move(*fn));
    }
    if (diags_.error_count() != errors_before) return std::nullopt;
    return std::move(spec_);
  }

 private:
  // Separate the token stream into directive lines (a '%' and every token on
  // the same source line) and prototype statements (token runs ending at ';').
  // Both are index-range slices of the arena-resident stream — split_stream
  // copies no tokens.
  void split_stream() {
    std::size_t i = 0;
    while (i < toks_.size() && toks_[i].kind != Tok::EndOfInput) {
      if (toks_[i].kind == Tok::Percent) {
        DirectiveLine line;
        line.loc = toks_[i].loc;
        const std::uint32_t src_line = toks_[i].loc.line;
        ++i;
        const std::size_t first = i;
        while (i < toks_.size() && toks_[i].kind != Tok::EndOfInput &&
               toks_[i].loc.line == src_line) {
          ++i;
        }
        classify(line, toks_.subspan(first, i - first));
        directives_.push_back(std::move(line));
      } else {
        const std::size_t first = i;
        while (i < toks_.size() && toks_[i].kind != Tok::EndOfInput &&
               toks_[i].kind != Tok::Percent) {
          const bool done = toks_[i].kind == Tok::Semi;
          ++i;
          if (done) break;
        }
        statements_.push_back(toks_.subspan(first, i - first));
      }
    }
  }

  void classify(DirectiveLine& line, std::span<const Token> words) {
    // Expand keyword words: identifiers may themselves contain underscores.
    std::vector<std::string_view> kw_words;
    for (const Token& t : words) {
      if (!t.is(Tok::Ident)) break;
      split_ident(t.text, kw_words);
      if (kw_words.size() >= 2) break;
    }
    std::size_t consumed_words = 0;
    line.kind = match_keyword(kw_words, consumed_words);
    line.keyword_spelling.clear();
    const std::size_t spell_n = std::min(consumed_words, kw_words.size());
    for (std::size_t w = 0; w < spell_n; ++w) {
      if (w != 0) line.keyword_spelling += '_';
      line.keyword_spelling += kw_words[w];
    }
    if (line.kind == DirectiveKind::Unknown) {
      diags_.error(DiagId::UnknownDirective,
                   "unknown directive '%" +
                       (kw_words.empty() ? std::string("<empty>")
                                         : std::string(kw_words.front())) +
                       "'",
                   line.loc);
      return;
    }
    // How many raw tokens did the keyword consume?  Walk again.
    std::size_t words_seen = 0;
    std::size_t toks_consumed = 0;
    for (const Token& t : words) {
      if (!t.is(Tok::Ident) || words_seen >= consumed_words) break;
      words_seen += count_pieces(t.text);
      ++toks_consumed;
    }
    line.args = words.subspan(toks_consumed);
  }

  void check_duplicate(const DirectiveLine& d) {
    if (!seen_.insert(static_cast<int>(d.kind)).second) {
      diags_.warning(DiagId::DuplicateDirective,
                     "directive '%" + d.keyword_spelling +
                         "' given more than once; the last value wins",
                     d.loc);
    }
  }

  void apply_user_type(const DirectiveLine& d) {
    // %user_type name, underlying c spelling, bits   (Figure 3.17)
    std::vector<std::span<const Token>> groups;
    std::size_t group_start = 0;
    for (std::size_t i = 0; i <= d.args.size(); ++i) {
      if (i == d.args.size() || d.args[i].is(Tok::Comma)) {
        groups.push_back(d.args.subspan(group_start, i - group_start));
        group_start = i + 1;
      }
    }
    if (groups.size() != 3 || groups[0].size() != 1 ||
        !groups[0][0].is(Tok::Ident) || groups[1].empty() ||
        groups[2].size() != 1 || !groups[2][0].is(Tok::Number)) {
      diags_.error(DiagId::MalformedDirective,
                   "%user_type expects: name, c-type spelling, bit width "
                   "(Figure 3.17)",
                   d.loc);
      return;
    }
    const std::string name(groups[0][0].text);
    std::string spelling;
    for (const Token& t : groups[1]) {
      if (!t.is(Tok::Ident)) {
        diags_.error(DiagId::MalformedDirective,
                     "%user_type underlying spelling must be identifiers",
                     t.loc);
        return;
      }
      if (!spelling.empty()) spelling += ' ';
      spelling += t.text;
    }
    const std::uint64_t bits = groups[2][0].value;
    if (bits == 0 || bits > 1024) {
      diags_.error(DiagId::BadUserTypeWidth,
                   "%user_type '" + name + "' has invalid width " +
                       std::to_string(bits),
                   d.loc);
      return;
    }
    const bool is_signed = spelling.find("unsigned") == std::string::npos;
    if (!spec_.types.add_user_type(name, spelling,
                                   static_cast<unsigned>(bits), is_signed)) {
      diags_.error(DiagId::DuplicateUserType,
                   "%user_type '" + name + "' redefines an existing type",
                   d.loc);
    }
  }

  bool parse_bool_arg(const DirectiveLine& d, bool& out) {
    if (d.args.size() == 1 && d.args[0].is(Tok::Ident)) {
      if (str::iequals(d.args[0].text, "true")) {
        out = true;
        return true;
      }
      if (str::iequals(d.args[0].text, "false")) {
        out = false;
        return true;
      }
    }
    diags_.error(DiagId::MalformedDirective,
                 "'%" + d.keyword_spelling + "' expects 'true' or 'false'",
                 d.loc);
    return false;
  }

  void apply_directive(const DirectiveLine& d) {
    switch (d.kind) {
      case DirectiveKind::Unknown:
        return;  // already reported
      case DirectiveKind::DeviceName: {
        check_duplicate(d);
        std::string name;
        bool any = false;
        for (const Token& t : d.args) {
          if (t.is(Tok::Ident) || t.is(Tok::Number)) {
            if (any) name += '_';
            name += t.text;
            any = true;
          } else {
            diags_.error(DiagId::MalformedDirective,
                         "%device_name expects an identifier", d.loc);
            return;
          }
        }
        if (!any) {
          diags_.error(DiagId::MalformedDirective,
                       "%device_name expects an identifier", d.loc);
          return;
        }
        // Figure 8.2 writes "% name hw timer" for device hw_timer.
        spec_.target.device_name = std::move(name);
        return;
      }
      case DirectiveKind::BusType: {
        check_duplicate(d);
        if (d.args.size() != 1 || !d.args[0].is(Tok::Ident)) {
          diags_.error(DiagId::MalformedDirective,
                       "%bus_type expects a single interface name", d.loc);
          return;
        }
        spec_.target.bus_type = str::to_lower(d.args[0].text);
        return;
      }
      case DirectiveKind::BusWidth: {
        check_duplicate(d);
        if (d.args.size() != 1 || !d.args[0].is(Tok::Number)) {
          diags_.error(DiagId::MalformedDirective,
                       "%bus_width expects a bit count", d.loc);
          return;
        }
        spec_.target.bus_width = static_cast<unsigned>(d.args[0].value);
        return;
      }
      case DirectiveKind::BaseAddress: {
        check_duplicate(d);
        if (d.args.size() != 1 ||
            (!d.args[0].is(Tok::HexNumber) && !d.args[0].is(Tok::Number))) {
          diags_.error(DiagId::MalformedDirective,
                       "%base_address expects a hexadecimal address "
                       "(Figure 3.11)",
                       d.loc);
          return;
        }
        spec_.target.base_address = d.args[0].value;
        return;
      }
      case DirectiveKind::BurstSupport: {
        check_duplicate(d);
        bool v = false;
        if (parse_bool_arg(d, v)) spec_.target.burst_support = v;
        return;
      }
      case DirectiveKind::DmaSupport: {
        check_duplicate(d);
        bool v = false;
        if (parse_bool_arg(d, v)) spec_.target.dma_support = v;
        return;
      }
      case DirectiveKind::PackingSupport: {
        check_duplicate(d);
        bool v = false;
        if (parse_bool_arg(d, v)) spec_.target.packing_support = v;
        return;
      }
      case DirectiveKind::IrqSupport: {
        check_duplicate(d);
        bool v = false;
        if (parse_bool_arg(d, v)) spec_.target.irq_support = v;
        return;
      }
      case DirectiveKind::TargetHdl: {
        check_duplicate(d);
        if (d.args.size() == 1 && d.args[0].is(Tok::Ident)) {
          if (str::iequals(d.args[0].text, "vhdl")) {
            spec_.target.hdl = ir::Hdl::Vhdl;
            return;
          }
          // Verilog output is thesis future work (§10.2); implemented here.
          if (str::iequals(d.args[0].text, "verilog")) {
            spec_.target.hdl = ir::Hdl::Verilog;
            return;
          }
        }
        diags_.error(DiagId::UnknownHdl,
                     "%target_hdl expects 'vhdl' or 'verilog'", d.loc);
        return;
      }
      case DirectiveKind::UserType:
        return;  // handled in pass 1
    }
  }

  DiagnosticEngine& diags_;
  support::Arena arena_;  // owns the token stream; declared before the spans
  std::span<const Token> toks_;
  std::vector<DirectiveLine> directives_;
  std::vector<std::span<const Token>> statements_;
  DeviceSpec spec_;
  std::unordered_set<int> seen_;
};

}  // namespace

std::optional<ir::DeviceSpec> parse_spec(std::string_view text,
                                         DiagnosticEngine& diags) {
  SpecParser parser(text, diags);
  return parser.parse();
}

std::optional<ir::FunctionDecl> parse_prototype(std::string_view text,
                                                const ir::TypeTable& types,
                                                DiagnosticEngine& diags) {
  const std::size_t errors_before = diags.error_count();
  support::Arena arena;
  Lexer lexer(text, diags);
  std::span<const Token> toks = lexer.tokenize(arena);
  Cursor cur(toks, eoi_after(toks), diags);
  ProtoParser pp(cur, types, diags);
  auto fn = pp.parse();
  if (diags.error_count() != errors_before) return std::nullopt;
  return fn;
}

}  // namespace frontend
