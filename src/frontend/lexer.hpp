// Tokenizer for the Splice specification language (thesis chapter 3).
// Comments use the C++ styles shown throughout the thesis listings.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace splice::frontend {

enum class Tok : std::uint8_t {
  Ident,     // identifier per Figure 3.1
  Number,    // decimal literal
  HexNumber, // 0x literal (base addresses, Figure 3.11)
  Star,      // '*'  pointer (Figure 3.2)
  Colon,     // ':'  bound / multi-instance (Figures 3.2, 3.6)
  Plus,      // '+'  packing (Figure 3.4)
  Caret,     // '^'  DMA (Figure 3.5)
  Amp,       // '&'  by-reference transfer (thesis §10.2, implemented)
  LParen,
  RParen,
  LBrace,    // the thesis' Figure 8.2 brace-form declarations
  RBrace,
  Comma,
  Semi,
  Percent,   // directive introducer (§3.2)
  EndOfInput,
};

struct Token {
  Tok kind = Tok::EndOfInput;
  std::string text;          // identifier spelling / literal digits
  std::uint64_t value = 0;   // numeric value for Number / HexNumber
  SourceLoc loc;

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
  [[nodiscard]] bool is_ident(std::string_view s) const {
    return kind == Tok::Ident && text == s;
  }
};

[[nodiscard]] std::string_view token_name(Tok kind);

/// Tokenize an entire specification.  Comments are skipped; newlines are
/// not tokens (the parser recovers directive line extents via SourceLoc).
/// Lexical errors are reported and lexing continues past them.
class Lexer {
 public:
  Lexer(std::string_view text, DiagnosticEngine& diags);

  /// Produce all tokens including the trailing EndOfInput.
  [[nodiscard]] std::vector<Token> tokenize();

 private:
  void skip_trivia();
  [[nodiscard]] Token next();
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] SourceLoc here() const { return {line_, column_}; }

  std::string_view text_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace splice::frontend
