// Tokenizer for the Splice specification language (thesis chapter 3).
// Comments use the C++ styles shown throughout the thesis listings.
//
// The lexer is zero-copy: `Token::text` is a view into the spec source
// buffer, which must therefore outlive the tokens.  Character
// classification and punctuation dispatch run off precompiled 256-entry
// tables instead of per-character ctype calls, and no token ever touches
// the heap; callers that want the whole stream in one allocation can
// tokenize into a bump-pointer arena.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "support/arena.hpp"
#include "support/diagnostics.hpp"

namespace splice::frontend {

enum class Tok : std::uint8_t {
  Ident,     // identifier per Figure 3.1
  Number,    // decimal literal
  HexNumber, // 0x literal (base addresses, Figure 3.11)
  Star,      // '*'  pointer (Figure 3.2)
  Colon,     // ':'  bound / multi-instance (Figures 3.2, 3.6)
  Plus,      // '+'  packing (Figure 3.4)
  Caret,     // '^'  DMA (Figure 3.5)
  Amp,       // '&'  by-reference transfer (thesis §10.2, implemented)
  LParen,
  RParen,
  LBrace,    // the thesis' Figure 8.2 brace-form declarations
  RBrace,
  Comma,
  Semi,
  Percent,   // directive introducer (§3.2)
  EndOfInput,
};

struct Token {
  Tok kind = Tok::EndOfInput;
  std::string_view text;     // identifier spelling / literal digits (a view
                             // into the spec source; zero-copy)
  std::uint64_t value = 0;   // numeric value for Number / HexNumber
  SourceLoc loc;

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
  [[nodiscard]] bool is_ident(std::string_view s) const {
    return kind == Tok::Ident && text == s;
  }
};

static_assert(std::is_trivially_copyable_v<Token>,
              "tokens live in arenas and span slices");

[[nodiscard]] std::string_view token_name(Tok kind);

/// Tokenize an entire specification.  Comments are skipped; newlines are
/// not tokens (the parser recovers directive line extents via SourceLoc).
/// Lexical errors are reported and lexing continues past them.
class Lexer {
 public:
  Lexer(std::string_view text, DiagnosticEngine& diags);

  /// Produce all tokens including the trailing EndOfInput.
  [[nodiscard]] std::vector<Token> tokenize();

  /// Same stream, but placed in `arena` (one stable allocation whose
  /// lifetime the caller controls; the parser slices it into spans).
  [[nodiscard]] std::span<const Token> tokenize(support::Arena& arena);

 private:
  void skip_trivia();
  [[nodiscard]] Token next();
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] SourceLoc here() const {
    return {line_, static_cast<std::uint32_t>(pos_ - line_start_ + 1)};
  }
  void newline() {
    ++line_;
    line_start_ = pos_ + 1;
  }

  std::string_view text_;
  DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::size_t line_start_ = 0;  // offset of the current line's first byte
  std::uint32_t line_ = 1;
};

}  // namespace splice::frontend
