#include "frontend/lexer.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace splice::frontend {

std::string_view token_name(Tok kind) {
  switch (kind) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::HexNumber: return "hex number";
    case Tok::Star: return "'*'";
    case Tok::Colon: return "':'";
    case Tok::Plus: return "'+'";
    case Tok::Caret: return "'^'";
    case Tok::Amp: return "'&'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Percent: return "'%'";
    case Tok::EndOfInput: return "end of input";
  }
  return "?";
}

Lexer::Lexer(std::string_view text, DiagnosticEngine& diags)
    : text_(text), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  char c = text_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      SourceLoc start = here();
      advance();
      advance();
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) {
        diags_.error(DiagId::UnterminatedComment,
                     "block comment is never closed", start);
      }
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_trivia();
  Token tok;
  tok.loc = here();
  if (at_end()) {
    tok.kind = Tok::EndOfInput;
    return tok;
  }
  char c = peek();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_')) {
      word += advance();
    }
    tok.kind = Tok::Ident;
    tok.text = std::move(word);
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string digits;
    bool hex = false;
    if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      hex = true;
      while (!at_end() &&
             std::isxdigit(static_cast<unsigned char>(peek()))) {
        digits += advance();
      }
      if (digits.empty()) {
        diags_.error(DiagId::MalformedNumber, "'0x' with no hex digits",
                     tok.loc);
      }
      tok.kind = Tok::HexNumber;
      tok.value = splice::str::parse_hex(digits).value_or(0);
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        digits += advance();
      }
      tok.kind = Tok::Number;
      auto v = splice::str::parse_u64(digits);
      if (!v) {
        diags_.error(DiagId::MalformedNumber,
                     "numeric literal out of range: " + digits, tok.loc);
      }
      tok.value = v.value_or(0);
    }
    tok.text = std::move(digits);
    return tok;
  }

  advance();
  switch (c) {
    case '*': tok.kind = Tok::Star; return tok;
    case ':': tok.kind = Tok::Colon; return tok;
    case '+': tok.kind = Tok::Plus; return tok;
    case '^': tok.kind = Tok::Caret; return tok;
    case '&': tok.kind = Tok::Amp; return tok;
    case '(': tok.kind = Tok::LParen; return tok;
    case ')': tok.kind = Tok::RParen; return tok;
    case '{': tok.kind = Tok::LBrace; return tok;
    case '}': tok.kind = Tok::RBrace; return tok;
    case ',': tok.kind = Tok::Comma; return tok;
    case ';': tok.kind = Tok::Semi; return tok;
    case '%': tok.kind = Tok::Percent; return tok;
    default:
      diags_.error(DiagId::UnexpectedCharacter,
                   std::string("unexpected character '") + c + "'", tok.loc);
      return next();  // skip and continue
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  while (true) {
    out.push_back(next());
    if (out.back().kind == Tok::EndOfInput) break;
  }
  return out;
}

}  // namespace splice::frontend
