#include "frontend/lexer.hpp"

namespace splice::frontend {

std::string_view token_name(Tok kind) {
  switch (kind) {
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::HexNumber: return "hex number";
    case Tok::Star: return "'*'";
    case Tok::Colon: return "':'";
    case Tok::Plus: return "'+'";
    case Tok::Caret: return "'^'";
    case Tok::Amp: return "'&'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Percent: return "'%'";
    case Tok::EndOfInput: return "end of input";
  }
  return "?";
}

namespace {

// Precompiled dispatch tables: one character-class lookup replaces the
// chain of isspace/isalpha/isdigit calls, and the punctuation table maps
// a byte straight to its token kind.
enum : std::uint8_t {
  kOther = 0,
  kSpace,       // isspace set of the "C" locale
  kIdentStart,  // [A-Za-z_]
  kDigit,       // [0-9]
  kPunct,       // single-character tokens
};

struct Tables {
  std::uint8_t cls[256] = {};
  Tok punct[256] = {};
  bool ident_cont[256] = {};  // [A-Za-z0-9_]
  std::int8_t hexval[256] = {};
};

constexpr Tables make_tables() {
  Tables t{};
  for (int c = 0; c < 256; ++c) t.hexval[c] = -1;
  for (unsigned char c : {' ', '\t', '\n', '\v', '\f', '\r'})
    t.cls[c] = kSpace;
  for (int c = 'a'; c <= 'z'; ++c) {
    t.cls[c] = kIdentStart;
    t.ident_cont[c] = true;
  }
  for (int c = 'A'; c <= 'Z'; ++c) {
    t.cls[c] = kIdentStart;
    t.ident_cont[c] = true;
  }
  t.cls[static_cast<unsigned char>('_')] = kIdentStart;
  t.ident_cont[static_cast<unsigned char>('_')] = true;
  for (int c = '0'; c <= '9'; ++c) {
    t.cls[c] = kDigit;
    t.ident_cont[c] = true;
    t.hexval[c] = static_cast<std::int8_t>(c - '0');
  }
  for (int c = 'a'; c <= 'f'; ++c)
    t.hexval[c] = static_cast<std::int8_t>(c - 'a' + 10);
  for (int c = 'A'; c <= 'F'; ++c)
    t.hexval[c] = static_cast<std::int8_t>(c - 'A' + 10);
  constexpr std::pair<char, Tok> punct[] = {
      {'*', Tok::Star},   {':', Tok::Colon},  {'+', Tok::Plus},
      {'^', Tok::Caret},  {'&', Tok::Amp},    {'(', Tok::LParen},
      {')', Tok::RParen}, {'{', Tok::LBrace}, {'}', Tok::RBrace},
      {',', Tok::Comma},  {';', Tok::Semi},   {'%', Tok::Percent},
  };
  for (auto [c, k] : punct) {
    t.cls[static_cast<unsigned char>(c)] = kPunct;
    t.punct[static_cast<unsigned char>(c)] = k;
  }
  return t;
}

constexpr Tables kT = make_tables();

constexpr unsigned char uc(char c) { return static_cast<unsigned char>(c); }

}  // namespace

Lexer::Lexer(std::string_view text, DiagnosticEngine& diags)
    : text_(text), diags_(diags) {}

void Lexer::skip_trivia() {
  const std::size_t n = text_.size();
  while (pos_ < n) {
    const char c = text_[pos_];
    if (kT.cls[uc(c)] == kSpace) {
      if (c == '\n') newline();
      ++pos_;
    } else if (c == '/' && pos_ + 1 < n && text_[pos_ + 1] == '/') {
      pos_ += 2;
      while (pos_ < n && text_[pos_] != '\n') ++pos_;
    } else if (c == '/' && pos_ + 1 < n && text_[pos_ + 1] == '*') {
      const SourceLoc start = here();
      pos_ += 2;
      bool closed = false;
      while (pos_ < n) {
        if (text_[pos_] == '*' && pos_ + 1 < n && text_[pos_ + 1] == '/') {
          pos_ += 2;
          closed = true;
          break;
        }
        if (text_[pos_] == '\n') newline();
        ++pos_;
      }
      if (!closed) {
        diags_.error(DiagId::UnterminatedComment,
                     "block comment is never closed", start);
      }
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_trivia();
  Token tok;
  tok.loc = here();
  if (at_end()) return tok;  // kind defaults to EndOfInput
  const std::size_t n = text_.size();
  const char c = text_[pos_];

  switch (kT.cls[uc(c)]) {
    case kIdentStart: {
      const std::size_t start = pos_++;
      while (pos_ < n && kT.ident_cont[uc(text_[pos_])]) ++pos_;
      tok.kind = Tok::Ident;
      tok.text = text_.substr(start, pos_ - start);
      return tok;
    }

    case kDigit: {
      if (c == '0' && pos_ + 1 < n &&
          (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        pos_ += 2;
        const std::size_t start = pos_;
        while (pos_ < n && kT.hexval[uc(text_[pos_])] >= 0) ++pos_;
        tok.kind = Tok::HexNumber;
        tok.text = text_.substr(start, pos_ - start);
        if (tok.text.empty()) {
          diags_.error(DiagId::MalformedNumber, "'0x' with no hex digits",
                       tok.loc);
        } else if (tok.text.size() <= 16) {  // >16 digits overflows: value 0
          std::uint64_t v = 0;
          for (char d : tok.text) {
            v = (v << 4) | static_cast<std::uint64_t>(kT.hexval[uc(d)]);
          }
          tok.value = v;
        }
      } else {
        const std::size_t start = pos_;
        while (pos_ < n && kT.cls[uc(text_[pos_])] == kDigit) ++pos_;
        tok.kind = Tok::Number;
        tok.text = text_.substr(start, pos_ - start);
        std::uint64_t v = 0;
        bool overflow = false;
        for (char d : tok.text) {
          const auto digit = static_cast<std::uint64_t>(d - '0');
          if (v > (UINT64_MAX - digit) / 10) {
            overflow = true;
            break;
          }
          v = v * 10 + digit;
        }
        if (overflow) {
          diags_.error(DiagId::MalformedNumber,
                       "numeric literal out of range: " +
                           std::string(tok.text),
                       tok.loc);
        } else {
          tok.value = v;
        }
      }
      return tok;
    }

    case kPunct:
      tok.kind = kT.punct[uc(c)];
      ++pos_;
      return tok;

    default:
      ++pos_;
      diags_.error(DiagId::UnexpectedCharacter,
                   std::string("unexpected character '") + c + "'", tok.loc);
      return next();  // skip and continue
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  out.reserve(text_.size() / 4 + 4);
  while (true) {
    out.push_back(next());
    if (out.back().kind == Tok::EndOfInput) break;
  }
  return out;
}

std::span<const Token> Lexer::tokenize(support::Arena& arena) {
  support::ArenaVector<Token> out(arena, text_.size() / 4 + 4);
  while (true) {
    out.push_back(next());
    if (out.back().kind == Tok::EndOfInput) break;
  }
  return out.span();
}

}  // namespace splice::frontend
