#include "runtime/soc.hpp"

#include "bus/timing.hpp"
#include "elab/plb_adapter.hpp"
#include "runtime/cpu.hpp"
#include "support/diagnostics.hpp"

namespace splice::runtime {

// ---------------------------------------------------------------------------
// SocChecker

void SocChecker::clock_edge() {
  // Axiom 1: sub-segment traffic must be bridge-forwarded.  The root bus
  // holds the bridge window's chip enable from the request until the
  // bridge acknowledges, which covers the whole downstream operation.
  if (bridge_up_ != nullptr) {
    bool sub_req = false;
    for (const bus::PlbPins* w : sub_windows_) {
      sub_req = sub_req || w->rd_req.high() || w->wr_req.high();
    }
    if (sub_req && bridge_up_->rd_ce.get() == 0 &&
        bridge_up_->wr_ce.get() == 0) {
      violations_.push_back(
          "cycle " + std::to_string(sim_cycle()) +
          ": sub-segment request with no bridge grant on the root bus");
    }
  }

  // Axiom 2: an interrupt needs a CALC_DONE source (within the pipeline
  // slack of the hub/bridge registers).
  bool busy = false;
  if (irq_ != nullptr) {
    bool any_calc = false;
    for (const sis::SisBus* d : devices_) {
      any_calc = any_calc || d->calc_done.get() != 0;
    }
    if (irq_->high() && !any_calc) {
      if (++orphan_cycles_ == kIrqPipelineSlack) {
        violations_.push_back("cycle " + std::to_string(sim_cycle()) +
                              ": interrupt asserted with no CALC_DONE "
                              "source (phantom IRQ)");
      }
    } else {
      orphan_cycles_ = 0;
    }
    busy = irq_->high();  // keep counting while the line is raised
  }
  set_clock_busy(busy);
}

void SocChecker::reset() { orphan_cycles_ = 0; }

// ---------------------------------------------------------------------------
// SocPlatform

SocPlatform::SocPlatform(SocConfig config)
    : sim_(std::make_unique<rtl::Simulator>()) {
  if (config.devices.empty()) {
    throw SpliceError("an SoC needs at least one device");
  }
  if (config.masters == 0 || config.masters > 8) {
    throw SpliceError("SoC master count must be in [1, 8]");
  }
  const unsigned width = config.devices.front().spec.target.bus_width;
  for (const SocDevice& d : config.devices) {
    if (d.spec.target.bus_width != width) {
      throw SpliceError("all SoC devices must share one bus width");
    }
    if (d.segment > 1) {
      throw SpliceError("SoC segment must be 0 (root PLB) or 1 (OPB)");
    }
  }

  // Elaborate every device first (stubs + arbiter in device order).
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    SocDevice& d = config.devices[i];
    Dev dev;
    dev.spec = std::move(d.spec);
    dev.segment = d.segment;
    dev.dev = std::make_unique<elab::ElaboratedDevice>(
        *sim_, dev.spec, d.behaviors, "SIS" + std::to_string(i) + "_");
    devices_.push_back(std::move(dev));
  }

  std::vector<std::size_t> root_devs;
  std::vector<std::size_t> sub_devs;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    (devices_[i].segment == 0 ? root_devs : sub_devs).push_back(i);
  }
  if (root_devs.empty()) {
    throw SpliceError("the root segment needs at least one device");
  }

  auto slots = [this](std::size_t i) {
    return devices_[i].spec.total_instances() + 1;  // slot 0 == status
  };

  // Root bus: the first root device is window 0, the rest follow.
  root_ = &sim_->add<bus::PlbBus>(*sim_, "PLB_", width, slots(root_devs[0]));
  if (config.dma) root_->enable_dma();
  devices_[root_devs[0]].base = 0;
  devices_[root_devs[0]].window_idx = 0;
  for (std::size_t k = 1; k < root_devs.size(); ++k) {
    const std::size_t i = root_devs[k];
    devices_[i].base = root_->add_window(
        "PLB_W" + std::to_string(i) + "_", slots(i));
    devices_[i].window_idx = root_->window_count() - 1;
  }

  // OPB sub-segment + bridge.
  if (!sub_devs.empty()) {
    opb_ = &sim_->add<bus::OpbBus>(*sim_, "OPB_", width, slots(sub_devs[0]));
    devices_[sub_devs[0]].window_idx = 0;
    std::vector<std::uint32_t> sub_base(sub_devs.size(), 0);
    for (std::size_t k = 1; k < sub_devs.size(); ++k) {
      const std::size_t i = sub_devs[k];
      sub_base[k] = opb_->add_window("OPB_W" + std::to_string(i) + "_",
                                     slots(i));
      devices_[i].window_idx = opb_->window_count() - 1;
    }
    const std::uint32_t bridge_base =
        root_->add_window("BRG_", opb_->fid_limit());
    bridge_window_ = root_->window_count() - 1;
    bridge_ = &sim_->add<bus::PlbOpbBridge>(root_->window(bridge_window_),
                                            *opb_);
    for (std::size_t k = 0; k < sub_devs.size(); ++k) {
      devices_[sub_devs[k]].base = bridge_base + sub_base[k];
    }
  }

  // Native adapters: every device answers the CoreConnect window protocol.
  for (Dev& dev : devices_) {
    bus::PlbBus& seg = dev.segment == 0 ? *root_ : *opb_;
    sim_->add<elab::PlbSisAdapter>(seg.window(dev.window_idx),
                                   dev.dev->sis());
  }

  // Checkers: one SIS protocol checker per device + the cross-device one.
  for (Dev& dev : devices_) {
    dev.checker = &sim_->add<sis::ProtocolChecker>(
        dev.dev->sis(), sis::ProtocolClass::PseudoAsynchronous);
  }
  soc_checker_ = &sim_->add<SocChecker>();
  for (const Dev& dev : devices_) soc_checker_->add_device(dev.dev->sis());
  if (bridge_ != nullptr) {
    soc_checker_->attach_bridge(root_->window(bridge_window_));
    for (std::size_t w = 0; w < opb_->window_count(); ++w) {
      soc_checker_->add_sub_window(opb_->window(w));
    }
  }

  // Interrupt fabric: per-device arbiter IRQs, OPB-side hub, bridge
  // crossing, root hub onto the CPU line.
  if (config.irq) {
    irq_line_ = &sim_->signal("IRQ", 1);
    hub_ = &sim_->add<bus::IrqHub>(*irq_line_);
    rtl::Signal* sub_irq = nullptr;
    bus::IrqHub* sub_hub = nullptr;
    if (!sub_devs.empty()) {
      sub_irq = &sim_->signal("OPB_IRQ", 1);
      sub_hub = &sim_->add<bus::IrqHub>(*sub_irq);
      rtl::Signal& bridged = sim_->signal("IRQ_BRG", 1);
      bridge_->route_irq(*sub_irq, bridged);
      hub_->add_source(bridged);
    }
    for (std::size_t i = 0; i < devices_.size(); ++i) {
      Dev& dev = devices_[i];
      rtl::Signal& line = sim_->signal("IRQ_D" + std::to_string(i), 1);
      dev.dev->arbiter().attach_irq(line);
      (dev.segment == 0 ? hub_ : sub_hub)->add_source(line);
    }
    soc_checker_->attach_irq(*irq_line_);
  }

  // CPU masters, through the round-robin mux when there are several.
  if (config.masters > 1) {
    mux_ = &sim_->add<bus::BusMasterMux>(*root_, config.masters);
  }
  for (unsigned m = 0; m < config.masters; ++m) {
    bus::MasterPort& port = mux_ != nullptr ? mux_->port(m) : *root_;
    cpus_.push_back(&sim_->add<CpuMaster>(
        port, sis::ProtocolClass::PseudoAsynchronous));
  }
  if (irq_line_ != nullptr) cpus_.front()->attach_irq(*irq_line_);
}

bus::PlbPins& SocPlatform::device_window(std::size_t i) {
  Dev& dev = devices_.at(i);
  bus::PlbBus& seg = dev.segment == 0 ? *root_ : *opb_;
  return seg.window(dev.window_idx);
}

drivergen::DriverProgram SocPlatform::rebase(drivergen::DriverProgram program,
                                             std::uint32_t base) const {
  for (drivergen::DriverOp& op : program.ops) {
    op.fid += base;
    op.status_addr += base;
  }
  program.fid += base;
  return program;
}

CallResult SocPlatform::run_master(unsigned master,
                                   drivergen::DriverProgram program,
                                   const std::string& what,
                                   std::uint64_t max_cycles) {
  CpuMaster& cpu = *cpus_.at(master);
  cpu.run(std::move(program));
  const std::uint64_t start = sim_->cycle();
  const bool finished =
      sim_->step_until([&cpu] { return cpu.done(); }, max_cycles);
  if (!finished) {
    throw SpliceError(what + " did not complete within " +
                      std::to_string(max_cycles) + " cycles");
  }
  CallResult result;
  result.bus_cycles = sim_->cycle() - start;
  result.cpu_cycles = result.bus_cycles * bus::timing::kCpuClockRatio;
  return result;
}

CallResult SocPlatform::call(std::size_t device, const std::string& function,
                             const drivergen::CallArgs& args,
                             std::uint32_t instance, unsigned master,
                             std::uint64_t max_cycles) {
  Dev& dev = devices_.at(device);
  const ir::FunctionDecl* fn = dev.spec.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  drivergen::DriverBuilder builder(dev.spec, *fn);
  CpuMaster& cpu = *cpus_.at(master);
  cpu.clear_read_words();
  CallResult result =
      run_master(master, rebase(builder.build_call(args, instance), dev.base),
                 "call to '" + function + "'", max_cycles);
  drivergen::CallOutputs decoded = builder.decode_call(cpu.read_words(), args);
  result.outputs = std::move(decoded.outputs);
  result.byref_outputs = std::move(decoded.byref);
  return result;
}

CallResult SocPlatform::wait_completion(std::size_t device,
                                        const std::string& function,
                                        std::uint32_t instance, bool irq,
                                        unsigned master,
                                        std::uint64_t max_cycles) {
  Dev& dev = devices_.at(device);
  const ir::FunctionDecl* fn = dev.spec.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  drivergen::DriverBuilder builder(dev.spec, *fn);
  return run_master(
      master, rebase(builder.build_completion_wait(instance, irq), dev.base),
      "completion wait for '" + function + "'", max_cycles);
}

void SocPlatform::start_call(std::size_t device, const std::string& function,
                             const drivergen::CallArgs& args,
                             std::uint32_t instance, unsigned master) {
  Dev& dev = devices_.at(device);
  const ir::FunctionDecl* fn = dev.spec.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  drivergen::DriverBuilder builder(dev.spec, *fn);
  cpus_.at(master)->run(rebase(builder.build_call(args, instance), dev.base));
}

std::uint64_t SocPlatform::drain(std::uint64_t max_cycles) {
  const std::uint64_t start = sim_->cycle();
  const bool finished = sim_->step_until(
      [this] {
        for (const CpuMaster* cpu : cpus_) {
          if (!cpu->done()) return false;
        }
        return true;
      },
      max_cycles);
  if (!finished) {
    throw SpliceError("SoC drain did not complete within " +
                      std::to_string(max_cycles) + " cycles");
  }
  return sim_->cycle() - start;
}

bool SocPlatform::clean() const {
  for (const Dev& dev : devices_) {
    if (!dev.checker->clean()) return false;
  }
  return soc_checker_->clean();
}

std::vector<std::string> SocPlatform::violations() const {
  std::vector<std::string> all;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    for (const std::string& v : devices_[i].checker->violations()) {
      all.push_back("device " + std::to_string(i) + ": " + v);
    }
  }
  for (const std::string& v : soc_checker_->violations()) {
    all.push_back("soc: " + v);
  }
  return all;
}

}  // namespace splice::runtime
