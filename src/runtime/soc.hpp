// Multi-device SoC assembly: N elaborated devices spread across a root PLB
// segment and an optional OPB sub-segment behind a PLB->OPB bridge, with
// one or more CPU masters contending for the root bus and an optional
// interrupt fabric (per-device arbiter IRQs combined through hubs and the
// bridge onto the CPU's line).  This is the full ML-403-style hierarchy of
// thesis §2.2, against which the single-device VirtualPlatform is the
// degenerate one-device case.
//
// Address map: every device occupies one slave-select window of
// total_instances()+1 function slots (slot 0 = its CALC_DONE status
// register).  Root-segment windows are allocated first, in device order;
// the bridge then takes one root window spanning the whole sub-segment,
// inside which OPB-segment devices are allocated in device order.  A
// device's global base address is its window base (root) or the bridge
// base plus its OPB window base.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/bridge.hpp"
#include "bus/irq_hub.hpp"
#include "bus/master_mux.hpp"
#include "bus/opb.hpp"
#include "bus/plb.hpp"
#include "drivergen/program.hpp"
#include "elab/device.hpp"
#include "ir/device.hpp"
#include "rtl/simulator.hpp"
#include "runtime/platform.hpp"
#include "sis/checker.hpp"

namespace splice::runtime {

/// One device of the SoC and where it sits.
struct SocDevice {
  ir::DeviceSpec spec;
  elab::BehaviorMap behaviors;
  unsigned segment = 0;  ///< 0 = root PLB, 1 = OPB behind the bridge
};

struct SocConfig {
  std::vector<SocDevice> devices;
  unsigned masters = 1;  ///< CPU masters contending for the root bus
  bool irq = false;      ///< wire device interrupts to CPU master 0
  bool dma = false;      ///< enable the root bus DMA engine
};

/// Cross-device protocol observer.  Two axioms the per-device SIS checkers
/// cannot see:
///  1. Provenance of sub-segment traffic: a transaction strobing on the
///     OPB must trace back to a bridge grant — the bridge's root-bus
///     window holds its chip enable for the whole forwarded operation, so
///     an OPB request with that window idle is bridge-originated traffic.
///  2. Provenance of interrupts: the CPU's IRQ line may only be high while
///     some device holds a CALC_DONE bit (modulo the short hub/bridge
///     register pipeline) — a longer orphan interrupt is a phantom.
class SocChecker : public rtl::Module {
 public:
  /// Cycles an interrupt may outlive (or precede) every CALC_DONE source
  /// before it is flagged: hub register + bridge register + slack.
  static constexpr unsigned kIrqPipelineSlack = 4;

  SocChecker() : rtl::Module("soc_checker") {
    watch_none();
    clocked_none();  // triggers declared as the topology is attached
  }

  void attach_bridge(const bus::PlbPins& upstream_window) {
    bridge_up_ = &upstream_window;
    watch_clocked_all(upstream_window.rd_ce, upstream_window.wr_ce);
  }
  void add_sub_window(const bus::PlbPins& pins) {
    sub_windows_.push_back(&pins);
    watch_clocked_all(pins.rd_req, pins.wr_req);
  }
  void add_device(const sis::SisBus& sis) {
    devices_.push_back(&sis);
    watch_clocked(sis.calc_done);
  }
  void attach_irq(rtl::Signal& line) {
    irq_ = &line;
    watch_clocked(line);
  }

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  void clock_edge() override;
  void reset() override;

 private:
  const bus::PlbPins* bridge_up_ = nullptr;
  std::vector<const bus::PlbPins*> sub_windows_;
  std::vector<const sis::SisBus*> devices_;
  const rtl::Signal* irq_ = nullptr;
  unsigned orphan_cycles_ = 0;
  std::vector<std::string> violations_;
};

class SocPlatform {
 public:
  explicit SocPlatform(SocConfig config);

  /// Run one generated driver call on `master` against device `device`;
  /// steps the simulator until the call returns and decodes its outputs.
  CallResult call(std::size_t device, const std::string& function,
                  const drivergen::CallArgs& args = {},
                  std::uint32_t instance = 0, unsigned master = 0,
                  std::uint64_t max_cycles = 1'000'000);

  /// Completion wait for an earlier nowait call (see
  /// VirtualPlatform::wait_completion); `irq` sleeps on the interrupt line.
  CallResult wait_completion(std::size_t device, const std::string& function,
                             std::uint32_t instance = 0, bool irq = false,
                             unsigned master = 0,
                             std::uint64_t max_cycles = 1'000'000);

  /// Enqueue a call on `master` WITHOUT stepping the simulator — queue work
  /// on several masters, then drain() to run them concurrently.  Read-back
  /// decoding is not available for queued calls.
  void start_call(std::size_t device, const std::string& function,
                  const drivergen::CallArgs& args = {},
                  std::uint32_t instance = 0, unsigned master = 0);

  /// Step until every master's program queue is empty; returns the cycles
  /// spent.  Throws when `max_cycles` is exceeded.
  std::uint64_t drain(std::uint64_t max_cycles = 1'000'000);

  [[nodiscard]] rtl::Simulator& sim() { return *sim_; }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] elab::ElaboratedDevice& device(std::size_t i) {
    return *devices_.at(i).dev;
  }
  [[nodiscard]] const ir::DeviceSpec& spec(std::size_t i) const {
    return devices_.at(i).spec;
  }
  [[nodiscard]] std::uint32_t device_base(std::size_t i) const {
    return devices_.at(i).base;
  }
  [[nodiscard]] unsigned device_segment(std::size_t i) const {
    return devices_.at(i).segment;
  }
  /// The root-bus window pins serving device `i` (root devices only get a
  /// root window; sub-segment devices answer on the OPB).
  [[nodiscard]] bus::PlbPins& device_window(std::size_t i);

  [[nodiscard]] bus::PlbBus& root() { return *root_; }
  [[nodiscard]] bus::OpbBus* opb() { return opb_; }
  [[nodiscard]] bus::PlbOpbBridge* bridge() { return bridge_; }
  [[nodiscard]] bus::BusMasterMux* mux() { return mux_; }
  [[nodiscard]] rtl::Signal* irq_line() { return irq_line_; }
  [[nodiscard]] unsigned master_count() const {
    return static_cast<unsigned>(cpus_.size());
  }
  [[nodiscard]] CpuMaster& cpu(unsigned master = 0) {
    return *cpus_.at(master);
  }
  [[nodiscard]] const sis::ProtocolChecker& checker(std::size_t i) const {
    return *devices_.at(i).checker;
  }
  [[nodiscard]] SocChecker& soc_checker() { return *soc_checker_; }
  [[nodiscard]] const SocChecker& soc_checker() const {
    return *soc_checker_;
  }

  /// All checkers (per-device SIS + cross-device) clean?
  [[nodiscard]] bool clean() const;
  /// Merged violation list, each entry prefixed with its source.
  [[nodiscard]] std::vector<std::string> violations() const;

 private:
  struct Dev {
    ir::DeviceSpec spec;
    unsigned segment = 0;
    std::unique_ptr<elab::ElaboratedDevice> dev;
    std::uint32_t base = 0;        ///< global base address (window start)
    std::size_t window_idx = 0;    ///< window index on its segment's bus
    sis::ProtocolChecker* checker = nullptr;  // owned by the simulator
  };

  [[nodiscard]] drivergen::DriverProgram rebase(
      drivergen::DriverProgram program, std::uint32_t base) const;
  CallResult run_master(unsigned master, drivergen::DriverProgram program,
                        const std::string& what, std::uint64_t max_cycles);

  std::unique_ptr<rtl::Simulator> sim_;
  std::vector<Dev> devices_;
  bus::PlbBus* root_ = nullptr;          // owned by the simulator
  bus::OpbBus* opb_ = nullptr;           // "
  bus::PlbOpbBridge* bridge_ = nullptr;  // "
  std::size_t bridge_window_ = 0;        ///< bridge's window index on root
  bus::BusMasterMux* mux_ = nullptr;     // "
  bus::IrqHub* hub_ = nullptr;           // "
  rtl::Signal* irq_line_ = nullptr;
  SocChecker* soc_checker_ = nullptr;
  std::vector<CpuMaster*> cpus_;
};

}  // namespace splice::runtime
