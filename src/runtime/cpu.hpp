// The CPU master: executes generated driver programs against a simulated
// bus, charging the CPU-side instruction overhead of each driver macro as
// inter-transaction gap cycles (the 300 MHz PPC-405 against 100 MHz buses
// of §9.3, folded to bus cycles via timing::kCpuClockRatio).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "bus/master_port.hpp"
#include "bus/timing.hpp"
#include "drivergen/program.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::runtime {

/// Observer hook for the driver-call timeline (src/rtl/observe): the CPU
/// master reports op boundaries, status polls and taken interrupts as they
/// happen on the simulated clock.  Callbacks fire inside clock_edge() with
/// the pre-edge cycle number; op transitions occur on identical cycles on
/// both simulation backends (the lockstep harness asserts exactly that), so
/// an observer stream is backend-deterministic by construction.
class CpuObserver {
 public:
  virtual ~CpuObserver() = default;
  virtual void on_op_start(const drivergen::DriverOp& op, std::size_t index,
                           std::uint64_t cycle) = 0;
  virtual void on_op_finish(std::size_t index, std::uint64_t cycle) = 0;
  virtual void on_poll(std::uint64_t cycle) = 0;
  virtual void on_irq(std::uint64_t cycle) = 0;
};

class CpuMaster : public rtl::Module {
 public:
  CpuMaster(bus::MasterPort& port, sis::ProtocolClass protocol)
      : rtl::Module("cpu_master"), port_(port), protocol_(protocol) {
    watch_none();  // clocked-only: drives the bus from its program FSM
    // No external triggers: run() asserts busy and the FSM keeps itself
    // busy while it is actively issuing or paying gap cycles.  Waits are
    // event-gated instead of polled: the port hands completion back via
    // the waiter hook, and attach_irq() adds the IRQ line as a trigger.
    clocked_none();
    port_.set_completion_waiter(*this);
  }

  /// Enqueue a driver call; multiple queued programs run back to back.
  void run(drivergen::DriverProgram program);

  [[nodiscard]] bool done() const {
    return programs_.empty() && state_ == St::Idle && !port_.busy();
  }
  /// Words produced by the completed programs' read macros, in order.
  [[nodiscard]] const std::vector<std::uint64_t>& read_words() const {
    return read_words_;
  }
  void clear_read_words() { read_words_.clear(); }
  [[nodiscard]] std::uint64_t polls_performed() const { return polls_; }
  [[nodiscard]] std::uint64_t interrupts_taken() const { return irqs_; }

  /// %irq_support (§10.2): on strictly synchronous buses, WAIT_FOR_RESULTS
  /// sleeps until the device raises this line instead of polling the
  /// CALC_DONE register; each taken interrupt pays the ISR entry cost plus
  /// one identifying status read.
  void attach_irq(rtl::Signal& line) {
    irq_ = &line;
    watch_clocked(line);  // IrqWait sleeps until the device raises it
  }

  /// Attach (or detach, with nullptr) the timeline observer.  The observer
  /// must outlive every subsequent clock edge or be detached first.
  void set_observer(CpuObserver* observer) { observer_ = observer; }

  void clock_edge() override;
  void reset() override;

 private:
  enum class St : std::uint8_t {
    Idle,
    Gap,         ///< paying CPU-side macro overhead
    WaitPort,    ///< transaction on the wire
    PollIssue,   ///< WAIT_FOR_RESULTS: about to read the status register
    PollWait,    ///< status read in flight
    PollGap,     ///< loop-body overhead between polls
    IrqWait,     ///< interrupt-driven wait (§10.2)
    IsrEntry,    ///< exception entry / handler prologue
  };

  void edge_impl();
  void start_op();
  void finish_op();

  bus::MasterPort& port_;
  sis::ProtocolClass protocol_;
  std::deque<drivergen::DriverProgram> programs_;
  std::size_t op_idx_ = 0;
  St state_ = St::Idle;
  unsigned gap_ = 0;
  bool collect_read_ = false;
  std::uint32_t poll_addr_ = 0;  ///< status-register address being polled
  std::uint32_t poll_bit_ = 0;   ///< CALC_DONE bit awaited (local to device)
  bool irq_return_ = false;      ///< spurious wake: go back to sleep
  rtl::Signal* irq_ = nullptr;
  CpuObserver* observer_ = nullptr;
  std::vector<std::uint64_t> read_words_;
  std::uint64_t polls_ = 0;
  std::uint64_t irqs_ = 0;
};

}  // namespace splice::runtime
