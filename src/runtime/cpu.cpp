#include "runtime/cpu.hpp"

namespace splice::runtime {

using drivergen::OpCode;

void CpuMaster::run(drivergen::DriverProgram program) {
  programs_.push_back(std::move(program));
  set_clock_busy(true);
}

void CpuMaster::start_op() {
  auto& prog = programs_.front();
  if (op_idx_ >= prog.ops.size()) {
    programs_.pop_front();
    op_idx_ = 0;
    state_ = St::Idle;
    return;
  }
  const drivergen::DriverOp& op = prog.ops[op_idx_];
  collect_read_ = false;
  if (observer_ != nullptr) observer_->on_op_start(op, op_idx_, sim_cycle());

  switch (op.op) {
    case OpCode::SetAddress:
      // Address computation only: a couple of integer instructions.
      gap_ = port_.cpu_gap_cycles();
      state_ = St::Gap;
      return;

    case OpCode::WriteSingle:
    case OpCode::WriteDouble:
    case OpCode::WriteQuad:
      port_.write(op.fid, op.data);
      state_ = St::WaitPort;
      return;

    case OpCode::WriteDma:
      port_.dma_write(op.fid, op.data);
      state_ = St::WaitPort;
      return;

    case OpCode::ReadSingle:
    case OpCode::ReadDouble:
    case OpCode::ReadQuad:
      port_.read(op.fid, op.read_words);
      collect_read_ = true;
      state_ = St::WaitPort;
      return;

    case OpCode::ReadDma:
      port_.dma_read(op.fid, op.read_words);
      collect_read_ = true;
      state_ = St::WaitPort;
      return;

    case OpCode::WaitForResults:
      if (protocol_ == sis::ProtocolClass::PseudoAsynchronous) {
        // §6.1.1: on a pseudo asynchronous bus the wait collapses to a
        // NULL statement — the ensuing read stalls the bus instead.
        finish_op();
        return;
      }
      [[fallthrough]];
    case OpCode::WaitIrq:
      poll_addr_ = op.status_addr;
      poll_bit_ = op.fid - op.status_addr;
      // §10.2 interrupt extension: sleep on the IRQ line instead of
      // spinning on the status register when the device provides one.
      // (WAIT_IRQ degrades to polling when no line is attached.)
      irq_return_ = irq_ != nullptr;
      state_ = irq_ != nullptr ? St::IrqWait : St::PollIssue;
      return;

    case OpCode::PollStatus:
      poll_addr_ = op.status_addr;
      poll_bit_ = op.fid - op.status_addr;
      irq_return_ = false;
      state_ = St::PollIssue;
      return;
  }
}

void CpuMaster::finish_op() {
  if (observer_ != nullptr) observer_->on_op_finish(op_idx_, sim_cycle());
  ++op_idx_;
  auto& prog = programs_.front();
  if (op_idx_ >= prog.ops.size()) {
    programs_.pop_front();
    op_idx_ = 0;
    state_ = St::Idle;
  } else {
    state_ = St::Idle;  // next op starts on the following edge
  }
}

void CpuMaster::clock_edge() {
  edge_impl();
  // Waits sleep instead of polling: a port wait is woken same-cycle by the
  // bus through MasterPort::set_completion_waiter the edge its operation
  // train drains (the bus precedes the CPU in module order), and an IRQ
  // wait is triggered by the watched interrupt line itself.  If edge_impl
  // left the FSM in a wait state the awaited condition was false on this
  // edge, so sleeping until the corresponding event is exact.  Everything
  // else — issue states, gap countdowns, queued programs — keeps clocking.
  const bool port_wait =
      (state_ == St::WaitPort || state_ == St::PollWait) && port_.busy();
  const bool irq_wait =
      state_ == St::IrqWait && irq_ != nullptr && !irq_->high();
  set_clock_busy(!port_wait && !irq_wait &&
                 (state_ != St::Idle || !programs_.empty()));
}

void CpuMaster::edge_impl() {
  switch (state_) {
    case St::Idle:
      if (!programs_.empty()) start_op();
      break;

    case St::Gap:
      if (gap_ > 0) --gap_;
      if (gap_ == 0) finish_op();
      break;

    case St::WaitPort:
      if (!port_.busy()) {
        if (collect_read_) {
          const auto& data = port_.read_data();
          read_words_.insert(read_words_.end(), data.begin(), data.end());
        }
        // Driver-macro epilogue (pointer bump, loop bookkeeping).
        gap_ = port_.cpu_gap_cycles();
        state_ = gap_ == 0 ? St::Idle : St::Gap;
        if (gap_ == 0) finish_op();
      }
      break;

    case St::PollIssue:
      port_.read(poll_addr_, 1);
      ++polls_;
      if (observer_ != nullptr) observer_->on_poll(sim_cycle());
      state_ = St::PollWait;
      break;

    case St::PollWait:
      if (!port_.busy()) {
        const auto& data = port_.read_data();
        const std::uint64_t status = data.empty() ? 0 : data.back();
        if (((status >> poll_bit_) & 1) != 0) {
          finish_op();
        } else if (irq_return_ && irq_ != nullptr && !irq_->high()) {
          // Spurious wake: the interrupt belonged to another source and
          // the line has dropped again — go back to sleep.
          state_ = St::IrqWait;
        } else {
          gap_ = bus::timing::kPollLoopGapCycles;
          state_ = St::PollGap;
        }
      }
      break;

    case St::PollGap:
      if (gap_ > 0) --gap_;
      if (gap_ == 0) state_ = St::PollIssue;
      break;

    case St::IrqWait:
      // The CPU is free (or sleeping); no bus traffic until the device
      // raises its interrupt request.
      if (irq_ != nullptr && irq_->high()) {
        ++irqs_;
        if (observer_ != nullptr) observer_->on_irq(sim_cycle());
        gap_ = bus::timing::kIsrEntryCycles;
        state_ = St::IsrEntry;
      }
      break;

    case St::IsrEntry:
      if (gap_ > 0) --gap_;
      if (gap_ == 0) {
        // The handler identifies the source with one status read; if the
        // expected bit is not set the interrupt belonged to another
        // function and the CPU goes back to sleep.
        state_ = St::PollIssue;
      }
      break;
  }
}

void CpuMaster::reset() {
  programs_.clear();
  op_idx_ = 0;
  state_ = St::Idle;
  gap_ = 0;
  collect_read_ = false;
  poll_addr_ = 0;
  poll_bit_ = 0;
  irq_return_ = false;
  read_words_.clear();
  polls_ = 0;
  irqs_ = 0;
}

}  // namespace splice::runtime
