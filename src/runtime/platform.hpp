// The virtual platform: a complete simulated SoC — CPU master, native bus,
// SIS adapter, generated arbiter and user-logic stubs — assembled from a
// validated DeviceSpec.  This is the simulation stand-in for the thesis'
// ML-403 / SP3-1500 development boards (§2.2).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bus/ahb.hpp"
#include "bus/apb.hpp"
#include "bus/fcb.hpp"
#include "bus/opb.hpp"
#include "bus/plb.hpp"
#include "drivergen/program.hpp"
#include "elab/device.hpp"
#include "ir/device.hpp"
#include "rtl/simulator.hpp"
#include "sis/checker.hpp"

namespace splice::runtime {

class CpuMaster;

enum class BusKind : std::uint8_t { Plb, Opb, Fcb, Apb, Ahb };

[[nodiscard]] std::string_view bus_kind_name(BusKind kind);
/// Map a %bus_type string to a BusKind; throws on unknown names.
[[nodiscard]] BusKind bus_kind_from_name(std::string_view name);

struct CallResult {
  std::vector<std::uint64_t> outputs;  ///< decoded output elements
  /// Updated '&' by-reference parameter values (§10.2), in
  /// FunctionDecl::by_ref_params order.
  std::vector<std::vector<std::uint64_t>> byref_outputs;
  std::uint64_t bus_cycles = 0;        ///< wall time of the call
  std::uint64_t cpu_cycles = 0;        ///< bus_cycles * CPU clock ratio
};

class VirtualPlatform {
 public:
  /// Build the SoC.  `spec` must validate cleanly; the bus is chosen from
  /// spec.target.bus_type, and DMA hardware is attached iff %dma_support.
  VirtualPlatform(ir::DeviceSpec spec, elab::BehaviorMap behaviors);

  /// Invoke one generated driver; steps the simulator until it returns.
  CallResult call(const std::string& function,
                  const drivergen::CallArgs& args = {},
                  std::uint32_t instance = 0,
                  std::uint64_t max_cycles = 1'000'000);

  /// Run a pre-built program (benchmark harnesses build their own).
  CallResult run_program(const std::string& function,
                         drivergen::DriverProgram program,
                         const drivergen::CallArgs& args,
                         std::uint64_t max_cycles = 1'000'000);

  /// Wait for a nowait call issued earlier to complete: sleeps on the
  /// device interrupt when `irq` is set (and %irq_support wired one up),
  /// else polls CALC_DONE; either way the latched completion bit is
  /// acknowledged through a status write.  Returns the wait's cycle cost.
  CallResult wait_completion(const std::string& function,
                             std::uint32_t instance = 0, bool irq = false,
                             std::uint64_t max_cycles = 1'000'000);

  [[nodiscard]] rtl::Simulator& sim() { return *sim_; }
  [[nodiscard]] const ir::DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] elab::ElaboratedDevice& device() { return *device_; }
  [[nodiscard]] bus::MasterPort& port() { return *port_; }
  [[nodiscard]] CpuMaster& cpu() { return *cpu_; }
  [[nodiscard]] const sis::ProtocolChecker& checker() const {
    return *checker_;
  }
  [[nodiscard]] BusKind bus_kind() const { return kind_; }
  [[nodiscard]] sis::ProtocolClass protocol() const { return protocol_; }

 private:
  CallResult run_call(const ir::FunctionDecl& fn,
                      drivergen::DriverProgram program,
                      const drivergen::CallArgs& args,
                      std::uint64_t max_cycles);

  ir::DeviceSpec spec_;
  BusKind kind_;
  sis::ProtocolClass protocol_;
  std::unique_ptr<rtl::Simulator> sim_;
  std::unique_ptr<elab::ElaboratedDevice> device_;
  bus::MasterPort* port_ = nullptr;      // owned by the simulator
  CpuMaster* cpu_ = nullptr;             // owned by the simulator
  sis::ProtocolChecker* checker_ = nullptr;
};

}  // namespace splice::runtime
