#include "runtime/platform.hpp"

#include "bus/timing.hpp"
#include "elab/ahb_adapter.hpp"
#include "elab/apb_adapter.hpp"
#include "elab/fcb_adapter.hpp"
#include "elab/plb_adapter.hpp"
#include "runtime/cpu.hpp"
#include "support/diagnostics.hpp"

namespace splice::runtime {

std::string_view bus_kind_name(BusKind kind) {
  switch (kind) {
    case BusKind::Plb: return "plb";
    case BusKind::Opb: return "opb";
    case BusKind::Fcb: return "fcb";
    case BusKind::Apb: return "apb";
    case BusKind::Ahb: return "ahb";
  }
  return "?";
}

BusKind bus_kind_from_name(std::string_view name) {
  if (name == "plb") return BusKind::Plb;
  if (name == "opb") return BusKind::Opb;
  if (name == "fcb") return BusKind::Fcb;
  if (name == "apb") return BusKind::Apb;
  if (name == "ahb") return BusKind::Ahb;
  throw SpliceError("unknown bus type '" + std::string(name) + "'");
}

VirtualPlatform::VirtualPlatform(ir::DeviceSpec spec,
                                 elab::BehaviorMap behaviors)
    : spec_(std::move(spec)),
      kind_(bus_kind_from_name(spec_.target.bus_type)),
      protocol_(kind_ == BusKind::Apb
                    ? sis::ProtocolClass::StrictlySynchronous
                    : sis::ProtocolClass::PseudoAsynchronous),
      sim_(std::make_unique<rtl::Simulator>()) {
  device_ = std::make_unique<elab::ElaboratedDevice>(*sim_, spec_, behaviors);
  sis::SisBus& sis = device_->sis();
  const unsigned width = spec_.target.bus_width;
  const unsigned slots = spec_.total_instances() + 1;  // slot 0 == status
  const unsigned fid_w = spec_.func_id_width();

  switch (kind_) {
    case BusKind::Plb: {
      auto& plb = sim_->add<bus::PlbBus>(*sim_, "PLB_", width, slots);
      if (spec_.target.dma_support) plb.enable_dma();
      sim_->add<elab::PlbSisAdapter>(plb.pins(), sis);
      port_ = &plb;
      break;
    }
    case BusKind::Opb: {
      auto& opb = sim_->add<bus::OpbBus>(*sim_, "OPB_", width, slots);
      sim_->add<elab::PlbSisAdapter>(opb.pins(), sis);
      port_ = &opb;
      break;
    }
    case BusKind::Fcb: {
      auto& fcb = sim_->add<bus::FcbBus>(*sim_, "FCB_", width, fid_w);
      sim_->add<elab::FcbSisAdapter>(fcb.pins(), sis);
      port_ = &fcb;
      break;
    }
    case BusKind::Apb: {
      auto& apb = sim_->add<bus::ApbBus>(*sim_, "APB_", width, fid_w);
      sim_->add<elab::ApbSisAdapter>(apb.pins(), sis);
      port_ = &apb;
      break;
    }
    case BusKind::Ahb: {
      auto& ahb = sim_->add<bus::AhbBus>(*sim_, "AHB_", width, fid_w);
      if (spec_.target.dma_support) ahb.enable_dma();
      sim_->add<elab::AhbSisAdapter>(ahb.pins(), sis);
      port_ = &ahb;
      break;
    }
  }

  checker_ = &sim_->add<sis::ProtocolChecker>(sis, protocol_);
  cpu_ = &sim_->add<CpuMaster>(*port_, protocol_);

  // %irq_support (thesis §10.2, implemented): the arbiter drives an
  // interrupt request whenever any CALC_DONE bit rises, and the CPU's
  // WAIT_FOR_RESULTS sleeps on it instead of polling.
  if (spec_.target.irq_support) {
    rtl::Signal& irq = sim_->signal("IRQ", 1);
    device_->arbiter().attach_irq(irq);
    cpu_->attach_irq(irq);
  }
}

CallResult VirtualPlatform::call(const std::string& function,
                                 const drivergen::CallArgs& args,
                                 std::uint32_t instance,
                                 std::uint64_t max_cycles) {
  const ir::FunctionDecl* fn = spec_.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  drivergen::DriverBuilder builder(spec_, *fn);
  return run_call(*fn, builder.build_call(args, instance), args, max_cycles);
}

CallResult VirtualPlatform::run_program(const std::string& function,
                                        drivergen::DriverProgram program,
                                        const drivergen::CallArgs& args,
                                        std::uint64_t max_cycles) {
  const ir::FunctionDecl* fn = spec_.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  return run_call(*fn, std::move(program), args, max_cycles);
}

CallResult VirtualPlatform::wait_completion(const std::string& function,
                                            std::uint32_t instance, bool irq,
                                            std::uint64_t max_cycles) {
  const ir::FunctionDecl* fn = spec_.find_function(function);
  if (fn == nullptr) {
    throw SpliceError("unknown function '" + function + "'");
  }
  drivergen::DriverBuilder builder(spec_, *fn);
  cpu_->run(builder.build_completion_wait(instance, irq));

  const std::uint64_t start = sim_->cycle();
  const bool finished =
      sim_->step_until([this] { return cpu_->done(); }, max_cycles);
  if (!finished) {
    throw SpliceError("completion wait for '" + function +
                      "' did not finish within " +
                      std::to_string(max_cycles) + " cycles");
  }
  CallResult result;
  result.bus_cycles = sim_->cycle() - start;
  result.cpu_cycles = result.bus_cycles * bus::timing::kCpuClockRatio;
  return result;
}

CallResult VirtualPlatform::run_call(const ir::FunctionDecl& fn,
                                     drivergen::DriverProgram program,
                                     const drivergen::CallArgs& args,
                                     std::uint64_t max_cycles) {
  cpu_->clear_read_words();
  cpu_->run(std::move(program));

  const std::uint64_t start = sim_->cycle();
  const bool finished =
      sim_->step_until([this] { return cpu_->done(); }, max_cycles);
  if (!finished) {
    throw SpliceError("call to '" + fn.name + "' did not complete within " +
                      std::to_string(max_cycles) + " cycles");
  }

  CallResult result;
  result.bus_cycles = sim_->cycle() - start;
  result.cpu_cycles = result.bus_cycles * bus::timing::kCpuClockRatio;
  drivergen::DriverBuilder builder(spec_, fn);
  drivergen::CallOutputs decoded =
      builder.decode_call(cpu_->read_words(), args);
  result.outputs = std::move(decoded.outputs);
  result.byref_outputs = std::move(decoded.byref);
  return result;
}

}  // namespace splice::runtime
