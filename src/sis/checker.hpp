// Runtime protocol checker: observes an SIS bundle every clock cycle and
// records violations of the chapter-4 communication axioms.  Tests attach
// one to every simulated configuration so any adapter or generated stub
// that strays from the standard fails loudly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sis/sis.hpp"

namespace splice::sis {

class ProtocolChecker : public rtl::Module {
 public:
  ProtocolChecker(const SisBus& bus, ProtocolClass protocol);

  void clock_edge() override;
  void reset() override;

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  [[nodiscard]] std::uint64_t writes_observed() const { return writes_; }
  [[nodiscard]] std::uint64_t reads_observed() const { return reads_; }

 private:
  void violate(const std::string& what);

  const SisBus& bus_;
  ProtocolClass protocol_;

  enum class Txn : std::uint8_t { Idle, Write, Read };
  Txn txn_ = Txn::Idle;
  std::uint64_t held_func_id_ = 0;
  std::uint64_t held_data_ = 0;
  std::uint64_t txn_start_cycle_ = 0;
  std::uint64_t cycle_ = 0;
  bool prev_io_enable_ = false;
  bool prev_io_done_ = false;
  bool prev_rst_ = false;
  bool prev_status_clear_ = false;
  std::uint64_t prev_calc_done_ = 0;
  std::uint64_t quiet_cycles_ = 0;  ///< cycles since the last bus activity
  // Gated-edge bookkeeping (compiled backend): the sim cycle of the last
  // edge actually run, so skipped quiet cycles can be folded into cycle_
  // and quiet_cycles_ exactly as if they had executed.
  std::uint64_t last_edge_cycle_ = 0;
  bool seen_edge_ = false;

  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace splice::sis
