#include "sis/sis.hpp"

namespace splice::sis {

std::string_view protocol_name(ProtocolClass p) {
  return p == ProtocolClass::PseudoAsynchronous ? "pseudo asynchronous"
                                                : "strictly synchronous";
}

SisBus SisBus::create(rtl::Simulator& sim, const std::string& prefix,
                      unsigned data_width, unsigned func_id_width,
                      unsigned calc_vector_width) {
  auto name = [&](const char* leaf) { return prefix + leaf; };
  return SisBus{
      data_width,
      func_id_width,
      sim.signal(name("RST"), 1),
      sim.signal(name("DATA_IN"), data_width),
      sim.signal(name("DATA_IN_VALID"), 1),
      sim.signal(name("IO_ENABLE"), 1),
      sim.signal(name("FUNC_ID"), func_id_width),
      sim.signal(name("DATA_OUT"), data_width),
      sim.signal(name("DATA_OUT_VALID"), 1),
      sim.signal(name("IO_DONE"), 1),
      sim.signal(name("CALC_DONE"), calc_vector_width),
      sim.signal(name("STATUS_CLEAR"), calc_vector_width),
  };
}

}  // namespace splice::sis
