// The Splice Interface Standard (thesis chapter 4): the 10-signal
// bus-independent protocol every generated user-logic stub speaks.
//
// Signal roles (Figure 4.2):
//   CLK / RST            broadcast clock and reset (CLK is implicit in the
//                        cycle-based kernel)
//   DATA_IN              input data from the processor
//   DATA_IN_VALID        input data is valid and waiting to be stored
//   IO_ENABLE            strobed for one cycle at each new data request
//   FUNC_ID              selects the target user-logic function
//   DATA_OUT             output data from the user logic (per-function,
//                        multiplexed by the arbiter)
//   DATA_OUT_VALID       output data is valid and waiting to be read
//   IO_DONE              previous load/store to this function completed
//   CALC_DONE            this function's calculations have all completed
//                        (concatenated into the status vector read through
//                        the reserved FUNC_ID 0, §4.2.2)
#pragma once

#include <cstdint>
#include <string>

#include "rtl/simulator.hpp"

namespace splice::sis {

/// SIS transfer protocol class (§4.2.1 / §4.2.2).
enum class ProtocolClass : std::uint8_t {
  PseudoAsynchronous,   ///< handshaken; IO_DONE paces the bus
  StrictlySynchronous,  ///< single-cycle ops; CALC_DONE polling for reads
};

[[nodiscard]] std::string_view protocol_name(ProtocolClass p);

/// Reserved function identifier: reads with FUNC_ID 0 return the CALC_DONE
/// status vector (§4.2.2).
inline constexpr std::uint32_t kStatusFuncId = 0;

/// The adapter-facing SIS signal bundle (after the arbiter has multiplexed
/// the per-function DATA_OUT / DATA_OUT_VALID / IO_DONE lines and encoded
/// the CALC_DONE vector).
struct SisBus {
  unsigned data_width;
  unsigned func_id_width;

  rtl::Signal& rst;
  rtl::Signal& data_in;
  rtl::Signal& data_in_valid;
  rtl::Signal& io_enable;
  rtl::Signal& func_id;
  rtl::Signal& data_out;
  rtl::Signal& data_out_valid;
  rtl::Signal& io_done;
  rtl::Signal& calc_done;  ///< status vector, bit i == instance i done
  /// One-cycle acknowledge mask: bit i high clears instance i's *latched*
  /// nowait CALC_DONE bit (§10.2 interrupt-completion extension).  Driven
  /// by the adapter when software writes the reserved status register;
  /// blocking functions ignore it (their CALC_DONE clears at output drain).
  rtl::Signal& status_clear;

  /// Create the bundle on `sim` with `prefix`-qualified signal names.
  static SisBus create(rtl::Simulator& sim, const std::string& prefix,
                       unsigned data_width, unsigned func_id_width,
                       unsigned calc_vector_width);
};

}  // namespace splice::sis
