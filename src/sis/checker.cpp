#include "sis/checker.hpp"

namespace splice::sis {

ProtocolChecker::ProtocolChecker(const SisBus& bus, ProtocolClass protocol)
    : rtl::Module("sis_checker"), bus_(bus), protocol_(protocol) {
  watch_none();  // clocked-only observer: samples the bundle on the edge
  // Every axiom is a predicate over the SIS lines below plus one-cycle
  // history: on a cycle where none of them changed, the edge body is a
  // no-op except for the cycle_/quiet_cycles_ counters, which clock_edge
  // folds in arithmetically when the compiled backend skips quiet cycles.
  // Held-high detection (IO_ENABLE/IO_DONE across two unchanged cycles)
  // needs one extra run after any active cycle: set_clock_busy below.
  watch_clocked_all(bus.rst, bus.io_enable, bus.io_done, bus.data_in_valid,
                    bus.data_in, bus.func_id, bus.data_out_valid,
                    bus.calc_done, bus.status_clear);
}

void ProtocolChecker::violate(const std::string& what) {
  violations_.push_back("cycle " + std::to_string(cycle_) + ": " + what);
}

void ProtocolChecker::reset() {
  txn_ = Txn::Idle;
  prev_io_enable_ = false;
  prev_io_done_ = false;
  prev_rst_ = false;
  prev_status_clear_ = false;
  prev_calc_done_ = 0;
  quiet_cycles_ = 0;
  cycle_ = 0;
  last_edge_cycle_ = 0;
  seen_edge_ = false;
}

void ProtocolChecker::clock_edge() {
  // Catch up over edges the compiled backend skipped.  Skipped cycles had
  // no change on any watched line, so they carried the previous run's
  // values: under reset (or right after bus activity) they zero the quiet
  // counter, otherwise each one is a quiet cycle.  cycle_ advances either
  // way, keeping violation timestamps identical to the interpreter's.
  const std::uint64_t now = sim_cycle();
  if (seen_edge_ && now > last_edge_cycle_ + 1) {
    const std::uint64_t gap = now - last_edge_cycle_ - 1;
    cycle_ += gap;
    if (prev_rst_ || prev_io_enable_ || prev_io_done_ || prev_status_clear_) {
      quiet_cycles_ = 0;
    } else {
      quiet_cycles_ += gap;
    }
  }
  last_edge_cycle_ = now;
  seen_edge_ = true;

  const bool enable = bus_.io_enable.high();
  const bool din_valid = bus_.data_in_valid.high();
  const bool io_done = bus_.io_done.high();
  const bool dout_valid = bus_.data_out_valid.high();
  const bool sclr = bus_.status_clear.get() != 0;
  const std::uint64_t fid = bus_.func_id.get();

  if (bus_.rst.high()) {
    txn_ = Txn::Idle;
    prev_io_enable_ = false;
    prev_io_done_ = false;
    prev_status_clear_ = false;
    prev_rst_ = true;
    prev_calc_done_ = bus_.calc_done.get();
    quiet_cycles_ = 0;
    ++cycle_;
    set_clock_busy(false);
    return;
  }
  prev_rst_ = false;

  // Axiom: IO_ENABLE is strobed for a single cycle per request (§4.2.1).
  if (enable && prev_io_enable_) {
    violate("IO_ENABLE held high for more than one cycle");
  }

  const bool new_request = enable && !prev_io_enable_;

  switch (txn_) {
    case Txn::Idle:
      if (new_request) {
        if (din_valid) {
          // Write transaction opened.
          txn_ = Txn::Write;
          held_func_id_ = fid;
          held_data_ = bus_.data_in.get();
          txn_start_cycle_ = cycle_;
          ++writes_;
        } else {
          txn_ = Txn::Read;
          held_func_id_ = fid;
          txn_start_cycle_ = cycle_;
          ++reads_;
        }
        // A transaction may complete in its very first cycle; on a strictly
        // synchronous interface it MUST (§4.2.2).
        if (io_done || protocol_ == ProtocolClass::StrictlySynchronous) {
          txn_ = Txn::Idle;
        }
      } else if (io_done && !prev_io_done_ &&
                 protocol_ == ProtocolClass::PseudoAsynchronous) {
        violate("IO_DONE raised with no transaction in flight");
      }
      break;

    case Txn::Write:
      // Axiom: DATA_IN, DATA_IN_VALID and FUNC_ID remain static until the
      // target raises IO_DONE (§4.2.1).
      if (protocol_ == ProtocolClass::PseudoAsynchronous) {
        if (!din_valid && !io_done) {
          violate("DATA_IN_VALID dropped before IO_DONE during a write");
        }
        if (fid != held_func_id_) {
          violate("FUNC_ID changed mid-write");
        }
        if (din_valid && bus_.data_in.get() != held_data_) {
          violate("DATA_IN changed mid-write");
        }
      } else {
        // Strictly synchronous: every write completes in the cycle it is
        // enacted (§4.2.2) — a write still open one cycle later is an error
        // unless a fresh request chained in.
        if (cycle_ > txn_start_cycle_ && !new_request) {
          violate("strictly synchronous write did not complete in one cycle");
        }
      }
      if (io_done || protocol_ == ProtocolClass::StrictlySynchronous) {
        txn_ = Txn::Idle;
      }
      break;

    case Txn::Read:
      if (fid != held_func_id_) violate("FUNC_ID changed mid-read");
      if (protocol_ == ProtocolClass::PseudoAsynchronous) {
        // Axiom: output is presented with DATA_OUT_VALID and IO_DONE raised
        // together for one cycle (§4.2.1).
        if (io_done && !dout_valid) {
          violate("IO_DONE for a read without DATA_OUT_VALID");
        }
        if (io_done) txn_ = Txn::Idle;
      } else {
        // Strictly synchronous reads complete in the enacting cycle.
        txn_ = Txn::Idle;
      }
      break;
  }

  // Axiom: IO_DONE pulses are single-cycle.
  if (io_done && prev_io_done_) {
    violate("IO_DONE held high for more than one cycle");
  }

  // Axiom: a raised CALC_DONE bit stays raised until software consumes the
  // result (§4.2.3) — it may only fall in response to bus activity (the
  // completing read, the enacting write of the next calculation, or a
  // status-clear acknowledge, with a short pipeline allowance).  A bit
  // falling on a quiet bus is a glitch.
  const std::uint64_t calc = bus_.calc_done.get();
  const std::uint64_t fell = prev_calc_done_ & ~calc;
  if (fell != 0 && !enable && !io_done && !sclr && quiet_cycles_ > 2) {
    violate("CALC_DONE deasserted with no bus activity (glitch)");
  }
  quiet_cycles_ = (enable || io_done || sclr) ? 0 : quiet_cycles_ + 1;
  prev_calc_done_ = calc;

  prev_io_enable_ = enable;
  prev_io_done_ = io_done;
  prev_status_clear_ = sclr;
  ++cycle_;
  // A strobe high *now* must be re-examined next cycle even if nothing
  // changes (the held-for-more-than-one-cycle axioms compare against the
  // one-cycle history recorded above).
  set_clock_busy(enable || io_done || sclr);
}

}  // namespace splice::sis
