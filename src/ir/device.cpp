#include "ir/device.hpp"

#include <algorithm>

namespace splice::ir {

std::uint64_t IoParam::max_elements(unsigned index_bits) const {
  switch (count_kind) {
    case CountKind::Scalar: return 1;
    case CountKind::Explicit: return explicit_count;
    case CountKind::Implicit:
      // Bounded by the index variable's representable range; the generator
      // sizes tracking registers off this.  Cap to keep register widths sane.
      return std::min<std::uint64_t>(bits::low_mask(std::min(index_bits, 16u)),
                                     65535);
  }
  return 1;
}

std::uint64_t IoParam::words_for(std::uint64_t elements,
                                 unsigned bus_width) const {
  if (elements == 0) return 0;
  if (packed && type.bits < bus_width) {
    return bits::ceil_div(elements, elements_per_word(bus_width));
  }
  return elements * words_per_element(bus_width);
}

const IoParam* FunctionDecl::find_input(std::string_view name) const {
  for (const auto& p : inputs) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

bool FunctionDecl::uses_dma() const {
  if (has_output() && output.dma) return true;
  return std::any_of(inputs.begin(), inputs.end(),
                     [](const IoParam& p) { return p.dma; });
}

bool FunctionDecl::uses_packing() const {
  if (has_output() && output.packed) return true;
  return std::any_of(inputs.begin(), inputs.end(),
                     [](const IoParam& p) { return p.packed; });
}

bool FunctionDecl::uses_arrays() const {
  if (has_output() && output.is_array()) return true;
  return std::any_of(inputs.begin(), inputs.end(),
                     [](const IoParam& p) { return p.is_array(); });
}

std::vector<std::size_t> FunctionDecl::by_ref_params() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].by_reference) out.push_back(i);
  }
  return out;
}

bool FunctionDecl::uses_splitting(unsigned bus_width) const {
  if (has_output() && output.type.bits > bus_width) return true;
  return std::any_of(inputs.begin(), inputs.end(), [&](const IoParam& p) {
    return p.type.bits > bus_width;
  });
}

std::string_view hdl_name(Hdl hdl) {
  return hdl == Hdl::Vhdl ? "vhdl" : "verilog";
}

const FunctionDecl* DeviceSpec::find_function(std::string_view name) const {
  for (const auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

FunctionDecl* DeviceSpec::find_function(std::string_view name) {
  for (auto& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::uint32_t DeviceSpec::total_instances() const {
  std::uint32_t total = 0;
  for (const auto& f : functions) total += f.instances;
  return total;
}

unsigned DeviceSpec::func_id_width() const {
  return bits::bits_for_count(total_instances() + 1);
}

void DeviceSpec::assign_func_ids() {
  std::uint32_t next = 1;  // 0 is the CALC_DONE status register (§4.2.2)
  for (auto& f : functions) {
    f.func_id = next;
    next += f.instances;
  }
}

}  // namespace splice::ir
