// The Splice type system: the ANSI-C base types admitted by the thesis
// grammar (Figure 3.1) plus user-defined types registered through the
// %user_type directive (Figure 3.17).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace splice::ir {

enum class TypeKind : std::uint8_t { Void, Boolean, Integer, Floating };

/// A resolved data type: every value crossing the hardware/software
/// boundary has a fixed bit width known at generation time.
struct CType {
  std::string name;       ///< spelling used in declarations, e.g. "int"
  TypeKind kind = TypeKind::Integer;
  unsigned bits = 32;     ///< storage width in bits
  bool is_signed = true;
  bool user_defined = false;
  /// For user types: the underlying C spelling ("unsigned long long").
  std::string c_spelling;

  [[nodiscard]] bool is_void() const { return kind == TypeKind::Void; }
  /// The spelling emitted into generated C driver code.
  [[nodiscard]] std::string driver_spelling() const {
    return user_defined ? name : name;
  }
};

/// Registry of known types.  Seeds itself with the Figure 3.1 `c_type`
/// production; %user_type directives add entries at parse time.
class TypeTable {
 public:
  TypeTable();

  /// Look up a type by its declaration spelling; nullopt when unknown.
  [[nodiscard]] std::optional<CType> find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return find(name).has_value();
  }

  /// Register a %user_type.  Returns false when the name is already taken
  /// (builtin or previously defined user type).
  bool add_user_type(std::string name, std::string c_spelling, unsigned bits,
                     bool is_signed = false);

  [[nodiscard]] const std::vector<CType>& all() const { return types_; }
  [[nodiscard]] std::vector<CType> user_types() const;

 private:
  std::vector<CType> types_;
};

}  // namespace splice::ir
