// Semantic validation of a DeviceSpec: the language rules of thesis §3.1 /
// §3.3 plus the directive requirements of §3.2.  Bus-specific feasibility
// (the "parameter checking routine" of chapter 7) is expressed through a
// BusCapabilities record supplied by the selected bus adapter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/device.hpp"
#include "support/diagnostics.hpp"

namespace splice::ir {

/// What a native bus can physically do.  Each registered adapter publishes
/// one of these; validation rejects specs that ask for more (§3.2.2: "the
/// tool will generate an error message and refuse to proceed").
struct BusCapabilities {
  std::string name;                     ///< canonical lowercase bus name
  std::vector<unsigned> allowed_widths; ///< native data widths in bits
  bool memory_mapped = true;            ///< needs %base_address
  bool supports_dma = false;
  bool supports_burst = false;
  bool strictly_synchronous = false;    ///< APB-style: no bus pausing (§4.2.2)
  bool supports_irq = false;            ///< interrupt line available (§10.2)
  unsigned max_dma_bits = 0;            ///< 0 when DMA unsupported
  unsigned max_burst_words = 1;         ///< longest native burst in bus words
  unsigned max_func_id_width = 16;      ///< FUNC_ID field budget

  [[nodiscard]] bool width_allowed(unsigned w) const;
};

struct ValidationOptions {
  /// When false, only language-level rules run (no directive completeness) —
  /// used by tests that build partial specs programmatically.
  bool require_target_directives = true;
};

/// Validate `spec` in place (fills IoParam::used_as_index and assigns
/// FUNC_IDs on success).  Returns true when no errors were reported.
bool validate(DeviceSpec& spec, DiagnosticEngine& diags,
              const BusCapabilities* caps = nullptr,
              const ValidationOptions& opts = {});

}  // namespace splice::ir
