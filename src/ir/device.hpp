// The Splice intermediate representation.  These types are the C++
// re-casting of the `splice_params` structures the thesis exposes to bus
// extension libraries (Figure 7.3): s_io_params -> IoParam,
// s_func_params -> FunctionDecl, s_module_params -> TargetSpec/DeviceSpec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/types.hpp"
#include "support/bits.hpp"
#include "support/diagnostics.hpp"

namespace splice::ir {

/// How many elements a parameter transfers (thesis §3.1.1–3.1.2).
enum class CountKind : std::uint8_t {
  Scalar,    ///< plain value, exactly one element
  Explicit,  ///< pointer with numeric bound, e.g. `int*:5 x`
  Implicit,  ///< pointer bounded by another input, e.g. `int*:n y`
};

/// One input parameter or the return value of an interface declaration
/// (mirrors s_io_params).
struct IoParam {
  std::string name;          ///< tag, e.g. "x" (empty for return values)
  CType type;
  bool is_pointer = false;
  CountKind count_kind = CountKind::Scalar;
  std::uint32_t explicit_count = 1;   ///< valid when count_kind == Explicit
  std::string index_var;              ///< valid when count_kind == Implicit
  bool packed = false;                ///< '+' extension (§3.1.3)
  bool dma = false;                   ///< '^' extension (§3.1.5)
  bool by_reference = false;          ///< '&' extension: the hardware's
                                      ///< updated values are read back
                                      ///< after the calculation (§10.2)
  bool used_as_index = false;         ///< another param references this one
  SourceLoc loc;

  [[nodiscard]] unsigned bit_width() const { return type.bits; }
  [[nodiscard]] bool is_array() const {
    return count_kind != CountKind::Scalar;
  }
  /// Upper bound on elements (explicit count, or the max value of the index
  /// variable's type for implicit transfers; 1 for scalars).  The hardware
  /// tracking registers must be sized for this.
  [[nodiscard]] std::uint64_t max_elements(unsigned index_bits = 32) const;

  /// Bus words needed per element at the given bus width ("split" transfers,
  /// §3.1.4): ceil(type bits / bus width).
  [[nodiscard]] std::uint64_t words_per_element(unsigned bus_width) const {
    return std::max<std::uint64_t>(1, bits::ceil_div(type.bits, bus_width));
  }
  /// Elements per bus word when packing applies (§3.1.3); 1 when the type is
  /// as wide as (or wider than) the bus.
  [[nodiscard]] std::uint64_t elements_per_word(unsigned bus_width) const {
    if (!packed || type.bits >= bus_width) return 1;
    return bus_width / type.bits;
  }
  /// Total bus words for `elements` elements under this parameter's
  /// packing/splitting rules.
  [[nodiscard]] std::uint64_t words_for(std::uint64_t elements,
                                        unsigned bus_width) const;
};

/// How a declaration returns to software (thesis §3.1.7).
enum class ReturnKind : std::uint8_t {
  Value,    ///< returns data; driver blocks until it is read
  Void,     ///< returns nothing but still blocks ("pseudo output state")
  Nowait,   ///< fire-and-forget, driver returns immediately
};

/// One interface declaration (mirrors s_func_params).
struct FunctionDecl {
  std::string name;
  ReturnKind return_kind = ReturnKind::Void;
  IoParam output;                 ///< meaningful when return_kind == Value
  std::vector<IoParam> inputs;
  std::uint32_t instances = 1;    ///< §3.1.6 multiple-instance extension
  SourceLoc loc;

  // Assigned during generation: FUNC_ID of the first instance.  Identifier
  // zero is reserved for the CALC_DONE status register (§4.2.2), so
  // assignment starts at 1.  Instance k of this function gets func_id + k.
  std::uint32_t func_id = 0;

  [[nodiscard]] bool has_output() const {
    return return_kind == ReturnKind::Value;
  }
  [[nodiscard]] bool blocking() const {
    return return_kind != ReturnKind::Nowait;
  }
  [[nodiscard]] const IoParam* find_input(std::string_view name) const;
  /// True when any parameter (or the return) uses DMA / packing / arrays.
  [[nodiscard]] bool uses_dma() const;
  [[nodiscard]] bool uses_packing() const;
  [[nodiscard]] bool uses_arrays() const;
  /// Parameters transferred back to software after the calculation (§10.2).
  [[nodiscard]] std::vector<std::size_t> by_ref_params() const;
  /// Any value wider than `bus_width` forces split transfers (§3.1.4).
  [[nodiscard]] bool uses_splitting(unsigned bus_width) const;
};

enum class Hdl : std::uint8_t { Vhdl, Verilog };

[[nodiscard]] std::string_view hdl_name(Hdl hdl);

/// Everything the %-directives configure (mirrors s_module_params).
struct TargetSpec {
  std::string device_name;                 ///< %device_name (required)
  std::string bus_type;                    ///< %bus_type, lowercase (required)
  unsigned bus_width = 0;                  ///< %bus_width in bits (required)
  std::optional<std::uint64_t> base_address;  ///< %base_address
  bool burst_support = false;              ///< %burst_support
  bool dma_support = false;                ///< %dma_support
  bool packing_support = false;            ///< %packing_support (global)
  bool irq_support = false;                ///< %irq_support (thesis §10.2,
                                           ///< implemented extension)
  Hdl hdl = Hdl::Vhdl;                     ///< %target_hdl
  // DMA engine shape; defaulted per bus by the adapter (s_module_params has
  // dma_width / dma_max_bits).
  unsigned dma_width = 32;
  unsigned dma_max_bits = 256 * 8;         ///< PLB: 256-byte DMA max (§2.3.2)
};

/// A complete device: target configuration + interface declarations + the
/// user-type table in effect.
struct DeviceSpec {
  TargetSpec target;
  std::vector<FunctionDecl> functions;
  TypeTable types;

  [[nodiscard]] const FunctionDecl* find_function(std::string_view name) const;
  [[nodiscard]] FunctionDecl* find_function(std::string_view name);
  /// Sum of instance counts across all functions.
  [[nodiscard]] std::uint32_t total_instances() const;
  /// Width of the FUNC_ID field: enough for every instance plus the
  /// reserved status identifier 0.
  [[nodiscard]] unsigned func_id_width() const;
  /// Assign FUNC_IDs in declaration order starting at 1 (0 is reserved).
  void assign_func_ids();
};

}  // namespace splice::ir
