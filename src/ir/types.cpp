#include "ir/types.hpp"

namespace splice::ir {

namespace {
CType builtin(std::string name, TypeKind kind, unsigned bits, bool sign) {
  CType t;
  t.name = std::move(name);
  t.kind = kind;
  t.bits = bits;
  t.is_signed = sign;
  t.user_defined = false;
  t.c_spelling = t.name;
  return t;
}
}  // namespace

TypeTable::TypeTable() {
  // Exactly the Figure 3.1 c_type production:
  //   int|short|char|bool|double|single|unsigned|void|float
  // "single" is the thesis' spelling for a 32-bit float; "unsigned" alone
  // means unsigned int (the K&R default-int rule).
  types_.push_back(builtin("int", TypeKind::Integer, 32, true));
  types_.push_back(builtin("short", TypeKind::Integer, 16, true));
  types_.push_back(builtin("char", TypeKind::Integer, 8, true));
  types_.push_back(builtin("bool", TypeKind::Boolean, 8, false));
  types_.push_back(builtin("double", TypeKind::Floating, 64, true));
  types_.push_back(builtin("single", TypeKind::Floating, 32, true));
  types_.push_back(builtin("unsigned", TypeKind::Integer, 32, false));
  types_.push_back(builtin("void", TypeKind::Void, 0, false));
  types_.push_back(builtin("float", TypeKind::Floating, 32, true));
}

std::optional<CType> TypeTable::find(std::string_view name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  return std::nullopt;
}

bool TypeTable::add_user_type(std::string name, std::string c_spelling,
                              unsigned bits, bool is_signed) {
  if (contains(name) || bits == 0 || bits > 1024) return false;
  CType t;
  t.name = std::move(name);
  t.kind = TypeKind::Integer;
  t.bits = bits;
  t.is_signed = is_signed;
  t.user_defined = true;
  t.c_spelling = std::move(c_spelling);
  types_.push_back(std::move(t));
  return true;
}

std::vector<CType> TypeTable::user_types() const {
  std::vector<CType> out;
  for (const auto& t : types_) {
    if (t.user_defined) out.push_back(t);
  }
  return out;
}

}  // namespace splice::ir
