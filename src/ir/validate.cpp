#include "ir/validate.hpp"

#include <algorithm>
#include <unordered_set>

namespace splice::ir {

bool BusCapabilities::width_allowed(unsigned w) const {
  return std::find(allowed_widths.begin(), allowed_widths.end(), w) !=
         allowed_widths.end();
}

namespace {

void validate_param(const FunctionDecl& fn, IoParam& p, bool is_return,
                    const TargetSpec& target, DiagnosticEngine& diags) {
  const std::string where =
      "'" + fn.name + "'" + (is_return ? " return value" : " parameter '" + p.name + "'");

  if (!is_return && p.type.is_void()) {
    diags.error(DiagId::VoidParameter, where + " has type void", p.loc);
    return;
  }

  // §3.1.2: "when pointer-type inputs and outputs are required, the user
  // must define how many items need to be transmitted".
  if (p.is_pointer && p.count_kind == CountKind::Scalar) {
    diags.error(DiagId::PointerWithoutBound,
                where + " is a pointer without an explicit or implicit bound",
                p.loc);
  }
  if (!p.is_pointer && p.count_kind != CountKind::Scalar) {
    // `int:5 x` — a bound on a non-pointer.  The grammar attaches counts to
    // pointers only; treat it as pointer shorthand with a warning.
    diags.warning(DiagId::PointerWithoutBound,
                  where + " has an element bound but no '*'; treating as a "
                          "pointer transfer",
                  p.loc);
    p.is_pointer = true;
  }
  if (p.count_kind == CountKind::Explicit && p.explicit_count == 0) {
    diags.error(DiagId::ZeroElementCount, where + " transfers zero elements",
                p.loc);
  }

  // §3.1.3: packing must be combined with an explicit or implicit pointer.
  if (p.packed && !p.is_array()) {
    diags.error(DiagId::PackingOnScalar,
                where + " uses '+' (packing) without an array bound", p.loc);
  }
  if (p.packed && target.bus_width != 0 && p.type.bits >= target.bus_width) {
    diags.warning(DiagId::PackingTooWide,
                  where + " requests packing but its element type (" +
                      std::to_string(p.type.bits) +
                      " bits) is not narrower than the bus (" +
                      std::to_string(target.bus_width) + " bits)",
                  p.loc);
  }

  // §3.1.5: DMA must be combined with an explicit or implicit pointer, and
  // %dma_support must be enabled.
  if (p.dma && !p.is_array()) {
    diags.error(DiagId::DmaOnScalar,
                where + " uses '^' (DMA) without an array bound", p.loc);
  }
  if (p.dma && !target.dma_support) {
    diags.error(DiagId::DmaNotEnabled,
                where + " requests DMA but %dma_support is not enabled",
                p.loc);
  }

  // §10.2 by-reference extension: '&' needs a bounded pointer and a
  // blocking declaration (the updated values are read back).
  if (p.by_reference && (!p.is_array() || is_return)) {
    diags.error(DiagId::ByRefNeedsPointer,
                where + " uses '&' (by reference) but is not a bounded "
                        "pointer input",
                p.loc);
  }
  if (p.by_reference && !fn.blocking()) {
    diags.error(DiagId::ByRefWithNowait,
                where + " uses '&' (by reference) on a nowait declaration; "
                        "there is no way to read the values back",
                p.loc);
  }

  // §3.3: implicit bounds must reference an *earlier* scalar input.
  if (p.count_kind == CountKind::Implicit) {
    const IoParam* idx = nullptr;
    for (const auto& candidate : fn.inputs) {
      if (&candidate == &p) break;  // only inputs transmitted before p
      if (candidate.name == p.index_var) {
        idx = &candidate;
        break;
      }
    }
    if (idx == nullptr) {
      // Distinguish "does not exist at all" from "declared later".
      if (!is_return && fn.find_input(p.index_var) != nullptr) {
        diags.error(DiagId::ImplicitIndexNotBefore,
                    where + " references index '" + p.index_var +
                        "' which is transmitted after it (§3.3 ordering rule)",
                    p.loc);
      } else if (is_return && fn.find_input(p.index_var) != nullptr) {
        // Returns are transferred last, so any input is a legal index.
        idx = fn.find_input(p.index_var);
      } else {
        diags.error(DiagId::ImplicitIndexUnknown,
                    where + " references unknown index '" + p.index_var + "'",
                    p.loc);
      }
    }
    if (idx != nullptr) {
      if (idx->is_array() || idx->type.kind == TypeKind::Floating) {
        diags.error(DiagId::ImplicitIndexNotScalar,
                    where + " index '" + p.index_var +
                        "' must be a scalar integer input",
                    p.loc);
      }
    }
  }
}

// §3.2.2: when %packing_support is on, packing "will only be implemented
// in cases where the size of the array entries ... is small in comparison
// to the width of the targeted bus" — infer the '+' flag for every
// eligible array transfer.
void infer_global_packing(FunctionDecl& fn, const TargetSpec& target) {
  if (!target.packing_support || target.bus_width == 0) return;
  auto infer = [&](IoParam& p) {
    if (p.is_array() && !p.dma && p.type.bits < target.bus_width) {
      p.packed = true;
    }
  };
  for (auto& p : fn.inputs) infer(p);
  if (fn.has_output()) infer(fn.output);
}

void mark_index_uses(FunctionDecl& fn) {
  auto mark = [&](const IoParam& user) {
    if (user.count_kind != CountKind::Implicit) return;
    for (auto& candidate : fn.inputs) {
      if (candidate.name == user.index_var) candidate.used_as_index = true;
    }
  };
  for (const auto& p : fn.inputs) mark(p);
  if (fn.has_output()) mark(fn.output);
}

}  // namespace

bool validate(DeviceSpec& spec, DiagnosticEngine& diags,
              const BusCapabilities* caps, const ValidationOptions& opts) {
  const std::size_t errors_before = diags.error_count();
  TargetSpec& target = spec.target;

  if (opts.require_target_directives) {
    if (target.device_name.empty()) {
      diags.error(DiagId::MissingDeviceName,
                  "%device_name directive is required (§3.2.3)");
    }
    if (target.bus_type.empty()) {
      diags.error(DiagId::MissingBusType,
                  "%bus_type directive is required (§3.2.1)");
    }
    if (target.bus_width == 0) {
      diags.error(DiagId::MissingBusWidth,
                  "%bus_width directive is required (§3.2.1)");
    }
  }

  // Function-level rules.
  std::unordered_set<std::string> fn_names;
  for (auto& fn : spec.functions) {
    if (!fn_names.insert(fn.name).second) {
      diags.error(DiagId::DuplicateFunctionName,
                  "duplicate interface declaration '" + fn.name + "'", fn.loc);
    }
    if (fn.instances == 0) {
      diags.error(DiagId::ZeroInstanceCount,
                  "'" + fn.name + "' requests zero instances", fn.loc);
    }
    // A nowait declaration with no inputs can never be enacted: the driver
    // writes nothing to start the calculation and, being non-blocking,
    // never reads anything back either — the stub would sit on a bus it
    // never samples.  (A blocking void() is fine: the status read *is* the
    // transaction.)
    if (!fn.blocking() && fn.inputs.empty()) {
      diags.error(DiagId::NowaitWithoutInputs,
                  "'" + fn.name +
                      "' is nowait but takes no inputs; the hardware could "
                      "never be enacted (§3.1.2)",
                  fn.loc);
    }
    std::unordered_set<std::string> param_names;
    for (auto& p : fn.inputs) {
      if (!param_names.insert(p.name).second) {
        diags.error(DiagId::DuplicateParamName,
                    "'" + fn.name + "' declares parameter '" + p.name +
                        "' more than once",
                    p.loc);
      }
      validate_param(fn, p, /*is_return=*/false, target, diags);
    }
    if (fn.has_output()) {
      validate_param(fn, fn.output, /*is_return=*/true, target, diags);
    }
    infer_global_packing(fn, target);
    mark_index_uses(fn);
  }

  // Bus-capability rules (the chapter-7 "parameter checking routine").
  if (caps != nullptr) {
    if (target.bus_width != 0 && !caps->width_allowed(target.bus_width)) {
      std::string widths;
      for (unsigned w : caps->allowed_widths) {
        if (!widths.empty()) widths += "/";
        widths += std::to_string(w);
      }
      diags.error(DiagId::UnsupportedBusWidth,
                  "bus '" + caps->name + "' supports widths " + widths +
                      " but %bus_width is " + std::to_string(target.bus_width));
    }
    if (caps->memory_mapped && !target.base_address.has_value()) {
      diags.error(DiagId::MissingBaseAddress,
                  "bus '" + caps->name +
                      "' is memory mapped; %base_address is required (§3.2.1)");
    }
    if (!caps->memory_mapped && target.base_address.has_value()) {
      diags.warning(DiagId::BaseAddressIgnored,
                    "bus '" + caps->name +
                        "' is not memory mapped; %base_address is ignored");
    }
    if (target.dma_support && !caps->supports_dma) {
      diags.error(DiagId::DmaNotSupportedByBus,
                  "%dma_support requested but bus '" + caps->name +
                      "' has no DMA capability (§3.2.2)");
    }
    if (target.burst_support && !caps->supports_burst) {
      diags.error(DiagId::BurstNotSupportedByBus,
                  "%burst_support requested but bus '" + caps->name +
                      "' has no burst capability (§3.2.2)");
    }
    if (target.irq_support && !caps->supports_irq) {
      diags.error(DiagId::IrqNotSupportedByBus,
                  "%irq_support requested but bus '" + caps->name +
                      "' has no interrupt line (§10.2)");
    }
    if (spec.func_id_width() > caps->max_func_id_width) {
      diags.error(DiagId::FuncIdSpaceExhausted,
                  "device declares " + std::to_string(spec.total_instances()) +
                      " function instances which exceeds the FUNC_ID space of "
                      "bus '" + caps->name + "'");
    }
  }

  const bool ok = diags.error_count() == errors_before;
  if (ok) spec.assign_func_ids();
  return ok;
}

}  // namespace splice::ir
