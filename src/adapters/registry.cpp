#include "adapters/registry.hpp"

namespace splice::adapters {

AdapterRegistry& AdapterRegistry::instance() {
  static AdapterRegistry registry = [] {
    AdapterRegistry r;
    r.add(make_plb_adapter());
    r.add(make_opb_adapter());
    r.add(make_fcb_adapter());
    r.add(make_apb_adapter());
    r.add(make_ahb_adapter());
    return r;
  }();
  return registry;
}

bool AdapterRegistry::add(std::unique_ptr<BusAdapter> adapter) {
  if (adapter == nullptr || find(adapter->name()) != nullptr) return false;
  adapters_.push_back(std::move(adapter));
  return true;
}

bool AdapterRegistry::remove(const std::string& name) {
  for (auto it = adapters_.begin(); it != adapters_.end(); ++it) {
    if ((*it)->name() == name) {
      adapters_.erase(it);
      return true;
    }
  }
  return false;
}

const BusAdapter* AdapterRegistry::find(const std::string& name) const {
  for (const auto& a : adapters_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

std::vector<std::string> AdapterRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(adapters_.size());
  for (const auto& a : adapters_) out.push_back(a->name());
  return out;
}

}  // namespace splice::adapters
