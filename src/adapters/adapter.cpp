#include "adapters/adapter.hpp"

namespace splice::adapters {

bool BusAdapter::check_parameters(ir::DeviceSpec& spec,
                                  DiagnosticEngine& diags) const {
  const ir::BusCapabilities caps = capabilities();
  return ir::validate(spec, diags, &caps);
}

std::string BusAdapter::macro_library(const ir::DeviceSpec& spec,
                                      drivergen::DriverOs os) const {
  return drivergen::emit_macro_library(spec, os);
}

std::string library_filename(const std::string& bus_name) {
  return "lib" + bus_name + "_interface.so";
}

}  // namespace splice::adapters
