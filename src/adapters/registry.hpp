// Adapter registry: the simulation-environment stand-in for the dynamic
// library loading of thesis §7.2.  Built-in adapters self-register;
// user-defined adapters register at runtime under the same naming rule
// used for lib<x>_interface.so.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adapters/adapter.hpp"

namespace splice::adapters {

class AdapterRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in adapters
  /// (plb, opb, fcb, apb, ahb).
  static AdapterRegistry& instance();

  /// Register an adapter; returns false when the name is already taken.
  bool add(std::unique_ptr<BusAdapter> adapter);
  /// Remove a (user-registered) adapter; built-ins can be removed too,
  /// which tests use to simulate a missing interface library.
  bool remove(const std::string& name);

  [[nodiscard]] const BusAdapter* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<BusAdapter>> adapters_;
};

// Built-in adapter factories (exposed so tests can build isolated copies).
[[nodiscard]] std::unique_ptr<BusAdapter> make_plb_adapter();
[[nodiscard]] std::unique_ptr<BusAdapter> make_opb_adapter();
[[nodiscard]] std::unique_ptr<BusAdapter> make_fcb_adapter();
[[nodiscard]] std::unique_ptr<BusAdapter> make_apb_adapter();
[[nodiscard]] std::unique_ptr<BusAdapter> make_ahb_adapter();

}  // namespace splice::adapters
