// The bus-extension API (thesis chapter 7).  A BusAdapter supplies the
// three routines every external interface library must define (§7.1.2):
//   * a parameter checking routine,
//   * a marker loader registering bus-specific %MACRO% handlers,
//   * a bus interface generator driving the HDL template parser,
// plus the driver-side macro library (§7.1.3).  Built-in adapters cover
// the PLB, OPB, FCB and APB of the thesis and the AHB of its future-work
// list; user code can register additional adapters (§7.2).
#pragma once

#include <string>
#include <vector>

#include "codegen/hwgen.hpp"
#include "codegen/template.hpp"
#include "drivergen/maclib.hpp"
#include "ir/validate.hpp"
#include "support/diagnostics.hpp"

namespace splice::adapters {

class BusAdapter {
 public:
  virtual ~BusAdapter() = default;

  /// Canonical lowercase bus name ('x' in lib<x>_interface.so, §7.2).
  [[nodiscard]] virtual std::string name() const = 0;

  /// What the native interface can physically do (drives validation).
  [[nodiscard]] virtual ir::BusCapabilities capabilities() const = 0;

  /// Parameter checking routine (§7.1.2): parse the shared configuration
  /// and reject feature requests the bus cannot honour.  The default runs
  /// ir::validate against capabilities(); adapters may extend it.
  virtual bool check_parameters(ir::DeviceSpec& spec,
                                DiagnosticEngine& diags) const;

  /// Marker loader routine (§7.1.2): register bus-specific macros used by
  /// this adapter's templates.  The standard Figure 7.1 set is already
  /// present on the engine.
  virtual void load_markers(codegen::TemplateEngine& engine) const {
    (void)engine;
  }

  /// Bus interface generator routine (§7.1.2): expand this adapter's
  /// annotated HDL template(s) into the native interface file(s).  May
  /// produce several files for complex interconnects.
  [[nodiscard]] virtual std::vector<codegen::GeneratedFile>
  generate_interface(const ir::DeviceSpec& spec,
                     const codegen::TemplateEngine& engine,
                     DiagnosticEngine& diags) const = 0;

  /// Driver-side splice_lib.h for this bus (§7.1.3).
  [[nodiscard]] virtual std::string macro_library(
      const ir::DeviceSpec& spec,
      drivergen::DriverOs os = drivergen::DriverOs::BareMetal) const;
};

/// The dynamic-library naming rule of §7.2: "lib[x]_interface.so".
[[nodiscard]] std::string library_filename(const std::string& bus_name);

}  // namespace splice::adapters
