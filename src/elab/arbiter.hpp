// Executable semantics of the generated arbitration unit (thesis §5.2):
// multiplexes the per-function DATA_OUT / DATA_OUT_VALID / IO_DONE lines
// onto the shared SIS bundle by FUNC_ID, and concatenates every instance's
// CALC_DONE bit into the status vector read through function id 0.
#pragma once

#include <vector>

#include "elab/icob.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class Arbiter : public rtl::Module {
 public:
  Arbiter(sis::SisBus& sis, std::vector<IcobStub*> stubs)
      : rtl::Module("user_arbiter"), sis_(sis), stubs_(std::move(stubs)) {
    // Sensitivity set == the mux inputs: the select (FUNC_ID) plus every
    // per-function line this module multiplexes.
    watch(sis_.func_id);
    for (IcobStub* stub : stubs_) {
      watch_all(stub->ports().data_out, stub->ports().data_out_valid,
                stub->ports().io_done, stub->ports().calc_done);
    }
    clocked_none();  // pure combinational mux: no clocked process
  }

  void eval_comb() override;
  bool lower_comb(rtl::compile::CombBuilder& cb) override;

  [[nodiscard]] const std::vector<IcobStub*>& stubs() const { return stubs_; }

  /// %irq_support (§10.2): drive `line` high whenever any instance's
  /// CALC_DONE is raised — the interrupt request toward the CPU.
  void attach_irq(rtl::Signal& line) {
    irq_ = &line;
    invalidate_compile();  // the lowered mux gains an output
  }

 private:
  sis::SisBus& sis_;
  std::vector<IcobStub*> stubs_;
  rtl::Signal* irq_ = nullptr;
};

}  // namespace splice::elab
