// PLB -> SIS native interface adapter (thesis §4.3, Figures 4.7/4.8).
//
// The adaptation is mostly direct signal translation:
//   RD_REQ/WR_REQ -> IO_ENABLE        (request strobes)
//   one-hot RD_CE/WR_CE -> FUNC_ID    (binary encode, §4.3.2)
//   WR_DATA -> DATA_IN,  WR_CE != 0 -> DATA_IN_VALID
//   IO_DONE -> WR_ACK,   DATA_OUT/DATA_OUT_VALID -> RD_DATA/RD_ACK
// plus a small registered unit that serves status reads of the reserved
// function id 0 from the CALC_DONE vector (§4.2.2).
#pragma once

#include "bus/plb.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class PlbSisAdapter : public rtl::Module {
 public:
  PlbSisAdapter(bus::PlbPins& pins, sis::SisBus& sis)
      : rtl::Module("plb_interface"), pins_(pins), sis_(sis) {
    watch_all(pins_.rst, pins_.rd_req, pins_.wr_req, pins_.rd_ce,
              pins_.wr_ce, pins_.wr_data, sis_.io_done, sis_.calc_done,
              sis_.data_out, sis_.data_out_valid);
    // clock_edge() only tracks the status ack registers, pure functions of
    // the request strobes and CE vectors; a change on one of those is the
    // only reason to run it.
    watch_clocked_all(pins_.rd_req, pins_.rd_ce, pins_.wr_req, pins_.wr_ce);
  }

  void eval_comb() override;
  bool lower_comb(rtl::compile::CombBuilder& cb) override;
  void clock_edge() override;
  void reset() override;

 private:
  bus::PlbPins& pins_;
  sis::SisBus& sis_;
  bool status_ack_ = false;  ///< serve the FUNC_ID-0 status read this cycle
  bool status_wr_ack_ = false;  ///< ack the FUNC_ID-0 status write this cycle
};

}  // namespace splice::elab
