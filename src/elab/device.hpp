// Elaboration of a validated DeviceSpec into live simulator modules: one
// IcobStub per function instance plus the arbitration unit, all speaking
// SIS.  This is the executable twin of the HDL files the code generator
// writes (Figure 5.1's "Generated Bus Arbiter" + "User-Defined Hardware
// Function" boxes); a native adapter module (plb_adapter.hpp etc.) supplies
// the "Generated Bus Interface" box.
#pragma once

#include <string>
#include <vector>

#include "elab/arbiter.hpp"
#include "elab/behavior.hpp"
#include "elab/icob.hpp"
#include "ir/device.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class ElaboratedDevice {
 public:
  /// `spec` must have FUNC_IDs assigned (ir::validate does this).
  ElaboratedDevice(rtl::Simulator& sim, const ir::DeviceSpec& spec,
                   const BehaviorMap& behaviors,
                   const std::string& prefix = "SIS_");

  [[nodiscard]] sis::SisBus& sis() { return sis_; }
  [[nodiscard]] const sis::SisBus& sis() const { return sis_; }
  [[nodiscard]] const std::vector<IcobStub*>& stubs() const { return stubs_; }

  /// Find the stub for `function_name` instance `instance` (§3.1.6).
  [[nodiscard]] IcobStub* stub(const std::string& function_name,
                               std::uint32_t instance = 0) const;
  /// FUNC_ID of a function instance; throws when unknown.
  [[nodiscard]] std::uint32_t func_id(const std::string& function_name,
                                      std::uint32_t instance = 0) const;

  /// The generated arbitration unit (for IRQ attachment, §10.2).
  [[nodiscard]] Arbiter& arbiter() { return *arbiter_; }

 private:
  sis::SisBus sis_;
  std::vector<IcobStub*> stubs_;  // owned by the simulator
  Arbiter* arbiter_ = nullptr;    // owned by the simulator
};

}  // namespace splice::elab
