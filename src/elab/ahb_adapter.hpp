// AHB -> SIS native interface adapter (first item of the thesis' §10.2
// future-work list, implemented here).
//
// AHB pipelines address and data phases; the adapter latches each accepted
// address phase and then stretches the matching data phase with HREADY
// until the SIS handshake for that word completes.  Status reads of the
// reserved function id 0 answer from the CALC_DONE vector with no wait
// states.
#pragma once

#include "bus/ahb.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class AhbSisAdapter : public rtl::Module {
 public:
  AhbSisAdapter(bus::AhbPins& pins, sis::SisBus& sis)
      : rtl::Module("ahb_interface"), pins_(pins), sis_(sis) {
    // eval_comb additionally reads the data/strobe phase registers; the
    // clock_edge marks the module dirty whenever those move.
    watch_all(pins_.rst, pins_.hwdata, sis_.calc_done);
    // A new address phase is announced by HTRANS/HWRITE/HADDR moving; an
    // open transfer keeps the module busy (set_clock_busy) until it closes.
    watch_clocked_all(pins_.rst, pins_.htrans, pins_.hwrite, pins_.haddr);
  }

  void eval_comb() override;
  bool lower_comb(rtl::compile::CombBuilder& cb) override;
  void clock_edge() override;
  void reset() override;

 private:
  void edge_impl();

  bus::AhbPins& pins_;
  sis::SisBus& sis_;

  bool data_phase_ = false;   ///< a latched transfer is in its data phase
  bool dp_write_ = false;
  std::uint64_t dp_fid_ = 0;
  bool strobe_ = false;       ///< issue the SIS request this cycle
  bool done_ = false;         ///< drive HREADY high to close the data phase
  std::uint64_t rd_value_ = 0;
};

}  // namespace splice::elab
