#include "elab/device.hpp"

namespace splice::elab {

namespace {
unsigned calc_vector_width(const ir::DeviceSpec& spec) {
  // Bit position == FUNC_ID; id 0 is the status register itself, so the
  // vector spans ids 1 .. total_instances.
  return spec.total_instances() + 1;
}
}  // namespace

ElaboratedDevice::ElaboratedDevice(rtl::Simulator& sim,
                                   const ir::DeviceSpec& spec,
                                   const BehaviorMap& behaviors,
                                   const std::string& prefix)
    : sis_(sis::SisBus::create(sim, prefix, spec.target.bus_width,
                               spec.func_id_width(),
                               calc_vector_width(spec))) {
  for (const auto& fn : spec.functions) {
    if (fn.func_id == 0) {
      throw SpliceError("function '" + fn.name +
                        "' has no FUNC_ID; run ir::validate first");
    }
    BehaviorFn behavior = behaviors.find_or_default(fn.name);
    for (std::uint32_t inst = 0; inst < fn.instances; ++inst) {
      auto& stub = sim.add<IcobStub>(sim, fn, fn.func_id + inst, inst,
                                     spec.target, sis_, behavior, prefix);
      stubs_.push_back(&stub);
    }
  }
  arbiter_ = &sim.add<Arbiter>(sis_, stubs_);
}

IcobStub* ElaboratedDevice::stub(const std::string& function_name,
                                 std::uint32_t instance) const {
  std::uint32_t seen = 0;
  for (IcobStub* s : stubs_) {
    if (s->function_name() == function_name) {
      if (seen == instance) return s;
      ++seen;
    }
  }
  return nullptr;
}

std::uint32_t ElaboratedDevice::func_id(const std::string& function_name,
                                        std::uint32_t instance) const {
  IcobStub* s = stub(function_name, instance);
  if (s == nullptr) {
    throw SpliceError("unknown function instance '" + function_name + "'[" +
                      std::to_string(instance) + "]");
  }
  return s->func_id();
}

}  // namespace splice::elab
