// FCB -> SIS native interface adapter (thesis §2.3.2 / §9.2.1 "Splice
// FCB" interface).
//
// The FCB presents multi-beat operations; the SIS is word-granular, so the
// adapter unrolls every burst into chained SIS transfers — which is the
// structural reason the generated FCB interface trails the hand-optimized
// one by a small margin (§9.3.1: ~13%): each beat pays the SIS per-word
// handshake where the optimized device streams a beat per cycle.
#pragma once

#include "bus/fcb.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class FcbSisAdapter : public rtl::Module {
 public:
  FcbSisAdapter(bus::FcbPins& pins, sis::SisBus& sis)
      : rtl::Module("fcb_interface"), pins_(pins), sis_(sis) {
    // eval_comb additionally reads the operation-state registers; the
    // clock_edge marks the module dirty whenever those move.
    watch_all(pins_.rst, pins_.wr_data, pins_.wr_valid, sis_.io_done,
              sis_.calc_done, sis_.data_out, sis_.data_out_valid);
    // OP_VALID opens an operation; while one is active (or a strobe is
    // pending) the module reports itself busy from clock_edge().
    watch_clocked_all(pins_.rst, pins_.op_valid);
  }

  void eval_comb() override;
  bool lower_comb(rtl::compile::CombBuilder& cb) override;
  void clock_edge() override;
  void reset() override;

 private:
  void edge_impl();

  bus::FcbPins& pins_;
  sis::SisBus& sis_;

  bool op_active_ = false;
  bool op_read_ = false;
  std::uint64_t op_fid_ = 0;
  unsigned beats_left_ = 0;
  bool beat_open_ = false;   ///< SIS transfer for the current beat in flight
  bool read_strobe_ = false; ///< issue an SIS read request this cycle
  bool status_valid_ = false;
};

}  // namespace splice::elab
