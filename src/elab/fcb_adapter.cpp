#include "elab/fcb_adapter.hpp"

#include <tuple>

#include "rtl/compile/lowering.hpp"

namespace splice::elab {

void FcbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());
  sis_.func_id.drive(op_active_ ? op_fid_ : 0);
  sis_.data_in.drive(pins_.wr_data.get());

  const bool write_beat = op_active_ && !op_read_ && pins_.wr_valid.high();
  // A fresh IO_ENABLE strobe opens each beat: for writes the first cycle a
  // beat is presented, for reads an explicit request strobe.  Status beats
  // never reach the user logic: reads answer from CALC_DONE, writes strobe
  // the STATUS_CLEAR acknowledge mask.
  const bool is_status = op_fid_ == sis::kStatusFuncId;
  sis_.data_in_valid.drive(write_beat && !is_status);
  sis_.io_enable.drive(((write_beat && !beat_open_) || read_strobe_) &&
                       !is_status);
  sis_.status_clear.drive(write_beat && is_status ? pins_.wr_data.get()
                                                  : std::uint64_t{0});

  // Beat acknowledgement back to the FCB master (status writes ack in the
  // presenting cycle; they carry no SIS handshake).
  pins_.beat_ack.drive((sis_.io_done.high() || is_status) && write_beat);

  if (op_active_ && op_read_ && is_status) {
    pins_.rd_data.drive(sis_.calc_done.get());
    pins_.rd_valid.drive(status_valid_);
  } else {
    pins_.rd_data.drive(sis_.data_out.get());
    pins_.rd_valid.drive(op_active_ && op_read_ &&
                         sis_.data_out_valid.high());
  }
}

bool FcbSisAdapter::lower_comb(rtl::compile::CombBuilder& cb) {
  {
    auto& u = cb.unit("in");
    u.out(sis_.rst, u.in(pins_.rst));
    const auto op_active = u.load(&op_active_);
    const auto op_read = u.load(&op_read_);
    const auto op_fid = u.load(&op_fid_);
    u.out(sis_.func_id, u.mux(op_active, op_fid, u.imm(std::uint64_t{0})));
    u.out(sis_.data_in, u.in(pins_.wr_data));
    const auto write_beat = u.band(u.band(op_active, u.lnot(op_read)),
                                   u.in(pins_.wr_valid));
    const auto is_status =
        u.eq(op_fid, u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(sis_.data_in_valid, u.band(write_beat, u.lnot(is_status)));
    const auto strobe = u.bor(u.band(write_beat, u.lnot(u.load(&beat_open_))),
                              u.load(&read_strobe_));
    u.out(sis_.io_enable, u.band(strobe, u.lnot(is_status)));
    u.out(sis_.status_clear,
          u.mux(u.band(write_beat, is_status), u.in(pins_.wr_data),
                u.imm(std::uint64_t{0})));
  }
  {
    auto& u = cb.unit("out");
    const auto op_active = u.load(&op_active_);
    const auto op_read = u.load(&op_read_);
    const auto op_fid = u.load(&op_fid_);
    const auto write_beat = u.band(u.band(op_active, u.lnot(op_read)),
                                   u.in(pins_.wr_valid));
    const auto is_status =
        u.eq(op_fid, u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(pins_.beat_ack,
          u.band(u.bor(u.in(sis_.io_done), is_status), write_beat));
    const auto status_path = u.band(u.band(op_active, op_read), is_status);
    u.out(pins_.rd_data, u.mux(status_path, u.in(sis_.calc_done),
                               u.in(sis_.data_out)));
    const auto data_valid =
        u.band(u.band(op_active, op_read), u.in(sis_.data_out_valid));
    u.out(pins_.rd_valid,
          u.mux(status_path, u.load(&status_valid_), data_valid));
  }
  return true;
}

void FcbSisAdapter::clock_edge() {
  const auto before = std::make_tuple(op_active_, op_read_, op_fid_,
                                      beats_left_, beat_open_, read_strobe_,
                                      status_valid_);
  edge_impl();
  if (before != std::make_tuple(op_active_, op_read_, op_fid_, beats_left_,
                                beat_open_, read_strobe_, status_valid_)) {
    mark_dirty();  // eval_comb reads these operation-state registers
  }
  // An active operation samples WR_VALID and the SIS response lines every
  // edge; the strobe/valid registers self-clear one edge later.
  set_clock_busy(op_active_ || read_strobe_ || status_valid_);
}

void FcbSisAdapter::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  read_strobe_ = false;
  status_valid_ = false;

  if (!op_active_) {
    if (pins_.op_valid.high()) {
      op_active_ = true;
      op_read_ = pins_.op_read.high();
      op_fid_ = pins_.op_func.get();
      beats_left_ = static_cast<unsigned>(pins_.op_beats.get());
      beat_open_ = false;
      if (op_read_) {
        if (op_fid_ == sis::kStatusFuncId) status_valid_ = true;
        else read_strobe_ = true;
      }
    }
    return;
  }

  if (!op_read_) {
    if (op_fid_ == sis::kStatusFuncId) {
      // Status writes never open an SIS transfer: each presented word is a
      // STATUS_CLEAR mask, acknowledged combinationally in its own cycle.
      if (pins_.wr_valid.high() && --beats_left_ == 0) op_active_ = false;
      return;
    }
    // Writes: a beat is open once its strobe fired; it closes when the
    // user logic raises IO_DONE (mirrored to BEAT_ACK combinationally).
    if (pins_.wr_valid.high() && !beat_open_) {
      beat_open_ = true;
    } else if (beat_open_ && sis_.io_done.high()) {
      beat_open_ = false;
      if (--beats_left_ == 0) op_active_ = false;
    }
  } else if (op_fid_ == sis::kStatusFuncId) {
    // Status reads answered directly from the CALC_DONE register.
    if (--beats_left_ == 0) op_active_ = false;
    else status_valid_ = true;
  } else {
    if (sis_.data_out_valid.high()) {
      if (--beats_left_ == 0) op_active_ = false;
      else read_strobe_ = true;  // request the next beat
    }
  }
}

void FcbSisAdapter::reset() {
  op_active_ = false;
  op_read_ = false;
  op_fid_ = 0;
  beats_left_ = 0;
  beat_open_ = false;
  read_strobe_ = false;
  status_valid_ = false;
}

}  // namespace splice::elab
