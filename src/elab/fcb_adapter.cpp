#include "elab/fcb_adapter.hpp"

#include <tuple>

namespace splice::elab {

void FcbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());
  sis_.func_id.drive(op_active_ ? op_fid_ : 0);
  sis_.data_in.drive(pins_.wr_data.get());

  const bool write_beat = op_active_ && !op_read_ && pins_.wr_valid.high();
  sis_.data_in_valid.drive(write_beat);
  // A fresh IO_ENABLE strobe opens each beat: for writes the first cycle a
  // beat is presented, for reads an explicit request strobe.
  const bool is_status = op_fid_ == sis::kStatusFuncId;
  sis_.io_enable.drive(((write_beat && !beat_open_) || read_strobe_) &&
                       !is_status);

  // Beat acknowledgement back to the FCB master.
  pins_.beat_ack.drive(sis_.io_done.high() && write_beat);

  if (op_active_ && op_read_ && is_status) {
    pins_.rd_data.drive(sis_.calc_done.get());
    pins_.rd_valid.drive(status_valid_);
  } else {
    pins_.rd_data.drive(sis_.data_out.get());
    pins_.rd_valid.drive(op_active_ && op_read_ &&
                         sis_.data_out_valid.high());
  }
}

void FcbSisAdapter::clock_edge() {
  const auto before = std::make_tuple(op_active_, op_read_, op_fid_,
                                      beats_left_, beat_open_, read_strobe_,
                                      status_valid_);
  edge_impl();
  if (before != std::make_tuple(op_active_, op_read_, op_fid_, beats_left_,
                                beat_open_, read_strobe_, status_valid_)) {
    mark_dirty();  // eval_comb reads these operation-state registers
  }
}

void FcbSisAdapter::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  read_strobe_ = false;
  status_valid_ = false;

  if (!op_active_) {
    if (pins_.op_valid.high()) {
      op_active_ = true;
      op_read_ = pins_.op_read.high();
      op_fid_ = pins_.op_func.get();
      beats_left_ = static_cast<unsigned>(pins_.op_beats.get());
      beat_open_ = false;
      if (op_read_) {
        if (op_fid_ == sis::kStatusFuncId) status_valid_ = true;
        else read_strobe_ = true;
      }
    }
    return;
  }

  if (!op_read_) {
    // Writes: a beat is open once its strobe fired; it closes when the
    // user logic raises IO_DONE (mirrored to BEAT_ACK combinationally).
    if (pins_.wr_valid.high() && !beat_open_) {
      beat_open_ = true;
    } else if (beat_open_ && sis_.io_done.high()) {
      beat_open_ = false;
      if (--beats_left_ == 0) op_active_ = false;
    }
  } else if (op_fid_ == sis::kStatusFuncId) {
    // Status reads answered directly from the CALC_DONE register.
    if (--beats_left_ == 0) op_active_ = false;
    else status_valid_ = true;
  } else {
    if (sis_.data_out_valid.high()) {
      if (--beats_left_ == 0) op_active_ = false;
      else read_strobe_ = true;  // request the next beat
    }
  }
}

void FcbSisAdapter::reset() {
  op_active_ = false;
  op_read_ = false;
  op_fid_ = 0;
  beats_left_ = 0;
  beat_open_ = false;
  read_strobe_ = false;
  status_valid_ = false;
}

}  // namespace splice::elab
