#include "elab/arbiter.hpp"

#include "rtl/compile/lowering.hpp"

namespace splice::elab {

void Arbiter::eval_comb() {
  const std::uint64_t fid = sis_.func_id.get();

  IcobStub* selected = nullptr;
  std::uint64_t calc_vector = 0;
  for (IcobStub* stub : stubs_) {
    if (stub->func_id() == fid) selected = stub;
    // CALC_DONE concatenation: bit position == function identifier.
    if (stub->ports().calc_done.high()) {
      calc_vector |= std::uint64_t{1} << stub->func_id();
    }
  }
  sis_.calc_done.drive(calc_vector);
  if (irq_ != nullptr) irq_->drive(calc_vector != 0);

  if (selected != nullptr) {
    auto& ports = selected->ports();
    sis_.data_out.drive(ports.data_out.get());
    sis_.data_out_valid.drive(ports.data_out_valid.get() != 0);
    sis_.io_done.drive(ports.io_done.get() != 0);
  } else {
    sis_.data_out.drive(std::uint64_t{0});
    sis_.data_out_valid.drive(false);
    sis_.io_done.drive(false);
  }
}

bool Arbiter::lower_comb(rtl::compile::CombBuilder& cb) {
  auto& u = cb.unit("mux");
  std::vector<std::pair<rtl::Signal*, unsigned>> done_bits;
  std::vector<std::pair<std::uint64_t, rtl::Signal*>> data_cases;
  std::vector<std::pair<std::uint64_t, rtl::Signal*>> valid_cases;
  std::vector<std::pair<std::uint64_t, rtl::Signal*>> io_cases;
  for (IcobStub* stub : stubs_) {
    done_bits.emplace_back(&stub->ports().calc_done, stub->func_id());
    data_cases.emplace_back(stub->func_id(), &stub->ports().data_out);
    valid_cases.emplace_back(stub->func_id(), &stub->ports().data_out_valid);
    io_cases.emplace_back(stub->func_id(), &stub->ports().io_done);
  }
  const auto calc = u.gather_bits(done_bits);
  u.out(sis_.calc_done, calc);
  if (irq_ != nullptr) u.out(*irq_, u.nonzero(calc));
  const auto fid = u.in(sis_.func_id);
  const auto zero = u.imm(std::uint64_t{0});
  // select() keeps the last matching case, mirroring the loop above.
  u.out(sis_.data_out, u.select(fid, data_cases, zero));
  u.out(sis_.data_out_valid, u.nonzero(u.select(fid, valid_cases, zero)));
  u.out(sis_.io_done, u.nonzero(u.select(fid, io_cases, zero)));
  return true;
}

}  // namespace splice::elab
