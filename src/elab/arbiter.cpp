#include "elab/arbiter.hpp"

namespace splice::elab {

void Arbiter::eval_comb() {
  const std::uint64_t fid = sis_.func_id.get();

  IcobStub* selected = nullptr;
  std::uint64_t calc_vector = 0;
  for (IcobStub* stub : stubs_) {
    if (stub->func_id() == fid) selected = stub;
    // CALC_DONE concatenation: bit position == function identifier.
    if (stub->ports().calc_done.high()) {
      calc_vector |= std::uint64_t{1} << stub->func_id();
    }
  }
  sis_.calc_done.drive(calc_vector);
  if (irq_ != nullptr) irq_->drive(calc_vector != 0);

  if (selected != nullptr) {
    auto& ports = selected->ports();
    sis_.data_out.drive(ports.data_out.get());
    sis_.data_out_valid.drive(ports.data_out_valid.get() != 0);
    sis_.io_done.drive(ports.io_done.get() != 0);
  } else {
    sis_.data_out.drive(std::uint64_t{0});
    sis_.data_out_valid.drive(false);
    sis_.io_done.drive(false);
  }
}

}  // namespace splice::elab
