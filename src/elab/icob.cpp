#include "elab/icob.hpp"

#include <algorithm>

#include "drivergen/wordcodec.hpp"
#include "support/bits.hpp"

namespace splice::elab {

IcobStub::IcobStub(rtl::Simulator& sim, const ir::FunctionDecl& fn,
                   std::uint32_t func_id, std::uint32_t instance_index,
                   const ir::TargetSpec& target, const sis::SisBus& sis,
                   BehaviorFn behavior, const std::string& name_prefix)
    : rtl::Module(name_prefix + "func_" + fn.name + "_" +
                  std::to_string(instance_index)),
      fn_(fn),
      byref_params_(fn.by_ref_params()),
      target_(target),
      func_id_(func_id),
      instance_index_(instance_index),
      sis_(sis),
      behavior_(std::move(behavior)),
      ports_{
          sim.signal(name() + ".DATA_OUT", sis.data_width),
          sim.signal(name() + ".DATA_OUT_VALID", 1),
          sim.signal(name() + ".IO_DONE", 1),
          sim.signal(name() + ".CALC_DONE", 1),
      } {
  watch_none();  // clocked-only: the SMB advances on the edge (§5.3.2)
  // The SMB reacts to requests on the broadcast SIS lines, and every
  // request requires IO_ENABLE high: a rising strobe is a change event,
  // and while it stays high the busy flag below keeps the stub clocking —
  // so FUNC_ID / DATA_IN / DATA_IN_VALID need no triggers of their own
  // (they only matter on cycles IO_ENABLE already covers).  Held-over
  // pulse/advance state and an active calculation are busy conditions too.
  // A status-clear acknowledge arrives without an IO_ENABLE strobe, so the
  // clear mask is its own trigger.
  watch_clocked_all(sis.rst, sis.io_enable, sis.status_clear);
  start_over();
}

unsigned IcobStub::state_count() const {
  // One input-handling state per parameter, at least one calculation state,
  // one output state per '&' by-reference parameter (§10.2), and an output
  // (or pseudo-output) state for blocking declarations (§5.3.1); nowait
  // functions have no output states.
  unsigned states = static_cast<unsigned>(fn_.inputs.size()) + 1;
  if (fn_.blocking()) {
    states += 1 + static_cast<unsigned>(byref_params_.size());
  }
  return states;
}

void IcobStub::start_over() {
  phase_ = Phase::Input;
  input_idx_ = 0;
  elements_.assign(fn_.inputs.size(), {});
  split_acc_ = 0;
  split_words_ = 0;
  out_words_.clear();
  out_idx_ = 0;
  ports_.calc_done.set(false);
  ports_.data_out.set(std::uint64_t{0});
  // Zero-input functions sit armed in their output state:
  //  * value returns compute eagerly (so strictly synchronous reads see
  //    data) and re-compute at each read (see serve_read) so clocked
  //    cores like the §8.3 timer stay current;
  //  * blocking void declarations are *commands* (enable/disable) whose
  //    behaviour runs exactly once, at the synchronizing read.
  if (fn_.inputs.empty()) {
    if (fn_.has_output()) {
      CallContext ctx;
      ctx.instance_index = instance_index_;
      CalcResult r = behavior_(ctx);
      pending_elements_ = std::move(r.outputs);
    } else {
      pending_elements_.clear();
    }
    build_output_words();
    phase_ = Phase::Output;
    ports_.calc_done.set(true);
    ports_.data_out.set(out_words_.empty() ? 0 : out_words_[0]);
  }
}

std::uint64_t IcobStub::expected_elements(std::size_t input_idx) const {
  const ir::IoParam& p = fn_.inputs[input_idx];
  switch (p.count_kind) {
    case ir::CountKind::Scalar:
      return 1;
    case ir::CountKind::Explicit:
      return p.explicit_count;
    case ir::CountKind::Implicit:
      // §3.3: the index is always transmitted before the transfer that
      // references it, so its value is already latched.
      for (std::size_t j = 0; j < input_idx; ++j) {
        if (fn_.inputs[j].name == p.index_var && !elements_[j].empty()) {
          return elements_[j][0];
        }
      }
      return 0;
  }
  return 1;
}

void IcobStub::consume_word(std::uint64_t word) {
  const ir::IoParam& p = fn_.inputs[input_idx_];
  const std::uint64_t expected = expected_elements(input_idx_);
  auto& elems = elements_[input_idx_];
  const unsigned bw = sis_.data_width;

  if (p.type.bits > bw) {
    // Split transfer (§3.1.4): reassemble MSW-first, matching the Figure
    // 8.4 convention (first word lands in the high half).
    split_acc_ = (split_acc_ << bw) | word;
    if (++split_words_ >= p.words_per_element(bw)) {
      elems.push_back(split_acc_ & bits::low_mask(std::min(p.type.bits, 64u)));
      split_acc_ = 0;
      split_words_ = 0;
    }
  } else if (p.packed && p.type.bits < bw) {
    // Packed transfer (§3.1.3): low-order lanes first; trailing lanes of
    // the final word beyond `expected` are the "erroneous values" the
    // generated comments tell the user to ignore (§5.3.1).
    const std::uint64_t lanes = p.elements_per_word(bw);
    for (std::uint64_t j = 0; j < lanes && elems.size() < expected; ++j) {
      elems.push_back((word >> (j * p.type.bits)) &
                      bits::low_mask(p.type.bits));
    }
  } else {
    elems.push_back(word & bits::low_mask(std::min(p.type.bits, 64u)));
  }

  if (elems.size() >= expected) {
    ++input_idx_;
    split_acc_ = 0;
    split_words_ = 0;
    // Skip parameters expecting zero elements (implicit count of 0).
    while (input_idx_ < fn_.inputs.size() &&
           expected_elements(input_idx_) == 0) {
      ++input_idx_;
    }
    if (input_idx_ >= fn_.inputs.size()) finish_inputs();
  }
}

void IcobStub::finish_inputs() {
  CallContext ctx;
  ctx.instance_index = instance_index_;
  ctx.inputs = elements_;
  CalcResult r = behavior_(ctx);
  calc_countdown_ = std::max(1u, r.calc_cycles);
  out_words_.clear();
  out_idx_ = 0;
  // Stash raw elements; the word stream is built when calculation ends.
  pending_elements_ = std::move(r.outputs);
  pending_byref_ = std::move(r.byref);
  phase_ = Phase::Calc;
}

void IcobStub::build_output_words() {
  out_words_.clear();
  out_idx_ = 0;
  if (!fn_.blocking()) return;

  // §10.2 '&' by-reference parameters stream back first, in declaration
  // order, using each parameter's own packing/splitting rules.
  const auto& byref = byref_params_;
  for (std::size_t k = 0; k < byref.size(); ++k) {
    const ir::IoParam& p = fn_.inputs[byref[k]];
    std::vector<std::uint64_t> elems =
        k < pending_byref_.size() && !pending_byref_[k].empty()
            ? pending_byref_[k]
            : elements_[byref[k]];  // echo unchanged by default
    elems.resize(elements_[byref[k]].size(), 0);
    const auto words =
        drivergen::encode_elements(p, elems, sis_.data_width);
    out_words_.insert(out_words_.end(), words.begin(), words.end());
  }

  if (fn_.return_kind == ir::ReturnKind::Void) {
    // Pseudo output state (§5.3.1): one status word unblocks the driver.
    out_words_.push_back(0);
    return;
  }

  const ir::IoParam& out = fn_.output;
  const unsigned bw = sis_.data_width;
  std::uint64_t expected = 1;
  if (out.count_kind == ir::CountKind::Explicit) {
    expected = out.explicit_count;
  } else if (out.count_kind == ir::CountKind::Implicit) {
    for (std::size_t j = 0; j < fn_.inputs.size(); ++j) {
      if (fn_.inputs[j].name == out.index_var && !elements_[j].empty()) {
        expected = elements_[j][0];
        break;
      }
    }
  }
  std::vector<std::uint64_t> elems = pending_elements_;
  elems.resize(expected, 0);

  if (out.type.bits > bw) {
    const std::uint64_t wpe = out.words_per_element(bw);
    for (std::uint64_t e : elems) {
      for (std::uint64_t w = 0; w < wpe; ++w) {
        const unsigned shift =
            static_cast<unsigned>((wpe - 1 - w)) * bw;  // MSW first
        out_words_.push_back((e >> shift) & bits::low_mask(bw));
      }
    }
  } else if (out.packed && out.type.bits < bw) {
    const std::uint64_t lanes = out.elements_per_word(bw);
    for (std::size_t i = 0; i < elems.size(); i += lanes) {
      std::uint64_t word = 0;
      for (std::uint64_t j = 0; j < lanes && i + j < elems.size(); ++j) {
        word |= (elems[i + j] & bits::low_mask(out.type.bits))
                << (j * out.type.bits);
      }
      out_words_.push_back(word);
    }
  } else {
    for (std::uint64_t e : elems) {
      out_words_.push_back(e & bits::low_mask(std::min(out.type.bits, 64u)));
    }
  }
  if (out_words_.empty()) out_words_.push_back(0);
}

void IcobStub::serve_read() {
  // Zero-input functions run their behaviour at read time: getters refresh
  // so clocked cores (timers, counters) return current data, and void
  // commands (enable/disable) execute exactly once per driver call.
  if (fn_.inputs.empty() && out_idx_ == 0) {
    CallContext ctx;
    ctx.instance_index = instance_index_;
    CalcResult r = behavior_(ctx);
    pending_elements_ = std::move(r.outputs);
    build_output_words();
  }
  ports_.data_out.set(out_words_[out_idx_]);
  ports_.data_out_valid.set(true);
  ports_.io_done.set(true);
  pulse_clear_ = true;
  advance_out_ = true;
  pending_read_ = false;
}

void IcobStub::clock_edge() {
  edge_impl();
  // Self-sustained activity the declared triggers cannot see: a running
  // calculation, pulse bookkeeping, a stalled read.  IO_ENABLE held high
  // counts too — back-to-back beats at the same FUNC_ID produce no signal
  // change — and so does reset (the clocked core may tick under reset).
  set_clock_busy(phase_ == Phase::Calc || pulse_clear_ || advance_out_ ||
                 pending_read_ || sis_.rst.high() || sis_.io_enable.high());
}

void IcobStub::edge_impl() {
  if (sis_.rst.high()) {
    reset();
    return;
  }
  // Software acknowledge of a latched nowait completion (a write to the
  // reserved status register with this instance's bit set).  Blocking
  // functions ignore it: their CALC_DONE is consumed by the output drain.
  if (!fn_.blocking() && ((sis_.status_clear.get() >> func_id_) & 1) != 0) {
    ports_.calc_done.set(false);
  }
  if (pulse_clear_) {
    ports_.io_done.set(false);
    ports_.data_out_valid.set(false);
    pulse_clear_ = false;
  }
  if (advance_out_) {
    advance_out_ = false;
    ++out_idx_;
    if (out_idx_ >= out_words_.size()) {
      ++activations_;
      start_over();
    } else {
      ports_.data_out.set(out_words_[out_idx_]);
    }
    // A fresh request can arrive on the same edge; fall through.
  }

  const bool my_request =
      sis_.io_enable.high() && sis_.func_id.get() == func_id_;
  const bool is_write = sis_.data_in_valid.high();

  switch (phase_) {
    case Phase::Input:
      if (my_request && is_write && input_idx_ < fn_.inputs.size()) {
        // The next activation's input traffic implicitly acknowledges a
        // still-latched nowait completion.
        if (!fn_.blocking()) ports_.calc_done.set(false);
        consume_word(sis_.data_in.get());
        ports_.io_done.set(true);
        pulse_clear_ = true;
      } else if (my_request && !is_write) {
        // Read before output is ready: stall the (pseudo asynchronous)
        // bus until the calculation completes.
        pending_read_ = true;
      }
      break;

    case Phase::Calc:
      if (my_request && !is_write) pending_read_ = true;
      if (calc_countdown_ > 0) --calc_countdown_;
      if (calc_countdown_ == 0) {
        build_output_words();
        if (!fn_.blocking()) {
          // nowait (§3.1.7): no output state; rearm for the next call and
          // latch the completion on CALC_DONE so interrupt-driven (or
          // polled) completion waits can observe it.  The latch clears on
          // a status-clear acknowledge or the next activation's first
          // input word.
          ++activations_;
          start_over();
          ports_.calc_done.set(true);
          break;
        }
        phase_ = Phase::Output;
        ports_.calc_done.set(true);  // strictly-synchronous polling target
        ports_.data_out.set(out_words_.empty() ? 0 : out_words_[0]);
        if (pending_read_) serve_read();
      }
      break;

    case Phase::Output:
      if (my_request && !is_write) serve_read();
      break;
  }
}

void IcobStub::reset() {
  pulse_clear_ = false;
  advance_out_ = false;
  pending_read_ = false;
  calc_countdown_ = 0;
  pending_elements_.clear();
  ports_.io_done.set(false);
  ports_.data_out_valid.set(false);
  start_over();
}

}  // namespace splice::elab
