// Executable semantics of a generated user-logic stub: the ICOB
// (input-calculation-output block) paced by its SMB (state machine block),
// thesis §5.3.  One IcobStub is elaborated per function *instance*; it
// shares the broadcast SIS signals and drives its own per-function output
// lines, which the generated arbiter multiplexes (§5.2).
//
// The same IR that drives the VHDL/Verilog writers drives this module, so
// the simulated device is the generated design's semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elab/behavior.hpp"
#include "ir/device.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

/// The per-function SIS lines an arbiter multiplexes (Figure 4.2's
/// "Per-Function" signals).
struct FuncPorts {
  rtl::Signal& data_out;
  rtl::Signal& data_out_valid;
  rtl::Signal& io_done;
  rtl::Signal& calc_done;
};

class IcobStub : public rtl::Module {
 public:
  /// `name_prefix` qualifies the stub's module (and port-signal) names —
  /// multi-device simulations pass the device's SIS prefix so stubs of
  /// same-named functions on different devices never alias each other's
  /// port signals in the simulator's by-name registry.
  IcobStub(rtl::Simulator& sim, const ir::FunctionDecl& fn,
           std::uint32_t func_id, std::uint32_t instance_index,
           const ir::TargetSpec& target, const sis::SisBus& sis,
           BehaviorFn behavior, const std::string& name_prefix = "");

  [[nodiscard]] FuncPorts& ports() { return ports_; }
  [[nodiscard]] std::uint32_t func_id() const { return func_id_; }
  [[nodiscard]] const std::string& function_name() const { return fn_.name; }

  void clock_edge() override;
  void reset() override;

  /// How many complete activations (input -> calc -> output) have finished.
  [[nodiscard]] std::uint64_t activations() const { return activations_; }

  // -- Introspection used by the resource estimator and tests --------------
  /// Number of ICOB states: one per input transfer phase, the calculation
  /// state, and the (pseudo) output state (§5.3.1).
  [[nodiscard]] unsigned state_count() const;
  [[nodiscard]] const ir::FunctionDecl& decl() const { return fn_; }

 private:
  // SMB phases (§5.3.2 "state progression ... flows from input, to
  // calculation, and finally to output").
  enum class Phase : std::uint8_t { Input, Calc, Output };

  void edge_impl();
  void start_over();
  [[nodiscard]] std::uint64_t expected_elements(std::size_t input_idx) const;
  void consume_word(std::uint64_t word);
  void finish_inputs();
  void build_output_words();
  void serve_read();

  const ir::FunctionDecl fn_;   // owned copy: stable across spec lifetime
  const std::vector<std::size_t> byref_params_;  // fn_.by_ref_params(), once
  const ir::TargetSpec target_;
  std::uint32_t func_id_;
  std::uint32_t instance_index_;
  const sis::SisBus& sis_;
  BehaviorFn behavior_;
  FuncPorts ports_;

  Phase phase_ = Phase::Input;
  std::size_t input_idx_ = 0;           // which parameter is being received
  std::vector<std::vector<std::uint64_t>> elements_;  // per input param
  // Split-transfer reassembly (§3.1.4): accumulate MSW-first words.
  std::uint64_t split_acc_ = 0;
  unsigned split_words_ = 0;
  unsigned calc_countdown_ = 0;
  std::vector<std::uint64_t> pending_elements_;  // behaviour output elements
  std::vector<std::vector<std::uint64_t>> pending_byref_;  // §10.2 updates
  std::vector<std::uint64_t> out_words_;
  std::size_t out_idx_ = 0;
  bool pending_read_ = false;   // a read arrived before output was ready
  bool pulse_clear_ = false;    // lower io_done/data_out_valid next edge
  bool advance_out_ = false;    // move to the next output word next edge
  std::uint64_t activations_ = 0;
};

}  // namespace splice::elab
