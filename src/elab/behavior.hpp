// The user's calculation logic.  Splice generates I/O handling only
// (thesis §5.3: "the task of data storage and transfer is not automated
// ... left up to the end-user"); a FunctionBehavior is the simulation
// equivalent of the calculation states the user fills into a generated
// stub (Figure 8.4's bracketed lines).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace splice::elab {

/// Everything a calculation sees when its input states complete.
struct CallContext {
  std::uint32_t instance_index = 0;  ///< which hardware copy (§3.1.6)
  /// Element values per input parameter, declaration order, zero-extended
  /// to 64 bits (exactly what crossed the bus, reassembled from any split
  /// or packed transfers).
  std::vector<std::vector<std::uint64_t>> inputs;

  [[nodiscard]] std::uint64_t scalar(std::size_t param_index) const {
    return inputs.at(param_index).at(0);
  }
  [[nodiscard]] const std::vector<std::uint64_t>& array(
      std::size_t param_index) const {
    return inputs.at(param_index);
  }
};

struct CalcResult {
  /// Cycles the calculation states occupy before output is ready (>= 1;
  /// the generated stub always has at least one calculation state, §5.3.1).
  unsigned calc_cycles = 1;
  /// Output element values (element granularity; the ICOB splits/packs
  /// them into bus words per the declaration).
  std::vector<std::uint64_t> outputs;
  /// Updated element values for '&' by-reference parameters (§10.2), in
  /// the order FunctionDecl::by_ref_params lists them.  When empty, the
  /// original input values are echoed back unchanged.
  std::vector<std::vector<std::uint64_t>> byref;

  CalcResult() = default;
  CalcResult(unsigned cycles, std::vector<std::uint64_t> outs)
      : calc_cycles(cycles), outputs(std::move(outs)) {}
};

using BehaviorFn = std::function<CalcResult(const CallContext&)>;

/// Behaviours keyed by interface-declaration name.  Functions without an
/// entry get the freshly generated stub's behaviour: one empty calculation
/// state producing zeros ("the device will be largely useless", §8.3).
class BehaviorMap {
 public:
  void set(const std::string& function_name, BehaviorFn fn) {
    map_[function_name] = std::move(fn);
  }
  [[nodiscard]] BehaviorFn find_or_default(const std::string& name) const {
    auto it = map_.find(name);
    if (it != map_.end()) return it->second;
    return [](const CallContext&) { return CalcResult{1, {}}; };
  }

 private:
  std::unordered_map<std::string, BehaviorFn> map_;
};

}  // namespace splice::elab
