#include "elab/plb_adapter.hpp"

#include "rtl/compile/lowering.hpp"
#include "support/bits.hpp"

namespace splice::elab {

void PlbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());

  const std::uint64_t rd_ce = pins_.rd_ce.get();
  const std::uint64_t wr_ce = pins_.wr_ce.get();
  const std::uint64_t ce = rd_ce | wr_ce;

  // One-hot chip enable -> binary FUNC_ID (§4.3.2).
  sis_.func_id.drive(ce != 0 ? bits::one_hot_index(ce) : std::uint64_t{0});
  sis_.data_in.drive(pins_.wr_data.get());
  // RD_REQ / WR_REQ play exactly the role of IO_ENABLE (Figure 4.7): a
  // single-cycle strobe announcing a new request.  Status accesses (CE
  // bit 0) are served by the adapter itself and do not reach the user
  // logic: reads return the CALC_DONE vector, writes acknowledge latched
  // nowait completions through the STATUS_CLEAR mask.
  const bool status_select = (rd_ce & 1) != 0;
  const bool status_write = (wr_ce & 1) != 0;
  sis_.data_in_valid.drive(wr_ce != 0 && !status_write);
  sis_.io_enable.drive((pins_.wr_req.high() || pins_.rd_req.high()) &&
                       !status_select && !status_write);
  sis_.status_clear.drive(status_write && pins_.wr_req.high()
                              ? pins_.wr_data.get()
                              : std::uint64_t{0});

  // Slave -> master direction.
  pins_.wr_ack.drive(status_write ? status_wr_ack_
                                  : sis_.io_done.high() && wr_ce != 0);
  if (status_select) {
    pins_.rd_data.drive(sis_.calc_done.get());
    pins_.rd_ack.drive(status_ack_);
  } else {
    pins_.rd_data.drive(sis_.data_out.get());
    pins_.rd_ack.drive(sis_.data_out_valid.high() && rd_ce != 0);
  }
}

bool PlbSisAdapter::lower_comb(rtl::compile::CombBuilder& cb) {
  // Split at the SIS boundary: the master->slave direction feeds the user
  // logic, the slave->master direction feeds from it.  The scheduler can
  // then order pins -> SIS -> stubs -> arbiter -> pins as one acyclic pass.
  {
    auto& u = cb.unit("in");
    u.out(sis_.rst, u.in(pins_.rst));
    const auto rd_ce = u.in(pins_.rd_ce);
    const auto wr_ce = u.in(pins_.wr_ce);
    u.out(sis_.func_id, u.one_hot(u.bor(rd_ce, wr_ce)));
    u.out(sis_.data_in, u.in(pins_.wr_data));
    const auto status_select = u.band(rd_ce, u.imm(std::uint64_t{1}));
    const auto status_write = u.band(wr_ce, u.imm(std::uint64_t{1}));
    u.out(sis_.data_in_valid,
          u.band(u.nonzero(wr_ce), u.lnot(status_write)));
    const auto req = u.bor(u.in(pins_.wr_req), u.in(pins_.rd_req));
    u.out(sis_.io_enable,
          u.band(u.nonzero(req),
                 u.lnot(u.bor(status_select, status_write))));
    u.out(sis_.status_clear,
          u.mux(u.band(status_write, u.in(pins_.wr_req)),
                u.in(pins_.wr_data), u.imm(std::uint64_t{0})));
  }
  {
    auto& u = cb.unit("out");
    const auto rd_ce = u.in(pins_.rd_ce);
    const auto wr_ce = u.in(pins_.wr_ce);
    const auto status_write = u.band(wr_ce, u.imm(std::uint64_t{1}));
    u.out(pins_.wr_ack,
          u.mux(status_write, u.load(&status_wr_ack_),
                u.band(u.in(sis_.io_done), u.nonzero(wr_ce))));
    const auto status_select = u.band(rd_ce, u.imm(std::uint64_t{1}));
    u.out(pins_.rd_data, u.mux(status_select, u.in(sis_.calc_done),
                               u.in(sis_.data_out)));
    const auto data_ack =
        u.band(u.in(sis_.data_out_valid), u.nonzero(rd_ce));
    u.out(pins_.rd_ack,
          u.mux(status_select, u.load(&status_ack_), data_ack));
  }
  return true;
}

void PlbSisAdapter::clock_edge() {
  // The CALC_DONE status register answers one cycle after its request
  // strobe (it is a plain register read/write, §4.2.2).
  const bool next = pins_.rd_req.high() && (pins_.rd_ce.get() & 1) != 0;
  if (next != status_ack_) {
    status_ack_ = next;
    mark_dirty();  // RD_ACK depends on this register
  }
  const bool next_w = pins_.wr_req.high() && (pins_.wr_ce.get() & 1) != 0;
  if (next_w != status_wr_ack_) {
    status_wr_ack_ = next_w;
    mark_dirty();  // WR_ACK depends on this register
  }
}

void PlbSisAdapter::reset() {
  if (status_ack_ || status_wr_ack_) mark_dirty();
  status_ack_ = false;
  status_wr_ack_ = false;
}

}  // namespace splice::elab
