#include "elab/apb_adapter.hpp"

#include "rtl/compile/lowering.hpp"

namespace splice::elab {

void ApbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());

  // The SETUP cycle (PSEL without PENABLE) is the slave's decode cycle:
  // the SIS transfer strobes there, which gives the user logic one cycle
  // to present (or refresh) DATA_OUT before PRDATA is sampled in the
  // access cycle.  Writes equally complete off the setup strobe — PWDATA
  // is already valid — and the access cycle merely closes the transfer.
  const bool setup = pins_.psel.high() && !pins_.penable.high();
  const std::uint64_t fid = pins_.paddr.get();
  const bool is_status = fid == sis::kStatusFuncId;

  sis_.func_id.drive(fid);
  sis_.data_in.drive(pins_.pwdata.get());
  sis_.data_in_valid.drive(setup && pins_.pwrite.high() && !is_status);
  sis_.io_enable.drive(setup && !is_status);
  // A status write acknowledges latched nowait completions: PWDATA is the
  // one-cycle STATUS_CLEAR mask (strobed off the setup cycle, like writes).
  sis_.status_clear.drive(setup && pins_.pwrite.high() && is_status
                              ? pins_.pwdata.get()
                              : std::uint64_t{0});

  // Reads are combinational: the stub's output state drives DATA_OUT
  // persistently, and FUNC_ID 0 exposes the CALC_DONE status register.
  pins_.prdata.drive(is_status ? sis_.calc_done.get() : sis_.data_out.get());
}

bool ApbSisAdapter::lower_comb(rtl::compile::CombBuilder& cb) {
  {
    auto& u = cb.unit("in");
    u.out(sis_.rst, u.in(pins_.rst));
    const auto setup = u.band(u.in(pins_.psel), u.lnot(u.in(pins_.penable)));
    const auto fid = u.in(pins_.paddr);
    const auto is_status = u.eq(fid, u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(sis_.func_id, fid);
    u.out(sis_.data_in, u.in(pins_.pwdata));
    const auto setup_write = u.band(setup, u.in(pins_.pwrite));
    u.out(sis_.data_in_valid, u.band(setup_write, u.lnot(is_status)));
    u.out(sis_.io_enable, u.band(setup, u.lnot(is_status)));
    u.out(sis_.status_clear,
          u.mux(u.band(setup_write, is_status), u.in(pins_.pwdata),
                u.imm(std::uint64_t{0})));
  }
  {
    auto& u = cb.unit("out");
    const auto is_status =
        u.eq(u.in(pins_.paddr), u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(pins_.prdata,
          u.mux(is_status, u.in(sis_.calc_done), u.in(sis_.data_out)));
  }
  return true;
}

}  // namespace splice::elab
