#include "elab/apb_adapter.hpp"

namespace splice::elab {

void ApbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());

  // The SETUP cycle (PSEL without PENABLE) is the slave's decode cycle:
  // the SIS transfer strobes there, which gives the user logic one cycle
  // to present (or refresh) DATA_OUT before PRDATA is sampled in the
  // access cycle.  Writes equally complete off the setup strobe — PWDATA
  // is already valid — and the access cycle merely closes the transfer.
  const bool setup = pins_.psel.high() && !pins_.penable.high();
  const std::uint64_t fid = pins_.paddr.get();
  const bool is_status = fid == sis::kStatusFuncId;

  sis_.func_id.drive(fid);
  sis_.data_in.drive(pins_.pwdata.get());
  sis_.data_in_valid.drive(setup && pins_.pwrite.high());
  sis_.io_enable.drive(setup && !is_status);

  // Reads are combinational: the stub's output state drives DATA_OUT
  // persistently, and FUNC_ID 0 exposes the CALC_DONE status register.
  pins_.prdata.drive(is_status ? sis_.calc_done.get() : sis_.data_out.get());
}

}  // namespace splice::elab
