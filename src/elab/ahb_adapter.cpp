#include "elab/ahb_adapter.hpp"

#include <tuple>

#include "rtl/compile/lowering.hpp"

namespace splice::elab {

void AhbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());

  const bool is_status = dp_fid_ == sis::kStatusFuncId;
  sis_.func_id.drive(data_phase_ ? dp_fid_ : 0);
  sis_.data_in.drive(pins_.hwdata.get());
  sis_.data_in_valid.drive(data_phase_ && dp_write_ && !is_status);
  sis_.io_enable.drive(strobe_ && !is_status);
  // Status writes acknowledge latched nowait completions: HWDATA is the
  // STATUS_CLEAR mask for exactly the (zero-wait-state) data-phase cycle.
  sis_.status_clear.drive(data_phase_ && dp_write_ && is_status
                              ? pins_.hwdata.get()
                              : std::uint64_t{0});

  pins_.hrdata.drive(is_status ? sis_.calc_done.get() : rd_value_);
  // HREADY: an idle slave is always ready (it latches the presented address
  // phase); an open data phase completes only when the SIS handshake for
  // its word has finished.
  pins_.hready.drive(!data_phase_ || done_);
}

bool AhbSisAdapter::lower_comb(rtl::compile::CombBuilder& cb) {
  {
    auto& u = cb.unit("in");
    u.out(sis_.rst, u.in(pins_.rst));
    const auto data_phase = u.load(&data_phase_);
    const auto dp_fid = u.load(&dp_fid_);
    const auto is_status =
        u.eq(dp_fid, u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(sis_.func_id, u.mux(data_phase, dp_fid, u.imm(std::uint64_t{0})));
    u.out(sis_.data_in, u.in(pins_.hwdata));
    const auto dp_write = u.band(data_phase, u.load(&dp_write_));
    u.out(sis_.data_in_valid, u.band(dp_write, u.lnot(is_status)));
    u.out(sis_.io_enable, u.band(u.load(&strobe_), u.lnot(is_status)));
    u.out(sis_.status_clear,
          u.mux(u.band(dp_write, is_status), u.in(pins_.hwdata),
                u.imm(std::uint64_t{0})));
  }
  {
    auto& u = cb.unit("out");
    const auto is_status =
        u.eq(u.load(&dp_fid_), u.imm(std::uint64_t{sis::kStatusFuncId}));
    u.out(pins_.hrdata,
          u.mux(is_status, u.in(sis_.calc_done), u.load(&rd_value_)));
    u.out(pins_.hready,
          u.bor(u.lnot(u.load(&data_phase_)), u.load(&done_)));
  }
  return true;
}

void AhbSisAdapter::clock_edge() {
  const auto before = std::make_tuple(data_phase_, dp_write_, dp_fid_,
                                      strobe_, done_, rd_value_);
  edge_impl();
  if (before != std::make_tuple(data_phase_, dp_write_, dp_fid_, strobe_,
                                done_, rd_value_)) {
    mark_dirty();  // eval_comb reads these phase registers
  }
  // An open data phase reads the SIS response lines on every edge until it
  // closes; declared triggers only cover a fresh address phase.
  set_clock_busy(data_phase_ || strobe_);
}

void AhbSisAdapter::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  strobe_ = false;

  // Close a completed data phase and accept the pipelined next address
  // phase (which was on the wires during this ready cycle).
  const bool closing = data_phase_ && done_;
  if (closing) {
    data_phase_ = false;
    done_ = false;
  }
  if (!data_phase_) {
    const std::uint64_t htrans = pins_.htrans.get();
    if (htrans == bus::kHtransNonseq || htrans == bus::kHtransSeq) {
      data_phase_ = true;
      dp_write_ = pins_.hwrite.high();
      dp_fid_ = pins_.haddr.get();
      strobe_ = true;
      if (dp_fid_ == sis::kStatusFuncId) {
        // Status accesses take no wait states: reads answer from the
        // CALC_DONE register, writes strobe STATUS_CLEAR off HWDATA during
        // their single data-phase cycle.
        if (!dp_write_) rd_value_ = sis_.calc_done.get();
        done_ = true;
      }
      return;
    }
  }

  if (data_phase_ && !done_) {
    if (dp_write_) {
      if (sis_.io_done.high()) done_ = true;
    } else if (dp_fid_ == sis::kStatusFuncId) {
      done_ = true;
    } else if (sis_.data_out_valid.high()) {
      rd_value_ = sis_.data_out.get();
      done_ = true;
    }
  }
}

void AhbSisAdapter::reset() {
  data_phase_ = false;
  dp_write_ = false;
  dp_fid_ = 0;
  strobe_ = false;
  done_ = false;
  rd_value_ = 0;
}

}  // namespace splice::elab
