#include "elab/ahb_adapter.hpp"

#include <tuple>

namespace splice::elab {

void AhbSisAdapter::eval_comb() {
  sis_.rst.drive(pins_.rst.high());

  const bool is_status = dp_fid_ == sis::kStatusFuncId;
  sis_.func_id.drive(data_phase_ ? dp_fid_ : 0);
  sis_.data_in.drive(pins_.hwdata.get());
  sis_.data_in_valid.drive(data_phase_ && dp_write_);
  sis_.io_enable.drive(strobe_ && !is_status);

  pins_.hrdata.drive(is_status ? sis_.calc_done.get() : rd_value_);
  // HREADY: an idle slave is always ready (it latches the presented address
  // phase); an open data phase completes only when the SIS handshake for
  // its word has finished.
  pins_.hready.drive(!data_phase_ || done_);
}

void AhbSisAdapter::clock_edge() {
  const auto before = std::make_tuple(data_phase_, dp_write_, dp_fid_,
                                      strobe_, done_, rd_value_);
  edge_impl();
  if (before != std::make_tuple(data_phase_, dp_write_, dp_fid_, strobe_,
                                done_, rd_value_)) {
    mark_dirty();  // eval_comb reads these phase registers
  }
}

void AhbSisAdapter::edge_impl() {
  if (pins_.rst.high()) {
    reset();
    return;
  }
  strobe_ = false;

  // Close a completed data phase and accept the pipelined next address
  // phase (which was on the wires during this ready cycle).
  const bool closing = data_phase_ && done_;
  if (closing) {
    data_phase_ = false;
    done_ = false;
  }
  if (!data_phase_) {
    const std::uint64_t htrans = pins_.htrans.get();
    if (htrans == bus::kHtransNonseq || htrans == bus::kHtransSeq) {
      data_phase_ = true;
      dp_write_ = pins_.hwrite.high();
      dp_fid_ = pins_.haddr.get();
      strobe_ = true;
      if (dp_fid_ == sis::kStatusFuncId && !dp_write_) {
        rd_value_ = sis_.calc_done.get();
        done_ = true;  // status reads take no wait states
      }
      return;
    }
  }

  if (data_phase_ && !done_) {
    if (dp_write_) {
      if (sis_.io_done.high()) done_ = true;
    } else if (dp_fid_ == sis::kStatusFuncId) {
      done_ = true;
    } else if (sis_.data_out_valid.high()) {
      rd_value_ = sis_.data_out.get();
      done_ = true;
    }
  }
}

void AhbSisAdapter::reset() {
  data_phase_ = false;
  dp_write_ = false;
  dp_fid_ = 0;
  strobe_ = false;
  done_ = false;
  rd_value_ = 0;
}

}  // namespace splice::elab
