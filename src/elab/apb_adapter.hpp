// APB -> SIS native interface adapter (thesis §2.3.1, §4.2.2).
//
// The APB is strictly synchronous: a transfer occupies exactly one access
// cycle (PSEL & PENABLE) and the peripheral may never stall the bus.  The
// adapter therefore maps the access cycle onto a single-cycle SIS transfer
// and serves reads combinationally from the stub's persistently driven
// DATA_OUT; software orders reads behind CALC_DONE polling of the reserved
// function id 0 exactly as §4.2.2 prescribes.
#pragma once

#include "bus/apb.hpp"
#include "rtl/simulator.hpp"
#include "sis/sis.hpp"

namespace splice::elab {

class ApbSisAdapter : public rtl::Module {
 public:
  ApbSisAdapter(bus::ApbPins& pins, sis::SisBus& sis)
      : rtl::Module("apb_interface"), pins_(pins), sis_(sis) {
    watch_all(pins_.rst, pins_.psel, pins_.penable, pins_.pwrite,
              pins_.paddr, pins_.pwdata, sis_.calc_done, sis_.data_out);
    clocked_none();  // purely combinational: no clocked process at all
  }

  void eval_comb() override;
  bool lower_comb(rtl::compile::CombBuilder& cb) override;

 private:
  bus::ApbPins& pins_;
  sis::SisBus& sis_;
};

}  // namespace splice::elab
