// Greedy spec minimizer.  Given a model that fails the conformance oracle,
// repeatedly apply simplifying mutations — drop declarations, drop
// parameters, strip feature extensions, shrink counts — keeping a mutation
// whenever the smaller spec *still* fails, until a fixpoint.  The
// predicate decides "still interesting"; the driver wires it to
// run_conformance so minimized repros stay valid specs that reproduce the
// original class of failure.
#pragma once

#include <cstdint>
#include <functional>

#include "testing/spec_gen.hpp"

namespace splice::testing {

/// True when the candidate still exhibits the failure being minimized.
/// Candidates the frontend rejects must return false: the shrinker hunts
/// oracle failures, not validation errors it introduced itself.
using ShrinkPredicate = std::function<bool(const SpecModel&)>;

struct ShrinkStats {
  std::uint64_t attempts = 0;  ///< candidate specs tried
  std::uint64_t accepted = 0;  ///< mutations that kept the failure
};

/// Minimize `model` under `predicate`; returns the smallest failing spec
/// found within `max_attempts` oracle invocations.  `model` itself is
/// assumed interesting (the caller observed it fail).
[[nodiscard]] SpecModel shrink(SpecModel model, const ShrinkPredicate& predicate,
                               ShrinkStats* stats = nullptr,
                               std::uint64_t max_attempts = 400);

}  // namespace splice::testing
