// Deterministic pseudo-random source for the spec fuzzer.  SplitMix64
// (Steele et al.) — tiny, seedable, and stable across platforms, so a
// failing spec's (seed, index) pair reproduces bit-identically anywhere.
// std::mt19937 is avoided on purpose: distribution results are not
// guaranteed identical across standard-library implementations, and the
// whole value of the fuzzer's corpus is replayability.
#pragma once

#include <cstdint>
#include <vector>

namespace splice::testing {

[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t x = state_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Uniform value in [lo, hi] (inclusive); lo when the range is empty.
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    if (hi <= lo) return lo;
    return lo + next() % (hi - lo + 1);
  }

  /// True with probability percent/100.
  [[nodiscard]] bool chance(unsigned percent) {
    return next() % 100 < percent;
  }

  /// Pick one element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    return v[next() % v.size()];
  }

  /// Weighted choice: returns the index of the chosen weight.
  [[nodiscard]] std::size_t weighted(const std::vector<unsigned>& weights) {
    std::uint64_t total = 0;
    for (unsigned w : weights) total += w;
    if (total == 0) return 0;
    std::uint64_t roll = next() % total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (roll < weights[i]) return i;
      roll -= weights[i];
    }
    return weights.size() - 1;
  }

 private:
  std::uint64_t state_;
};

}  // namespace splice::testing
