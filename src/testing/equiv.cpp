#include "testing/equiv.hpp"

#include <algorithm>
#include <sstream>

namespace splice::testing {
namespace {

using codegen::ast::Constant;
using codegen::ast::Module;
using codegen::ast::Port;
using codegen::ast::Process;
using codegen::ast::SignalDecl;

void diff_ports(const Module& a, const Module& b,
                std::vector<std::string>& out) {
  if (a.ports.size() != b.ports.size()) {
    out.push_back("port count: " + std::to_string(a.ports.size()) + " vs " +
                  std::to_string(b.ports.size()));
  }
  for (const Port& pa : a.ports) {
    const Port* pb = b.find_port(pa.name);
    if (pb == nullptr) {
      out.push_back("port '" + pa.name + "' missing in second module");
      continue;
    }
    if (pa.is_input != pb->is_input) {
      out.push_back("port '" + pa.name + "' direction differs");
    }
    if (pa.width != pb->width) {
      out.push_back("port '" + pa.name + "' width " +
                    std::to_string(pa.width) + " vs " +
                    std::to_string(pb->width));
    }
  }
  for (const Port& pb : b.ports) {
    if (a.find_port(pb.name) == nullptr) {
      out.push_back("port '" + pb.name + "' missing in first module");
    }
  }
}

// Width-0 constants are the VHDL-only integer "guidance" values
// (<param>_max_words etc.) — idiom, not structure.  Everything with a
// width is real hardware and must agree exactly.
std::vector<Constant> functional_constants(const Module& m) {
  std::vector<Constant> out;
  for (const Constant& c : m.constants) {
    if (c.width > 0) out.push_back(c);
  }
  std::sort(out.begin(), out.end(),
            [](const Constant& x, const Constant& y) { return x.name < y.name; });
  return out;
}

void diff_constants(const Module& a, const Module& b,
                    std::vector<std::string>& out) {
  auto ca = functional_constants(a);
  auto cb = functional_constants(b);
  std::size_t ia = 0, ib = 0;
  while (ia < ca.size() || ib < cb.size()) {
    if (ib >= cb.size() || (ia < ca.size() && ca[ia].name < cb[ib].name)) {
      out.push_back("constant '" + ca[ia].name + "' missing in second module");
      ++ia;
    } else if (ia >= ca.size() || cb[ib].name < ca[ia].name) {
      out.push_back("constant '" + cb[ib].name + "' missing in first module");
      ++ib;
    } else {
      if (ca[ia].width != cb[ib].width || ca[ia].value != cb[ib].value) {
        std::ostringstream os;
        os << "constant '" << ca[ia].name << "': " << ca[ia].value << "/"
           << ca[ia].width << "b vs " << cb[ib].value << "/" << cb[ib].width
           << "b";
        out.push_back(os.str());
      }
      ++ia;
      ++ib;
    }
  }
}

void diff_fsm(const Module& a, const Module& b,
              std::vector<std::string>& out) {
  if (a.fsm.has_value() != b.fsm.has_value()) {
    out.push_back(std::string("FSM present only in ") +
                  (a.fsm.has_value() ? "first" : "second") + " module");
    return;
  }
  if (!a.fsm.has_value()) return;
  if (a.fsm->states != b.fsm->states) {
    out.push_back("FSM state lists differ (" +
                  std::to_string(a.fsm->states.size()) + " vs " +
                  std::to_string(b.fsm->states.size()) + " states)");
  }
  if (a.fsm->user_entry_states != b.fsm->user_entry_states) {
    out.push_back("FSM user-entry state lists differ");
  }
  if (a.fsm->state_width != b.fsm->state_width) {
    out.push_back("FSM state width " + std::to_string(a.fsm->state_width) +
                  " vs " + std::to_string(b.fsm->state_width));
  }
}

// Flatten declarations to (name, width, is_reg) tuples; one VHDL decl may
// introduce several names that Verilog declares separately (or vice
// versa), so grouping is presentation, not structure.
struct FlatSignal {
  std::string name;
  unsigned width;
  bool is_reg;
};

std::vector<FlatSignal> flat_signals(const Module& m) {
  std::vector<FlatSignal> out;
  for (const SignalDecl& d : m.signals) {
    for (const std::string& n : d.names) {
      out.push_back({n, d.width, d.is_reg});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlatSignal& x, const FlatSignal& y) {
              return x.name < y.name;
            });
  return out;
}

void diff_signals(const Module& a, const Module& b,
                  std::vector<std::string>& out) {
  auto sa = flat_signals(a);
  auto sb = flat_signals(b);
  std::size_t ia = 0, ib = 0;
  while (ia < sa.size() || ib < sb.size()) {
    if (ib >= sb.size() || (ia < sa.size() && sa[ia].name < sb[ib].name)) {
      out.push_back("signal '" + sa[ia].name + "' missing in second module");
      ++ia;
    } else if (ia >= sa.size() || sb[ib].name < sa[ia].name) {
      out.push_back("signal '" + sb[ib].name + "' missing in first module");
      ++ib;
    } else {
      if (sa[ia].width != sb[ib].width) {
        out.push_back("signal '" + sa[ia].name + "' width " +
                      std::to_string(sa[ia].width) + " vs " +
                      std::to_string(sb[ib].width));
      }
      ++ia;
      ++ib;
    }
  }
}

void collect_assign_targets(codegen::ast::StmtList body,
                            std::vector<std::string>& out) {
  using codegen::ast::Stmt;
  for (const Stmt* s : body) {
    switch (s->kind) {
      case Stmt::Kind::Assign:
        out.emplace_back(s->target);
        break;
      case Stmt::Kind::If:
        collect_assign_targets(s->then_body, out);
        collect_assign_targets(s->else_body, out);
        break;
      case Stmt::Kind::Case:
        for (const auto& arm : s->arms) collect_assign_targets(arm.body, out);
        break;
      case Stmt::Kind::Comment:
        break;
    }
  }
}

void diff_structure(const Module& a, const Module& b,
                    std::vector<std::string>& out) {
  if (a.comparators.size() != b.comparators.size()) {
    out.push_back("comparator count: " + std::to_string(a.comparators.size()) +
                  " vs " + std::to_string(b.comparators.size()));
  }
  if (a.instances.size() != b.instances.size()) {
    out.push_back("instance count: " + std::to_string(a.instances.size()) +
                  " vs " + std::to_string(b.instances.size()));
  } else {
    for (std::size_t i = 0; i < a.instances.size(); ++i) {
      if (a.instances[i].module != b.instances[i].module ||
          a.instances[i].label != b.instances[i].label) {
        out.push_back("instance " + std::to_string(i) + ": " +
                      a.instances[i].label + " of " + a.instances[i].module +
                      " vs " + b.instances[i].label + " of " +
                      b.instances[i].module);
      }
    }
  }
  // Process *grouping* is idiom — the VHDL arbiter keeps three historical
  // mux processes where Verilog folds them into one always block — but the
  // clocked machinery and the set of combinationally driven signals are
  // structure and must agree.
  auto clocked = [](const Module& m) {
    return std::count_if(m.processes.begin(), m.processes.end(),
                         [](const Process& p) {
                           return p.kind == Process::Kind::Clocked;
                         });
  };
  if (clocked(a) != clocked(b)) {
    out.push_back("clocked process count: " + std::to_string(clocked(a)) +
                  " vs " + std::to_string(clocked(b)));
  }
  auto comb_targets = [](const Module& m) {
    std::vector<std::string> targets;
    for (const Process& p : m.processes) {
      if (p.kind != Process::Kind::Combinational) continue;
      collect_assign_targets(p.body, targets);
    }
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()),
                  targets.end());
    return targets;
  };
  if (comb_targets(a) != comb_targets(b)) {
    out.push_back("combinational processes drive different signal sets");
  }
  std::vector<std::string> ta, tb;
  for (const auto& g : a.cont_assigns) {
    for (const auto& ca : g.assigns) ta.push_back(ca.target);
  }
  for (const auto& g : b.cont_assigns) {
    for (const auto& ca : g.assigns) tb.push_back(ca.target);
  }
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  if (ta != tb) {
    out.push_back("continuous-assignment target sets differ (" +
                  std::to_string(ta.size()) + " vs " +
                  std::to_string(tb.size()) + " targets)");
  }
}

}  // namespace

std::vector<std::string> structural_diff(const Module& a, const Module& b) {
  std::vector<std::string> out;
  if (a.name != b.name) {
    out.push_back("module name '" + a.name + "' vs '" + b.name + "'");
  }
  diff_ports(a, b, out);
  diff_constants(a, b, out);
  diff_fsm(a, b, out);
  diff_signals(a, b, out);
  diff_structure(a, b, out);
  // Prefix every line with the module under comparison so multi-module
  // reports stay readable.
  for (std::string& line : out) {
    line = a.name + ": " + line;
  }
  return out;
}

}  // namespace splice::testing
