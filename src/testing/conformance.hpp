// The differential conformance oracle.  For one generated SpecModel it
// (a) runs the full engine for both %target_hdl values and diffs the two
// elaborations' HDL ASTs structurally, and (b) assembles the virtual
// platform with deterministic pseudo-random calculation behaviours, replays
// generated-driver calls with randomized argument values, and asserts that
// every output and by-reference read-back matches the host-side
// expectation while the SIS protocol checker stays clean.  Any discrepancy
// becomes a human-readable failure line; the fuzzer shrinks against this
// verdict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "testing/spec_gen.hpp"

namespace splice::testing {

/// Which simulation backend(s) the platform replay runs on.  kLockstep
/// builds two platforms — interpreter and compiled — replays every call on
/// both, and diffs call results, per-cycle signal histories and protocol
/// verdicts; the interpreter thereby acts as differential oracle for the
/// compiled backend.
enum class OracleBackend : std::uint8_t { kInterp, kCompiled, kLockstep };

struct OracleOptions {
  std::uint64_t call_seed = 1;       ///< argument-value stream seed
  unsigned calls_per_function = 3;   ///< driver replays per declaration
  std::uint64_t max_cycles = 2'000'000;
  bool check_equivalence = true;     ///< VHDL vs Verilog AST diff
  bool simulate = true;              ///< end-to-end platform replay
  OracleBackend backend = OracleBackend::kInterp;
  /// When non-empty, record every simulator signal and write a VCD here
  /// (used when re-running a failing spec for the repro corpus).
  std::string vcd_out;
  /// When non-empty, attach the observability layer and write the decoded
  /// simulated-time trace (Chrome/Perfetto JSON) of the replay here.
  std::string sim_trace_out;
};

struct OracleResult {
  /// The frontend / validator refused the spec.  The shrinker treats a
  /// rejected candidate as uninteresting (it must preserve *validity*
  /// while hunting the oracle failure).
  bool spec_rejected = false;
  std::vector<std::string> failures;  ///< empty == conformant
  std::uint64_t calls = 0;            ///< driver calls replayed
  std::uint64_t bus_cycles = 0;       ///< simulated bus time consumed
  /// Divergences between the interpreter and the compiled backend seen
  /// during a kLockstep replay (also counted in `failures`).
  std::uint64_t backend_mismatches = 0;

  [[nodiscard]] bool ok() const { return !spec_rejected && failures.empty(); }
};

[[nodiscard]] OracleResult run_conformance(const SpecModel& model,
                                           const OracleOptions& options = {});

/// The SoC oracle: assembles the generated multi-device topology on a
/// SocPlatform (root PLB + bridged OPB sub-segment, master mux, interrupt
/// fabric), replays an interleaved cross-device call schedule — nowait
/// calls followed by their polled or interrupt-driven completion waits —
/// and checks every output against the host expectation while the
/// per-device SIS checkers and the cross-device axioms stay clean.  In
/// lockstep mode the whole SoC runs twice (interpreter + compiled backend)
/// and the decoded per-device bus streams, call timelines, cycle counts
/// and checker verdicts must match exactly.
[[nodiscard]] OracleResult run_soc_conformance(const SocModel& model,
                                               const OracleOptions& options =
                                                   {});

}  // namespace splice::testing
