#include "testing/shrink.hpp"

#include <utility>
#include <vector>

namespace splice::testing {
namespace {

/// Re-point every implicit bound that referenced a now-removed input at an
/// explicit count, so dropping a parameter never *introduces* a validation
/// error that would mask the failure under minimization.
void repair_implicit_refs(FunctionModel& fn, const std::string& gone) {
  auto repair = [&](ParamModel& p) {
    if (p.bound == ParamModel::Bound::Implicit && p.index_var == gone) {
      p.bound = ParamModel::Bound::Explicit;
      p.count = 2;
      p.index_var.clear();
    }
  };
  for (ParamModel& p : fn.inputs) repair(p);
  if (fn.ret == FunctionModel::Ret::Value) repair(fn.output);
}

void retype_params(SpecModel& spec, const std::string& gone) {
  auto repair = [&](ParamModel& p) {
    if (p.type == gone) p.type = "int";
  };
  for (FunctionModel& fn : spec.functions) {
    for (ParamModel& p : fn.inputs) repair(p);
    if (fn.ret == FunctionModel::Ret::Value) repair(fn.output);
  }
}

/// All single-step simplifications of `model`, smallest-first: structural
/// deletions before feature strips before count reductions.
std::vector<SpecModel> candidates(const SpecModel& model) {
  std::vector<SpecModel> out;

  // Drop whole declarations (never below one).
  if (model.functions.size() > 1) {
    for (std::size_t f = 0; f < model.functions.size(); ++f) {
      SpecModel c = model;
      c.functions.erase(c.functions.begin() + static_cast<long>(f));
      out.push_back(std::move(c));
    }
  }

  // Drop single inputs.
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    for (std::size_t i = 0; i < model.functions[f].inputs.size(); ++i) {
      SpecModel c = model;
      FunctionModel& fn = c.functions[f];
      const std::string gone = fn.inputs[i].name;
      fn.inputs.erase(fn.inputs.begin() + static_cast<long>(i));
      repair_implicit_refs(fn, gone);
      out.push_back(std::move(c));
    }
  }

  // Per-function simplifications.
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    const FunctionModel& fn = model.functions[f];
    if (fn.ret == FunctionModel::Ret::Value) {
      SpecModel c = model;  // drop the return transfer
      c.functions[f].ret = FunctionModel::Ret::Void;
      c.functions[f].output = ParamModel{};
      out.push_back(std::move(c));
    }
    if (fn.ret == FunctionModel::Ret::Nowait) {
      SpecModel c = model;  // make it an ordinary blocking command
      c.functions[f].ret = FunctionModel::Ret::Void;
      out.push_back(std::move(c));
    }
    if (fn.instances > 1) {
      SpecModel c = model;
      c.functions[f].instances = 1;
      out.push_back(std::move(c));
    }
  }

  // Per-parameter feature strips (inputs and the return transfer).
  for (std::size_t f = 0; f < model.functions.size(); ++f) {
    const FunctionModel& fn = model.functions[f];
    const std::size_t nslots =
        fn.inputs.size() + (fn.ret == FunctionModel::Ret::Value ? 1 : 0);
    for (std::size_t slot = 0; slot < nslots; ++slot) {
      auto param_of = [&](SpecModel& c) -> ParamModel& {
        FunctionModel& cf = c.functions[f];
        return slot < cf.inputs.size() ? cf.inputs[slot] : cf.output;
      };
      const ParamModel& p =
          slot < fn.inputs.size() ? fn.inputs[slot] : fn.output;

      auto strip = [&](auto mutate) {
        SpecModel c = model;
        mutate(param_of(c));
        out.push_back(std::move(c));
      };
      if (p.by_ref) strip([](ParamModel& q) { q.by_ref = false; });
      if (p.dma) strip([](ParamModel& q) { q.dma = false; });
      if (p.packed) strip([](ParamModel& q) { q.packed = false; });
      if (p.bound == ParamModel::Bound::Implicit) {
        strip([](ParamModel& q) {
          q.bound = ParamModel::Bound::Explicit;
          q.count = 2;
          q.index_var.clear();
        });
      }
      if (p.bound == ParamModel::Bound::Explicit && p.count > 1) {
        strip([](ParamModel& q) { q.count = 1; });
      }
      if (p.is_array()) {
        SpecModel c = model;
        ParamModel& q = param_of(c);
        const std::string name = q.name;
        q = ParamModel{};  // collapse to a scalar int
        q.name = name;
        repair_implicit_refs(c.functions[f], name);
        out.push_back(std::move(c));
      }
      if (p.type != "int") {
        strip([](ParamModel& q) { q.type = "int"; });
      }
    }
  }

  // Directive-level simplifications.
  if (model.dma_support) {
    SpecModel c = model;
    c.dma_support = false;  // must strip '^' everywhere to stay valid
    for (FunctionModel& fn : c.functions) {
      for (ParamModel& p : fn.inputs) p.dma = false;
      fn.output.dma = false;
    }
    out.push_back(std::move(c));
  }
  if (model.packing_support) {
    SpecModel c = model;
    c.packing_support = false;
    out.push_back(std::move(c));
  }
  if (model.burst_support) {
    SpecModel c = model;
    c.burst_support = false;
    out.push_back(std::move(c));
  }
  if (model.irq_support) {
    SpecModel c = model;
    c.irq_support = false;
    out.push_back(std::move(c));
  }
  if (model.bus_width == 64) {
    SpecModel c = model;
    c.bus_width = 32;
    out.push_back(std::move(c));
  }
  for (std::size_t u = 0; u < model.user_types.size(); ++u) {
    SpecModel c = model;
    const std::string gone = c.user_types[u].name;
    c.user_types.erase(c.user_types.begin() + static_cast<long>(u));
    retype_params(c, gone);
    out.push_back(std::move(c));
  }

  return out;
}

}  // namespace

SpecModel shrink(SpecModel model, const ShrinkPredicate& predicate,
                 ShrinkStats* stats, std::uint64_t max_attempts) {
  std::uint64_t attempts = 0;
  bool progress = true;
  while (progress && attempts < max_attempts) {
    progress = false;
    for (SpecModel& c : candidates(model)) {
      if (attempts >= max_attempts) break;
      ++attempts;
      if (stats != nullptr) ++stats->attempts;
      if (predicate(c)) {
        if (stats != nullptr) ++stats->accepted;
        model = std::move(c);
        progress = true;
        break;  // restart the pass from the smaller spec
      }
    }
  }
  return model;
}

}  // namespace splice::testing
