// The fuzz campaign driver: generate → conformance-check → (on failure)
// shrink → persist a minimized repro.  Deterministic in FuzzOptions::seed:
// spec i of a campaign is generated from splitmix64(seed + i) and replayed
// with a call seed derived the same way, so any failure line's (seed,
// index) pair reproduces bit-identically on any machine.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/telemetry.hpp"
#include "testing/conformance.hpp"
#include "testing/shrink.hpp"
#include "testing/spec_gen.hpp"

namespace splice::testing {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t count = 200;       ///< specs to generate
  std::uint64_t time_budget_ms = 0;  ///< 0 = no wall-clock box
  std::string corpus_dir;          ///< where minimized repros land ("" = off)
  unsigned calls_per_function = 3;
  std::uint64_t max_cycles = 2'000'000;
  std::uint64_t shrink_attempts = 400;
  /// Backend(s) to replay on.  The default runs every spec in lockstep —
  /// interpreter and compiled backend side by side with cycle-exact trace
  /// comparison — so the fuzzer doubles as the compiled backend's
  /// differential test rig.
  OracleBackend backend = OracleBackend::kLockstep;
  /// SoC mode: generate whole multi-device topologies (generate_soc) and
  /// run them through the SoC oracle instead of single-device specs.
  /// Failures are reported un-shrunk — the repro text carries the full
  /// topology (every device spec plus the segment/master/irq header).
  bool soc = false;
  /// When non-empty, the first spec of the campaign writes its decoded
  /// simulated-time trace (Chrome/Perfetto JSON) here — a sampled look at
  /// what the replayed drivers actually did on the bus.
  std::string sim_trace_out;
  GenOptions gen;
  /// Optional counters sink: fuzz.specs, fuzz.failures, fuzz.shrinks,
  /// fuzz.calls, fuzz.bus_cycles, fuzz.backend_mismatch.
  support::telemetry::MetricsRegistry* metrics = nullptr;
  /// Per-spec progress hook (CLI prints a line every N specs).
  std::function<void(std::uint64_t index, const OracleResult&)> on_spec;
};

struct FuzzFailure {
  std::uint64_t index = 0;         ///< campaign index of the failing spec
  std::uint64_t spec_seed = 0;     ///< generate_spec() seed that made it
  std::string summary;             ///< first oracle failure line
  SpecModel minimized;             ///< shrunk repro (single-device campaigns)
  std::string soc_repro;           ///< rendered topology (SoC campaigns)
  std::string repro_path;          ///< .splice written to the corpus ("" = off)
  std::string vcd_path;            ///< waveform of the minimized failure
};

struct FuzzReport {
  std::uint64_t specs_run = 0;
  std::uint64_t calls = 0;
  std::uint64_t bus_cycles = 0;
  std::uint64_t shrink_attempts = 0;
  std::vector<FuzzFailure> failures;
  bool time_boxed_out = false;     ///< stopped by the wall-clock budget

  [[nodiscard]] bool clean() const { return failures.empty(); }
};

/// Run one campaign.  Every spec gets a "fuzz.spec" telemetry span (under
/// the installed process tracer, if any) so a traced run shows where the
/// time went; failures additionally run the shrinker and, when
/// `corpus_dir` is set, write `<stem>.splice` + `<stem>.vcd` +
/// `<stem>.txt` (the failure report) there.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

}  // namespace splice::testing
