#include "testing/conformance.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>

#include "codegen/hdl_builder.hpp"
#include "core/splice.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/observe/platform_observer.hpp"
#include "rtl/observe/soc_observer.hpp"
#include "rtl/trace.hpp"
#include "runtime/soc.hpp"
#include "rtl/vcd.hpp"
#include "runtime/platform.hpp"
#include "support/bits.hpp"
#include "support/telemetry.hpp"
#include "testing/equiv.hpp"
#include "testing/rng.hpp"

namespace splice::testing {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t elem_mask(const ir::IoParam& p) {
  return bits::low_mask(std::min(p.type.bits, 64u));
}

// The one deterministic calculation shared by the simulated hardware
// behaviour and the host-side expectation.  It must be *pure* in
// (function, instance, input elements): zero-input stubs re-run it at
// every read (see IcobStub::serve_read), so any hidden state would make
// hardware and expectation diverge by design rather than by bug.
elab::CalcResult expected_calc(const ir::FunctionDecl& fn,
                               std::uint32_t instance,
                               const std::vector<std::vector<std::uint64_t>>&
                                   inputs) {
  std::uint64_t s = splitmix64(fnv1a(fn.name) ^ (0x5eedULL + instance));
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t j = 0; j < inputs[i].size(); ++j) {
      s = splitmix64(s ^ inputs[i][j] ^ ((i * 131 + j) * 0x9e3779b9ULL));
    }
  }

  elab::CalcResult r;
  r.calc_cycles = 1 + static_cast<unsigned>(s % 12);

  if (fn.has_output()) {
    const ir::IoParam& out = fn.output;
    std::uint64_t count = 1;
    if (out.count_kind == ir::CountKind::Explicit) {
      count = out.explicit_count;
    } else if (out.count_kind == ir::CountKind::Implicit) {
      count = 0;
      for (std::size_t j = 0; j < fn.inputs.size(); ++j) {
        if (fn.inputs[j].name == out.index_var && !inputs[j].empty()) {
          count = inputs[j][0];
          break;
        }
      }
    }
    for (std::uint64_t k = 0; k < count; ++k) {
      r.outputs.push_back(splitmix64(s ^ (0xa11ceULL + k)) & elem_mask(out));
    }
  }

  const auto byref = fn.by_ref_params();
  for (std::size_t k = 0; k < byref.size(); ++k) {
    const ir::IoParam& p = fn.inputs[byref[k]];
    std::vector<std::uint64_t> vals;
    for (std::size_t j = 0; j < inputs[byref[k]].size(); ++j) {
      vals.push_back(splitmix64(s ^ (0xbeefULL + byref[k] * 4096 + j)) &
                     elem_mask(p));
    }
    r.byref.push_back(std::move(vals));
  }
  return r;
}

/// Random argument values for one call.  Index-typed scalars stay in
/// [1, 8]: the implicit element count is the index's *value*, so large or
/// zero values would blow up transfer sizes or exercise the (deliberately
/// out-of-envelope) zero-length output path.
drivergen::CallArgs make_args(Rng& rng, const ir::FunctionDecl& fn) {
  drivergen::CallArgs args;
  for (const ir::IoParam& p : fn.inputs) {
    std::uint64_t count = 1;
    if (p.count_kind == ir::CountKind::Explicit) {
      count = p.explicit_count;
    } else if (p.count_kind == ir::CountKind::Implicit) {
      count = 1;
      for (std::size_t j = 0; j < args.size(); ++j) {
        if (fn.inputs[j].name == p.index_var && !args[j].empty()) {
          count = args[j][0];
          break;
        }
      }
    }
    std::vector<std::uint64_t> vals;
    if (!p.is_array() && p.used_as_index) {
      vals.push_back(rng.range(1, 8));
    } else {
      for (std::uint64_t k = 0; k < count; ++k) vals.push_back(rng.next());
    }
    args.push_back(std::move(vals));
  }
  return args;
}

std::string render_vec(const std::vector<std::uint64_t>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << "0x" << std::hex << v[i];
  }
  os << "]";
  return os.str();
}

void check_equivalence(const ir::DeviceSpec& spec, OracleResult& res) {
  using codegen::ast::Dialect;
  auto diffs =
      structural_diff(codegen::build_arbiter_ast(spec, Dialect::Vhdl),
                      codegen::build_arbiter_ast(spec, Dialect::Verilog));
  res.failures.insert(res.failures.end(), diffs.begin(), diffs.end());
  for (const ir::FunctionDecl& fn : spec.functions) {
    diffs = structural_diff(codegen::build_stub_ast(fn, spec, Dialect::Vhdl),
                            codegen::build_stub_ast(fn, spec, Dialect::Verilog));
    res.failures.insert(res.failures.end(), diffs.begin(), diffs.end());
  }
}

void simulate_spec(const ir::DeviceSpec& spec, const OracleOptions& opt,
                   OracleResult& res) {
  auto make_behaviors = [&spec]() {
    elab::BehaviorMap behaviors;
    for (const ir::FunctionDecl& fn : spec.functions) {
      behaviors.set(fn.name, [decl = fn](const elab::CallContext& ctx) {
        return expected_calc(decl, ctx.instance_index, ctx.inputs);
      });
    }
    return behaviors;
  };

  runtime::VirtualPlatform vp(spec, make_behaviors());
  vp.sim().set_backend(opt.backend == OracleBackend::kCompiled
                           ? rtl::Simulator::Backend::kCompiled
                           : rtl::Simulator::Backend::kInterp);

  // Lockstep mode: a second platform on the compiled backend replays the
  // identical call stream; full-signal traces on both sides make the
  // comparison cycle-exact rather than just end-result-exact.
  std::unique_ptr<runtime::VirtualPlatform> shadow;
  std::unique_ptr<rtl::Trace> lock_trace;
  std::unique_ptr<rtl::Trace> shadow_trace;
  if (opt.backend == OracleBackend::kLockstep) {
    shadow = std::make_unique<runtime::VirtualPlatform>(spec,
                                                        make_behaviors());
    shadow->sim().set_backend(rtl::Simulator::Backend::kCompiled);
    lock_trace = std::make_unique<rtl::Trace>(vp.sim());
    shadow_trace = std::make_unique<rtl::Trace>(shadow->sim());
    for (const rtl::Signal& s : vp.sim().signals()) {
      lock_trace->watch(s.name());
      shadow_trace->watch(s.name());
    }
  }
  auto diverged = [&res](std::string msg) {
    ++res.backend_mismatches;
    res.failures.push_back("backend divergence: " + std::move(msg));
  };

  std::unique_ptr<rtl::Trace> trace;
  if (!opt.vcd_out.empty()) {
    trace = std::make_unique<rtl::Trace>(vp.sim());
    for (const rtl::Signal& s : vp.sim().signals()) trace->watch(s.name());
  }

  // Observability layer: always attached in lockstep mode, where the two
  // platforms' decoded transaction streams must match byte for byte (the
  // decoders watch the same wavefront the SIS checker sees, so identical
  // streams prove the backends presented identical pin activity).  Also
  // attached when the caller wants a simulated-time trace file.  Declared
  // after the platforms so the destructors detach before teardown.
  std::unique_ptr<rtl::observe::PlatformObserver> obs;
  std::unique_ptr<rtl::observe::PlatformObserver> shadow_obs;
  if (opt.backend == OracleBackend::kLockstep || !opt.sim_trace_out.empty()) {
    obs = std::make_unique<rtl::observe::PlatformObserver>(vp);
    if (shadow != nullptr) {
      shadow_obs = std::make_unique<rtl::observe::PlatformObserver>(*shadow);
    }
  }

  Rng rng(splitmix64(opt.call_seed));
  std::size_t call_index = 0;
  for (const ir::FunctionDecl& fn : spec.functions) {
    for (unsigned c = 0; c < opt.calls_per_function; ++c) {
      const auto instance =
          static_cast<std::uint32_t>(rng.range(0, fn.instances - 1));
      const drivergen::CallArgs args = make_args(rng, fn);

      // What the hardware behaviour will see: element values masked to the
      // declared type width, exactly as the ICOB reassembles them.
      std::vector<std::vector<std::uint64_t>> masked(args.size());
      for (std::size_t i = 0; i < args.size(); ++i) {
        for (std::uint64_t v : args[i]) {
          masked[i].push_back(v & elem_mask(fn.inputs[i]));
        }
      }
      const elab::CalcResult want = expected_calc(fn, instance, masked);

      try {
        // One wall-clock span per replayed driver call (visible in the
        // fuzzer's --trace-out file); args carry the call index and the
        // checker verdict so a failing call is findable in the trace.
        support::telemetry::Span call_span("conf.call", "conf");
        call_span.arg("call", call_index);
        if (obs != nullptr) obs->begin_call(fn.name, call_index);
        const runtime::CallResult got =
            vp.call(fn.name, args, instance, opt.max_cycles);
        if (obs != nullptr) obs->end_call();
        ++res.calls;
        res.bus_cycles += got.bus_cycles;
        call_span.arg("bus_cycles", got.bus_cycles);
        call_span.arg("violations", vp.checker().violations().size());
        if (shadow != nullptr) {
          try {
            if (shadow_obs != nullptr) {
              shadow_obs->begin_call(fn.name, call_index);
            }
            const runtime::CallResult sgot =
                shadow->call(fn.name, args, instance, opt.max_cycles);
            if (shadow_obs != nullptr) shadow_obs->end_call();
            if (sgot.outputs != got.outputs) {
              diverged("'" + fn.name + "' call " + std::to_string(c) +
                       ": compiled outputs " + render_vec(sgot.outputs) +
                       " != interp " + render_vec(got.outputs));
            }
            if (sgot.byref_outputs != got.byref_outputs) {
              diverged("'" + fn.name + "' call " + std::to_string(c) +
                       ": by-reference read-backs differ between backends");
            }
            if (sgot.bus_cycles != got.bus_cycles) {
              diverged("'" + fn.name + "' call " + std::to_string(c) +
                       ": compiled took " + std::to_string(sgot.bus_cycles) +
                       " bus cycles, interp " +
                       std::to_string(got.bus_cycles));
            }
          } catch (const std::exception& e) {
            diverged("'" + fn.name + "' call " + std::to_string(c) +
                     ": compiled backend threw where the interpreter "
                     "succeeded: " + e.what());
          }
        }
        if (fn.blocking()) {
          if (fn.has_output() && got.outputs != want.outputs) {
            res.failures.push_back(
                "'" + fn.name + "' instance " + std::to_string(instance) +
                " call " + std::to_string(c) + ": outputs " +
                render_vec(got.outputs) + " != expected " +
                render_vec(want.outputs));
          }
          const auto byref = fn.by_ref_params();
          for (std::size_t k = 0; k < byref.size(); ++k) {
            const std::vector<std::uint64_t>& got_k =
                k < got.byref_outputs.size() ? got.byref_outputs[k]
                                             : std::vector<std::uint64_t>{};
            if (got_k != want.byref[k]) {
              res.failures.push_back(
                  "'" + fn.name + "' instance " + std::to_string(instance) +
                  " call " + std::to_string(c) + ": byref '" +
                  fn.inputs[byref[k]].name + "' " + render_vec(got_k) +
                  " != expected " + render_vec(want.byref[k]));
            }
          }
        } else {
          // Fire-and-forget: nothing to read back, but the in-flight
          // calculation must drain before the next driver call so the stub
          // is idle again (the thesis leaves nowait pacing to the user).
          vp.sim().step(64);
          if (shadow != nullptr) shadow->sim().step(64);
        }
      } catch (const std::exception& e) {
        ++res.calls;
        res.failures.push_back("'" + fn.name + "' instance " +
                               std::to_string(instance) + " call " +
                               std::to_string(c) + ": " + e.what());
      }
      ++call_index;
      if (!res.failures.empty()) break;  // shrink from the first failure
    }
    if (!res.failures.empty()) break;
  }

  for (const std::string& v : vp.checker().violations()) {
    res.failures.push_back("SIS protocol: " + v);
  }

  if (shadow != nullptr) {
    // Cycle-exact trace equivalence: every recorded signal history must
    // match sample for sample, and the protocol checker must have reached
    // the same verdicts (including identical violation text — the cycle
    // numbers inside prove the checker saw events at the same time).
    if (shadow->sim().cycle() != vp.sim().cycle()) {
      diverged("simulated " + std::to_string(shadow->sim().cycle()) +
               " cycles on the compiled backend vs " +
               std::to_string(vp.sim().cycle()) + " on the interpreter");
    }
    for (const rtl::Signal& s : vp.sim().signals()) {
      const auto& want = lock_trace->history(s.name());
      const auto& got = shadow_trace->history(s.name());
      if (want == got) continue;
      std::size_t at = 0;
      const std::size_t n = std::min(want.size(), got.size());
      while (at < n && want[at] == got[at]) ++at;
      diverged("signal '" + s.name() + "' history differs from cycle " +
               std::to_string(at) + " (interp " +
               std::to_string(want.size()) + " samples, compiled " +
               std::to_string(got.size()) + ")");
      if (res.backend_mismatches >= 8) break;  // enough to diagnose
    }
    if (shadow->checker().violations() != vp.checker().violations()) {
      diverged("protocol checker verdicts differ between backends");
    }
  }

  if (shadow_obs != nullptr) {
    // Decoded observability streams must be byte-identical: the bus stream
    // (pin transactions + IRQ edges + DMA brackets, cycle-ordered) and the
    // driver-call timeline (op spans, poll/irq counts) are pure functions
    // of the pin wavefront and the CPU op sequence respectively.
    if (shadow_obs->bus_stream() != obs->bus_stream()) {
      diverged("decoded bus-transaction streams differ between backends");
    }
    if (shadow_obs->timeline_stream() != obs->timeline_stream()) {
      diverged("driver-call timelines differ between backends");
    }
  }

  if (obs != nullptr && !opt.sim_trace_out.empty()) {
    std::ofstream f(opt.sim_trace_out, std::ios::binary);
    f << obs->trace_json();
  }

  if (trace != nullptr) {
    rtl::write_vcd_file(*trace, vp.sim(), opt.vcd_out,
                        spec.target.device_name);
  }
}

}  // namespace

OracleResult run_conformance(const SpecModel& model,
                             const OracleOptions& opt) {
  OracleResult res;

  // Full pipeline for both target languages: parse, validate, elaborate,
  // lint, emit.  Any diagnostic-level rejection marks the candidate as
  // invalid rather than failing.
  Engine engine;
  DiagnosticEngine diags_vhdl;
  auto vhdl = engine.generate(model.render(ir::Hdl::Vhdl), diags_vhdl);
  if (!vhdl.has_value()) {
    res.spec_rejected = true;
    res.failures.push_back("VHDL generation rejected the spec:\n" +
                           diags_vhdl.render());
    return res;
  }
  DiagnosticEngine diags_vlog;
  auto verilog = engine.generate(model.render(ir::Hdl::Verilog), diags_vlog);
  if (!verilog.has_value()) {
    res.spec_rejected = true;
    res.failures.push_back("Verilog generation rejected the spec:\n" +
                           diags_vlog.render());
    return res;
  }
  if (vhdl->hardware.size() != verilog->hardware.size()) {
    res.failures.push_back(
        "hardware file count differs: " +
        std::to_string(vhdl->hardware.size()) + " (VHDL) vs " +
        std::to_string(verilog->hardware.size()) + " (Verilog)");
  }

  if (opt.check_equivalence) check_equivalence(vhdl->spec, res);
  if (opt.simulate) simulate_spec(vhdl->spec, opt, res);
  return res;
}

OracleResult run_soc_conformance(const SocModel& model,
                                 const OracleOptions& opt) {
  OracleResult res;

  // Every device spec runs through the real frontend + validator; a
  // refusal marks the whole topology invalid (the generator's validity
  // guarantee covers each device it emits).
  runtime::SocConfig config;
  for (std::size_t d = 0; d < model.devices.size(); ++d) {
    DiagnosticEngine diags;
    auto spec = frontend::parse_spec(model.devices[d].render(), diags);
    if (!spec.has_value() || !ir::validate(*spec, diags)) {
      res.spec_rejected = true;
      res.failures.push_back("device " + std::to_string(d) +
                             " rejected:\n" + diags.render());
      return res;
    }
    if (opt.check_equivalence) check_equivalence(*spec, res);

    runtime::SocDevice dev;
    dev.segment = model.segments.at(d);
    for (const ir::FunctionDecl& fn : spec->functions) {
      dev.behaviors.set(fn.name, [decl = fn](const elab::CallContext& ctx) {
        return expected_calc(decl, ctx.instance_index, ctx.inputs);
      });
    }
    dev.spec = std::move(*spec);
    config.devices.push_back(std::move(dev));
  }
  config.masters = model.masters;
  config.irq = model.irq;
  if (!opt.simulate) return res;

  runtime::SocPlatform soc(config);
  soc.sim().set_backend(opt.backend == OracleBackend::kCompiled
                            ? rtl::Simulator::Backend::kCompiled
                            : rtl::Simulator::Backend::kInterp);
  std::unique_ptr<runtime::SocPlatform> shadow;
  if (opt.backend == OracleBackend::kLockstep) {
    shadow = std::make_unique<runtime::SocPlatform>(config);
    shadow->sim().set_backend(rtl::Simulator::Backend::kCompiled);
  }
  auto diverged = [&res](std::string msg) {
    ++res.backend_mismatches;
    res.failures.push_back("backend divergence: " + std::move(msg));
  };

  // Observability: in lockstep mode the per-device decoded streams and
  // per-master call timelines must be byte-identical across backends.
  std::unique_ptr<rtl::observe::SocObserver> obs;
  std::unique_ptr<rtl::observe::SocObserver> shadow_obs;
  if (shadow != nullptr) {
    obs = std::make_unique<rtl::observe::SocObserver>(soc);
    shadow_obs = std::make_unique<rtl::observe::SocObserver>(*shadow);
  }

  // Interleaved cross-device schedule: round-robin over devices inside
  // each call round, so segment-A and segment-B traffic, bridge crossings
  // and master arbitration mix rather than running device by device.
  Rng rng(splitmix64(opt.call_seed ^ 0x50cULL));
  std::size_t call_index = 0;
  for (unsigned c = 0; c < opt.calls_per_function && res.failures.empty();
       ++c) {
    for (std::size_t d = 0;
         d < soc.device_count() && res.failures.empty(); ++d) {
      for (const ir::FunctionDecl& fn : soc.spec(d).functions) {
        const auto instance =
            static_cast<std::uint32_t>(rng.range(0, fn.instances - 1));
        const drivergen::CallArgs args = make_args(rng, fn);
        const auto master = static_cast<unsigned>(
            model.masters > 1 ? rng.range(0, model.masters - 1) : 0);
        // Interrupt-driven completion only wakes master 0 (the CPU the
        // fabric targets); other masters poll.
        const bool irq_wait = model.irq && master == 0;

        std::vector<std::vector<std::uint64_t>> masked(args.size());
        for (std::size_t i = 0; i < args.size(); ++i) {
          for (std::uint64_t v : args[i]) {
            masked[i].push_back(v & elem_mask(fn.inputs[i]));
          }
        }
        const elab::CalcResult want = expected_calc(fn, instance, masked);

        const std::string what = "device " + std::to_string(d) + " '" +
                                 fn.name + "' call " + std::to_string(c);
        try {
          if (obs != nullptr) obs->begin_call(fn.name, call_index, master);
          const runtime::CallResult got =
              soc.call(d, fn.name, args, instance, master, opt.max_cycles);
          if (obs != nullptr) obs->end_call(master);
          ++res.calls;
          res.bus_cycles += got.bus_cycles;

          runtime::CallResult sgot;
          if (shadow != nullptr) {
            shadow_obs->begin_call(fn.name, call_index, master);
            sgot = shadow->call(d, fn.name, args, instance, master,
                                opt.max_cycles);
            shadow_obs->end_call(master);
            if (sgot.outputs != got.outputs) {
              diverged(what + ": compiled outputs " +
                       render_vec(sgot.outputs) + " != interp " +
                       render_vec(got.outputs));
            }
            if (sgot.bus_cycles != got.bus_cycles) {
              diverged(what + ": compiled took " +
                       std::to_string(sgot.bus_cycles) +
                       " bus cycles, interp " +
                       std::to_string(got.bus_cycles));
            }
          }

          if (fn.blocking()) {
            if (fn.has_output() && got.outputs != want.outputs) {
              res.failures.push_back(what + ": outputs " +
                                     render_vec(got.outputs) +
                                     " != expected " +
                                     render_vec(want.outputs));
            }
          } else {
            // Nowait: the call returned before the calculation finished;
            // its completion wait (interrupt-driven on master 0 when the
            // fabric is wired, polled otherwise) must drain the latch.
            const auto wres = soc.wait_completion(
                d, fn.name, instance, irq_wait, master, opt.max_cycles);
            res.bus_cycles += wres.bus_cycles;
            if (shadow != nullptr) {
              const auto swres = shadow->wait_completion(
                  d, fn.name, instance, irq_wait, master, opt.max_cycles);
              if (swres.bus_cycles != wres.bus_cycles) {
                diverged(what + ": completion wait took " +
                         std::to_string(swres.bus_cycles) +
                         " bus cycles compiled, " +
                         std::to_string(wres.bus_cycles) + " interp");
              }
            }
          }
        } catch (const std::exception& e) {
          ++res.calls;
          res.failures.push_back(what + ": " + e.what());
        }
        ++call_index;
        if (!res.failures.empty()) break;
      }
    }
  }

  soc.sim().step(64);  // settle trailing strobes / IRQ drops
  if (shadow != nullptr) shadow->sim().step(64);

  for (const std::string& v : soc.violations()) {
    res.failures.push_back("SoC checker: " + v);
  }
  if (soc.bridge() != nullptr && soc.bridge()->timeouts() != 0) {
    res.failures.push_back("bridge watchdog fired " +
                           std::to_string(soc.bridge()->timeouts()) +
                           " time(s) on a healthy topology");
  }

  if (shadow != nullptr) {
    if (shadow->sim().cycle() != soc.sim().cycle()) {
      diverged("simulated " + std::to_string(shadow->sim().cycle()) +
               " cycles on the compiled backend vs " +
               std::to_string(soc.sim().cycle()) + " on the interpreter");
    }
    if (shadow->violations() != soc.violations()) {
      diverged("checker verdicts differ between backends");
    }
    if (shadow_obs->bus_stream() != obs->bus_stream()) {
      diverged("decoded SoC bus streams differ between backends");
    }
    if (shadow_obs->timeline_stream() != obs->timeline_stream()) {
      diverged("SoC driver-call timelines differ between backends");
    }
  }
  return res;
}

}  // namespace splice::testing
