#include "testing/spec_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace splice::testing {
namespace {

// What each built-in adapter publishes (mirrors the BusCapabilities
// records in src/adapters/) — the generator constrains its choices to
// these so that every emitted spec validates cleanly.
struct BusInfo {
  const char* name;
  bool wide;    ///< 64-bit width allowed
  bool mapped;  ///< needs %base_address
  bool dma;
  bool burst;
  bool irq;
};

constexpr BusInfo kBuses[] = {
    {"plb", true, true, true, false, true},
    {"opb", false, true, false, false, false},
    {"fcb", false, false, false, true, false},
    {"apb", false, true, false, false, true},
    {"ahb", true, true, true, true, true},
};

const BusInfo* bus_info(const std::string& name) {
  for (const auto& b : kBuses) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

// Built-in type pool: name, bit width, integer-kind (legal implicit index).
struct TypeInfo {
  const char* name;
  unsigned bits;
  bool integer;
};

constexpr TypeInfo kTypes[] = {
    {"int", 32, true},   {"short", 16, true},    {"char", 8, true},
    {"bool", 8, true},   {"unsigned", 32, true}, {"single", 32, false},
    {"double", 64, false},
};

unsigned type_bits(const SpecModel& spec, const std::string& name) {
  for (const auto& t : kTypes) {
    if (name == t.name) return t.bits;
  }
  for (const auto& u : spec.user_types) {
    if (name == u.name) return u.bits;
  }
  return 32;
}

}  // namespace

std::string ParamModel::render_exts() const {
  std::string s;
  if (is_array()) s += "*";
  if (bound == Bound::Explicit) {
    s += ":" + std::to_string(count);
  } else if (bound == Bound::Implicit) {
    s += ":" + index_var;
  }
  if (packed) s += "+";
  if (dma) s += "^";
  if (by_ref) s += "&";
  return s;
}

std::string FunctionModel::render() const {
  std::string s;
  switch (ret) {
    case Ret::Nowait:
      s = "nowait";
      break;
    case Ret::Void:
      s = "void";
      break;
    case Ret::Value:
      s = output.type + output.render_exts();
      break;
  }
  s += " " + name + "(";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (i != 0) s += ", ";
    const ParamModel& p = inputs[i];
    s += p.type + p.render_exts() + " " + p.name;
  }
  s += ")";
  if (instances > 1) s += ":" + std::to_string(instances);
  s += ";";
  return s;
}

std::string SpecModel::render(std::optional<ir::Hdl> hdl) const {
  std::string s;
  s += "%device_name " + device_name + "\n";
  s += "%bus_type " + bus_type + "\n";
  s += "%bus_width " + std::to_string(bus_width) + "\n";
  if (base_address.has_value()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%08llx",
                  static_cast<unsigned long long>(*base_address));
    s += std::string("%base_address ") + buf + "\n";
  }
  if (burst_support) s += "%burst_support true\n";
  if (dma_support) s += "%dma_support true\n";
  if (packing_support) s += "%packing_support true\n";
  if (irq_support) s += "%irq_support true\n";
  if (hdl.has_value()) {
    s += std::string("%target_hdl ") +
         (hdl == ir::Hdl::Verilog ? "verilog" : "vhdl") + "\n";
  }
  for (const auto& u : user_types) {
    s += "%user_type " + u.name + ", " + u.c_spelling + ", " +
         std::to_string(u.bits) + "\n";
  }
  s += "\n";
  for (const auto& fn : functions) {
    s += fn.render() + "\n";
  }
  return s;
}

namespace {

/// Names of inputs declared before `limit` that are legal implicit indexes
/// (§3.3: scalar, integer, transmitted earlier).
std::vector<std::string> index_candidates(const SpecModel& spec,
                                          const FunctionModel& fn,
                                          std::size_t limit) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < limit && i < fn.inputs.size(); ++i) {
    const ParamModel& p = fn.inputs[i];
    if (p.is_array()) continue;
    bool integer = false;
    for (const auto& t : kTypes) {
      if (p.type == t.name) integer = t.integer;
    }
    for (const auto& u : spec.user_types) {
      if (p.type == u.name) integer = true;  // user types are integral
    }
    if (integer) out.push_back(p.name);
  }
  return out;
}

std::string pick_type(Rng& rng, const SpecModel& spec, bool integer_only) {
  std::vector<std::string> pool;
  for (const auto& t : kTypes) {
    if (integer_only && !t.integer) continue;
    pool.push_back(t.name);
  }
  for (const auto& u : spec.user_types) pool.push_back(u.name);
  return rng.pick(pool);
}

ParamModel gen_param(Rng& rng, const SpecModel& spec, const FunctionModel& fn,
                     std::size_t position, bool is_return, bool blocking,
                     const GenOptions& opt) {
  ParamModel p;
  p.type = pick_type(rng, spec, /*integer_only=*/false);
  if (!is_return) p.name = "a" + std::to_string(position);

  const unsigned array_pct = is_return ? opt.pct_output_array : opt.pct_array;
  if (rng.chance(array_pct)) {
    // Returns are transferred last, so any input can index them; inputs
    // may only reference earlier ones (§3.3 ordering rule).
    auto idx = index_candidates(spec, fn,
                                is_return ? fn.inputs.size() : position);
    if (!idx.empty() && rng.chance(opt.pct_implicit)) {
      p.bound = ParamModel::Bound::Implicit;
      p.index_var = rng.pick(idx);
    } else {
      p.bound = ParamModel::Bound::Explicit;
      p.count = static_cast<std::uint32_t>(
          rng.range(1, opt.max_explicit_count));
    }
    // '^' and '+' are modelled as mutually exclusive, matching
    // infer_global_packing which never packs a DMA transfer.
    if (spec.dma_support && rng.chance(opt.pct_dma)) {
      p.dma = true;
    } else if (type_bits(spec, p.type) < spec.bus_width &&
               rng.chance(opt.pct_packed)) {
      p.packed = true;
    }
    if (!is_return && blocking && !p.dma && rng.chance(opt.pct_byref)) {
      p.by_ref = true;
    }
  }
  return p;
}

}  // namespace

SpecModel generate_spec(std::uint64_t seed, const GenOptions& opt) {
  Rng rng(splitmix64(seed));
  SpecModel spec;

  const BusInfo* bus = bus_info(rng.pick(opt.buses));
  assert(bus != nullptr && "unknown bus name in GenOptions::buses");
  spec.bus_type = bus->name;
  spec.bus_width = (bus->wide && rng.chance(opt.pct_wide_bus)) ? 64 : 32;
  spec.device_name = "fuzz_" + std::string(bus->name);
  if (bus->mapped) {
    // Word-aligned address in a plausible peripheral window.
    spec.base_address = 0x80000000ULL + (rng.range(0, 0xFFF) << 4);
  }
  spec.dma_support = bus->dma && rng.chance(opt.pct_dma_support);
  spec.burst_support = bus->burst && rng.chance(opt.pct_burst_support);
  spec.irq_support = bus->irq && rng.chance(opt.pct_irq_support);
  spec.packing_support = rng.chance(opt.pct_packing_support);

  if (rng.chance(opt.pct_user_types)) {
    // Widths stay <= 64: the ICOB reassembles split transfers in a 64-bit
    // accumulator, so wider user types are outside the simulated envelope.
    static const std::vector<unsigned> kWidths = {4, 8, 12, 16, 24, 40, 48};
    const unsigned n = static_cast<unsigned>(rng.range(1, 2));
    for (unsigned i = 0; i < n; ++i) {
      UserTypeModel u;
      u.bits = rng.pick(kWidths);
      u.name = "ut" + std::to_string(i) + "_" + std::to_string(u.bits);
      u.c_spelling = u.bits > 32 ? "long" : "unsigned";
      spec.user_types.push_back(u);
    }
  }

  const unsigned nfuncs = static_cast<unsigned>(
      rng.range(1, std::max(1u, opt.max_functions)));
  for (unsigned f = 0; f < nfuncs; ++f) {
    FunctionModel fn;
    fn.name = "fn" + std::to_string(f);
    if (rng.chance(opt.pct_nowait)) {
      fn.ret = FunctionModel::Ret::Nowait;
    } else if (rng.chance(opt.pct_void)) {
      fn.ret = FunctionModel::Ret::Void;
    } else {
      fn.ret = FunctionModel::Ret::Value;
    }
    fn.instances = rng.chance(opt.pct_multi_instance)
                       ? static_cast<std::uint32_t>(
                             rng.range(2, std::max(2u, opt.max_instances)))
                       : 1;

    // Zero-input nowait functions are a validation error (they could never
    // be enacted), so non-blocking declarations always get at least one.
    const unsigned min_inputs = fn.ret == FunctionModel::Ret::Nowait ? 1 : 0;
    const unsigned ninputs = static_cast<unsigned>(
        rng.range(min_inputs, std::max(min_inputs, opt.max_inputs)));
    for (unsigned i = 0; i < ninputs; ++i) {
      fn.inputs.push_back(gen_param(rng, spec, fn, i, /*is_return=*/false,
                                    fn.blocking(), opt));
    }
    if (fn.ret == FunctionModel::Ret::Value) {
      fn.output = gen_param(rng, spec, fn, 0, /*is_return=*/true,
                            /*blocking=*/true, opt);
    }
    spec.functions.push_back(std::move(fn));
  }
  return spec;
}

std::string SocModel::render() const {
  std::string out = "// soc: " + std::to_string(devices.size()) +
                    " devices, " + std::to_string(masters) + " master(s)" +
                    (irq ? ", irq fabric" : "") + "\n";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    out += "// --- device " + std::to_string(i) + " (segment " +
           std::to_string(segments[i]) + ") ---\n";
    out += devices[i].render();
  }
  return out;
}

SocModel generate_soc(std::uint64_t seed, const GenOptions& opt) {
  Rng rng(splitmix64(seed ^ 0x50cULL));
  SocModel soc;

  // Narrow the per-device envelope to what the SoC fabric exercises: the
  // CoreConnect window protocol (every device answers a PLB/OPB window via
  // the native adapter), word transfers only.  The single-device campaign
  // keeps covering DMA, bursts and the other bus protocols.
  GenOptions dev_opt = opt;
  dev_opt.buses = {"plb"};
  dev_opt.max_functions = std::min(opt.max_functions, 3u);
  dev_opt.max_inputs = std::min(opt.max_inputs, 3u);
  dev_opt.max_instances = std::min(opt.max_instances, 2u);
  dev_opt.pct_dma_support = 0;
  dev_opt.pct_burst_support = 0;
  dev_opt.pct_irq_support = 0;  // the SoC assembly wires the fabric itself
  dev_opt.pct_wide_bus = 0;     // one shared width across the topology
  dev_opt.pct_nowait = std::max(opt.pct_nowait, 30u);  // completion paths

  const unsigned n = static_cast<unsigned>(rng.range(2, 4));
  for (unsigned i = 0; i < n; ++i) {
    SpecModel dev = generate_spec(splitmix64(seed + 0x1000 + i), dev_opt);
    dev.device_name = "soc_d" + std::to_string(i);
    soc.devices.push_back(std::move(dev));
    // Device 0 anchors the root segment; the rest scatter across the
    // bridge so most topologies exercise both segments.
    soc.segments.push_back(i == 0 ? 0u : (rng.chance(60) ? 1u : 0u));
  }
  soc.masters = rng.chance(50) ? 2 : 1;
  soc.irq = rng.chance(60);
  return soc;
}

}  // namespace splice::testing
