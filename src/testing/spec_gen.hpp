// Property-based specification generator: a seeded random source of
// *valid* Splice interface declarations sweeping every grammar feature of
// thesis chapter 3 — explicit/implicit pointer bounds, packing '+', DMA
// '^', by-reference '&', multiple instances, nowait — weighted so that
// feature *combinations* (packed + multi-instance, implicit + DMA, ...)
// appear, and constrained by the selected bus adapter's capabilities so
// that every generated spec passes Section 3.3 validation by construction.
//
// The generator's canonical output is a SpecModel: a small mutable mirror
// of the surface syntax that renders to `.splice` text.  The conformance
// oracle consumes the rendered text (exercising the real frontend), and
// the shrinker mutates the model — so a minimized failure is always a
// parseable spec a human can re-run with the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/device.hpp"
#include "testing/rng.hpp"

namespace splice::testing {

/// One input parameter or the return transfer of a declaration.
struct ParamModel {
  enum class Bound : std::uint8_t { Scalar, Explicit, Implicit };

  std::string type = "int";  ///< declaration spelling
  std::string name;          ///< empty for return transfers
  Bound bound = Bound::Scalar;
  std::uint32_t count = 1;   ///< Explicit bound
  std::string index_var;     ///< Implicit bound (§3.1.2)
  bool packed = false;       ///< '+' (§3.1.3)
  bool dma = false;          ///< '^' (§3.1.5)
  bool by_ref = false;       ///< '&' (§10.2)

  [[nodiscard]] bool is_array() const { return bound != Bound::Scalar; }
  /// The declaration-site spelling of the extensions: "*:4^+" etc.
  [[nodiscard]] std::string render_exts() const;
};

struct FunctionModel {
  enum class Ret : std::uint8_t { Value, Void, Nowait };

  std::string name;
  Ret ret = Ret::Void;
  ParamModel output;  ///< meaningful when ret == Value
  std::vector<ParamModel> inputs;
  std::uint32_t instances = 1;

  [[nodiscard]] bool blocking() const { return ret != Ret::Nowait; }
  [[nodiscard]] std::string render() const;
};

struct UserTypeModel {
  std::string name;
  std::string c_spelling;
  unsigned bits = 32;
};

/// A complete specification in surface-syntax terms.
struct SpecModel {
  std::string device_name = "fuzz_dev";
  std::string bus_type = "plb";
  unsigned bus_width = 32;
  std::optional<std::uint64_t> base_address;
  bool burst_support = false;
  bool dma_support = false;
  bool packing_support = false;
  bool irq_support = false;
  std::vector<UserTypeModel> user_types;
  std::vector<FunctionModel> functions;

  /// Render as `.splice` text.  `hdl` adds a %target_hdl directive; the
  /// oracle renders the same model once per target language.
  [[nodiscard]] std::string render(
      std::optional<ir::Hdl> hdl = std::nullopt) const;
};

/// Generation weights (percent probabilities / inclusive ranges).  The
/// defaults sweep every feature; tests narrow them to focus a dimension.
struct GenOptions {
  std::vector<std::string> buses = {"plb", "opb", "fcb", "apb", "ahb"};
  unsigned max_functions = 4;
  unsigned max_inputs = 4;
  unsigned max_explicit_count = 8;
  unsigned max_instances = 3;
  unsigned pct_array = 40;        ///< a parameter gets a pointer bound
  unsigned pct_implicit = 40;     ///< an array bound is implicit (given a
                                  ///< legal earlier index exists)
  unsigned pct_packed = 35;       ///< eligible array asks for '+'
  unsigned pct_dma = 35;          ///< eligible array asks for '^'
  unsigned pct_byref = 20;        ///< eligible array asks for '&'
  unsigned pct_nowait = 20;
  unsigned pct_void = 25;
  unsigned pct_multi_instance = 25;
  unsigned pct_dma_support = 50;  ///< when the bus can do DMA
  unsigned pct_burst_support = 50;
  unsigned pct_irq_support = 30;
  unsigned pct_packing_support = 25;
  unsigned pct_user_types = 35;   ///< spec declares user types
  unsigned pct_output_array = 30;
  unsigned pct_wide_bus = 30;     ///< pick 64-bit width when allowed
};

/// Generate one valid spec.  Deterministic in (seed, options): the same
/// pair always yields the same model.  Specs honor the Section 3.3 rules
/// and the selected bus's published capabilities, so `ir::validate` accepts
/// them (the fuzzer's property tests assert exactly that).
[[nodiscard]] SpecModel generate_spec(std::uint64_t seed,
                                      const GenOptions& options = {});

/// A whole generated SoC topology: several devices spread over the root
/// PLB segment and (usually) an OPB sub-segment behind the bridge, with a
/// master count and interrupt-fabric flag for the platform assembly.
struct SocModel {
  std::vector<SpecModel> devices;
  std::vector<unsigned> segments;  ///< parallel to devices; 0 root, 1 OPB
  unsigned masters = 1;
  bool irq = false;

  /// Human-readable repro text: the topology header plus every device's
  /// rendered `.splice` spec under a banner line.
  [[nodiscard]] std::string render() const;
};

/// Generate one valid SoC configuration (2..4 devices, device 0 always on
/// the root segment, unique device names).  Deterministic in (seed,
/// options).  Per-device specs are narrowed to the CoreConnect window
/// protocol the SoC fabric speaks — bus type plb, no DMA/burst — while
/// still sweeping arrays, packing, by-reference, instances and nowait.
[[nodiscard]] SocModel generate_soc(std::uint64_t seed,
                                    const GenOptions& options = {});

}  // namespace splice::testing
