// Differential oracle over the language-neutral HDL AST: the VHDL and
// Verilog pipelines must elaborate any spec into *structurally* equivalent
// modules — same ports and widths, same FSM states, same signals, same
// functional constants, same instantiations.  Dialects legitimately
// diverge in idiom only (comment text, guard operand order, the VHDL-only
// width-0 "guidance" constants, Verilog literal padding), so the diff
// compares structure and deliberately ignores those channels.
#pragma once

#include <string>
#include <vector>

#include "codegen/hdl_ast.hpp"

namespace splice::testing {

/// Compare two elaborations of the same logical module.  Returns one
/// human-readable line per structural difference; empty means equivalent.
[[nodiscard]] std::vector<std::string> structural_diff(
    const codegen::ast::Module& a, const codegen::ast::Module& b);

}  // namespace splice::testing
