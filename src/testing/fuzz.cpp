#include "testing/fuzz.hpp"

#include <chrono>
#include <filesystem>
#include <fstream>

namespace splice::testing {
namespace {

OracleOptions oracle_options(const FuzzOptions& opt, std::uint64_t index) {
  OracleOptions o;
  o.call_seed = splitmix64(opt.seed ^ (index * 0x9e3779b97f4a7c15ULL) ^
                           0xca11ULL);
  o.calls_per_function = opt.calls_per_function;
  o.max_cycles = opt.max_cycles;
  o.backend = opt.backend;
  if (index == 0) o.sim_trace_out = opt.sim_trace_out;
  return o;
}

void persist_failure(const FuzzOptions& opt, FuzzFailure& failure,
                     const std::vector<std::string>& lines) {
  if (opt.corpus_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opt.corpus_dir, ec);

  const std::string stem = "fuzz_seed" + std::to_string(opt.seed) + "_i" +
                           std::to_string(failure.index);
  const fs::path base = fs::path(opt.corpus_dir) / stem;

  failure.repro_path = (base.string() + ".splice");
  std::ofstream spec_out(failure.repro_path);
  spec_out << "// minimized repro: splice-fuzz --seed "
           << std::to_string(opt.seed) << ", spec index " << failure.index
           << "\n"
           << failure.minimized.render();

  std::ofstream report(base.string() + ".txt");
  report << "spec seed: " << failure.spec_seed << "\n"
         << "campaign:  --seed " << opt.seed << " index " << failure.index
         << "\n\n";
  for (const std::string& line : lines) report << line << "\n";

  // Re-run the minimized spec with full waveform capture so the repro
  // ships with evidence a human can open in a viewer.
  failure.vcd_path = base.string() + ".vcd";
  OracleOptions o = oracle_options(opt, failure.index);
  o.vcd_out = failure.vcd_path;
  (void)run_conformance(failure.minimized, o);
}

void persist_soc_failure(const FuzzOptions& opt, FuzzFailure& failure,
                         const std::vector<std::string>& lines) {
  if (opt.corpus_dir.empty()) return;
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(opt.corpus_dir, ec);

  const std::string stem = "fuzz_soc_seed" + std::to_string(opt.seed) +
                           "_i" + std::to_string(failure.index);
  const fs::path base = fs::path(opt.corpus_dir) / stem;

  failure.repro_path = (base.string() + ".splice");
  std::ofstream spec_out(failure.repro_path);
  spec_out << "// SoC repro: splice-fuzz --soc --seed "
           << std::to_string(opt.seed) << ", config index " << failure.index
           << "\n"
           << failure.soc_repro;

  std::ofstream report(base.string() + ".txt");
  report << "config seed: " << failure.spec_seed << "\n"
         << "campaign:    --soc --seed " << opt.seed << " index "
         << failure.index << "\n\n";
  for (const std::string& line : lines) report << line << "\n";
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& opt) {
  using Clock = std::chrono::steady_clock;
  namespace tel = support::telemetry;

  FuzzReport report;
  const Clock::time_point start = Clock::now();
  const auto out_of_time = [&] {
    if (opt.time_budget_ms == 0) return false;
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        Clock::now() - start);
    return static_cast<std::uint64_t>(elapsed.count()) >= opt.time_budget_ms;
  };

  tel::Span campaign("fuzz.campaign", "fuzz");
  campaign.arg("seed", opt.seed);

  for (std::uint64_t i = 0; i < opt.count; ++i) {
    if (out_of_time()) {
      report.time_boxed_out = true;
      break;
    }
    const std::uint64_t spec_seed = splitmix64(opt.seed + i);

    OracleResult result;
    SpecModel model;
    SocModel soc_model;
    {
      tel::Span span("fuzz.spec", "fuzz");
      span.arg("index", i);
      if (opt.soc) {
        soc_model = generate_soc(spec_seed, opt.gen);
        result = run_soc_conformance(soc_model, oracle_options(opt, i));
      } else {
        model = generate_spec(spec_seed, opt.gen);
        result = run_conformance(model, oracle_options(opt, i));
      }
      span.arg("calls", result.calls);
      span.arg("failures", result.failures.size());
    }

    ++report.specs_run;
    report.calls += result.calls;
    report.bus_cycles += result.bus_cycles;
    if (opt.metrics != nullptr) {
      opt.metrics->counter("fuzz.specs").add(1);
      opt.metrics->counter("fuzz.calls").add(result.calls);
      opt.metrics->counter("fuzz.bus_cycles").add(result.bus_cycles);
      if (result.backend_mismatches != 0) {
        opt.metrics->counter("fuzz.backend_mismatch")
            .add(result.backend_mismatches);
      }
    }

    if (opt.soc && !result.ok()) {
      // SoC failures are reported un-shrunk: the topology is the repro
      // (the shrinker's SpecModel mutations don't model segments/masters).
      FuzzFailure f;
      f.index = i;
      f.spec_seed = spec_seed;
      f.summary = result.failures.empty() ? "SoC config rejected"
                                          : result.failures.front();
      f.soc_repro = soc_model.render();
      persist_soc_failure(opt, f, result.failures);
      report.failures.push_back(std::move(f));
      if (opt.metrics != nullptr) opt.metrics->counter("fuzz.failures").add(1);
    } else if (result.spec_rejected) {
      // The generator's validity guarantee failed — that is itself a bug;
      // surface it like any oracle failure (no shrinking: the predicate
      // cannot distinguish "still rejected" from "rejected differently").
      FuzzFailure f;
      f.index = i;
      f.spec_seed = spec_seed;
      f.summary = result.failures.empty() ? "spec rejected"
                                          : result.failures.front();
      f.minimized = model;
      persist_failure(opt, f, result.failures);
      report.failures.push_back(std::move(f));
      if (opt.metrics != nullptr) opt.metrics->counter("fuzz.failures").add(1);
    } else if (!result.failures.empty()) {
      const OracleOptions o = oracle_options(opt, i);
      ShrinkStats stats;
      SpecModel minimized;
      {
        tel::Span span("fuzz.shrink", "fuzz");
        span.arg("index", i);
        minimized = shrink(
            model,
            [&](const SpecModel& candidate) {
              const OracleResult r = run_conformance(candidate, o);
              return !r.spec_rejected && !r.failures.empty();
            },
            &stats, opt.shrink_attempts);
        span.arg("attempts", stats.attempts);
      }
      report.shrink_attempts += stats.attempts;
      if (opt.metrics != nullptr) {
        opt.metrics->counter("fuzz.shrinks").add(stats.attempts);
        opt.metrics->counter("fuzz.failures").add(1);
      }

      FuzzFailure f;
      f.index = i;
      f.spec_seed = spec_seed;
      f.summary = result.failures.front();
      f.minimized = std::move(minimized);
      persist_failure(opt, f, result.failures);
      report.failures.push_back(std::move(f));
    }

    if (opt.on_spec) opt.on_spec(i, result);
  }

  campaign.arg("specs", report.specs_run);
  campaign.arg("failures", report.failures.size());
  return report;
}

}  // namespace splice::testing
