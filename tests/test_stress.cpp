// Stress and scale tests: wide buses, many functions and instances,
// long mixed call sequences, and reset behaviour — the configurations a
// downstream adopter would hit first.
#include <gtest/gtest.h>

#include <sstream>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

TEST(Stress, SixtyFourBitPlbRoundTrips) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name wide\n%bus_type plb\n%bus_width 64\n"
      "%base_address 0x80000000\n"
      "%user_type llong, unsigned long long, 64\n"
      "llong xorshift(llong v, int k);\n",
      diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  b.set("xorshift", [](const elab::CallContext& ctx) {
    return elab::CalcResult{2, {ctx.scalar(0) ^ (ctx.scalar(0) >>
                                                 ctx.scalar(1))}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  const std::uint64_t v = 0xFEDCBA9876543210ull;
  auto r = vp.call("xorshift", {{v}, {13}});
  EXPECT_EQ(r.outputs.at(0), v ^ (v >> 13));
  // A 64-bit value over a 64-bit bus needs no split: one write.
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Stress, TwentyFunctionsShareOneBusAttachment) {
  std::ostringstream text;
  text << "%device_name many\n%bus_type plb\n%bus_width 32\n"
          "%base_address 0x80000000\n";
  for (int i = 0; i < 20; ++i) {
    text << "int f" << i << "(int x);\n";
  }
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text.str(), diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  for (int i = 0; i < 20; ++i) {
    b.set("f" + std::to_string(i), [i](const elab::CallContext& ctx) {
      return elab::CalcResult{1, {ctx.scalar(0) * 1000 + i}};
    });
  }
  runtime::VirtualPlatform vp(std::move(*spec), b);
  // Interleaved calls across every function.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      auto r = vp.call("f" + std::to_string(i),
                       {{static_cast<std::uint64_t>(round)}});
      EXPECT_EQ(r.outputs.at(0),
                static_cast<std::uint64_t>(round) * 1000 + i);
    }
  }
  EXPECT_TRUE(vp.checker().clean());
  EXPECT_EQ(vp.spec().total_instances(), 20u);
}

TEST(Stress, FortyInstancesFitTheFuncIdSpace) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name inst\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int x):40;\n",
      diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{1, {ctx.scalar(0) + ctx.instance_index}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  for (std::uint32_t inst : {0u, 7u, 20u, 39u}) {
    auto r = vp.call("f", {{100}}, inst);
    EXPECT_EQ(r.outputs.at(0), 100u + inst);
  }
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Stress, LongMixedSoakStaysClean) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name soak\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int sum(char n, int*:n xs);\n"
      "int echo(int v);\n"
      "nowait poke(int v);\n"
      "void barrier();\n",
      diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  auto poked = std::make_shared<std::uint64_t>(0);
  b.set("sum", [](const elab::CallContext& ctx) {
    std::uint64_t s = 0;
    for (auto v : ctx.array(1)) s += v;
    return elab::CalcResult{4, {s}};
  });
  b.set("echo", [](const elab::CallContext& ctx) {
    return elab::CalcResult{1, {ctx.scalar(0)}};
  });
  b.set("poke", [poked](const elab::CallContext& ctx) {
    *poked += ctx.scalar(0);
    return elab::CalcResult{2, {}};
  });
  b.set("barrier",
        [](const elab::CallContext&) { return elab::CalcResult{1, {}}; });

  runtime::VirtualPlatform vp(std::move(*spec), b);
  std::uint64_t state = 42;
  std::uint64_t expected_pokes = 0;
  for (int i = 0; i < 100; ++i) {
    state = state * 1664525u + 1013904223u;
    switch (state % 4) {
      case 0: {
        const unsigned n = 1 + state % 7;
        std::vector<std::uint64_t> xs;
        std::uint64_t want = 0;
        for (unsigned k = 0; k < n; ++k) {
          xs.push_back((state >> k) & 0xFFFF);
          want += xs.back();
        }
        auto r = vp.call("sum", {{n}, xs});
        ASSERT_EQ(r.outputs.at(0), want) << "iteration " << i;
        break;
      }
      case 1: {
        auto r = vp.call("echo", {{state & 0xFFFFFFFF}});
        ASSERT_EQ(r.outputs.at(0), state & 0xFFFFFFFF);
        break;
      }
      case 2:
        (void)vp.call("poke", {{static_cast<std::uint64_t>(i)}});
        expected_pokes += static_cast<std::uint64_t>(i);
        break;
      case 3:
        (void)vp.call("barrier");
        break;
    }
  }
  // Drain any in-flight nowait calculations, then check the side effects.
  (void)vp.call("barrier");
  vp.sim().step(64);
  EXPECT_EQ(*poked, expected_pokes);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

TEST(Stress, ResetMidTransactionRecovers) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name rst\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int a, int b);\n",
      diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{3, {ctx.scalar(0) + ctx.scalar(1)}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  EXPECT_EQ(vp.call("f", {{1}, {2}}).outputs.at(0), 3u);
  // Hard reset of every module, then the device must work again.
  vp.sim().reset();
  EXPECT_EQ(vp.call("f", {{10}, {20}}).outputs.at(0), 30u);
}

TEST(Stress, HugeArrayTransferOnFcbBursts) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name big\n%bus_type fcb\n%bus_width 32\n"
      "%burst_support true\nint sum(char n, int*:n xs);\n",
      diags);
  ASSERT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  elab::BehaviorMap b;
  b.set("sum", [](const elab::CallContext& ctx) {
    std::uint64_t s = 0;
    for (auto v : ctx.array(1)) s += v;
    return elab::CalcResult{8, {s}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), b);
  std::vector<std::uint64_t> xs;
  std::uint64_t want = 0;
  for (unsigned i = 0; i < 200; ++i) {
    xs.push_back(i * 3 + 1);
    want += xs.back();
  }
  auto r = vp.call("sum", {{200}, xs}, 0, 100'000);
  EXPECT_EQ(r.outputs.at(0), want & 0xFFFFFFFFull);
  EXPECT_TRUE(vp.checker().clean());
}

}  // namespace
