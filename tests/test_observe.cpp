// The simulation observability layer: pin-level transaction decoders, the
// SIS call timeline (ICOB phase spans), DMA burst brackets, IRQ edges, the
// hotspot profiler, and the simulated-time Chrome trace emission.  The
// load-bearing property throughout is backend determinism — every decoded
// stream must be byte-identical between the interpreter and the compiled
// executor, because the lockstep conformance harness asserts exactly that
// over the whole fuzz campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "rtl/compile/executor.hpp"
#include "rtl/observe/platform_observer.hpp"
#include "rtl/observe/profile.hpp"
#include "rtl/observe/txn.hpp"
#include "rtl/simulator.hpp"
#include "runtime/platform.hpp"
#include "testing/conformance.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using namespace splice::rtl;
namespace obs = splice::rtl::observe;
namespace st = splice::testing;

// ---------------------------------------------------------------------------
// Timer platform helpers (the chapter-8 worked example on every bus).

struct ObservedRun {
  std::string bus_stream;
  std::string timeline_stream;
  std::uint64_t transactions = 0;
  std::uint64_t stall_cycles = 0;
  std::vector<obs::BusEvent> events;
  std::vector<obs::CallSpan> calls;
  std::string trace_json;
};

ObservedRun run_timer_observed(const std::string& bus,
                               Simulator::Backend be) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(bus),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  vp.sim().set_backend(be);
  obs::PlatformObserver observer(vp);

  const std::vector<std::pair<std::string, drivergen::CallArgs>> script = {
      {"enable", {}},        {"set_threshold", {{25}}},
      {"get_threshold", {}}, {"get_snapshot", {}},
      {"get_status", {}},    {"disable", {}},
  };
  std::size_t index = 0;
  for (const auto& [fn, args] : script) {
    observer.begin_call(fn, index++);
    vp.call(fn, args);
    observer.end_call();
  }
  EXPECT_TRUE(vp.checker().clean())
      << bus << ": " << vp.checker().violations().front();

  ObservedRun run;
  run.bus_stream = observer.bus_stream();
  run.timeline_stream = observer.timeline_stream();
  run.transactions = observer.transactions();
  run.stall_cycles = observer.stall_cycles();
  run.events = observer.merged_events();
  run.calls = observer.timeline().calls();
  run.trace_json = observer.trace_json();
  return run;
}

const char* const kBuses[] = {"plb", "opb", "apb", "ahb", "fcb"};

// ---------------------------------------------------------------------------
// Generated-spec helper: full frontend pipeline, then a platform with a
// fixed calculation behaviour so Value-returning functions answer.

struct GeneratedPlatform {
  ir::DeviceSpec spec;
  std::unique_ptr<runtime::VirtualPlatform> vp;
};

GeneratedPlatform build_platform(const st::SpecModel& model) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(model.render(), diags);
  EXPECT_TRUE(artifacts.has_value()) << diags.render();
  GeneratedPlatform gp;
  gp.spec = artifacts->spec;
  elab::BehaviorMap behaviors;
  for (const ir::FunctionDecl& fn : gp.spec.functions) {
    behaviors.set(fn.name, [](const elab::CallContext&) {
      return elab::CalcResult{3, {0x5A}};
    });
  }
  gp.vp = std::make_unique<runtime::VirtualPlatform>(gp.spec,
                                                     std::move(behaviors));
  return gp;
}

// ---------------------------------------------------------------------------

TEST(Observe, TimerPlatformDecodesTransactionsOnEveryBus) {
  for (const std::string bus : kBuses) {
    SCOPED_TRACE(bus);
    const ObservedRun run =
        run_timer_observed(bus, Simulator::Backend::kInterp);
    // Every declaration moves at least one word, so the decoder must have
    // reconstructed transfers on every protocol.
    EXPECT_GT(run.transactions, 0u);
    EXPECT_FALSE(run.events.empty());
    EXPECT_FALSE(run.bus_stream.empty());
    // set_threshold writes a 64-bit value: at least one decoded Write.
    EXPECT_NE(run.bus_stream.find("WR"), std::string::npos);
    // get_threshold reads one back: at least one decoded Read.
    EXPECT_NE(run.bus_stream.find("RD"), std::string::npos);
    for (const obs::BusEvent& e : run.events) {
      EXPECT_LE(e.start_cycle, e.end_cycle);
    }
    // merged_events is sorted by (end, start) — the stream the harness
    // byte-compares must be a pure function of the events.
    EXPECT_TRUE(std::is_sorted(
        run.events.begin(), run.events.end(),
        [](const obs::BusEvent& a, const obs::BusEvent& b) {
          return a.end_cycle != b.end_cycle ? a.end_cycle < b.end_cycle
                                            : a.start_cycle < b.start_cycle;
        }));
  }
}

TEST(Observe, StreamsByteIdenticalAcrossBackendsOnEveryBus) {
  for (const std::string bus : kBuses) {
    SCOPED_TRACE(bus);
    const ObservedRun interp =
        run_timer_observed(bus, Simulator::Backend::kInterp);
    const ObservedRun compiled =
        run_timer_observed(bus, Simulator::Backend::kCompiled);
    EXPECT_EQ(interp.bus_stream, compiled.bus_stream);
    EXPECT_EQ(interp.timeline_stream, compiled.timeline_stream);
    EXPECT_EQ(interp.transactions, compiled.transactions);
    EXPECT_EQ(interp.stall_cycles, compiled.stall_cycles);
    // Even the rendered Chrome trace (simulated-time axis only) matches.
    EXPECT_EQ(interp.trace_json, compiled.trace_json);
  }
}

TEST(Observe, TimelineNestsPhasesAndOpsInsideCalls) {
  const ObservedRun run =
      run_timer_observed("plb", Simulator::Backend::kInterp);
  ASSERT_EQ(run.calls.size(), 6u);
  EXPECT_EQ(run.calls[0].function, "enable");
  EXPECT_EQ(run.calls[1].function, "set_threshold");
  for (const obs::CallSpan& call : run.calls) {
    SCOPED_TRACE(call.function);
    EXPECT_LE(call.start, call.end);
    ASSERT_FALSE(call.ops.empty());
    const auto phases = call.phases();
    ASSERT_FALSE(phases.empty());
    for (const obs::PhaseSpan& p : phases) {
      EXPECT_GE(p.start, call.start);
      EXPECT_LE(p.end, call.end);
      EXPECT_LE(p.start, p.end);
    }
    for (std::size_t i = 1; i < phases.size(); ++i) {
      // Phase spans tile the call left to right and never repeat a phase
      // back to back (contiguous same-phase ops merge).
      EXPECT_GE(phases[i].start, phases[i - 1].end);
      EXPECT_NE(phases[i].phase, phases[i - 1].phase);
    }
    for (const obs::OpSpan& op : call.ops) {
      EXPECT_GE(op.start, call.start);
      EXPECT_LE(op.end, call.end);
    }
  }
  // A Value-returning declaration walks the full ICOB: the read-back is an
  // Output phase preceded by the Calc wait.
  const obs::CallSpan& get = run.calls[2];  // get_threshold
  const auto phases = get.phases();
  bool saw_calc = false, saw_output = false;
  for (const obs::PhaseSpan& p : phases) {
    saw_calc |= p.phase == obs::IcobPhase::Calc;
    saw_output |= p.phase == obs::IcobPhase::Output;
  }
  EXPECT_TRUE(saw_calc);
  EXPECT_TRUE(saw_output);
  // set_threshold pushes a 64-bit input: its first phase is Input.
  EXPECT_EQ(run.calls[1].phases().front().phase, obs::IcobPhase::Input);
}

TEST(Observe, DmaTransfersEmitBurstBracketsWithBeatCounts) {
  st::SpecModel model;
  model.device_name = "dma_dev";
  model.bus_type = "plb";
  model.base_address = 0x40000000;
  model.dma_support = true;
  st::FunctionModel f;
  f.name = "stream_in";
  f.ret = st::FunctionModel::Ret::Value;
  f.output.type = "int";
  st::ParamModel p;
  p.type = "int";
  p.name = "data";
  p.bound = st::ParamModel::Bound::Explicit;
  p.count = 4;
  p.dma = true;
  f.inputs = {p};
  model.functions = {f};

  GeneratedPlatform gp = build_platform(model);
  obs::PlatformObserver observer(*gp.vp);
  observer.begin_call("stream_in", 0);
  gp.vp->call("stream_in", {{1, 2, 3, 4}});
  observer.end_call();
  EXPECT_TRUE(gp.vp->checker().clean());

  const std::vector<obs::BusEvent>& dma = observer.timeline().dma_events();
  ASSERT_EQ(dma.size(), 2u);
  EXPECT_EQ(dma[0].kind, obs::EventKind::BurstBegin);
  EXPECT_EQ(dma[1].kind, obs::EventKind::BurstEnd);
  EXPECT_EQ(dma[0].beats, 4u);
  EXPECT_EQ(dma[1].beats, 4u);
  EXPECT_LE(dma[0].start_cycle, dma[1].start_cycle);
  // The brackets flow into the merged stream and its rendering.
  EXPECT_NE(observer.bus_stream().find("DMA+"), std::string::npos);
  EXPECT_NE(observer.bus_stream().find("DMA-"), std::string::npos);
}

TEST(Observe, IrqDrivenCallsEmitInterruptEdges) {
  // APB is the strictly synchronous protocol: WAIT_FOR_RESULTS really
  // waits (on PLB-family buses it collapses to a NULL statement, §6.1.1),
  // and %irq_support turns that wait into a sleep on the interrupt line.
  st::SpecModel model;
  model.device_name = "irq_dev";
  model.bus_type = "apb";
  model.base_address = 0x40000000;
  model.irq_support = true;
  st::FunctionModel f;
  f.name = "compute";
  f.ret = st::FunctionModel::Ret::Value;
  f.output.type = "int";
  st::ParamModel p;
  p.type = "int";
  p.name = "a";
  f.inputs = {p};
  model.functions = {f};

  GeneratedPlatform gp = build_platform(model);
  obs::PlatformObserver observer(*gp.vp);
  observer.begin_call("compute", 0);
  gp.vp->call("compute", {{7}});
  observer.end_call();
  EXPECT_TRUE(gp.vp->checker().clean());

  // With %irq_support the calc wait sleeps on the interrupt line instead of
  // polling: the timeline counts the taken IRQ and the line decoder sees
  // the assert/clear edge pair.
  ASSERT_EQ(observer.timeline().calls().size(), 1u);
  EXPECT_GE(observer.timeline().calls().front().irqs, 1u);
  bool assert_seen = false, ack_seen = false;
  for (const obs::BusEvent& e : observer.merged_events()) {
    assert_seen |= e.kind == obs::EventKind::IrqAssert;
    ack_seen |= e.kind == obs::EventKind::IrqAck;
  }
  EXPECT_TRUE(assert_seen);
  EXPECT_TRUE(ack_seen);
  EXPECT_NE(observer.bus_stream().find("IRQ+"), std::string::npos);
}

TEST(Observe, SimTraceJsonCarriesNestedSpanCategories) {
  const ObservedRun run =
      run_timer_observed("plb", Simulator::Backend::kInterp);
  // Structural smoke over the Chrome trace-event JSON: one span category
  // per nesting level, complete-span phase markers, and the trailing
  // close of the traceEvents array.
  EXPECT_NE(run.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"cat\":\"sim.call\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"cat\":\"sim.phase\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"cat\":\"sim.op\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"cat\":\"sim.bus\""), std::string::npos);
  EXPECT_NE(run.trace_json.find("\"ph\":\"X\""), std::string::npos);
  // Phase names from the thesis' ICOB vocabulary appear as span names.
  EXPECT_NE(run.trace_json.find("\"name\":\"input\""), std::string::npos);
}

TEST(Observe, ProfilerCountersOnlySurfaceWhenEnabled) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);

  vp.call("enable");
  auto snap = vp.sim().metrics_snapshot();
  for (const auto& [name, value] : snap.counters) {
    EXPECT_EQ(name.rfind("sim.prof.", 0), std::string::npos)
        << name << " leaked into the default stats surface";
  }

  vp.sim().set_profiling(true);
  vp.call("set_threshold", {{25}});
  snap = vp.sim().metrics_snapshot();
  bool saw_wake = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("sim.prof.wakes.", 0) == 0 && value > 0) saw_wake = true;
  }
  EXPECT_TRUE(saw_wake);

  // The rendered report names the hot modules in both formats.
  const std::string text = obs::render_profile(vp.sim());
  EXPECT_NE(text.find("interp"), std::string::npos);
  const std::string json = obs::render_profile(
      vp.sim(), support::telemetry::Format::Json);
  EXPECT_NE(json.find("\"backend\""), std::string::npos);
  EXPECT_NE(json.find("\"modules\""), std::string::npos);
}

TEST(Observe, CompiledProfilerCountsRegionRuns) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  vp.sim().set_backend(Simulator::Backend::kCompiled);
  vp.sim().set_profiling(true);
  vp.call("enable");
  vp.call("get_status");

  const compile::Executor* exec = vp.sim().compiled();
  ASSERT_NE(exec, nullptr);
  const auto regions = exec->region_profiles();
  ASSERT_FALSE(regions.empty());
  std::uint64_t total_runs = 0;
  for (const auto& r : regions) total_runs += r.runs;
  EXPECT_GT(total_runs, 0u);

  auto snap = vp.sim().metrics_snapshot();
  bool saw_region = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind("sim.prof.region.", 0) == 0) saw_region = true;
  }
  EXPECT_TRUE(saw_region);
  const std::string json = obs::render_profile(
      vp.sim(), support::telemetry::Format::Json);
  EXPECT_NE(json.find("\"regions\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"compiled\""), std::string::npos);
}

TEST(Observe, ObserverAttachmentDoesNotPerturbTheSimulation) {
  // Same platform, same script, with and without the observer: identical
  // call outputs and bus-cycle counts.  Decoders must be pure observers.
  auto run = [](bool observed) {
    devices::TimerCore core;
    runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                                devices::make_timer_behaviors(core));
    vp.sim().add<devices::TimerTick>(core);
    std::unique_ptr<obs::PlatformObserver> observer;
    if (observed) observer = std::make_unique<obs::PlatformObserver>(vp);
    std::vector<std::uint64_t> sig;
    for (const char* fn : {"enable", "get_status", "get_clock"}) {
      auto r = vp.call(fn);
      sig.push_back(r.bus_cycles);
      for (std::uint64_t v : r.outputs) sig.push_back(v);
    }
    return sig;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Observe, ExerciseDeviceIssuesOneCallPerDeclaration) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  obs::PlatformObserver observer(vp);
  const std::size_t calls = obs::exercise_device(vp, observer);
  EXPECT_EQ(calls, vp.spec().functions.size());
  EXPECT_EQ(observer.timeline().calls().size(), calls);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Observe, ConformanceOracleWritesSimTraceFile) {
  const st::SpecModel model = st::generate_spec(7);
  st::OracleOptions opt;
  opt.backend = st::OracleBackend::kLockstep;
  opt.check_equivalence = false;
  const std::string path =
      ::testing::TempDir() + "observe_conf_trace.json";
  opt.sim_trace_out = path;
  const st::OracleResult res = st::run_conformance(model, opt);
  EXPECT_TRUE(res.ok()) << (res.failures.empty() ? "rejected"
                                                 : res.failures.front());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string trace = ss.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"sim.call\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
