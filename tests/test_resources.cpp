// Resource-estimator tests: component cost sanity, structural
// monotonicity properties, and the interface/arbiter/stub breakdown.
#include <gtest/gtest.h>

#include "codegen/hdl_builder.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "resources/model.hpp"

namespace {

using namespace splice;
using namespace splice::resources;

ir::DeviceSpec spec_from(const std::string& body,
                         const std::string& bus = "plb",
                         const std::string& directives = "") {
  const bool mapped = bus != "fcb";
  std::string text = "%device_name res\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (mapped ? "%base_address 0x80000000\n" : "") +
                     directives + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(ResourceComponents, BasicCosts) {
  EXPECT_EQ(mux_cost(1, 32).luts, 0u);      // single input: wires only
  EXPECT_GT(mux_cost(4, 32).luts, mux_cost(2, 32).luts);
  EXPECT_GT(comparator_cost(32).luts, comparator_cost(8).luts);
  EXPECT_EQ(counter_cost(8).ffs, 8u);
  EXPECT_EQ(register_cost(16).ffs, 16u);
  EXPECT_GT(fsm_cost(16).luts, fsm_cost(4).luts);
  EXPECT_GT(encoder_cost(16).luts, encoder_cost(4).luts);
}

TEST(ResourceComponents, SlicePacking) {
  ResourceReport r{100, 10};
  // LUT-bound: 100 LUTs / 2 per slice / 0.7 packing.
  EXPECT_EQ(r.slices(), 71u);
  ResourceReport ff_bound{10, 100};
  EXPECT_EQ(ff_bound.slices(), 71u);
  ResourceReport sum = r + ff_bound;
  EXPECT_EQ(sum.luts, 110u);
  EXPECT_EQ(sum.ffs, 110u);
}

TEST(ResourceEstimates, MoreInstancesCostMore) {
  auto one = spec_from("int f(int x):1;\n");
  auto four = spec_from("int f(int x):4;\n");
  EXPECT_GT(estimate_splice_device(four).slices(),
            estimate_splice_device(one).slices());
}

TEST(ResourceEstimates, MoreFunctionsCostMore) {
  auto small = spec_from("int f(int x);\n");
  auto large = spec_from("int f(int x);\nint g(int y);\nint h(int z);\n");
  EXPECT_GT(estimate_splice_device(large).slices(),
            estimate_splice_device(small).slices());
}

TEST(ResourceEstimates, WiderBusCostsMore) {
  auto w32 = spec_from("int f(int x);\n");
  auto w64 = spec_from("int f(int x);\n");
  w64.target.bus_width = 64;
  EXPECT_GT(estimate_splice_device(w64).slices(),
            estimate_splice_device(w32).slices());
}

TEST(ResourceEstimates, DmaDominatesTheInterface) {
  auto plain = spec_from("void f(int*:8 x);\n");
  auto dma = spec_from("void f(int*:8^ x);\n", "plb",
                       "%dma_support true\n");
  const auto plain_iface = estimate_interface(plain);
  const auto dma_iface = estimate_interface(dma);
  // §9.3.2: "astronomical" growth from the DMA engine.
  EXPECT_GT(dma_iface.slices(), plain_iface.slices() * 2);
}

TEST(ResourceEstimates, ArrayTrackingHardwareShowsUp) {
  auto scalar = spec_from("void f(int a);\n");
  auto arr = spec_from("void f(int*:16 a);\n");
  EXPECT_GT(estimate_splice_device(arr).ffs,
            estimate_splice_device(scalar).ffs);
}

TEST(ResourceEstimates, FcbInterfaceSmallerThanAhb) {
  // Relative interconnect complexity (§2.3): the opcode-driven FCB skips
  // the address decode; the pipelined AHB is the largest.
  auto fcb = spec_from("int f(int x);\n", "fcb");
  auto ahb = spec_from("int f(int x);\n", "ahb");
  EXPECT_LT(estimate_interface(fcb).slices(),
            estimate_interface(ahb).slices());
}

TEST(ResourceEstimates, UnknownBusThrows) {
  auto spec = spec_from("int f(int x);\n");
  spec.target.bus_type = "mystery";
  EXPECT_THROW((void)estimate_interface(spec), SpliceError);
}

TEST(ResourceEstimates, ArbiterGrowsWithMuxFanIn) {
  auto few = spec_from("int f(int x);\n");
  auto many = spec_from("int f(int x):8;\n");
  EXPECT_GT(
      estimate_arbiter(
          codegen::build_arbiter_ast(many, codegen::ast::Dialect::Vhdl))
          .luts,
      estimate_arbiter(
          codegen::build_arbiter_ast(few, codegen::ast::Dialect::Vhdl))
          .luts);
}

}  // namespace
