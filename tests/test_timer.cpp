// Chapter-8 worked example: the 64-bit hardware timer, exercised through
// its generated drivers on the simulated SoC — including the Figure 8.8
// software test suite, run over both a pseudo asynchronous bus (PLB, as in
// the thesis) and the strictly synchronous APB.
#include <gtest/gtest.h>

#include "devices/timer.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;
using namespace splice::devices;

struct TimerFixture {
  TimerCore core;
  runtime::VirtualPlatform vp;

  explicit TimerFixture(const std::string& bus)
      : vp(make_timer_spec(bus), make_timer_behaviors(core)) {
    vp.sim().add<TimerTick>(core);
  }
  std::uint64_t call1(const std::string& fn,
                      const drivergen::CallArgs& args = {}) {
    auto r = vp.call(fn, args);
    return r.outputs.empty() ? 0 : r.outputs[0];
  }
};

class TimerOnBus : public ::testing::TestWithParam<const char*> {};

TEST_P(TimerOnBus, Figure88TestSuite) {
  TimerFixture f(GetParam());

  f.call1("disable");  // Disable the Timer to Start
  const std::uint64_t clock_rate = f.call1("get_clock");
  EXPECT_EQ(clock_rate, 100'000'000u);

  // A short threshold so the simulation fires quickly (the Figure 8.8
  // suite uses 5 seconds of wall clock; we scale to simulator time).
  const std::uint64_t threshold = 500;
  f.call1("set_threshold", {{threshold}});
  EXPECT_EQ(f.call1("get_threshold"), threshold);

  f.call1("enable");
  const std::uint64_t snap1 = f.call1("get_snapshot");
  EXPECT_LT(snap1, threshold);  // should be close to 0, counting

  // "sleep(6)": run past the threshold; the timer must fire and wrap.
  f.vp.sim().step(threshold + 50);
  const std::uint64_t status = f.call1("get_status");
  EXPECT_EQ(status & 1u, 1u) << "bit 0 = enabled";
  EXPECT_EQ(status & 2u, 2u) << "bit 1 = fired";

  f.call1("disable");
  EXPECT_EQ(f.call1("get_threshold"), threshold);
  const std::uint64_t status2 = f.call1("get_status");
  EXPECT_EQ(status2 & 1u, 0u) << "disabled now";
  EXPECT_EQ(status2 & 2u, 0u) << "fired bit was cleared by the last read";

  EXPECT_TRUE(f.vp.checker().clean())
      << ::testing::PrintToString(f.vp.checker().violations());
}

INSTANTIATE_TEST_SUITE_P(Buses, TimerOnBus,
                         ::testing::Values("plb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(Timer, SnapshotAdvancesWhileEnabled) {
  TimerFixture f("plb");
  f.call1("set_threshold", {{1'000'000}});
  f.call1("enable");
  const std::uint64_t a = f.call1("get_snapshot");
  f.vp.sim().step(100);
  const std::uint64_t b = f.call1("get_snapshot");
  EXPECT_GT(b, a);
  f.call1("disable");
  const std::uint64_t c = f.call1("get_snapshot");
  f.vp.sim().step(100);
  EXPECT_EQ(f.call1("get_snapshot"), c) << "frozen while disabled";
}

TEST(Timer, SetThresholdResetsCounter) {
  TimerFixture f("plb");
  f.call1("set_threshold", {{1'000'000}});
  f.call1("enable");
  f.vp.sim().step(200);
  EXPECT_GT(f.call1("get_snapshot"), 0u);
  f.call1("set_threshold", {{1'000'000}});  // "Also Resets the Timer"
  EXPECT_LT(f.call1("get_snapshot"), 50u);
}

TEST(Timer, SixtyFourBitThresholdSurvivesSplitTransfer) {
  TimerFixture f("plb");
  const std::uint64_t big = 0x0123456789ABCDEFull;
  f.call1("set_threshold", {{big}});
  EXPECT_EQ(f.call1("get_threshold"), big);
}

TEST(Timer, RepeatedFiringAutoRestarts) {
  TimerFixture f("plb");
  f.call1("set_threshold", {{100}});
  f.call1("enable");
  for (int round = 0; round < 3; ++round) {
    f.vp.sim().step(150);
    const std::uint64_t status = f.call1("get_status");
    EXPECT_EQ(status & 2u, 2u) << "round " << round;
  }
}

TEST(Timer, CoreUnitSemantics) {
  TimerCore core;
  core.set_threshold(3);
  core.tick();
  EXPECT_EQ(core.snapshot(), 0u) << "disabled: no counting";
  core.enable();
  core.tick();
  core.tick();
  EXPECT_EQ(core.snapshot(), 2u);
  core.tick();   // reaches threshold
  core.tick();   // fires, wraps
  EXPECT_TRUE(core.fired());
  EXPECT_LE(core.snapshot(), 1u);
  const std::uint32_t status = core.read_status();
  EXPECT_EQ(status, 3u);           // enabled | fired
  EXPECT_FALSE(core.fired());      // cleared by the read
}

}  // namespace
