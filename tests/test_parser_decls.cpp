// Interface-declaration grammar tests (thesis Figures 3.1-3.8): each
// syntax extension, their combinations, and rejection of malformed input.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace {

using namespace splice;
using namespace splice::ir;

FunctionDecl parse_ok(std::string_view text) {
  TypeTable types;
  DiagnosticEngine diags;
  auto fn = frontend::parse_prototype(text, types, diags);
  EXPECT_TRUE(fn.has_value()) << text << "\n" << diags.render();
  if (!fn) return FunctionDecl{};
  return *fn;
}

void parse_fail(std::string_view text, DiagId expected) {
  TypeTable types;
  DiagnosticEngine diags;
  auto fn = frontend::parse_prototype(text, types, diags);
  EXPECT_FALSE(fn.has_value()) << text;
  EXPECT_TRUE(diags.contains(expected)) << text << "\n" << diags.render();
}

// --- Figure 3.1: baseline syntax -------------------------------------------

TEST(DeclGrammar, BasicTransferNoInputs) {
  auto fn = parse_ok("int get_status();");
  EXPECT_EQ(fn.name, "get_status");
  EXPECT_EQ(fn.return_kind, ReturnKind::Value);
  EXPECT_EQ(fn.output.type.name, "int");
  EXPECT_TRUE(fn.inputs.empty());
  EXPECT_EQ(fn.instances, 1u);
}

TEST(DeclGrammar, BasicTransferWithScalars) {
  auto fn = parse_ok("void set_point(short x, short y, char flags);");
  EXPECT_EQ(fn.return_kind, ReturnKind::Void);
  ASSERT_EQ(fn.inputs.size(), 3u);
  EXPECT_EQ(fn.inputs[0].type.bits, 16u);
  EXPECT_EQ(fn.inputs[2].type.bits, 8u);
  EXPECT_FALSE(fn.inputs[0].is_pointer);
}

TEST(DeclGrammar, AllBaselineTypesAccepted) {
  for (const char* ty : {"int", "short", "char", "bool", "double", "single",
                         "unsigned", "float"}) {
    auto fn = parse_ok(std::string(ty) + " f(" + ty + " a);");
    EXPECT_EQ(fn.inputs[0].type.name, ty);
  }
}

// --- Figure 3.2: explicit pointers ------------------------------------------

TEST(DeclGrammar, ExplicitPointer) {
  auto fn = parse_ok("void some_function(int*:5 x);");
  ASSERT_EQ(fn.inputs.size(), 1u);
  const IoParam& p = fn.inputs[0];
  EXPECT_TRUE(p.is_pointer);
  EXPECT_EQ(p.count_kind, CountKind::Explicit);
  EXPECT_EQ(p.explicit_count, 5u);
}

// --- Figure 3.3: implicit pointers ------------------------------------------

TEST(DeclGrammar, ImplicitPointer) {
  auto fn = parse_ok("void some_function(char x, int*:x y);");
  ASSERT_EQ(fn.inputs.size(), 2u);
  const IoParam& p = fn.inputs[1];
  EXPECT_EQ(p.count_kind, CountKind::Implicit);
  EXPECT_EQ(p.index_var, "x");
}

// --- Figure 3.4: packed transfers -------------------------------------------

TEST(DeclGrammar, PackedExplicitPrefixForm) {
  auto fn = parse_ok("void f(char*:8+ x);");
  EXPECT_TRUE(fn.inputs[0].packed);
  EXPECT_EQ(fn.inputs[0].explicit_count, 8u);
}

TEST(DeclGrammar, PackedPostfixFormFromThesisText) {
  // §3.1.3 writes the extension after the name: "char* x:8+".
  auto fn = parse_ok("void f(char* x:8+);");
  EXPECT_TRUE(fn.inputs[0].is_pointer);
  EXPECT_TRUE(fn.inputs[0].packed);
  EXPECT_EQ(fn.inputs[0].explicit_count, 8u);
}

// --- Figure 3.5: DMA ---------------------------------------------------------

TEST(DeclGrammar, DmaTransfer) {
  auto fn = parse_ok("void f(int*:8^ x);");
  EXPECT_TRUE(fn.inputs[0].dma);
  EXPECT_FALSE(fn.inputs[0].packed);
}

// --- Figure 3.6: multiple instances ------------------------------------------

TEST(DeclGrammar, MultipleInstances) {
  auto fn = parse_ok("void some_function(int x, int y):4;");
  EXPECT_EQ(fn.instances, 4u);
  EXPECT_EQ(fn.inputs.size(), 2u);
}

// --- Figure 3.7: nowait -------------------------------------------------------

TEST(DeclGrammar, NowaitCall) {
  auto fn = parse_ok("nowait some_function(int x, int y);");
  EXPECT_EQ(fn.return_kind, ReturnKind::Nowait);
  EXPECT_FALSE(fn.blocking());
}

// --- Figure 3.8: combinations -------------------------------------------------

TEST(DeclGrammar, CombinedPackedDmaExplicit) {
  auto fn = parse_ok("void some_function(char*:16^+ x);");
  const IoParam& p = fn.inputs[0];
  EXPECT_TRUE(p.packed);
  EXPECT_TRUE(p.dma);
  EXPECT_EQ(p.explicit_count, 16u);
}

TEST(DeclGrammar, CombinedImplicitDmaWithInstances) {
  auto fn = parse_ok("int f(char n, int*:n^ data):2;");
  EXPECT_EQ(fn.instances, 2u);
  EXPECT_TRUE(fn.inputs[1].dma);
  EXPECT_EQ(fn.inputs[1].index_var, "n");
}

TEST(DeclGrammar, PointerReturnWithExplicitBound) {
  auto fn = parse_ok("int*:4 get_vals(char seed);");
  EXPECT_EQ(fn.return_kind, ReturnKind::Value);
  EXPECT_TRUE(fn.output.is_pointer);
  EXPECT_EQ(fn.output.explicit_count, 4u);
}

TEST(DeclGrammar, BraceFormWithBuiltinType) {
  auto fn = parse_ok("int get_threshold{};");
  EXPECT_EQ(fn.name, "get_threshold");
}

// --- error cases ---------------------------------------------------------------

TEST(DeclGrammar, UnknownTypeRejected) {
  parse_fail("uint64 f();", DiagId::ExpectedType);
}

TEST(DeclGrammar, UnknownParamTypeRejected) {
  parse_fail("void f(uint64 x);", DiagId::ExpectedType);
}

TEST(DeclGrammar, MissingNameRejected) {
  parse_fail("int (int x);", DiagId::ExpectedIdentifier);
}

TEST(DeclGrammar, MissingSemiRejected) {
  parse_fail("int f()", DiagId::ExpectedToken);
}

TEST(DeclGrammar, MissingParamNameRejected) {
  parse_fail("void f(int);", DiagId::ExpectedIdentifier);
}

TEST(DeclGrammar, NowaitCannotCarryReturnTransfer) {
  parse_fail("nowait*:4 f(int x);", DiagId::NowaitWithValue);
}

TEST(DeclGrammar, InstanceCountMustBeNumeric) {
  parse_fail("void f(int x):y;", DiagId::ExpectedToken);
}

}  // namespace
