// SIS protocol-checker tests: hand-drive the chapter-4 signal bundle with
// both compliant and non-compliant sequences.
#include <gtest/gtest.h>

#include "sis/checker.hpp"
#include "sis/sis.hpp"

namespace {

using namespace splice;
using namespace splice::rtl;
using namespace splice::sis;

struct Fixture {
  Simulator sim;
  SisBus bus = SisBus::create(sim, "SIS_", 32, 4, 8);
};

TEST(SisChecker, CompliantPseudoAsyncWrite) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);

  // Cycle 0: idle.
  f.sim.step();
  // Cycle 1: strobe IO_ENABLE with valid data (write opens).
  f.bus.io_enable.drive(true);
  f.bus.data_in_valid.drive(true);
  f.bus.data_in.drive(std::uint64_t{0xBEEF});
  f.bus.func_id.drive(std::uint64_t{1});
  f.sim.step();
  // Cycle 2: strobe falls, data held; slave raises IO_DONE for one cycle.
  f.bus.io_enable.drive(false);
  f.bus.io_done.drive(true);
  f.sim.step();
  // Cycle 3: transaction closed.
  f.bus.io_done.drive(false);
  f.bus.data_in_valid.drive(false);
  f.sim.step();

  EXPECT_TRUE(chk.clean()) << ::testing::PrintToString(chk.violations());
  EXPECT_EQ(chk.writes_observed(), 1u);
}

TEST(SisChecker, IoEnableHeldTwoCyclesFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.data_in_valid.drive(true);
  f.sim.step(2);  // held high for two cycles
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("IO_ENABLE"), std::string::npos);
}

TEST(SisChecker, DataChangedMidWriteFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.data_in_valid.drive(true);
  f.bus.data_in.drive(std::uint64_t{1});
  f.sim.step();
  f.bus.io_enable.drive(false);
  f.bus.data_in.drive(std::uint64_t{2});  // mutates before IO_DONE
  f.sim.step();
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("DATA_IN changed"),
            std::string::npos);
}

TEST(SisChecker, ValidDroppedBeforeDoneFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.data_in_valid.drive(true);
  f.sim.step();
  f.bus.io_enable.drive(false);
  f.bus.data_in_valid.drive(false);  // dropped with no IO_DONE
  f.sim.step();
  EXPECT_FALSE(chk.clean());
}

TEST(SisChecker, FuncIdChangedMidReadFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.func_id.drive(std::uint64_t{2});
  f.sim.step();
  f.bus.io_enable.drive(false);
  f.bus.func_id.drive(std::uint64_t{3});  // read still pending
  f.sim.step();
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("FUNC_ID"), std::string::npos);
}

TEST(SisChecker, ReadDoneWithoutDataValidFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.func_id.drive(std::uint64_t{2});
  f.sim.step();
  f.bus.io_enable.drive(false);
  f.bus.io_done.drive(true);  // done without DATA_OUT_VALID
  f.sim.step();
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("DATA_OUT_VALID"),
            std::string::npos);
}

TEST(SisChecker, StrictWritesCompleteImmediately) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::StrictlySynchronous);
  // Two chained single-cycle writes.
  for (int i = 0; i < 2; ++i) {
    f.bus.io_enable.drive(true);
    f.bus.data_in_valid.drive(true);
    f.bus.data_in.drive(std::uint64_t(i));
    f.sim.step();
    f.bus.io_enable.drive(false);
    f.bus.data_in_valid.drive(false);
    f.sim.step();
  }
  EXPECT_TRUE(chk.clean()) << ::testing::PrintToString(chk.violations());
  EXPECT_EQ(chk.writes_observed(), 2u);
}

TEST(SisChecker, IoDoneWithoutEnableFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.sim.step(2);               // quiet bus, no transaction opened
  f.bus.io_done.drive(true);   // spurious completion strobe
  f.sim.step();
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("no transaction in flight"),
            std::string::npos);
}

TEST(SisChecker, CalcDoneGlitchFlagged) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.calc_done.drive(std::uint64_t{0b10});
  f.sim.step(6);                              // bit raised, bus long quiet
  f.bus.calc_done.drive(std::uint64_t{0});    // falls with no read/write
  f.sim.step();
  EXPECT_FALSE(chk.clean());
  EXPECT_NE(chk.violations().front().find("CALC_DONE"), std::string::npos);
}

TEST(SisChecker, CalcDoneFallAfterReadClean) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.calc_done.drive(std::uint64_t{0b1});
  f.sim.step(6);
  // Software consumes the result: a compliant read transaction...
  f.bus.io_enable.drive(true);
  f.bus.func_id.drive(std::uint64_t{1});
  f.sim.step();
  f.bus.io_enable.drive(false);
  f.bus.io_done.drive(true);
  f.bus.data_out_valid.drive(true);
  f.sim.step();
  f.bus.io_done.drive(false);
  f.bus.data_out_valid.drive(false);
  // ...and the status bit may fall within the pipeline allowance.
  f.bus.calc_done.drive(std::uint64_t{0});
  f.sim.step(4);
  EXPECT_TRUE(chk.clean()) << ::testing::PrintToString(chk.violations());
}

TEST(SisChecker, ResetClearsTransactionState) {
  Fixture f;
  auto& chk = f.sim.add<ProtocolChecker>(f.bus, ProtocolClass::PseudoAsynchronous);
  f.bus.io_enable.drive(true);
  f.bus.data_in_valid.drive(true);
  f.sim.step();
  f.bus.rst.drive(true);
  f.bus.io_enable.drive(false);
  f.sim.step();
  f.bus.rst.drive(false);
  f.bus.data_in_valid.drive(false);
  f.sim.step(2);
  EXPECT_TRUE(chk.clean()) << ::testing::PrintToString(chk.violations());
}

}  // namespace
