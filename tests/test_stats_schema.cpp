// Schema guard for the statistics surface: the sorted set of gen.* and
// sim.* key names (as --stats-format json emits them) is pinned against
// tests/golden/stats_keys.txt.  Downstream dashboards and the bench
// harness key on these names, so adding, renaming or dropping one must be
// a conscious, reviewed change — this test fails with a full diff and
// update instructions when the surface drifts.
//
// Per-module and per-region keys embed elaborated names, which depend on
// the spec under simulation; those are normalized to a placeholder
// (`sim.module_evals.<module>`, `sim.prof.region.<region>.runs`, ...) so
// the golden pins the schema, not one device's module list.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "runtime/platform.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace splice;

std::string normalize(const std::string& name) {
  auto rewrite = [&](const char* prefix,
                     const char* placeholder) -> std::string {
    const std::string p(prefix);
    if (name.rfind(p, 0) != 0) return {};
    // Keep a known trailing component (".runs"/".iterations") when the
    // dynamic segment sits in the middle of the key.
    const std::string rest = name.substr(p.size());
    const std::size_t dot = rest.rfind('.');
    if (dot != std::string::npos &&
        (rest.substr(dot) == ".runs" || rest.substr(dot) == ".iterations")) {
      return p + placeholder + rest.substr(dot);
    }
    return p + placeholder;
  };
  if (auto s = rewrite("sim.module_evals.", "<module>"); !s.empty()) return s;
  if (auto s = rewrite("sim.prof.wakes.", "<module>"); !s.empty()) return s;
  if (auto s = rewrite("sim.prof.region.", "<region>"); !s.empty()) return s;
  return name;
}

void collect(const support::telemetry::MetricsSnapshot& snap,
             std::set<std::string>& keys) {
  for (const auto& [name, v] : snap.counters) {
    keys.insert("counter " + normalize(name));
  }
  for (const auto& [name, v] : snap.gauges) {
    keys.insert("gauge " + normalize(name));
  }
  for (const auto& [name, v] : snap.histograms) {
    keys.insert("histogram " + normalize(name));
  }
}

std::set<std::string> current_schema() {
  std::set<std::string> keys;

  // gen.* — one full engine run with the metrics sink attached.
  {
    support::telemetry::MetricsRegistry metrics;
    EngineOptions eopts;
    eopts.metrics = &metrics;
    Engine engine(adapters::AdapterRegistry::instance(), eopts);
    DiagnosticEngine diags;
    auto artifacts = engine.generate(devices::timer_spec_text(), diags);
    EXPECT_TRUE(artifacts.has_value()) << diags.render();
    collect(metrics.snapshot(), keys);
  }

  // sim.* — the timer platform on both backends, profiling enabled so the
  // sim.prof.* families are part of the pinned surface too.
  for (const auto backend : {rtl::Simulator::Backend::kInterp,
                             rtl::Simulator::Backend::kCompiled}) {
    devices::TimerCore core;
    runtime::VirtualPlatform vp(devices::make_timer_spec("plb"),
                                devices::make_timer_behaviors(core));
    vp.sim().add<devices::TimerTick>(core);
    vp.sim().set_backend(backend);
    vp.sim().set_profiling(true);
    vp.call("enable");
    vp.call("set_threshold", {{25}});
    vp.call("get_status");
    collect(vp.sim().metrics_snapshot(), keys);
  }
  return keys;
}

TEST(StatsSchema, KeyNamesMatchGolden) {
  const std::set<std::string> keys = current_schema();
  std::ostringstream rendered;
  for (const std::string& k : keys) rendered << k << '\n';

  const std::string golden_path =
      std::string(SPLICE_GOLDEN_DIR) + "/stats_keys.txt";
  std::ifstream f(golden_path);
  ASSERT_TRUE(f.good()) << "missing golden fixture " << golden_path;
  std::stringstream golden;
  golden << f.rdbuf();

  EXPECT_EQ(golden.str(), rendered.str())
      << "The gen.*/sim.* statistics key schema changed.  If the change is "
         "intentional, update the fixture:\n  tests/golden/stats_keys.txt\n"
         "with the 'current schema' printed above (left side of the diff "
         "is the golden, right side is the code's current surface), and "
         "mention the schema change in the PR description — bench harness "
         "and dashboards key on these names.";
}

}  // namespace
