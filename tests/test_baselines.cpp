// Unit tests for the chapter-9 hand-coded baseline interfaces and their
// shared input sequencer.
#include <gtest/gtest.h>

#include "bus/timing.hpp"
#include "devices/baselines.hpp"
#include "devices/evaluation.hpp"
#include "devices/interpolator.hpp"

namespace {

using namespace splice;
using namespace splice::devices;

std::vector<std::uint64_t> word_stream(const ScenarioInputs& in) {
  std::vector<std::uint64_t> words;
  words.push_back(in.set1.size());
  words.insert(words.end(), in.set1.begin(), in.set1.end());
  words.push_back(in.set2.size());
  words.insert(words.end(), in.set2.begin(), in.set2.end());
  words.push_back(in.set3.size());
  words.insert(words.end(), in.set3.begin(), in.set3.end());
  return words;
}

TEST(InterpSequencer, ConsumesPhasesInOrder) {
  const ScenarioInputs in = make_inputs(scenarios()[0]);
  InterpSequencer seq;
  for (std::uint64_t w : word_stream(in)) {
    EXPECT_FALSE(seq.inputs_complete());
    seq.consume(w);
  }
  EXPECT_TRUE(seq.inputs_complete());
  EXPECT_FALSE(seq.result_ready()) << "calculation still pending";
  for (unsigned c = 0; c < bus::timing::kInterpolatorCalcCycles; ++c) {
    seq.tick();
  }
  EXPECT_TRUE(seq.result_ready());
  EXPECT_EQ(seq.result(), in.expected());
}

TEST(InterpSequencer, RestartClearsEverything) {
  const ScenarioInputs in = make_inputs(scenarios()[1]);
  InterpSequencer seq;
  for (std::uint64_t w : word_stream(in)) seq.consume(w);
  for (unsigned c = 0; c < 64; ++c) seq.tick();
  ASSERT_TRUE(seq.result_ready());
  seq.restart();
  EXPECT_FALSE(seq.inputs_complete());
  EXPECT_FALSE(seq.result_ready());
  // Second run produces the same answer.
  for (std::uint64_t w : word_stream(in)) seq.consume(w);
  for (unsigned c = 0; c < 64; ++c) seq.tick();
  EXPECT_EQ(seq.result(), in.expected());
}

TEST(InterpSequencer, ZeroCountSkipsSet) {
  InterpSequencer seq;
  seq.consume(0);  // n1 = 0 -> no set1 words
  seq.consume(1);  // n2 = 1
  seq.consume(42);
  seq.consume(1);  // n3 = 1
  seq.consume(7);
  EXPECT_TRUE(seq.inputs_complete());
}

TEST(InterpSequencer, ExtraWordsAreDropped) {
  InterpSequencer seq;
  for (std::uint64_t w : word_stream(make_inputs(scenarios()[0]))) {
    seq.consume(w);
  }
  seq.consume(999);  // beyond the protocol
  EXPECT_TRUE(seq.inputs_complete());
}

TEST(NaiveBaseline, AnswersSlowlyButCorrectly) {
  // The naive slave must produce the right answer; its *cost* is what the
  // evaluation measures elsewhere.
  const ScenarioRun run = run_scenario(Impl::NaivePlb, scenarios()[2]);
  EXPECT_TRUE(run.correct());
}

TEST(OptimizedBaseline, RepeatedRunsReuseTheDevice) {
  // run_scenario performs warm runs internally; a fresh measurement per
  // scenario must stay deterministic.
  const auto a = run_scenario(Impl::OptimizedFcb, scenarios()[1]);
  const auto b = run_scenario(Impl::OptimizedFcb, scenarios()[1]);
  EXPECT_EQ(a.bus_cycles, b.bus_cycles);
  EXPECT_EQ(a.result, b.result);
  EXPECT_TRUE(a.correct());
}

TEST(Baselines, NaiveSlowerThanEverySpliceVariantPerScenario) {
  for (const auto& sc : scenarios()) {
    const auto naive = run_scenario(Impl::NaivePlb, sc).bus_cycles;
    EXPECT_GT(naive, run_scenario(Impl::SplicePlbSimple, sc).bus_cycles);
    EXPECT_GT(naive, run_scenario(Impl::SpliceFcb, sc).bus_cycles);
  }
}

TEST(Baselines, OptimizedFcbIsTheFastestImplementation) {
  for (const auto& sc : scenarios()) {
    const auto opt = run_scenario(Impl::OptimizedFcb, sc).bus_cycles;
    for (Impl impl : kAllImpls) {
      if (impl == Impl::OptimizedFcb) continue;
      EXPECT_LT(opt, run_scenario(impl, sc).bus_cycles)
          << impl_name(impl) << " scenario " << sc.id;
    }
  }
}

}  // namespace
