// Bus-extension API tests (thesis chapter 7): registry behaviour, the
// three required adapter routines, capability-driven parameter rejection,
// template expansion of native interfaces, and the §7.2 naming rule.
#include <gtest/gtest.h>

#include "adapters/registry.hpp"
#include "codegen/template.hpp"
#include "frontend/parser.hpp"

namespace {

using namespace splice;
using namespace splice::adapters;

ir::DeviceSpec parse(const std::string& text) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  return spec ? std::move(*spec) : ir::DeviceSpec{};
}

TEST(Registry, BuiltinsPresent) {
  auto& reg = AdapterRegistry::instance();
  for (const char* bus : {"plb", "opb", "fcb", "apb", "ahb"}) {
    EXPECT_NE(reg.find(bus), nullptr) << bus;
  }
  EXPECT_EQ(reg.find("wishbone"), nullptr);
}

TEST(Registry, DuplicateRegistrationRejected) {
  AdapterRegistry reg;
  EXPECT_TRUE(reg.add(make_plb_adapter()));
  EXPECT_FALSE(reg.add(make_plb_adapter()));
  EXPECT_TRUE(reg.remove("plb"));
  EXPECT_FALSE(reg.remove("plb"));
  EXPECT_TRUE(reg.add(make_plb_adapter()));
}

TEST(Registry, LibraryNamingRule) {
  // §7.2: the library must be named lib[x]_interface.so.
  EXPECT_EQ(library_filename("plb"), "libplb_interface.so");
  EXPECT_EQ(library_filename("wishbone"), "libwishbone_interface.so");
}

TEST(Capabilities, MatchThesisDescriptions) {
  auto& reg = AdapterRegistry::instance();
  const auto plb = reg.find("plb")->capabilities();
  EXPECT_TRUE(plb.memory_mapped);
  EXPECT_TRUE(plb.supports_dma);
  EXPECT_EQ(plb.max_dma_bits, 256u * 8u);  // §2.3.2: 256-byte DMA
  EXPECT_TRUE(plb.width_allowed(32));
  EXPECT_TRUE(plb.width_allowed(64));
  EXPECT_FALSE(plb.width_allowed(16));

  const auto fcb = reg.find("fcb")->capabilities();
  EXPECT_FALSE(fcb.memory_mapped);
  EXPECT_FALSE(fcb.supports_dma);
  EXPECT_TRUE(fcb.supports_burst);
  EXPECT_EQ(fcb.max_burst_words, 4u);  // double/quad word bursts

  const auto opb = reg.find("opb")->capabilities();
  EXPECT_FALSE(opb.supports_dma);   // §2.3.2: simple transfers only
  EXPECT_FALSE(opb.supports_burst);

  const auto apb = reg.find("apb")->capabilities();
  EXPECT_TRUE(apb.strictly_synchronous);

  const auto ahb = reg.find("ahb")->capabilities();
  EXPECT_TRUE(ahb.supports_burst);
  EXPECT_EQ(ahb.max_burst_words, 16u);  // §2.3.1: 16-beat chains
}

TEST(ParameterChecking, OpbRejectsDma) {
  auto spec = parse(
      "%device_name d\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x0\n%dma_support true\nint f();\n");
  DiagnosticEngine diags;
  const BusAdapter* opb = AdapterRegistry::instance().find("opb");
  EXPECT_FALSE(opb->check_parameters(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::DmaNotSupportedByBus));
}

TEST(ParameterChecking, FcbRejectsWrongWidth) {
  auto spec = parse(
      "%device_name d\n%bus_type fcb\n%bus_width 64\nint f();\n");
  DiagnosticEngine diags;
  const BusAdapter* fcb = AdapterRegistry::instance().find("fcb");
  EXPECT_FALSE(fcb->check_parameters(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::UnsupportedBusWidth));
}

TEST(ParameterChecking, PlbAcceptsCompleteSpec) {
  auto spec = parse(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int x);\n");
  DiagnosticEngine diags;
  const BusAdapter* plb = AdapterRegistry::instance().find("plb");
  EXPECT_TRUE(plb->check_parameters(spec, diags)) << diags.render();
  EXPECT_EQ(spec.functions[0].func_id, 1u);
}

class InterfaceGeneration : public ::testing::TestWithParam<const char*> {};

TEST_P(InterfaceGeneration, TemplateExpandsWithNoLeftoverMarkers) {
  const std::string bus = GetParam();
  const bool mapped = bus != "fcb";
  auto spec = parse("%device_name d\n%bus_type " + bus + "\n%bus_width 32\n" +
                    (mapped ? "%base_address 0x80000000\n" : "") +
                    "int f(int x);\nint g();\n");
  DiagnosticEngine diags;
  const BusAdapter* adapter = AdapterRegistry::instance().find(bus);
  ASSERT_NE(adapter, nullptr);
  ASSERT_TRUE(adapter->check_parameters(spec, diags)) << diags.render();

  codegen::TemplateEngine engine = codegen::make_standard_engine();
  adapter->load_markers(engine);
  auto files = adapter->generate_interface(spec, engine, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.render();
  ASSERT_FALSE(files.empty());
  EXPECT_EQ(files[0].filename, bus + "_interface.vhd");
  // Every marker must have been expanded: the only remaining '%' may be
  // the literal one a template escapes with '%%'.
  const std::string& body = files[0].content;
  EXPECT_EQ(body.find("%COMP_NAME%"), std::string::npos);
  EXPECT_EQ(body.find("%BUS_WIDTH%"), std::string::npos);
  EXPECT_EQ(body.find("%NUM_SLOTS%"), std::string::npos);
  EXPECT_NE(body.find("entity " + bus + "_interface"), std::string::npos);
  EXPECT_NE(body.find("DATA_IN_VALID"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllBuses, InterfaceGeneration,
                         ::testing::Values("plb", "opb", "fcb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(InterfaceGenerationExtras, PlbWithDmaEmitsEngineFile) {
  // §7.1.2: complex interconnects may need multiple HDL files.
  auto spec = parse(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n%dma_support true\n"
      "void f(int*:8^ x);\n");
  DiagnosticEngine diags;
  const BusAdapter* plb = AdapterRegistry::instance().find("plb");
  ASSERT_TRUE(plb->check_parameters(spec, diags)) << diags.render();
  codegen::TemplateEngine engine = codegen::make_standard_engine();
  plb->load_markers(engine);
  auto files = plb->generate_interface(spec, engine, diags);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[1].filename, "plb_dma_engine.vhd");
  EXPECT_NE(files[1].content.find("entity plb_dma_engine"),
            std::string::npos);
}

TEST(MacroLibrary, PerBusContent) {
  auto& reg = AdapterRegistry::instance();
  auto spec = parse(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80004000\nint f();\n");
  const std::string plb_lib = reg.find("plb")->macro_library(spec);
  EXPECT_NE(plb_lib.find("#define WRITE_SINGLE"), std::string::npos);
  EXPECT_NE(plb_lib.find("#define WAIT_FOR_RESULTS(a) ((void)0)"),
            std::string::npos);
  EXPECT_NE(plb_lib.find("0x80004000"), std::string::npos);

  spec.target.bus_type = "apb";
  const std::string apb_lib = reg.find("apb")->macro_library(spec);
  // Strictly synchronous: the wait macro polls the status register.
  EXPECT_NE(apb_lib.find("while"), std::string::npos);
  EXPECT_NE(apb_lib.find("SPLICE_STATUS_ADDR"), std::string::npos);

  spec.target.bus_type = "fcb";
  const std::string fcb_lib = reg.find("fcb")->macro_library(spec);
  EXPECT_NE(fcb_lib.find("__asm__"), std::string::npos);
}

TEST(MacroLibrary, LinuxVariantUsesMmap) {
  auto spec = parse(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80004000\nint f();\n");
  const std::string lib = AdapterRegistry::instance().find("plb")->macro_library(
      spec, drivergen::DriverOs::Linux);
  EXPECT_NE(lib.find("mmap"), std::string::npos);
  EXPECT_NE(lib.find("/dev/mem"), std::string::npos);
}

}  // namespace
