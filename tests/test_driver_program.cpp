// DriverBuilder tests: the transaction sequences generated drivers execute
// (chapter 6), including the burst macro ladder, DMA ops, multi-instance
// targeting and output decode.
#include <gtest/gtest.h>

#include "drivergen/program.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"

namespace {

using namespace splice;
using namespace splice::drivergen;

ir::DeviceSpec spec_from(const std::string& body,
                         const std::string& directives = "") {
  std::string text =
      "%device_name drv\n%bus_type fcb\n%bus_width 32\n" + directives + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

std::vector<OpCode> opcodes(const DriverProgram& p) {
  std::vector<OpCode> out;
  for (const auto& op : p.ops) out.push_back(op.op);
  return out;
}

TEST(DriverProgram, SimpleFunctionShape) {
  // Matches Figure 6.1: SET_ADDRESS, writes, WAIT_FOR_RESULTS, READ.
  auto spec = spec_from("float sample_function(int*:2 x, int y);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{11, 22}, {33}});
  EXPECT_EQ(opcodes(prog),
            (std::vector<OpCode>{OpCode::SetAddress, OpCode::WriteSingle,
                                 OpCode::WriteSingle, OpCode::WriteSingle,
                                 OpCode::WaitForResults, OpCode::ReadSingle}));
  EXPECT_EQ(prog.fid, 1u);
  EXPECT_EQ(prog.write_word_count(), 3u);
  EXPECT_EQ(prog.total_read_words, 1u);
}

TEST(DriverProgram, BurstLadderUsesQuadDoubleSingle) {
  // §6.1.1: prefer QUAD, then DOUBLE, then SINGLE when %burst_support on.
  auto spec = spec_from("void f(int*:7 x);\n", "%burst_support true\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{1, 2, 3, 4, 5, 6, 7}});
  EXPECT_EQ(opcodes(prog),
            (std::vector<OpCode>{OpCode::SetAddress, OpCode::WriteQuad,
                                 OpCode::WriteDouble, OpCode::WriteSingle,
                                 OpCode::WaitForResults, OpCode::ReadSingle}));
}

TEST(DriverProgram, NoBurstFallsBackToSingles) {
  // "four sequential single-word store operations" (§6.1.1).
  auto spec = spec_from("void f(int*:4 x);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{1, 2, 3, 4}});
  unsigned singles = 0;
  for (auto op : opcodes(prog)) {
    if (op == OpCode::WriteSingle) ++singles;
  }
  EXPECT_EQ(singles, 4u);
}

TEST(DriverProgram, DmaParameterUsesWriteDma) {
  auto spec = spec_from("void f(int*:8^ x);\n", "%dma_support true\n");
  // FCB has no DMA; use a plb spec instead.
  auto plb_spec = [&] {
    std::string text =
        "%device_name drv\n%bus_type plb\n%bus_width 32\n"
        "%base_address 0x0\n%dma_support true\nvoid f(int*:8^ x);\n";
    DiagnosticEngine diags;
    auto s = frontend::parse_spec(text, diags);
    EXPECT_TRUE(s && ir::validate(*s, diags)) << diags.render();
    return std::move(*s);
  }();
  DriverBuilder b(plb_spec, plb_spec.functions[0]);
  auto prog = b.build_call({{1, 2, 3, 4, 5, 6, 7, 8}});
  EXPECT_EQ(opcodes(prog),
            (std::vector<OpCode>{OpCode::SetAddress, OpCode::WriteDma,
                                 OpCode::WaitForResults, OpCode::ReadSingle}));
  EXPECT_EQ(prog.ops[1].data.size(), 8u);
  (void)spec;
}

TEST(DriverProgram, NowaitHasNoWaitOrRead) {
  auto spec = spec_from("nowait f(int x);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{5}});
  EXPECT_EQ(opcodes(prog),
            (std::vector<OpCode>{OpCode::SetAddress, OpCode::WriteSingle}));
  EXPECT_EQ(prog.total_read_words, 0u);
}

TEST(DriverProgram, MultiInstanceOffsetsFuncId) {
  // Figure 6.2: SET_ADDRESS(SAMPLE_FUNCTION_ID + inst_index).
  auto spec = spec_from("int f(int x):4;\nint g();\n");
  DriverBuilder b(spec, spec.functions[0]);
  EXPECT_EQ(b.build_call({{1}}, 0).fid, 1u);
  EXPECT_EQ(b.build_call({{1}}, 3).fid, 4u);
  EXPECT_THROW(b.build_call({{1}}, 4), SpliceError);
  DriverBuilder bg(spec, spec.functions[1]);
  EXPECT_EQ(bg.build_call({}).fid, 5u);  // after the 4 instances of f
}

TEST(DriverProgram, ImplicitCountsResolveFromArguments) {
  auto spec = spec_from("int f(char n, int*:n xs);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{3}, {7, 8, 9}});
  EXPECT_EQ(prog.write_word_count(), 4u);  // count word + 3 elements
  EXPECT_THROW(b.build_call({{3}, {7, 8}}), SpliceError);  // arity mismatch
}

TEST(DriverProgram, SplitValuesDoubleTheWriteWords) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "void f(llong v);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{0xAABBCCDD11223344ull}});
  EXPECT_EQ(prog.write_word_count(), 2u);
  EXPECT_EQ(prog.ops[1].data[0], 0xAABBCCDDu);  // MSW first
}

TEST(DriverProgram, OutputDecodeRoundTrips) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "llong f(int x);\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto decoded = b.decode_output({0x11223344u, 0x55667788u}, {{0}});
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], 0x1122334455667788ull);
}

TEST(DriverProgram, WrongArgumentCountThrows) {
  auto spec = spec_from("int f(int a, int b);\n");
  DriverBuilder b(spec, spec.functions[0]);
  EXPECT_THROW(b.build_call({{1}}), SpliceError);
}

TEST(DriverProgram, BurstReadLadderForWideOutputs) {
  auto spec = spec_from("int*:6 f();\n", "%burst_support true\n");
  DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({});
  EXPECT_EQ(opcodes(prog),
            (std::vector<OpCode>{OpCode::SetAddress, OpCode::WaitForResults,
                                 OpCode::ReadQuad, OpCode::ReadDouble}));
  EXPECT_EQ(prog.total_read_words, 6u);
}

TEST(DriverProgram, OpcodeNamesMatchFigure72) {
  EXPECT_EQ(opcode_name(OpCode::WriteSingle), "WRITE_SINGLE");
  EXPECT_EQ(opcode_name(OpCode::WriteQuad), "WRITE_QUAD");
  EXPECT_EQ(opcode_name(OpCode::ReadDma), "READ_DMA");
  EXPECT_EQ(opcode_name(OpCode::WaitForResults), "WAIT_FOR_RESULTS");
  EXPECT_EQ(opcode_name(OpCode::SetAddress), "SET_ADDRESS");
}

}  // namespace
